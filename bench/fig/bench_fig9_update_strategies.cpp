// Figure 9: effect of the update strategy — GraphSD vs GraphSD-b1 (no
// cross-iteration update) vs GraphSD-b2 (no selective update), execution
// time and I/O traffic on the Twitter2010 proxy.
//
// Expected shape: GraphSD beats b1 (paper: 1.7x) and b2 (paper: 2.8x);
// b2 is worse than b1 (state-awareness matters more than cross-iteration);
// traffic ratios ~1.6x / ~5.4x.
#include <cmath>
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "util/stats.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Figure 9", "Effect of different update strategies (Twitter2010)",
      "GraphSD outperforms b1 by 1.7x and b2 by 2.8x; traffic 1.6x / 5.4x "
      "lower; b2 worse than b1");

  auto device = MakeBenchDevice();
  const PreparedDataset dataset = Prepare(*device, Specs()[0]);

  graphsd::core::EngineOptions full;
  graphsd::core::EngineOptions b1;  // cross-iteration disabled
  b1.enable_cross_iteration = false;
  graphsd::core::EngineOptions b2;  // selective disabled
  b2.enable_selective = false;

  TablePrinter time_table(
      {"Algo", "GraphSD(s)", "b1(s)", "b2(s)", "b1/GSD", "b2/GSD"});
  TablePrinter traffic_table(
      {"Algo", "GraphSD", "b1", "b2", "b1/GSD", "b2/GSD"});

  double b1_product = 1;
  double b2_product = 1;
  int count = 0;
  // The frontier algorithms, where both mechanisms engage (PR is covered by
  // Figure 12's buffering analysis; the paper's Figure 9 highlights PR-D,
  // CC and SSSP where active sets shrink).
  for (const Algo algo : {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp}) {
    const auto gsd = RunGraphSD(*device, dataset, algo, full);
    const auto r1 = RunGraphSD(*device, dataset, algo, b1);
    const auto r2 = RunGraphSD(*device, dataset, algo, b2);
    const double t = gsd.TotalSeconds();
    time_table.AddRow({AlgoName(algo), Fmt(t), Fmt(r1.TotalSeconds()),
                       Fmt(r2.TotalSeconds()),
                       FmtSpeedup(r1.TotalSeconds() / t),
                       FmtSpeedup(r2.TotalSeconds() / t)});
    traffic_table.AddRow(
        {AlgoName(algo), graphsd::FormatBytes(gsd.io.TotalBytes()),
         graphsd::FormatBytes(r1.io.TotalBytes()),
         graphsd::FormatBytes(r2.io.TotalBytes()),
         FmtSpeedup(static_cast<double>(r1.io.TotalBytes()) /
                    gsd.io.TotalBytes()),
         FmtSpeedup(static_cast<double>(r2.io.TotalBytes()) /
                    gsd.io.TotalBytes())});
    b1_product *= r1.TotalSeconds() / t;
    b2_product *= r2.TotalSeconds() / t;
    ++count;
  }

  std::printf("(a) execution time:\n");
  time_table.Print();
  std::printf("\n(b) I/O traffic:\n");
  traffic_table.Print();
  std::printf("\nGeomean: b1/GraphSD = %.2fx (paper: 1.7x), b2/GraphSD = "
              "%.2fx (paper: 2.8x)\n",
              std::pow(b1_product, 1.0 / count),
              std::pow(b2_product, 1.0 / count));
  return 0;
}
