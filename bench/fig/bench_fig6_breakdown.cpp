// Figure 6: runtime breakdown (disk I/O vs vertex updating vs other) on the
// Twitter2010 proxy, for all three systems and all four algorithms.
//
// Expected shape: I/O dominates everywhere (56–91% in the paper); GraphSD's
// I/O time is well below HUS-Graph's and Lumos's.
#include <cmath>
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Figure 6", "Runtime breakdown on Twitter2010",
      "I/O dominates (56-91%); GraphSD's I/O time is 73% of HUS-Graph's and "
      "49% of Lumos's");

  auto device = MakeBenchDevice();
  const PreparedDataset dataset = Prepare(*device, Specs()[0]);  // twitter_sim

  TablePrinter table({"Algo", "System", "Total(s)", "IO(s)", "Update(s)",
                      "Other(s)", "IO%"});
  const Algo algos[] = {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp};
  const System systems[] = {System::kGraphSD, System::kHusGraph,
                            System::kLumos};

  double gsd_io = 0;
  double hus_io = 0;
  double lumos_io = 0;
  for (const Algo algo : algos) {
    for (const System system : systems) {
      const auto report = RunSystem(*device, dataset, system, algo);
      const double total = report.TotalSeconds();
      table.AddRow({AlgoName(algo), SystemName(system), Fmt(total),
                    Fmt(report.io_seconds), Fmt(report.update_seconds, 3),
                    Fmt(report.OtherSeconds(), 3),
                    Fmt(100.0 * report.io_seconds / total, 1) + "%"});
      if (system == System::kGraphSD) gsd_io += report.io_seconds;
      if (system == System::kHusGraph) hus_io += report.io_seconds;
      if (system == System::kLumos) lumos_io += report.io_seconds;
    }
  }
  table.Print();
  std::printf("\nGraphSD disk-I/O time = %.0f%% of HUS-Graph's (paper: 73%%) "
              "and %.0f%% of Lumos's (paper: 49%%)\n",
              100.0 * gsd_io / hus_io, 100.0 * gsd_io / lumos_io);
  return 0;
}
