// Figure 5 + Table 4: overall execution time of GraphSD vs HUS-Graph vs
// Lumos for PR / PR-D / CC / SSSP on the five (proxy) datasets.
//
// Prints the absolute GraphSD times (Table 4) and the normalized-to-GraphSD
// comparison (Figure 5). Expected shape: GraphSD ≤ both baselines
// everywhere; biggest wins over Lumos on frontier algorithms, biggest wins
// over HUS-Graph on PR.
#include <cmath>
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Figure 5 / Table 4", "Overall execution time comparison",
      "GraphSD outperforms HUS-Graph and Lumos by 1.7x / 2.7x on average "
      "(up to 2.7x / 3.9x)");

  auto device = MakeBenchDevice();
  std::printf("device model: %s\n\n",
              device->options().cost_model.ToString().c_str());

  const Algo algos[] = {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp};

  TablePrinter absolute({"Dataset", "PR(s)", "PR-D(s)", "CC(s)", "SSSP(s)"});
  TablePrinter normalized(
      {"Dataset", "Algo", "GraphSD", "HUS-Graph", "Lumos"});

  double hus_product = 1;
  double lumos_product = 1;
  double hus_max = 0;
  double lumos_max = 0;
  int cells = 0;

  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    std::vector<std::string> abs_row = {spec.paper_name};
    for (const Algo algo : algos) {
      const auto gsd = RunSystem(*device, dataset, System::kGraphSD, algo);
      const auto hus = RunSystem(*device, dataset, System::kHusGraph, algo);
      const auto lumos = RunSystem(*device, dataset, System::kLumos, algo);
      const double t = gsd.TotalSeconds();
      abs_row.push_back(Fmt(t));
      const double hus_x = hus.TotalSeconds() / t;
      const double lumos_x = lumos.TotalSeconds() / t;
      normalized.AddRow({spec.paper_name, AlgoName(algo), "1.00",
                         FmtSpeedup(hus_x), FmtSpeedup(lumos_x)});
      hus_product *= hus_x;
      lumos_product *= lumos_x;
      hus_max = std::max(hus_max, hus_x);
      lumos_max = std::max(lumos_max, lumos_x);
      ++cells;
    }
    absolute.AddRow(abs_row);
  }

  std::printf("Table 4 — absolute GraphSD execution time (modeled I/O + "
              "measured compute):\n");
  absolute.Print();
  std::printf("\nFigure 5 — execution time normalized to GraphSD "
              "(higher = GraphSD faster):\n");
  normalized.Print();
  std::printf(
      "\nGeomean speedup: %.2fx over HUS-Graph (paper: 1.7x), "
      "%.2fx over Lumos (paper: 2.7x)\n",
      std::pow(hus_product, 1.0 / cells), std::pow(lumos_product, 1.0 / cells));
  std::printf("Max speedup:     %.2fx over HUS-Graph (paper: 2.7x), "
              "%.2fx over Lumos (paper: 3.9x)\n",
              hus_max, lumos_max);
  return 0;
}
