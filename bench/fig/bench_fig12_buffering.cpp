// Figure 12: effect of the sub-block buffering scheme — all four
// algorithms on the UKUnion proxy with the priority buffer on vs off.
//
// Expected shape: buffering improves execution time by up to ~21% (it
// removes the second-pass reload of cached secondary sub-blocks in FCIU).
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "util/stats.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Figure 12", "Effect of the buffering scheme (UKUnion)",
      "buffering improves performance by up to 21%");

  auto device = MakeBenchDevice();
  const PreparedDataset dataset = Prepare(*device, Specs()[3]);  // ukunion

  TablePrinter table({"Algo", "WithBuffer(s)", "NoBuffer(s)", "Improvement",
                      "BufferHits", "BytesSaved"});
  graphsd::core::EngineOptions with;
  graphsd::core::EngineOptions without;
  without.enable_buffering = false;

  double best = 0;
  for (const Algo algo : {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp}) {
    const auto r_with = RunGraphSD(*device, dataset, algo, with);
    const auto r_without = RunGraphSD(*device, dataset, algo, without);
    const double improvement =
        100.0 * (r_without.TotalSeconds() - r_with.TotalSeconds()) /
        r_without.TotalSeconds();
    best = std::max(best, improvement);
    table.AddRow({AlgoName(algo), Fmt(r_with.TotalSeconds()),
                  Fmt(r_without.TotalSeconds()), Fmt(improvement, 1) + "%",
                  std::to_string(r_with.buffer_hits),
                  graphsd::FormatBytes(r_with.buffer_bytes_saved)});
  }
  table.Print();
  std::printf("\nBest improvement: %.1f%% (paper: up to 21%%)\n", best);
  return 0;
}
