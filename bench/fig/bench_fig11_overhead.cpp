// Figure 11: overhead of the state-aware I/O scheduling strategy on the
// Twitter2010 proxy — the compute time spent evaluating the benefit model
// versus the I/O time it saves.
//
// Expected shape: evaluation overhead is negligible (paper: 3.4 s of
// evaluation buys 158 s of I/O on PR-D).
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Figure 11", "Overheads of the state-aware I/O scheduling strategy",
      "benefit-evaluation compute is orders of magnitude below the I/O time "
      "it saves");

  auto device = MakeBenchDevice();
  const PreparedDataset dataset = Prepare(*device, Specs()[0]);  // twitter

  TablePrinter table({"Algo", "EvalOverhead(s)", "ReducedIO(s)", "Ratio"});
  // Reduced I/O = what the always-full engine pays minus what the adaptive
  // engine pays (the scheduler's contribution is choosing on-demand when it
  // wins).
  graphsd::core::EngineOptions adaptive;
  graphsd::core::EngineOptions b3;
  b3.enable_selective = false;

  for (const Algo algo : {Algo::kPrDelta, Algo::kCc, Algo::kSssp}) {
    const auto r_adaptive = RunGraphSD(*device, dataset, algo, adaptive);
    const auto r_b3 = RunGraphSD(*device, dataset, algo, b3);
    const double saved = r_b3.io_seconds - r_adaptive.io_seconds;
    const double overhead = r_adaptive.scheduler_seconds;
    table.AddRow({AlgoName(algo), Fmt(overhead, 4), Fmt(saved, 2),
                  overhead > 0 ? FmtSpeedup(saved / overhead) : "inf"});
  }
  table.Print();
  std::printf("\n(paper's example: 3.4s of evaluation vs 158s of reduced "
              "I/O on PR-D)\n");
  return 0;
}
