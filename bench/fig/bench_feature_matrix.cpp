// Table 1: the optimization feature matrix of out-of-core systems.
// A static knowledge table from §2, printed for completeness; the three
// rows this repo implements are marked.
#include <cstdio>

#include "common/table.hpp"

int main() {
  using graphsd::bench::TablePrinter;
  graphsd::bench::PrintFigureHeader(
      "Table 1", "Optimizations of out-of-core graph processing systems",
      "only GraphSD combines all three optimization classes");

  TablePrinter table({"System", "NoRandomAccess", "AvoidInactive",
                      "FutureValue", "InThisRepo"});
  const struct {
    const char* name;
    bool seq, active, future, here;
  } rows[] = {
      {"GraphChi", false, false, false, false},
      {"X-Stream", true, false, false, false},
      {"GridGraph", true, false, false, false},
      {"PathGraph", true, false, false, false},
      {"VENUS", true, false, false, false},
      {"NXgraph", true, false, false, false},
      {"GraphZ", true, false, false, false},
      {"DynamicShards", true, true, false, false},
      {"HUS-Graph", true, true, false, true},
      {"MultiLogVC", true, true, false, false},
      {"CLIP", true, false, true, false},
      {"Wonderland", true, false, true, false},
      {"Lumos", true, false, true, true},
      {"GraphSD", true, true, true, true},
  };
  auto mark = [](bool b) { return std::string(b ? "yes" : "-"); };
  for (const auto& row : rows) {
    table.AddRow({row.name, mark(row.seq), mark(row.active), mark(row.future),
                  mark(row.here)});
  }
  table.Print();
  std::printf("\nGraphSD is the only row with all three optimizations, the\n"
              "claim this repository reproduces end-to-end.\n");
  return 0;
}
