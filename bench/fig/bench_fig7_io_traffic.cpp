// Figure 7: I/O traffic (bytes moved) on the Twitter2010 and UK2007
// proxies for all three systems and all four algorithms.
//
// Expected shape: GraphSD moves the least data; HUS-Graph moves the most
// on PR (no cross-iteration), Lumos the most on the frontier algorithms
// (no active-awareness).
#include <cmath>
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "util/stats.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Figure 7", "I/O traffic comparison (Twitter2010, UK2007)",
      "GraphSD's traffic is 1.6x below HUS-Graph's and 5.5x below Lumos's "
      "on average");

  auto device = MakeBenchDevice();
  const Algo algos[] = {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp};

  TablePrinter table({"Dataset", "Algo", "GraphSD", "HUS-Graph", "Lumos",
                      "HUS/GSD", "Lumos/GSD"});
  double hus_product = 1;
  double lumos_product = 1;
  int cells = 0;

  for (const int spec_index : {0, 2}) {  // twitter_sim, uk_sim
    const DatasetSpec& spec = Specs()[spec_index];
    const PreparedDataset dataset = Prepare(*device, spec);
    for (const Algo algo : algos) {
      const auto gsd = RunSystem(*device, dataset, System::kGraphSD, algo);
      const auto hus = RunSystem(*device, dataset, System::kHusGraph, algo);
      const auto lumos = RunSystem(*device, dataset, System::kLumos, algo);
      const double g = static_cast<double>(gsd.io.TotalBytes());
      const double h = static_cast<double>(hus.io.TotalBytes());
      const double l = static_cast<double>(lumos.io.TotalBytes());
      table.AddRow({spec.paper_name, AlgoName(algo),
                    graphsd::FormatBytes(gsd.io.TotalBytes()),
                    graphsd::FormatBytes(hus.io.TotalBytes()),
                    graphsd::FormatBytes(lumos.io.TotalBytes()),
                    FmtSpeedup(h / g), FmtSpeedup(l / g)});
      hus_product *= h / g;
      lumos_product *= l / g;
      ++cells;
    }
  }
  table.Print();
  std::printf("\nGeomean traffic ratio: HUS-Graph/GraphSD = %.2fx "
              "(paper: 1.6x), Lumos/GraphSD = %.2fx (paper: 5.5x)\n",
              std::pow(hus_product, 1.0 / cells),
              std::pow(lumos_product, 1.0 / cells));
  return 0;
}
