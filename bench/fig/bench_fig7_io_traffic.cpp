// Figure 7: I/O traffic (bytes moved) on the Twitter2010 and UK2007
// proxies for all three systems and all four algorithms.
//
// Expected shape: GraphSD moves the least data; HUS-Graph moves the most
// on PR (no cross-iteration), Lumos the most on the frontier algorithms
// (no active-awareness).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "util/stats.hpp"

using namespace graphsd::bench;

namespace {

std::uint64_t DiskEdgeBytes(graphsd::io::Device& device,
                            const std::string& dir) {
  auto dataset = graphsd::partition::GridDataset::Open(device, dir);
  if (!dataset.ok()) {
    std::fprintf(stderr, "open %s: %s\n", dir.c_str(),
                 dataset.status().message().c_str());
    std::abort();
  }
  return dataset->manifest().TotalEdgeFileBytes();
}

}  // namespace

int main() {
  PrintFigureHeader(
      "Figure 7", "I/O traffic comparison (Twitter2010, UK2007)",
      "GraphSD's traffic is 1.6x below HUS-Graph's and 5.5x below Lumos's "
      "on average");

  auto device = MakeBenchDevice();
  const Algo algos[] = {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp};

  TablePrinter table({"Dataset", "Algo", "GraphSD", "HUS-Graph", "Lumos",
                      "HUS/GSD", "Lumos/GSD"});
  double hus_product = 1;
  double lumos_product = 1;
  int cells = 0;

  for (const int spec_index : {0, 2}) {  // twitter_sim, uk_sim
    const DatasetSpec& spec = Specs()[spec_index];
    const PreparedDataset dataset = Prepare(*device, spec);
    for (const Algo algo : algos) {
      const auto gsd = RunSystem(*device, dataset, System::kGraphSD, algo);
      const auto hus = RunSystem(*device, dataset, System::kHusGraph, algo);
      const auto lumos = RunSystem(*device, dataset, System::kLumos, algo);
      const double g = static_cast<double>(gsd.io.TotalBytes());
      const double h = static_cast<double>(hus.io.TotalBytes());
      const double l = static_cast<double>(lumos.io.TotalBytes());
      table.AddRow({spec.paper_name, AlgoName(algo),
                    graphsd::FormatBytes(gsd.io.TotalBytes()),
                    graphsd::FormatBytes(hus.io.TotalBytes()),
                    graphsd::FormatBytes(lumos.io.TotalBytes()),
                    FmtSpeedup(h / g), FmtSpeedup(l / g)});
      hus_product *= h / g;
      lumos_product *= l / g;
      ++cells;
    }
  }
  table.Print();
  std::printf("\nGeomean traffic ratio: HUS-Graph/GraphSD = %.2fx "
              "(paper: 1.6x), Lumos/GraphSD = %.2fx (paper: 5.5x)\n",
              std::pow(hus_product, 1.0 / cells),
              std::pow(lumos_product, 1.0 / cells));

  // Compressed sub-block layout: the same GraphSD runs against a
  // varint-delta grid, reporting (not asserting) the on-disk footprint and
  // bytes-moved reduction the codec buys on top of state-aware scheduling.
  std::printf("\nCompressed layout (varint-delta) vs raw GraphSD:\n");
  TablePrinter ctable({"Dataset", "Algo", "Raw I/O", "Comp I/O", "Raw/Comp",
                       "Frames", "Edge files raw", "Edge files comp"});
  double comp_product = 1;
  int comp_cells = 0;
  for (const int spec_index : {0, 2}) {
    const DatasetSpec& spec = Specs()[spec_index];
    const PreparedDataset raw = Prepare(*device, spec);
    const PreparedDataset comp = Prepare(*device, spec, 8, "varint-delta");
    const std::uint64_t raw_disk = DiskEdgeBytes(*device, raw.dir);
    const std::uint64_t comp_disk = DiskEdgeBytes(*device, comp.dir);
    for (const Algo algo : algos) {
      const auto r = RunSystem(*device, raw, System::kGraphSD, algo);
      const auto c = RunSystem(*device, comp, System::kGraphSD, algo);
      const double ratio = static_cast<double>(r.io.TotalBytes()) /
                           static_cast<double>(c.io.TotalBytes());
      ctable.AddRow({spec.paper_name, AlgoName(algo),
                     graphsd::FormatBytes(r.io.TotalBytes()),
                     graphsd::FormatBytes(c.io.TotalBytes()),
                     FmtSpeedup(ratio),
                     std::to_string(c.frames_decoded),
                     graphsd::FormatBytes(raw_disk),
                     graphsd::FormatBytes(comp_disk)});
      comp_product *= ratio;
      ++comp_cells;
    }
  }
  ctable.Print();
  std::printf("\nGeomean bytes-moved ratio raw/varint-delta = %.2fx\n",
              std::pow(comp_product, 1.0 / comp_cells));
  return 0;
}
