// Figure 8: preprocessing time of the three systems' pipelines on every
// dataset.
//
// Expected shape: HUS-Graph longest (two sorted copies; paper: 1.8x Lumos,
// 1.4x GraphSD), Lumos shortest (bucket only), GraphSD in between.
#include <cmath>
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "partition/baseline_preprocessors.hpp"
#include "util/stats.hpp"

using namespace graphsd::bench;
using graphsd::partition::PreprocessGraphSD;
using graphsd::partition::PreprocessHusGraph;
using graphsd::partition::PreprocessLumos;
using graphsd::partition::PreprocessOptions;
using graphsd::partition::PreprocessReport;

namespace {

PreprocessReport MustRun(
    graphsd::Result<PreprocessReport> result) {
  if (!result.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  PrintFigureHeader(
      "Figure 8", "Preprocessing time comparison",
      "HUS-Graph longest (1.8x Lumos, 1.4x GraphSD); Lumos shortest; "
      "GraphSD pays a sort for its selective loading");

  auto device = MakeBenchDevice();
  TablePrinter table({"Dataset", "GraphSD(s)", "HUS-Graph(s)", "Lumos(s)",
                      "HUS/GSD", "HUS/Lumos"});
  const std::string root = BenchDataRoot() + "/preproc";

  double hus_over_gsd = 1;
  double hus_over_lumos = 1;
  int count = 0;
  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    PreprocessOptions options;
    options.num_intervals = 8;
    options.name = spec.name;

    device->ResetAccounting();
    const auto gsd = MustRun(PreprocessGraphSD(
        dataset.raw_path, *device, root + "/" + spec.name + "_gsd", options));
    device->ResetAccounting();
    const auto hus = MustRun(PreprocessHusGraph(
        dataset.raw_path, *device, root + "/" + spec.name + "_hus", options));
    device->ResetAccounting();
    const auto lumos = MustRun(PreprocessLumos(
        dataset.raw_path, *device, root + "/" + spec.name + "_lumos",
        options));

    // Modeled I/O plus measured pipeline compute (sorting dominates the
    // compute side, which is the paper's point about HUS-Graph).
    const double g = gsd.io_seconds + gsd.wall_seconds;
    const double h = hus.io_seconds + hus.wall_seconds;
    const double l = lumos.io_seconds + lumos.wall_seconds;
    table.AddRow({spec.paper_name, Fmt(g), Fmt(h), Fmt(l), FmtSpeedup(h / g),
                  FmtSpeedup(h / l)});
    hus_over_gsd *= h / g;
    hus_over_lumos *= h / l;
    ++count;
  }
  table.Print();
  std::printf("\nGeomean: HUS-Graph/GraphSD = %.2fx (paper: 1.4x), "
              "HUS-Graph/Lumos = %.2fx (paper: 1.8x)\n",
              std::pow(hus_over_gsd, 1.0 / count),
              std::pow(hus_over_lumos, 1.0 / count));
  return 0;
}
