// Figure 10: the state-aware I/O scheduling strategy — per-iteration
// execution time of adaptive GraphSD vs GraphSD-b3 (always full I/O) vs
// GraphSD-b4 (always on-demand), running CC on the UKUnion proxy.
//
// Expected shape: early iterations (dense frontier) favour full I/O, late
// iterations (sparse frontier) favour on-demand; the adaptive scheduler
// tracks the minimum of the two at every iteration.
#include <cstdio>
#include <map>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"

using namespace graphsd::bench;
using graphsd::core::ExecutionReport;
using graphsd::core::RoundModel;

namespace {

// Spreads each round's time across the iterations it covers so the three
// engines (whose rounds cover different iteration spans) align per
// iteration.
std::map<std::uint32_t, double> PerIteration(const ExecutionReport& report) {
  std::map<std::uint32_t, double> out;
  for (const auto& round : report.per_round) {
    // Modeled I/O time only: at proxy scale the measured compute wall is
    // warm-up-dependent noise, while the paper's execution time is I/O
    // dominated (56-91%).
    const double per = round.io_seconds / round.iterations_covered;
    for (std::uint32_t k = 0; k < round.iterations_covered; ++k) {
      out[round.first_iteration + k] += per;
    }
  }
  return out;
}

std::map<std::uint32_t, char> PerIterationModel(const ExecutionReport& report) {
  std::map<std::uint32_t, char> out;
  for (const auto& round : report.per_round) {
    for (std::uint32_t k = 0; k < round.iterations_covered; ++k) {
      out[round.first_iteration + k] = static_cast<char>(round.model);
    }
  }
  return out;
}

}  // namespace

int main() {
  PrintFigureHeader(
      "Figure 10", "State-aware I/O scheduling — per-iteration time, CC on "
      "UKUnion",
      "adaptive GraphSD selects the better model in every iteration; full "
      "wins early (dense), on-demand wins late (sparse)");

  auto device = MakeBenchDevice();
  const PreparedDataset dataset = Prepare(*device, Specs()[3]);  // ukunion

  graphsd::core::EngineOptions adaptive;
  graphsd::core::EngineOptions b3;
  b3.enable_selective = false;  // always the full I/O model
  graphsd::core::EngineOptions b4;
  b4.force_on_demand = true;  // always the on-demand model

  const auto r_adaptive = RunGraphSD(*device, dataset, Algo::kCc, adaptive);
  const auto r_b3 = RunGraphSD(*device, dataset, Algo::kCc, b3);
  const auto r_b4 = RunGraphSD(*device, dataset, Algo::kCc, b4);

  const auto t_adaptive = PerIteration(r_adaptive);
  const auto t_b3 = PerIteration(r_b3);
  const auto t_b4 = PerIteration(r_b4);
  const auto models = PerIterationModel(r_adaptive);

  TablePrinter table({"Iter", "AdaptiveIO(s)", "Full b3 IO(s)", "OnDemand b4 IO(s)",
                      "AdaptiveModel", "PickedBetter"});
  std::uint32_t max_iter = 0;
  for (const auto& [iter, _] : t_b3) max_iter = std::max(max_iter, iter);
  for (const auto& [iter, _] : t_b4) max_iter = std::max(max_iter, iter);

  int correct = 0;
  int scored = 0;
  for (std::uint32_t iter = 0; iter <= max_iter; ++iter) {
    const auto a = t_adaptive.count(iter) ? t_adaptive.at(iter) : 0.0;
    const auto f = t_b3.count(iter) ? t_b3.at(iter) : 0.0;
    const auto d = t_b4.count(iter) ? t_b4.at(iter) : 0.0;
    const char model = models.count(iter) ? models.at(iter) : '-';
    // Did the adaptive engine pick the model the forced engines prove
    // cheaper at this iteration? (Cost comparison is secondary: the forced
    // engines' frontier trajectories diverge from the adaptive one's once
    // cross-iteration removals kick in.)
    const double best = (f > 0 && d > 0) ? std::min(f, d) : std::max(f, d);
    bool better = a <= best * 1.15 || a == 0.0;
    if (f > 0 && d > 0) {
      const char cheaper = d <= f ? 'S' : 'F';
      better = better || model == cheaper || model == '-';
    }
    if (f > 0 || d > 0) {
      ++scored;
      if (better) ++correct;
    }
    table.AddRow({std::to_string(iter), Fmt(a, 3), Fmt(f, 3), Fmt(d, 3),
                  std::string(1, model), better ? "yes" : "NO"});
  }
  table.Print();
  std::printf("\nadaptive matched the better model in %d/%d iterations; "
              "totals: adaptive %.2fs, always-full %.2fs, always-on-demand "
              "%.2fs\n",
              correct, scored, r_adaptive.TotalSeconds(), r_b3.TotalSeconds(),
              r_b4.TotalSeconds());

  // Overlap series: the same three engines with the prefetch pipeline's
  // overlap-aware charging on (default) vs off. I/O bytes must be identical
  // — overlap is an accounting view, never an I/O change — so the delta
  // between Serial(s) and Charged(s) is pure pipelining gain.
  std::printf("\noverlap_io series (same runs, CC on UKUnion):\n");
  TablePrinter overlap_table(
      {"Engine", "overlap_io", "IO(MB)", "Serial(s)", "Charged(s)", "Saved"});
  struct Series {
    const char* name;
    graphsd::core::EngineOptions options;
  };
  const Series series[] = {{"adaptive", adaptive}, {"full b3", b3},
                           {"on-demand b4", b4}};
  for (const Series& s : series) {
    for (const bool overlap : {false, true}) {
      graphsd::core::EngineOptions options = s.options;
      options.overlap_io = overlap;
      const auto report = RunGraphSD(*device, dataset, Algo::kCc, options);
      const double serial = report.SerialSeconds();
      const double charged = report.TotalSeconds();
      overlap_table.AddRow(
          {s.name, overlap ? "on" : "off",
           Fmt(static_cast<double>(report.io.TotalBytes()) / (1 << 20), 1),
           Fmt(serial, 3), Fmt(charged, 3),
           overlap ? Fmt(100.0 * (serial - charged) / serial, 1) + "%" : "-"});
    }
  }
  overlap_table.Print();
  return 0;
}
