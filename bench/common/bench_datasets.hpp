// Proxy dataset registry for the paper-reproduction benchmarks.
//
// Each entry stands in for one dataset of the paper's Table 3, scaled so
// every bench finishes in seconds on a small machine while preserving the
// structural property that matters (power-law skew for the social/synthetic
// graphs, ID locality for the web crawls). Datasets are generated
// deterministically, preprocessed once, and cached under a shared directory
// so the nine figure benches do not redo the work.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/report.hpp"
#include "graph/edge_list.hpp"
#include "io/device.hpp"
#include "partition/grid_dataset.hpp"

namespace graphsd::bench {

struct DatasetSpec {
  std::string name;        // short id ("twitter_sim")
  std::string paper_name;  // what it stands in for ("Twitter2010")
  EdgeList (*make)();      // deterministic generator
};

/// The five Table-3 proxies, in the paper's order.
const std::vector<DatasetSpec>& Specs();

/// Root directory for cached bench datasets (override with
/// GRAPHSD_BENCH_DIR; default /tmp/graphsd_bench_data).
std::string BenchDataRoot();

/// A prepared dataset: the directed grid, its symmetrized sibling (for CC),
/// and the raw binary edge file (for preprocessing benches).
struct PreparedDataset {
  std::string dir;
  std::string sym_dir;
  std::string raw_path;
  VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
};

/// Generates + preprocesses (or reuses a cached copy of) `spec`. A
/// non-"none" `codec` lays the edge payloads out compressed and caches the
/// grids under "<name>_<codec>" (the raw binary edge file is shared).
PreparedDataset Prepare(io::Device& device, const DatasetSpec& spec,
                        std::uint32_t p = 8,
                        const std::string& codec = "none");

/// The systems compared in §5.
enum class System { kGraphSD, kHusGraph, kLumos };
const char* SystemName(System system);

/// The paper's four algorithms.
enum class Algo { kPr, kPrDelta, kCc, kSssp };
const char* AlgoName(Algo algo);

/// Runs `algo` under `system` on the prepared dataset (CC automatically
/// uses the symmetrized grid). PR runs 5 iterations and PR-D at most 20,
/// matching §5.1. Device accounting is reset before the run so the report
/// reflects this execution only.
core::ExecutionReport RunSystem(io::Device& device,
                                const PreparedDataset& dataset, System system,
                                Algo algo);

/// Same but with explicit GraphSD engine options (for the ablation benches;
/// `system` must be kGraphSD-compatible since options apply to its driver).
core::ExecutionReport RunGraphSD(io::Device& device,
                                 const PreparedDataset& dataset, Algo algo,
                                 const core::EngineOptions& options);

/// Standard bench device: simulated HDD profile (the paper's testbed).
std::unique_ptr<io::Device> MakeBenchDevice();

}  // namespace graphsd::bench
