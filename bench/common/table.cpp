#include "common/table.hpp"

#include <algorithm>
#include <cstdio>

#include "util/status.hpp"

namespace graphsd::bench {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  GRAPHSD_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out;
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(widths[c] - row[c].size() + 2, ' ');
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
    return out;
  };
  std::string out = render_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out.append(total - 2, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::Print() const { std::fputs(Render().c_str(), stdout); }

std::string Fmt(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FmtSpeedup(double factor) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2fx", factor);
  return buf;
}

void PrintFigureHeader(const std::string& id, const std::string& caption,
                       const std::string& paper_expectation) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), caption.c_str());
  std::printf("Paper result: %s\n", paper_expectation.c_str());
  std::printf("==============================================================\n");
}

}  // namespace graphsd::bench
