// Fixed-width table rendering for the figure benches.
#pragma once

#include <string>
#include <vector>

namespace graphsd::bench {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Renders with aligned columns and a separator under the header.
  std::string Render() const;

  /// Renders to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimals.
std::string Fmt(double value, int digits = 2);

/// Formats "1.93x" speedup strings.
std::string FmtSpeedup(double factor);

/// Prints a figure banner: id, caption, and what the paper showed.
void PrintFigureHeader(const std::string& id, const std::string& caption,
                       const std::string& paper_expectation);

}  // namespace graphsd::bench
