#include "common/bench_datasets.hpp"

#include <cstdio>
#include <cstdlib>

#include "algos/connected_components.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/sssp.hpp"
#include "baselines/hus_graph_engine.hpp"
#include "baselines/lumos_engine.hpp"
#include "graph/edge_io.hpp"
#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"
#include "obs/run_report.hpp"
#include "partition/grid_builder.hpp"
#include "util/logging.hpp"

namespace graphsd::bench {
namespace {

EdgeList MakeTwitterSim() {
  // Social network: strong power-law skew plus a sparse chain periphery
  // (real social graphs converge over many low-activity iterations).
  RmatOptions o;
  o.scale = 13;
  o.edge_factor = 28;
  o.max_weight = 10.0;
  o.seed = 2010;
  EdgeList g = GenerateRmat(o);
  AppendWhiskers(g, g.num_vertices() / 8, 24, o.seed, o.max_weight,
                 /*head_range_fraction=*/0.0625);
  return g;
}

EdgeList MakeSkSim() {
  // Host-crawled social/web hybrid: even heavier skew.
  RmatOptions o;
  o.scale = 13;
  o.edge_factor = 32;
  o.a = 0.62;
  o.b = 0.17;
  o.c = 0.17;
  o.max_weight = 10.0;
  o.seed = 2005;
  EdgeList g = GenerateRmat(o);
  AppendWhiskers(g, g.num_vertices() / 8, 32, o.seed, o.max_weight,
                 /*head_range_fraction=*/0.0625);
  return g;
}

EdgeList MakeUkSim() {
  // Web graph: crawl-order ID locality (large S_seq for the scheduler) and
  // the high diameter of real crawls — the long sparse-frontier tail is
  // where state-awareness pays (Figures 5, 7, 10).
  WebGraphOptions o;
  o.num_vertices = 1 << 15;
  o.avg_degree = 28;
  o.locality = 0.9;
  o.locality_window = 48;
  o.whisker_fraction = 0.12;  // crawl whiskers: long sparse-frontier tail
  o.whisker_length = 32;
  o.max_weight = 100.0;
  o.seed = 2007;
  return GenerateWebGraph(o);
}

EdgeList MakeUkUnionSim() {
  WebGraphOptions o;
  o.num_vertices = 3 << 14;  // 49152
  o.avg_degree = 28;
  o.locality = 0.9;
  o.locality_window = 48;
  o.whisker_fraction = 0.12;
  o.whisker_length = 40;  // longer whiskers: an even longer sparse tail
  o.max_weight = 100.0;
  o.seed = 2011;
  return GenerateWebGraph(o);
}

EdgeList MakeKronSim() {
  // Graph500 Kronecker parameters.
  RmatOptions o;
  o.scale = 14;
  o.edge_factor = 24;
  o.a = 0.57;
  o.b = 0.19;
  o.c = 0.19;
  o.max_weight = 10.0;
  o.seed = 500;
  EdgeList g = GenerateRmat(o);
  AppendWhiskers(g, g.num_vertices() / 8, 24, o.seed, o.max_weight,
                 /*head_range_fraction=*/0.0625);
  return g;
}

core::ExecutionReport Fail(const Status& status) {
  GRAPHSD_LOG_ERROR("bench run failed: %s", status.ToString().c_str());
  std::exit(1);
}

}  // namespace

const std::vector<DatasetSpec>& Specs() {
  static const std::vector<DatasetSpec> kSpecs = {
      {"twitter_sim", "Twitter2010", MakeTwitterSim},
      {"sk_sim", "SK2005", MakeSkSim},
      {"uk_sim", "UK2007", MakeUkSim},
      {"ukunion_sim", "UKUnion", MakeUkUnionSim},
      {"kron_sim", "Kron30", MakeKronSim},
  };
  return kSpecs;
}

std::string BenchDataRoot() {
  if (const char* env = std::getenv("GRAPHSD_BENCH_DIR"); env != nullptr) {
    return env;
  }
  return "/tmp/graphsd_bench_data";
}

PreparedDataset Prepare(io::Device& device, const DatasetSpec& spec,
                        std::uint32_t p, const std::string& codec) {
  PreparedDataset out;
  const std::string root = BenchDataRoot();
  const std::string stem =
      codec == "none" ? spec.name : spec.name + "_" + codec;
  out.dir = root + "/" + stem;
  out.sym_dir = root + "/" + stem + "_sym";
  out.raw_path = root + "/" + spec.name + ".bin";

  if (io::PathExists(partition::ManifestPath(out.dir)) &&
      io::PathExists(partition::ManifestPath(out.sym_dir)) &&
      io::PathExists(out.raw_path)) {
    // Cached: read counts from the manifest.
    auto dataset = partition::GridDataset::Open(device, out.dir);
    if (dataset.ok()) {
      out.num_vertices = dataset->num_vertices();
      out.num_edges = dataset->num_edges();
      return out;
    }
  }

  if (auto status = io::MakeDirectories(root); !status.ok()) Fail(status);
  const EdgeList graph = spec.make();
  out.num_vertices = graph.num_vertices();
  out.num_edges = graph.num_edges();

  if (auto status = WriteBinaryEdgeList(graph, device, out.raw_path);
      !status.ok()) {
    Fail(status);
  }
  partition::GridBuildOptions build;
  build.num_intervals = p;
  build.codec = codec;
  build.name = stem;
  if (auto result = partition::BuildGrid(graph, device, out.dir, build);
      !result.ok()) {
    Fail(result.status());
  }
  build.name = stem + "_sym";
  const EdgeList sym = Symmetrize(graph);
  if (auto result = partition::BuildGrid(sym, device, out.sym_dir, build);
      !result.ok()) {
    Fail(result.status());
  }
  return out;
}

const char* SystemName(System system) {
  switch (system) {
    case System::kGraphSD: return "GraphSD";
    case System::kHusGraph: return "HUS-Graph";
    case System::kLumos: return "Lumos";
  }
  return "?";
}

const char* AlgoName(Algo algo) {
  switch (algo) {
    case Algo::kPr: return "PR";
    case Algo::kPrDelta: return "PR-D";
    case Algo::kCc: return "CC";
    case Algo::kSssp: return "SSSP";
  }
  return "?";
}

namespace {

std::unique_ptr<core::Program> MakeProgram(Algo algo) {
  switch (algo) {
    case Algo::kPr:
      return std::make_unique<algos::PageRank>(5);  // §5.1: five iterations
    case Algo::kPrDelta:
      return std::make_unique<algos::PageRankDelta>(1.0, 0.85, 20,
                                                   /*relative_epsilon=*/true);
    case Algo::kCc:
      return std::make_unique<algos::ConnectedComponents>();
    case Algo::kSssp:
      return std::make_unique<algos::Sssp>(0);
  }
  return nullptr;
}

core::ExecutionReport RunOn(io::Device& device, const std::string& dir,
                            System system, Algo algo) {
  auto dataset = partition::GridDataset::Open(device, dir);
  if (!dataset.ok()) return Fail(dataset.status());
  device.ResetAccounting();
  auto program = MakeProgram(algo);

  Result<core::ExecutionReport> report = InternalError("unreachable");
  switch (system) {
    case System::kGraphSD: {
      core::GraphSDEngine engine(*dataset, {});
      report = engine.Run(*program);
      break;
    }
    case System::kHusGraph: {
      baselines::HusGraphEngine engine(*dataset);
      report = engine.Run(*program);
      break;
    }
    case System::kLumos: {
      baselines::LumosEngine engine(*dataset);
      report = engine.Run(*program);
      break;
    }
  }
  if (!report.ok()) return Fail(report.status());
  return std::move(report).value();
}

/// When GRAPHSD_BENCH_REPORT_DIR is set, every bench run also drops its
/// machine-readable run report there (one JSON per engine/algo/dataset), so
/// figure trajectories can be diffed across commits without re-parsing the
/// printed tables.
void MaybeDumpRunReport(const core::ExecutionReport& report,
                        const io::Device& device) {
  const char* dir = std::getenv("GRAPHSD_BENCH_REPORT_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  const std::string path = std::string(dir) + "/" + report.engine + "_" +
                           report.algorithm + "_" + report.dataset + ".json";
  if (Status s = obs::WriteRunReport(report, device.options().cost_model, path);
      !s.ok()) {
    GRAPHSD_LOG_WARN("run-report dump failed: %s", s.ToString().c_str());
  }
}

}  // namespace

core::ExecutionReport RunSystem(io::Device& device,
                                const PreparedDataset& dataset, System system,
                                Algo algo) {
  const std::string& dir = (algo == Algo::kCc) ? dataset.sym_dir : dataset.dir;
  core::ExecutionReport report = RunOn(device, dir, system, algo);
  MaybeDumpRunReport(report, device);
  return report;
}

core::ExecutionReport RunGraphSD(io::Device& device,
                                 const PreparedDataset& dataset, Algo algo,
                                 const core::EngineOptions& options) {
  const std::string& dir = (algo == Algo::kCc) ? dataset.sym_dir : dataset.dir;
  auto ds = partition::GridDataset::Open(device, dir);
  if (!ds.ok()) return Fail(ds.status());
  device.ResetAccounting();
  auto program = MakeProgram(algo);
  core::GraphSDEngine engine(*ds, options);
  auto report = engine.Run(*program);
  if (!report.ok()) return Fail(report.status());
  core::ExecutionReport out = std::move(report).value();
  MaybeDumpRunReport(out, device);
  return out;
}

std::unique_ptr<io::Device> MakeBenchDevice() {
  // Positioning costs scaled to the proxy-dataset size (see
  // IoCostModel::ScaledHdd) so the scheduler crossover matches the paper's
  // testbed economics. GRAPHSD_BENCH_DEVICE overrides the kind (same
  // spellings as the CLI --device flag); an unknown kind is a hard error so
  // a typo cannot silently bench the wrong profile.
  const char* kind = std::getenv("GRAPHSD_BENCH_DEVICE");
  auto device = io::MakeDeviceForKind(kind != nullptr ? kind : "scaled-hdd");
  if (!device.ok()) {
    std::fprintf(stderr, "bench: %s\n", device.status().ToString().c_str());
    std::abort();
  }
  return std::move(device).value();
}

}  // namespace graphsd::bench
