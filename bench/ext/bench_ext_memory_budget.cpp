// Extension of Figure 12: buffer-capacity sweep.
//
// The paper fixes the memory budget at 5% of the graph; this sweep varies
// the §4.3 buffer capacity from 0 to 40% of the edge payload and reports
// execution time, hit counts and bytes served from memory for PR (dense,
// every secondary sub-block is reloaded each round) and CC (sparse tail).
// Expected: monotone improvement with diminishing returns once every
// secondary sub-block fits.
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "util/stats.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Extension: buffer-capacity sweep",
      "Figure 12 generalized: priority-buffer capacity 0-40% of edges",
      "monotone improvement, saturating once all secondary sub-blocks fit");

  auto device = MakeBenchDevice();
  const PreparedDataset dataset = Prepare(*device, Specs()[3]);  // ukunion
  const std::uint64_t edge_bytes = dataset.num_edges * (graphsd::kEdgeBytes +
                                                        graphsd::kWeightBytes);

  TablePrinter table({"Capacity", "PR(s)", "PR hits", "CC(s)", "CC hits",
                      "CC saved"});
  double previous_pr = 0;
  for (const double percent : {0.0, 1.0, 2.5, 5.0, 10.0, 20.0, 40.0}) {
    graphsd::core::EngineOptions options;
    options.enable_buffering = percent > 0;
    options.buffer_capacity_bytes =
        static_cast<std::uint64_t>(edge_bytes * percent / 100.0);
    const auto pr = RunGraphSD(*device, dataset, Algo::kPr, options);
    const auto cc = RunGraphSD(*device, dataset, Algo::kCc, options);
    table.AddRow({Fmt(percent, 1) + "%", Fmt(pr.TotalSeconds()),
                  std::to_string(pr.buffer_hits), Fmt(cc.TotalSeconds()),
                  std::to_string(cc.buffer_hits),
                  graphsd::FormatBytes(cc.buffer_bytes_saved)});
    if (previous_pr > 0) {
      // Sanity: more cache never makes the modeled time meaningfully worse.
      if (pr.TotalSeconds() > previous_pr * 1.02) {
        std::printf("WARNING: non-monotone at %.1f%%\n", percent);
      }
    }
    previous_pr = pr.TotalSeconds();
  }
  table.Print();
  return 0;
}
