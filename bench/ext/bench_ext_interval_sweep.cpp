// Extension (design-choice ablation from DESIGN.md): sensitivity to the
// interval count P.
//
// Larger P shrinks the memory footprint per processing step and raises the
// fraction of sub-blocks FCIU can cross-iterate immediately (i < j covers
// (P-1)/2P of the grid... the secondary fraction approaches 1/2 from
// below), but multiplies index/file overheads and fragments selective
// reads. The sweep shows a shallow optimum rather than monotone behavior.
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "graph/edge_io.hpp"
#include "graph/reference_algorithms.hpp"
#include "util/stats.hpp"
#include "partition/baseline_preprocessors.hpp"

using namespace graphsd::bench;

int main() {
  PrintFigureHeader(
      "Extension: interval-count sweep",
      "GraphSD execution and preprocessing vs P",
      "shallow optimum: tiny P starves cross-iteration, huge P fragments "
      "selective reads and index I/O");

  auto device = MakeBenchDevice();
  const DatasetSpec& spec = Specs()[2];  // uk_sim

  TablePrinter table({"P", "Preprocess(s)", "PR(s)", "CC(s)", "SSSP(s)",
                      "CC read"});
  for (const std::uint32_t p : {2u, 4u, 8u, 16u}) {
    // Build a dedicated copy at this P (bypasses the shared cache).
    const std::string root = BenchDataRoot() + "/psweep_p" + std::to_string(p);
    const PreparedDataset base = Prepare(*device, spec);  // for the raw file
    graphsd::partition::PreprocessOptions options;
    options.num_intervals = p;
    options.name = spec.name;
    device->ResetAccounting();
    auto preprocess = graphsd::partition::PreprocessGraphSD(
        base.raw_path, *device, root + "/d", options);
    if (!preprocess.ok()) {
      std::fprintf(stderr, "preprocess failed: %s\n",
                   preprocess.status().ToString().c_str());
      return 1;
    }
    // CC needs the symmetrized variant at the same P.
    auto raw = graphsd::ReadBinaryEdgeList(*device, base.raw_path);
    if (!raw.ok()) return 1;
    graphsd::partition::GridBuildOptions build;
    build.num_intervals = p;
    build.name = spec.name + "_sym";
    if (!graphsd::partition::BuildGrid(graphsd::Symmetrize(*raw), *device,
                                       root + "/sym", build)
             .ok()) {
      return 1;
    }

    PreparedDataset sized;
    sized.dir = root + "/d";
    sized.sym_dir = root + "/sym";
    sized.raw_path = base.raw_path;

    const auto pr = RunGraphSD(*device, sized, Algo::kPr, {});
    const auto cc = RunGraphSD(*device, sized, Algo::kCc, {});
    const auto sssp = RunGraphSD(*device, sized, Algo::kSssp, {});
    table.AddRow({std::to_string(p),
                  Fmt(preprocess->io_seconds + preprocess->wall_seconds),
                  Fmt(pr.TotalSeconds()), Fmt(cc.TotalSeconds()),
                  Fmt(sssp.TotalSeconds()),
                  graphsd::FormatBytes(cc.io.TotalReadBytes())});
  }
  table.Print();
  return 0;
}
