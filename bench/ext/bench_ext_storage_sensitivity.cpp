// Extension (paper §6 future work): "exploit emerging storage devices ...
// to further improve the I/O performance of GraphSD".
//
// Re-runs the comparison under an SSD-like cost profile (tiny positioning
// cost) next to the default HDD profile. Expected: absolute times collapse;
// the on-demand model becomes viable at much larger frontiers (the
// crossover shifts), so the adaptive scheduler uses SCIU for more
// iterations; GraphSD's lead over Lumos persists (byte savings survive the
// device change) while its lead from seek-avoidance shrinks.
#include <cstdio>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"

using namespace graphsd::bench;

namespace {

graphsd::io::IoCostModel ScaledSsd() {
  // Same two-invariant scaling as ScaledHdd (see DESIGN.md §5.1), applied
  // to the SSD profile.
  graphsd::io::IoCostModel m = graphsd::io::IoCostModel::Ssd();
  const double io_weight = 8.0;
  const double size_factor = 1000.0;
  m.seq_read_bw /= io_weight;
  m.seq_write_bw /= io_weight;
  m.seek_seconds = m.seek_seconds * io_weight / size_factor;
  m.random_request_bytes = 4 * 1024;
  return m;
}

std::uint32_t SciuRounds(const graphsd::core::ExecutionReport& report) {
  std::uint32_t count = 0;
  for (const auto& round : report.per_round) {
    if (round.model == graphsd::core::RoundModel::kSciu) ++count;
  }
  return count;
}

}  // namespace

int main() {
  PrintFigureHeader(
      "Extension: storage sensitivity",
      "HDD vs SSD cost profiles (paper future work: emerging storage)",
      "on faster storage the crossover shifts toward on-demand and "
      "absolute times collapse; GraphSD still leads");

  TablePrinter table({"Device", "Algo", "GraphSD(s)", "Lumos(s)", "Lumos/GSD",
                      "SciuRounds"});
  for (const bool ssd : {false, true}) {
    auto device = ssd ? graphsd::io::MakeSimulatedDevice(ScaledSsd())
                      : MakeBenchDevice();
    const PreparedDataset dataset = Prepare(*device, Specs()[3]);  // ukunion
    for (const Algo algo : {Algo::kCc, Algo::kSssp}) {
      const auto gsd = RunSystem(*device, dataset, System::kGraphSD, algo);
      const auto lumos = RunSystem(*device, dataset, System::kLumos, algo);
      table.AddRow({ssd ? "SSD" : "HDD", AlgoName(algo),
                    Fmt(gsd.TotalSeconds()), Fmt(lumos.TotalSeconds()),
                    FmtSpeedup(lumos.TotalSeconds() / gsd.TotalSeconds()),
                    std::to_string(SciuRounds(gsd))});
    }
  }
  table.Print();
  std::printf("\n(SSD rows should show smaller absolute times, an equal or\n"
              "larger count of on-demand rounds, and a persisting GraphSD "
              "lead.)\n");
  return 0;
}
