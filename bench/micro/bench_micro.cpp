// Micro-benchmarks (google-benchmark) for the engineering substrate:
// bitset frontiers, atomic combines, grid partitioning, sub-block loading,
// and the scheduler's evaluation pass. Not paper figures — these quantify
// the building blocks the figures are made of.
#include <benchmark/benchmark.h>

#include "core/scheduler.hpp"
#include "core/slot.hpp"
#include "graph/generators.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/bitset.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace graphsd;

void BM_BitsetTestAndSet(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  ConcurrentBitset bits(n);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bits.TestAndSet(rng.NextBounded(n)));
  }
}
BENCHMARK(BM_BitsetTestAndSet);

void BM_BitsetIterate(benchmark::State& state) {
  const std::size_t n = 1 << 20;
  ConcurrentBitset bits(n);
  Xoshiro256 rng(1);
  for (int i = 0; i < 10000; ++i) bits.Set(rng.NextBounded(n));
  for (auto _ : state) {
    std::size_t sum = 0;
    bits.ForEachSet([&](std::size_t i) { sum += i; });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_BitsetIterate);

void BM_AtomicMinDouble(benchmark::State& state) {
  core::Slot slot = core::SlotFromDouble(1e18);
  Xoshiro256 rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::AtomicMinDouble(&slot, rng.NextDouble() * 1e18));
  }
}
BENCHMARK(BM_AtomicMinDouble);

void BM_AtomicAddDouble(benchmark::State& state) {
  core::Slot slot = core::SlotFromDouble(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::AtomicAddDouble(&slot, 1.0));
  }
}
BENCHMARK(BM_AtomicAddDouble);

void BM_RmatGeneration(benchmark::State& state) {
  for (auto _ : state) {
    RmatOptions o;
    o.scale = static_cast<std::uint32_t>(state.range(0));
    o.edge_factor = 8;
    benchmark::DoNotOptimize(GenerateRmat(o).num_edges());
  }
}
BENCHMARK(BM_RmatGeneration)->Arg(10)->Arg(12);

void BM_GridBuild(benchmark::State& state) {
  RmatOptions o;
  o.scale = 12;
  o.edge_factor = 8;
  const EdgeList g = GenerateRmat(o);
  auto device = io::MakePosixDevice();
  for (auto _ : state) {
    partition::GridBuildOptions build;
    build.num_intervals = static_cast<std::uint32_t>(state.range(0));
    auto result =
        partition::BuildGrid(g, *device, "/tmp/graphsd_micro_grid", build);
    benchmark::DoNotOptimize(result.ok());
  }
  (void)io::RemoveTree("/tmp/graphsd_micro_grid");
}
BENCHMARK(BM_GridBuild)->Arg(4)->Arg(16);

void BM_SubBlockLoad(benchmark::State& state) {
  RmatOptions o;
  o.scale = 12;
  o.edge_factor = 8;
  const EdgeList g = GenerateRmat(o);
  auto device = io::MakePosixDevice();
  partition::GridBuildOptions build;
  build.num_intervals = 4;
  (void)partition::BuildGrid(g, *device, "/tmp/graphsd_micro_load", build);
  auto dataset = partition::GridDataset::Open(*device, "/tmp/graphsd_micro_load");
  for (auto _ : state) {
    auto block = dataset->LoadSubBlock(0, 0, false);
    benchmark::DoNotOptimize(block->edges.size());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(dataset->SubBlockBytes(0, 0, false)));
  (void)io::RemoveTree("/tmp/graphsd_micro_load");
}
BENCHMARK(BM_SubBlockLoad);

void BM_SchedulerEvaluate(benchmark::State& state) {
  RmatOptions o;
  o.scale = 14;
  o.edge_factor = 8;
  const EdgeList g = GenerateRmat(o);
  auto device = io::MakePosixDevice();
  partition::GridBuildOptions build;
  build.num_intervals = 8;
  (void)partition::BuildGrid(g, *device, "/tmp/graphsd_micro_sched", build);
  auto dataset =
      partition::GridDataset::Open(*device, "/tmp/graphsd_micro_sched");
  core::StateAwareScheduler scheduler(*dataset, io::IoCostModel::Hdd());
  core::Frontier active(dataset->num_vertices());
  Xoshiro256 rng(1);
  for (std::uint64_t i = 0; i < dataset->num_vertices() / 10; ++i) {
    active.Activate(
        static_cast<VertexId>(rng.NextBounded(dataset->num_vertices())));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.Evaluate(active, 8, false).on_demand);
  }
  (void)io::RemoveTree("/tmp/graphsd_micro_sched");
}
BENCHMARK(BM_SchedulerEvaluate);

void BM_ParallelForOverhead(benchmark::State& state) {
  ThreadPool pool(static_cast<std::size_t>(state.range(0)));
  std::vector<std::uint64_t> data(1 << 16, 1);
  for (auto _ : state) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(0, data.size(), 4096, [&](std::size_t b, std::size_t e) {
      std::uint64_t local = 0;
      for (std::size_t i = b; i < e; ++i) local += data[i];
      sum.fetch_add(local);
    });
    benchmark::DoNotOptimize(sum.load());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
