// Prefetch-pipeline micro-benchmarks: raw ReadQueue ticket throughput, the
// PrefetchStream window machinery, and end-to-end engine runs across queue
// depths. Depth 0 is the synchronous baseline; the depth>0 series shows
// what the background loader costs (tiny graphs, page-cache-resident) or
// saves (modeled time, via the overlapped charge counter).
#include <benchmark/benchmark.h>

#include <deque>
#include <memory>
#include <vector>

#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "io/prefetch.hpp"
#include "io/read_queue.hpp"
#include "partition/grid_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace graphsd;

void BM_ReadQueueSubmitWaitRoundTrip(benchmark::State& state) {
  ThreadPool pool(1);
  io::ReadQueue queue(pool, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const io::ReadQueue::Ticket t =
        queue.Submit([] { return Status::Ok(); });
    benchmark::DoNotOptimize(queue.Wait(t).ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ReadQueueSubmitWaitRoundTrip)->Arg(1)->Arg(4);

void BM_ReadQueuePipelinedWindow(benchmark::State& state) {
  // Keeps the in-flight window full the way PrefetchStream does: wait on
  // the oldest ticket only once the window is at depth.
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(1);
  io::ReadQueue queue(pool, depth);
  constexpr int kBatch = 256;
  for (auto _ : state) {
    std::deque<io::ReadQueue::Ticket> window;
    for (int i = 0; i < kBatch; ++i) {
      if (window.size() >= depth) {
        benchmark::DoNotOptimize(queue.Wait(window.front()).ok());
        window.pop_front();
      }
      window.push_back(queue.Submit([] { return Status::Ok(); }));
    }
    while (!window.empty()) {
      benchmark::DoNotOptimize(queue.Wait(window.front()).ok());
      window.pop_front();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBatch);
}
BENCHMARK(BM_ReadQueuePipelinedWindow)->Arg(1)->Arg(4)->Arg(16);

void BM_PrefetchStreamTake(benchmark::State& state) {
  // The full stream machinery over trivial fetches; depth 0 runs the same
  // closures inline (the synchronous fallback path).
  io::PrefetchPipeline pipeline(static_cast<std::size_t>(state.range(0)));
  constexpr int kUnits = 256;
  for (auto _ : state) {
    std::vector<io::PrefetchStream<int>::Unit> plan;
    plan.reserve(kUnits);
    for (int i = 0; i < kUnits; ++i) {
      io::PrefetchStream<int>::Unit unit;
      unit.skip = [] { return false; };
      unit.fetch = [i](int& out) {
        out = i;
        return Status::Ok();
      };
      plan.push_back(std::move(unit));
    }
    io::PrefetchStream<int> stream(&pipeline, std::move(plan));
    int sum = 0;
    for (int i = 0; i < kUnits; ++i) sum += stream.Take().payload;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kUnits);
}
BENCHMARK(BM_PrefetchStreamTake)->Arg(0)->Arg(1)->Arg(4);

/// Shared grid for the engine benches, built once.
const partition::GridDataset& MicroDataset(io::Device** device_out) {
  static std::unique_ptr<io::Device> device = io::MakePosixDevice();
  static std::unique_ptr<partition::GridDataset> dataset = [] {
    RmatOptions o;
    o.scale = 11;
    o.edge_factor = 8;
    o.max_weight = 10.0;
    const EdgeList g = GenerateRmat(o);
    partition::GridBuildOptions build;
    build.num_intervals = 4;
    const char* dir = "/tmp/graphsd_micro_prefetch";
    GRAPHSD_CHECK(partition::BuildGrid(g, *device, dir, build).ok());
    auto opened = partition::GridDataset::Open(*device, dir);
    GRAPHSD_CHECK(opened.ok());
    return std::make_unique<partition::GridDataset>(std::move(opened).value());
  }();
  *device_out = device.get();
  return *dataset;
}

void BM_EngineSsspAtDepth(benchmark::State& state) {
  io::Device* device = nullptr;
  const partition::GridDataset& dataset = MicroDataset(&device);
  core::EngineOptions options;
  options.prefetch_depth = static_cast<std::size_t>(state.range(0));
  double modeled = 0;
  for (auto _ : state) {
    core::GraphSDEngine engine(dataset, options);
    algos::Sssp sssp(0);
    auto report = engine.Run(sssp);
    GRAPHSD_CHECK(report.ok());
    modeled = report.value().TotalSeconds();
    benchmark::DoNotOptimize(modeled);
  }
  // Wall time above is pipeline overhead on a page-cache-resident graph;
  // the counter carries the modeled (virtual-device) charge.
  state.counters["modeled_s"] = modeled;
}
BENCHMARK(BM_EngineSsspAtDepth)->Arg(0)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
