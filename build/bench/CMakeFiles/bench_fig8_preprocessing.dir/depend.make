# Empty dependencies file for bench_fig8_preprocessing.
# This may be replaced when dependencies are built.
