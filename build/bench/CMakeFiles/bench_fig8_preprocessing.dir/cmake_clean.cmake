file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_preprocessing.dir/fig/bench_fig8_preprocessing.cpp.o"
  "CMakeFiles/bench_fig8_preprocessing.dir/fig/bench_fig8_preprocessing.cpp.o.d"
  "bench_fig8_preprocessing"
  "bench_fig8_preprocessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_preprocessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
