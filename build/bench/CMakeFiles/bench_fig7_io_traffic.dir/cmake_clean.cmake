file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_io_traffic.dir/fig/bench_fig7_io_traffic.cpp.o"
  "CMakeFiles/bench_fig7_io_traffic.dir/fig/bench_fig7_io_traffic.cpp.o.d"
  "bench_fig7_io_traffic"
  "bench_fig7_io_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_io_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
