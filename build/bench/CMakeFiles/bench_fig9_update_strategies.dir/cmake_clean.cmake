file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_update_strategies.dir/fig/bench_fig9_update_strategies.cpp.o"
  "CMakeFiles/bench_fig9_update_strategies.dir/fig/bench_fig9_update_strategies.cpp.o.d"
  "bench_fig9_update_strategies"
  "bench_fig9_update_strategies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_update_strategies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
