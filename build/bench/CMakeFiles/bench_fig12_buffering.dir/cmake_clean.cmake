file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_buffering.dir/fig/bench_fig12_buffering.cpp.o"
  "CMakeFiles/bench_fig12_buffering.dir/fig/bench_fig12_buffering.cpp.o.d"
  "bench_fig12_buffering"
  "bench_fig12_buffering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_buffering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
