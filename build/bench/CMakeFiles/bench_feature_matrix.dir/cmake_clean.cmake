file(REMOVE_RECURSE
  "CMakeFiles/bench_feature_matrix.dir/fig/bench_feature_matrix.cpp.o"
  "CMakeFiles/bench_feature_matrix.dir/fig/bench_feature_matrix.cpp.o.d"
  "bench_feature_matrix"
  "bench_feature_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feature_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
