# Empty dependencies file for bench_ext_memory_budget.
# This may be replaced when dependencies are built.
