file(REMOVE_RECURSE
  "CMakeFiles/graphsd_core.dir/core/engine.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/engine.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/fciu_executor.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/fciu_executor.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/frontier.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/frontier.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/report.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/report.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/scheduler.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/scheduler.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/sciu_executor.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/sciu_executor.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/sub_block_buffer.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/sub_block_buffer.cpp.o.d"
  "CMakeFiles/graphsd_core.dir/core/vertex_state.cpp.o"
  "CMakeFiles/graphsd_core.dir/core/vertex_state.cpp.o.d"
  "libgraphsd_core.a"
  "libgraphsd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
