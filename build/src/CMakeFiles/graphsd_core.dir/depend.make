# Empty dependencies file for graphsd_core.
# This may be replaced when dependencies are built.
