file(REMOVE_RECURSE
  "libgraphsd_core.a"
)
