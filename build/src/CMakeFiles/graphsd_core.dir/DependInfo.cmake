
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/graphsd_core.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/fciu_executor.cpp" "src/CMakeFiles/graphsd_core.dir/core/fciu_executor.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/fciu_executor.cpp.o.d"
  "/root/repo/src/core/frontier.cpp" "src/CMakeFiles/graphsd_core.dir/core/frontier.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/frontier.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/graphsd_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/report.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/graphsd_core.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/sciu_executor.cpp" "src/CMakeFiles/graphsd_core.dir/core/sciu_executor.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/sciu_executor.cpp.o.d"
  "/root/repo/src/core/sub_block_buffer.cpp" "src/CMakeFiles/graphsd_core.dir/core/sub_block_buffer.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/sub_block_buffer.cpp.o.d"
  "/root/repo/src/core/vertex_state.cpp" "src/CMakeFiles/graphsd_core.dir/core/vertex_state.cpp.o" "gcc" "src/CMakeFiles/graphsd_core.dir/core/vertex_state.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
