
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/graphsd_graph.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/graphsd_graph.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/edge_io.cpp" "src/CMakeFiles/graphsd_graph.dir/graph/edge_io.cpp.o" "gcc" "src/CMakeFiles/graphsd_graph.dir/graph/edge_io.cpp.o.d"
  "/root/repo/src/graph/edge_list.cpp" "src/CMakeFiles/graphsd_graph.dir/graph/edge_list.cpp.o" "gcc" "src/CMakeFiles/graphsd_graph.dir/graph/edge_list.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/graphsd_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/graphsd_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/reference_algorithms.cpp" "src/CMakeFiles/graphsd_graph.dir/graph/reference_algorithms.cpp.o" "gcc" "src/CMakeFiles/graphsd_graph.dir/graph/reference_algorithms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
