# Empty compiler generated dependencies file for graphsd_graph.
# This may be replaced when dependencies are built.
