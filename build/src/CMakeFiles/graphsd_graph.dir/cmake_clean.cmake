file(REMOVE_RECURSE
  "CMakeFiles/graphsd_graph.dir/graph/csr.cpp.o"
  "CMakeFiles/graphsd_graph.dir/graph/csr.cpp.o.d"
  "CMakeFiles/graphsd_graph.dir/graph/edge_io.cpp.o"
  "CMakeFiles/graphsd_graph.dir/graph/edge_io.cpp.o.d"
  "CMakeFiles/graphsd_graph.dir/graph/edge_list.cpp.o"
  "CMakeFiles/graphsd_graph.dir/graph/edge_list.cpp.o.d"
  "CMakeFiles/graphsd_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/graphsd_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/graphsd_graph.dir/graph/reference_algorithms.cpp.o"
  "CMakeFiles/graphsd_graph.dir/graph/reference_algorithms.cpp.o.d"
  "libgraphsd_graph.a"
  "libgraphsd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
