file(REMOVE_RECURSE
  "libgraphsd_graph.a"
)
