file(REMOVE_RECURSE
  "CMakeFiles/graphsd_io.dir/io/cost_model.cpp.o"
  "CMakeFiles/graphsd_io.dir/io/cost_model.cpp.o.d"
  "CMakeFiles/graphsd_io.dir/io/device.cpp.o"
  "CMakeFiles/graphsd_io.dir/io/device.cpp.o.d"
  "CMakeFiles/graphsd_io.dir/io/file.cpp.o"
  "CMakeFiles/graphsd_io.dir/io/file.cpp.o.d"
  "CMakeFiles/graphsd_io.dir/io/io_stats.cpp.o"
  "CMakeFiles/graphsd_io.dir/io/io_stats.cpp.o.d"
  "CMakeFiles/graphsd_io.dir/io/profiler.cpp.o"
  "CMakeFiles/graphsd_io.dir/io/profiler.cpp.o.d"
  "libgraphsd_io.a"
  "libgraphsd_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
