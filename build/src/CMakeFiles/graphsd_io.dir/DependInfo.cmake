
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/cost_model.cpp" "src/CMakeFiles/graphsd_io.dir/io/cost_model.cpp.o" "gcc" "src/CMakeFiles/graphsd_io.dir/io/cost_model.cpp.o.d"
  "/root/repo/src/io/device.cpp" "src/CMakeFiles/graphsd_io.dir/io/device.cpp.o" "gcc" "src/CMakeFiles/graphsd_io.dir/io/device.cpp.o.d"
  "/root/repo/src/io/file.cpp" "src/CMakeFiles/graphsd_io.dir/io/file.cpp.o" "gcc" "src/CMakeFiles/graphsd_io.dir/io/file.cpp.o.d"
  "/root/repo/src/io/io_stats.cpp" "src/CMakeFiles/graphsd_io.dir/io/io_stats.cpp.o" "gcc" "src/CMakeFiles/graphsd_io.dir/io/io_stats.cpp.o.d"
  "/root/repo/src/io/profiler.cpp" "src/CMakeFiles/graphsd_io.dir/io/profiler.cpp.o" "gcc" "src/CMakeFiles/graphsd_io.dir/io/profiler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
