file(REMOVE_RECURSE
  "libgraphsd_io.a"
)
