# Empty compiler generated dependencies file for graphsd_io.
# This may be replaced when dependencies are built.
