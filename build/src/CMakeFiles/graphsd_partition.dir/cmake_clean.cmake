file(REMOVE_RECURSE
  "CMakeFiles/graphsd_partition.dir/partition/baseline_preprocessors.cpp.o"
  "CMakeFiles/graphsd_partition.dir/partition/baseline_preprocessors.cpp.o.d"
  "CMakeFiles/graphsd_partition.dir/partition/external_builder.cpp.o"
  "CMakeFiles/graphsd_partition.dir/partition/external_builder.cpp.o.d"
  "CMakeFiles/graphsd_partition.dir/partition/grid_builder.cpp.o"
  "CMakeFiles/graphsd_partition.dir/partition/grid_builder.cpp.o.d"
  "CMakeFiles/graphsd_partition.dir/partition/grid_dataset.cpp.o"
  "CMakeFiles/graphsd_partition.dir/partition/grid_dataset.cpp.o.d"
  "CMakeFiles/graphsd_partition.dir/partition/intervals.cpp.o"
  "CMakeFiles/graphsd_partition.dir/partition/intervals.cpp.o.d"
  "CMakeFiles/graphsd_partition.dir/partition/manifest.cpp.o"
  "CMakeFiles/graphsd_partition.dir/partition/manifest.cpp.o.d"
  "libgraphsd_partition.a"
  "libgraphsd_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
