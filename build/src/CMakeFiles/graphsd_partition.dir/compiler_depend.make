# Empty compiler generated dependencies file for graphsd_partition.
# This may be replaced when dependencies are built.
