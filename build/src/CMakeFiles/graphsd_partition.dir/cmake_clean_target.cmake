file(REMOVE_RECURSE
  "libgraphsd_partition.a"
)
