
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partition/baseline_preprocessors.cpp" "src/CMakeFiles/graphsd_partition.dir/partition/baseline_preprocessors.cpp.o" "gcc" "src/CMakeFiles/graphsd_partition.dir/partition/baseline_preprocessors.cpp.o.d"
  "/root/repo/src/partition/external_builder.cpp" "src/CMakeFiles/graphsd_partition.dir/partition/external_builder.cpp.o" "gcc" "src/CMakeFiles/graphsd_partition.dir/partition/external_builder.cpp.o.d"
  "/root/repo/src/partition/grid_builder.cpp" "src/CMakeFiles/graphsd_partition.dir/partition/grid_builder.cpp.o" "gcc" "src/CMakeFiles/graphsd_partition.dir/partition/grid_builder.cpp.o.d"
  "/root/repo/src/partition/grid_dataset.cpp" "src/CMakeFiles/graphsd_partition.dir/partition/grid_dataset.cpp.o" "gcc" "src/CMakeFiles/graphsd_partition.dir/partition/grid_dataset.cpp.o.d"
  "/root/repo/src/partition/intervals.cpp" "src/CMakeFiles/graphsd_partition.dir/partition/intervals.cpp.o" "gcc" "src/CMakeFiles/graphsd_partition.dir/partition/intervals.cpp.o.d"
  "/root/repo/src/partition/manifest.cpp" "src/CMakeFiles/graphsd_partition.dir/partition/manifest.cpp.o" "gcc" "src/CMakeFiles/graphsd_partition.dir/partition/manifest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
