file(REMOVE_RECURSE
  "CMakeFiles/graphsd_util.dir/util/bitset.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/bitset.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/cli.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/clock.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/clock.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/logging.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/logging.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/rng.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/stats.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/status.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/status.cpp.o.d"
  "CMakeFiles/graphsd_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/graphsd_util.dir/util/thread_pool.cpp.o.d"
  "libgraphsd_util.a"
  "libgraphsd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
