# Empty compiler generated dependencies file for graphsd_util.
# This may be replaced when dependencies are built.
