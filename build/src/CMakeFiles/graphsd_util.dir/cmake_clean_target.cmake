file(REMOVE_RECURSE
  "libgraphsd_util.a"
)
