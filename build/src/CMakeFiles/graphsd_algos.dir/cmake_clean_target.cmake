file(REMOVE_RECURSE
  "libgraphsd_algos.a"
)
