# Empty dependencies file for graphsd_algos.
# This may be replaced when dependencies are built.
