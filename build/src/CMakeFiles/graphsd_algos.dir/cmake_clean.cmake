file(REMOVE_RECURSE
  "CMakeFiles/graphsd_algos.dir/algos/bfs.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/bfs.cpp.o.d"
  "CMakeFiles/graphsd_algos.dir/algos/connected_components.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/connected_components.cpp.o.d"
  "CMakeFiles/graphsd_algos.dir/algos/pagerank.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/pagerank.cpp.o.d"
  "CMakeFiles/graphsd_algos.dir/algos/pagerank_delta.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/pagerank_delta.cpp.o.d"
  "CMakeFiles/graphsd_algos.dir/algos/personalized_pagerank.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/personalized_pagerank.cpp.o.d"
  "CMakeFiles/graphsd_algos.dir/algos/sssp.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/sssp.cpp.o.d"
  "CMakeFiles/graphsd_algos.dir/algos/widest_path.cpp.o"
  "CMakeFiles/graphsd_algos.dir/algos/widest_path.cpp.o.d"
  "libgraphsd_algos.a"
  "libgraphsd_algos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_algos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
