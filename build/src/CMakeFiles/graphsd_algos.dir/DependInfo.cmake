
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algos/bfs.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/bfs.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/bfs.cpp.o.d"
  "/root/repo/src/algos/connected_components.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/connected_components.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/connected_components.cpp.o.d"
  "/root/repo/src/algos/pagerank.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/pagerank.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/pagerank.cpp.o.d"
  "/root/repo/src/algos/pagerank_delta.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/pagerank_delta.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/pagerank_delta.cpp.o.d"
  "/root/repo/src/algos/personalized_pagerank.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/personalized_pagerank.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/personalized_pagerank.cpp.o.d"
  "/root/repo/src/algos/sssp.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/sssp.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/sssp.cpp.o.d"
  "/root/repo/src/algos/widest_path.cpp" "src/CMakeFiles/graphsd_algos.dir/algos/widest_path.cpp.o" "gcc" "src/CMakeFiles/graphsd_algos.dir/algos/widest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
