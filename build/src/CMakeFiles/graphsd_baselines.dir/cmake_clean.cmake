file(REMOVE_RECURSE
  "CMakeFiles/graphsd_baselines.dir/baselines/hus_graph_engine.cpp.o"
  "CMakeFiles/graphsd_baselines.dir/baselines/hus_graph_engine.cpp.o.d"
  "CMakeFiles/graphsd_baselines.dir/baselines/lumos_engine.cpp.o"
  "CMakeFiles/graphsd_baselines.dir/baselines/lumos_engine.cpp.o.d"
  "libgraphsd_baselines.a"
  "libgraphsd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
