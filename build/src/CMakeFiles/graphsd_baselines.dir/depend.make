# Empty dependencies file for graphsd_baselines.
# This may be replaced when dependencies are built.
