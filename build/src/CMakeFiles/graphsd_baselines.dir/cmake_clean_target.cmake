file(REMOVE_RECURSE
  "libgraphsd_baselines.a"
)
