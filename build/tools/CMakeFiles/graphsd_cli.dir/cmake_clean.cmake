file(REMOVE_RECURSE
  "CMakeFiles/graphsd_cli.dir/graphsd_cli.cpp.o"
  "CMakeFiles/graphsd_cli.dir/graphsd_cli.cpp.o.d"
  "graphsd"
  "graphsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphsd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
