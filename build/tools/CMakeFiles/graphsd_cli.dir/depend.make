# Empty dependencies file for graphsd_cli.
# This may be replaced when dependencies are built.
