
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/csr_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/csr_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/csr_test.cpp.o.d"
  "/root/repo/tests/graph/edge_io_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/edge_io_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/edge_io_test.cpp.o.d"
  "/root/repo/tests/graph/edge_list_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/edge_list_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/edge_list_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/reference_algorithms_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/reference_algorithms_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/reference_algorithms_test.cpp.o.d"
  "/root/repo/tests/graph/web_structure_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/web_structure_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/web_structure_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
