
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io/cost_model_test.cpp" "tests/CMakeFiles/io_test.dir/io/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/cost_model_test.cpp.o.d"
  "/root/repo/tests/io/device_test.cpp" "tests/CMakeFiles/io_test.dir/io/device_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/device_test.cpp.o.d"
  "/root/repo/tests/io/edge_header_test.cpp" "tests/CMakeFiles/io_test.dir/io/edge_header_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/edge_header_test.cpp.o.d"
  "/root/repo/tests/io/file_test.cpp" "tests/CMakeFiles/io_test.dir/io/file_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/file_test.cpp.o.d"
  "/root/repo/tests/io/io_stats_test.cpp" "tests/CMakeFiles/io_test.dir/io/io_stats_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/io_stats_test.cpp.o.d"
  "/root/repo/tests/io/profiler_test.cpp" "tests/CMakeFiles/io_test.dir/io/profiler_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/profiler_test.cpp.o.d"
  "/root/repo/tests/io/scaled_model_test.cpp" "tests/CMakeFiles/io_test.dir/io/scaled_model_test.cpp.o" "gcc" "tests/CMakeFiles/io_test.dir/io/scaled_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
