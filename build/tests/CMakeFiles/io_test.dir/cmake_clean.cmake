file(REMOVE_RECURSE
  "CMakeFiles/io_test.dir/io/cost_model_test.cpp.o"
  "CMakeFiles/io_test.dir/io/cost_model_test.cpp.o.d"
  "CMakeFiles/io_test.dir/io/device_test.cpp.o"
  "CMakeFiles/io_test.dir/io/device_test.cpp.o.d"
  "CMakeFiles/io_test.dir/io/edge_header_test.cpp.o"
  "CMakeFiles/io_test.dir/io/edge_header_test.cpp.o.d"
  "CMakeFiles/io_test.dir/io/file_test.cpp.o"
  "CMakeFiles/io_test.dir/io/file_test.cpp.o.d"
  "CMakeFiles/io_test.dir/io/io_stats_test.cpp.o"
  "CMakeFiles/io_test.dir/io/io_stats_test.cpp.o.d"
  "CMakeFiles/io_test.dir/io/profiler_test.cpp.o"
  "CMakeFiles/io_test.dir/io/profiler_test.cpp.o.d"
  "CMakeFiles/io_test.dir/io/scaled_model_test.cpp.o"
  "CMakeFiles/io_test.dir/io/scaled_model_test.cpp.o.d"
  "io_test"
  "io_test.pdb"
  "io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
