file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine/baseline_engines_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/baseline_engines_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_ablation_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_ablation_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_balanced_intervals_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_balanced_intervals_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_correctness_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_correctness_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_equivalence_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_equivalence_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_gather_sweep_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_gather_sweep_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_io_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_io_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/engine_stress_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/engine_stress_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/failure_injection_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/failure_injection_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/lumos_model_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/lumos_model_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/personalized_pagerank_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/personalized_pagerank_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/engine/widest_path_test.cpp.o"
  "CMakeFiles/engine_test.dir/engine/widest_path_test.cpp.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
