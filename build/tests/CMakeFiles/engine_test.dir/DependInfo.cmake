
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/baseline_engines_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/baseline_engines_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/baseline_engines_test.cpp.o.d"
  "/root/repo/tests/engine/engine_ablation_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_ablation_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_ablation_test.cpp.o.d"
  "/root/repo/tests/engine/engine_balanced_intervals_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_balanced_intervals_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_balanced_intervals_test.cpp.o.d"
  "/root/repo/tests/engine/engine_correctness_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_correctness_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_correctness_test.cpp.o.d"
  "/root/repo/tests/engine/engine_equivalence_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_equivalence_test.cpp.o.d"
  "/root/repo/tests/engine/engine_gather_sweep_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_gather_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_gather_sweep_test.cpp.o.d"
  "/root/repo/tests/engine/engine_io_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_io_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_io_test.cpp.o.d"
  "/root/repo/tests/engine/engine_stress_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/engine_stress_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/engine_stress_test.cpp.o.d"
  "/root/repo/tests/engine/failure_injection_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/failure_injection_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/failure_injection_test.cpp.o.d"
  "/root/repo/tests/engine/lumos_model_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/lumos_model_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/lumos_model_test.cpp.o.d"
  "/root/repo/tests/engine/personalized_pagerank_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/personalized_pagerank_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/personalized_pagerank_test.cpp.o.d"
  "/root/repo/tests/engine/widest_path_test.cpp" "tests/CMakeFiles/engine_test.dir/engine/widest_path_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/widest_path_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
