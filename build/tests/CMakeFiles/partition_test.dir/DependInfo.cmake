
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/partition/baseline_preprocessors_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/baseline_preprocessors_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/baseline_preprocessors_test.cpp.o.d"
  "/root/repo/tests/partition/external_builder_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/external_builder_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/external_builder_test.cpp.o.d"
  "/root/repo/tests/partition/grid_builder_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/grid_builder_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/grid_builder_test.cpp.o.d"
  "/root/repo/tests/partition/grid_dataset_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/grid_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/grid_dataset_test.cpp.o.d"
  "/root/repo/tests/partition/index_reader_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/index_reader_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/index_reader_test.cpp.o.d"
  "/root/repo/tests/partition/intervals_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/intervals_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/intervals_test.cpp.o.d"
  "/root/repo/tests/partition/manifest_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/manifest_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/manifest_test.cpp.o.d"
  "/root/repo/tests/partition/partition_property_test.cpp" "tests/CMakeFiles/partition_test.dir/partition/partition_property_test.cpp.o" "gcc" "tests/CMakeFiles/partition_test.dir/partition/partition_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
