file(REMOVE_RECURSE
  "CMakeFiles/partition_test.dir/partition/baseline_preprocessors_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/baseline_preprocessors_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/external_builder_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/external_builder_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/grid_builder_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/grid_builder_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/grid_dataset_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/grid_dataset_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/index_reader_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/index_reader_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/intervals_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/intervals_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/manifest_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/manifest_test.cpp.o.d"
  "CMakeFiles/partition_test.dir/partition/partition_property_test.cpp.o"
  "CMakeFiles/partition_test.dir/partition/partition_property_test.cpp.o.d"
  "partition_test"
  "partition_test.pdb"
  "partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
