
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/aligned_buffer_test.cpp" "tests/CMakeFiles/util_test.dir/util/aligned_buffer_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/aligned_buffer_test.cpp.o.d"
  "/root/repo/tests/util/bitset_test.cpp" "tests/CMakeFiles/util_test.dir/util/bitset_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/bitset_test.cpp.o.d"
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/util_test.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/clock_test.cpp" "tests/CMakeFiles/util_test.dir/util/clock_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/clock_test.cpp.o.d"
  "/root/repo/tests/util/logging_test.cpp" "tests/CMakeFiles/util_test.dir/util/logging_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/logging_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/status_test.cpp" "tests/CMakeFiles/util_test.dir/util/status_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/status_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/graphsd_algos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_partition.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/graphsd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
