#!/bin/sh
# End-to-end smoke test of the graphsd CLI: generate -> convert round trip,
# preprocess (in-core and external), info, run (two engines + ablation
# flags), values dump. Registered with ctest; $1 is the binary path.
set -e
CLI="$1"
WORK="$(mktemp -d /tmp/graphsd_cli_test_XXXXXX)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" generate --type web --vertices 2048 --avg-degree 8 --max-weight 9 \
    --out "$WORK/g.bin" > "$WORK/log" 2>&1
grep -q "2048 vertices" "$WORK/log"

"$CLI" preprocess --input "$WORK/g.bin" --out "$WORK/ds" --p 4 \
    >> "$WORK/log" 2>&1
"$CLI" preprocess --input "$WORK/g.bin" --out "$WORK/ds_ext" --p 4 \
    --external true >> "$WORK/log" 2>&1
grep -q "out-of-core preprocessing" "$WORK/log"

"$CLI" info --dataset "$WORK/ds" > "$WORK/info" 2>&1
grep -q "intervals: 4 (sorted, indexed)" "$WORK/info"

# A freshly built dataset passes verification.
"$CLI" verify --dataset "$WORK/ds" > "$WORK/verify1" 2>&1
grep -q "all checksums match" "$WORK/verify1"
"$CLI" verify --dataset "$WORK/ds_ext" > "$WORK/verify_ext" 2>&1
grep -q "all checksums match" "$WORK/verify_ext"

"$CLI" run --dataset "$WORK/ds" --algo sssp --root 0 \
    --values-out "$WORK/dist.txt" > "$WORK/run1" 2>&1
grep -q "GraphSD/sssp" "$WORK/run1"
test "$(wc -l < "$WORK/dist.txt")" = "2048"

# Observability exporters: both documents must parse as JSON and carry
# their top-level structure. python3 -m json.tool is the authoritative
# check when available; the grep structure probes run everywhere.
"$CLI" run --dataset "$WORK/ds" --algo sssp --root 0 \
    --trace-out "$WORK/trace.json" --report-json "$WORK/report.json" \
    > "$WORK/run_obs" 2>&1
grep -q "GraphSD/sssp" "$WORK/run_obs"
if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool "$WORK/trace.json" > /dev/null
  python3 -m json.tool "$WORK/report.json" > /dev/null
fi
grep -q '"traceEvents"' "$WORK/trace.json"
grep -q '"schedule-decision"' "$WORK/trace.json"
grep -q '"schema_version"' "$WORK/report.json"
grep -q '"per_round"' "$WORK/report.json"
grep -q '"metrics"' "$WORK/report.json"

# Both preprocessing paths must yield identical results.
"$CLI" run --dataset "$WORK/ds_ext" --algo sssp --root 0 \
    --values-out "$WORK/dist_ext.txt" > "$WORK/run2" 2>&1
cmp "$WORK/dist.txt" "$WORK/dist_ext.txt"

# Flipping one payload byte must be detected by verify AND by run —
# a corrupted dataset may never produce a silent wrong answer.
SB=""
for f in "$WORK"/ds_ext/sb_*.edges; do
  if [ -s "$f" ]; then SB="$f"; break; fi
done
test -n "$SB"
FIRST="$(od -An -tu1 -N1 "$SB" | tr -d ' ')"
printf "$(printf '\\%03o' $(( (FIRST + 1) % 256 )))" \
    | dd of="$SB" bs=1 count=1 conv=notrunc 2>/dev/null
if "$CLI" verify --dataset "$WORK/ds_ext" > "$WORK/verify2" 2>&1; then
  exit 1
fi
grep -q "CRC32C mismatch" "$WORK/verify2"
if "$CLI" run --dataset "$WORK/ds_ext" --algo pr > "$WORK/run_bad" 2>&1; then
  exit 1
fi
grep -q "CorruptData" "$WORK/run_bad"

"$CLI" run --dataset "$WORK/ds" --algo pr --engine lumos > "$WORK/run3" 2>&1
grep -q "Lumos/pagerank" "$WORK/run3"

"$CLI" run --dataset "$WORK/ds" --algo ppr --root 7 --no-buffer \
    > "$WORK/run4" 2>&1
grep -q "GraphSD/ppr" "$WORK/run4"

# Run lifecycle (DESIGN.md §12): a deadline-cancelled checkpointed run
# exits 130 (the shell's 128+SIGINT convention) with a partial report, and
# --resume completes it to values bit-identical to an uninterrupted run.
# --threads 1 on all three: engine-vs-engine bitwise comparison needs a
# deterministic float accumulation order.
"$CLI" run --dataset "$WORK/ds" --algo pr --iterations 200 --threads 1 \
    --values-out "$WORK/pr_full.txt" > "$WORK/run_full" 2>&1
RC=0
"$CLI" run --dataset "$WORK/ds" --algo pr --iterations 200 --threads 1 \
    --checkpoint-dir "$WORK/ck" --deadline-seconds 0.005 \
    > "$WORK/run_killed" 2>&1 || RC=$?
test "$RC" = "130"
grep -q "CANCELLED (deadline exceeded)" "$WORK/run_killed"
"$CLI" run --dataset "$WORK/ds" --algo pr --iterations 200 --threads 1 \
    --checkpoint-dir "$WORK/ck" --resume true \
    --values-out "$WORK/pr_resumed.txt" > "$WORK/run_resumed" 2>&1
cmp "$WORK/pr_full.txt" "$WORK/pr_resumed.txt"

# Resuming under a different algorithm is refused, never silently redone.
if "$CLI" run --dataset "$WORK/ds" --algo bfs --root 0 \
    --checkpoint-dir "$WORK/ck" --resume true > "$WORK/run_mismatch" 2>&1
then
  exit 1
fi
grep -q "checkpoint" "$WORK/run_mismatch"

# Unknown flags and commands fail loudly.
if "$CLI" run --bogus-flag 2>/dev/null; then exit 1; fi
if "$CLI" frobnicate 2>/dev/null; then exit 1; fi

echo "cli smoke: OK"
