#!/bin/sh
# One-shot CI entry point.
#
#   1. Tier-1: regular build + the full test suite (the gate every change
#      must keep green, see ROADMAP.md).
#   2. ASan+UBSan build + full suite.
#   3. TSan build + the concurrency smoke targets (ReadQueue, ThreadPool,
#      IoStats and the prefetch pipeline end to end). The full suite under
#      TSan is too slow for per-change CI; run it manually before releases
#      with `tools/sanitize_build.sh thread`.
#
# Usage: tools/ci.sh [--tier1-only]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== tier 1: build + full test suite =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$(nproc)"
(cd "$ROOT/build" && ctest --output-on-failure -j "$(nproc)")

if [ "$1" = "--tier1-only" ]; then
  exit 0
fi

echo "== tier 2: ASan + UBSan =="
"$ROOT/tools/sanitize_build.sh" address

echo "== tier 3: TSan concurrency smoke =="
"$ROOT/tools/sanitize_build.sh" thread "^tsan_"
