#!/bin/sh
# One-shot CI entry point.
#
#   1. Tier-1: regular build + the full test suite (the gate every change
#      must keep green, see ROADMAP.md).
#   2. ASan+UBSan build + full suite.
#   3. TSan build + the concurrency smoke targets (ReadQueue, ThreadPool,
#      IoStats and the prefetch pipeline end to end). The full suite under
#      TSan is too slow for per-change CI; run it manually before releases
#      with `tools/sanitize_build.sh thread`.
#
# Usage: tools/ci.sh [--tier1-only]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

echo "== tier 1: build + full test suite =="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$(nproc)"
(cd "$ROOT/build" && ctest --output-on-failure -j "$(nproc)")

echo "== tier 1: JSON export smoke (--trace-out / --report-json) =="
OBS_DIR="$(mktemp -d /tmp/graphsd_obs_smoke_XXXXXX)"
trap 'rm -rf "$OBS_DIR"' EXIT
CLI="$ROOT/build/tools/graphsd"
"$CLI" generate --type web --vertices 2048 --avg-degree 8 --max-weight 9 \
    --out "$OBS_DIR/g.bin" > /dev/null
"$CLI" preprocess --input "$OBS_DIR/g.bin" --out "$OBS_DIR/ds" --p 4 \
    > /dev/null
"$CLI" run --dataset "$OBS_DIR/ds" --algo sssp --root 0 \
    --trace-out "$OBS_DIR/trace.json" --report-json "$OBS_DIR/report.json" \
    > /dev/null
python3 -m json.tool "$OBS_DIR/trace.json" > /dev/null
python3 -m json.tool "$OBS_DIR/report.json" > /dev/null
echo "json export smoke: OK"

echo "== tier 1: compressed layout smoke (--codec varint-delta) =="
"$CLI" preprocess --input "$OBS_DIR/g.bin" --out "$OBS_DIR/ds_vd" --p 4 \
    --codec varint-delta > /dev/null
"$CLI" verify --dataset "$OBS_DIR/ds_vd" > /dev/null
"$CLI" run --dataset "$OBS_DIR/ds_vd" --algo sssp --root 0 \
    --report-json "$OBS_DIR/report_vd.json" > /dev/null
python3 - "$OBS_DIR/report_vd.json" <<'PYEOF'
import json, sys
comp = json.load(open(sys.argv[1]))["compression"]
assert comp["codec"] == "varint-delta", comp
assert comp["frames_decoded"] > 0, comp
assert comp["compressed_bytes_read"] > 0, comp
assert comp["decoded_bytes"] > 0, comp
PYEOF
echo "compressed smoke: OK"

echo "== tier 1: differential harness smoke (graphsd difftest) =="
# A bounded randomized sweep: every registered algorithm against the
# in-memory oracle, across raw + varint-delta datasets and forced-model /
# prefetch / thread / cross-iteration configurations. Nonzero exit on any
# divergence; the minimized repro artifact lands in the artifact dir.
"$CLI" difftest --seeds 6 --seed0 211 --artifact-dir "$OBS_DIR/repro" \
    > /dev/null
echo "difftest smoke: OK"

echo "== tier 1: run lifecycle smoke (checkpoint / resume / Ctrl-C) =="
# Deadline-cancelled checkpointed run -> exit 130 -> --resume completes to
# values bit-identical to an uninterrupted run (--threads 1 pins the float
# accumulation order).
"$CLI" run --dataset "$OBS_DIR/ds" --algo pr --iterations 200 --threads 1 \
    --values-out "$OBS_DIR/pr_full.txt" > /dev/null
RC=0
"$CLI" run --dataset "$OBS_DIR/ds" --algo pr --iterations 200 --threads 1 \
    --checkpoint-dir "$OBS_DIR/ck" --deadline-seconds 0.005 \
    > /dev/null 2>&1 || RC=$?
test "$RC" = "130"
"$CLI" run --dataset "$OBS_DIR/ds" --algo pr --iterations 200 --threads 1 \
    --checkpoint-dir "$OBS_DIR/ck" --resume true \
    --values-out "$OBS_DIR/pr_resumed.txt" > /dev/null
cmp "$OBS_DIR/pr_full.txt" "$OBS_DIR/pr_resumed.txt"
# Ctrl-C: SIGINT trips the cooperative token; the run rolls back to the
# last committed boundary, writes a final checkpoint and exits 130.
"$CLI" run --dataset "$OBS_DIR/ds" --algo pr --iterations 100000 \
    --threads 1 --checkpoint-dir "$OBS_DIR/ck_int" \
    > "$OBS_DIR/run_int.log" 2>&1 &
RUN_PID=$!
sleep 1
kill -INT "$RUN_PID"
RC=0
wait "$RUN_PID" || RC=$?
test "$RC" = "130"
grep -q "CANCELLED (interrupted (SIGINT))" "$OBS_DIR/run_int.log"
test -f "$OBS_DIR/ck_int/checkpoint.0.gsck" \
    || test -f "$OBS_DIR/ck_int/checkpoint.1.gsck"
# Randomized kill-and-resume differential sweep: kill checkpointed runs,
# damage slots, resume, require bit-identical final values.
# (stderr silenced: every killed trial logs an expected "run cancelled".)
"$CLI" difftest --kill-resume --seeds 2 --seed0 77 > /dev/null 2>&1
echo "lifecycle smoke: OK"

echo "== tier 1: semi-external smoke (--mode semi / --cache-compressed) =="
# Sparse-frontier workload (SSSP on a 64x64 grid: a long diagonal wavefront
# touches few intervals per round, so the scheduler's third cost C_m wins
# naturally): semi mode must actually elide sub-block I/O via the skip
# summaries, report semi rounds, and agree bit-exactly with the default
# engine (--threads 1 pins the apply order).
"$CLI" generate --type grid --rows 64 --cols 64 --max-weight 9 \
    --out "$OBS_DIR/grid.bin" > /dev/null
"$CLI" preprocess --input "$OBS_DIR/grid.bin" --out "$OBS_DIR/ds_grid" \
    --p 4 > /dev/null
"$CLI" run --dataset "$OBS_DIR/ds_grid" --algo sssp --root 0 --threads 1 \
    --values-out "$OBS_DIR/sssp_default.txt" > /dev/null
"$CLI" run --dataset "$OBS_DIR/ds_grid" --algo sssp --root 0 --threads 1 \
    --mode semi --values-out "$OBS_DIR/sssp_semi.txt" \
    --report-json "$OBS_DIR/report_semi.json" > /dev/null
cmp "$OBS_DIR/sssp_default.txt" "$OBS_DIR/sssp_semi.txt"
python3 - "$OBS_DIR/report_semi.json" <<'PYEOF'
import json, sys
semi = json.load(open(sys.argv[1]))["semi_external"]
assert semi["rounds"] > 0, semi
assert semi["blocks_skipped"] > 0, semi
assert semi["blocks_skipped_bytes"] > 0, semi
PYEOF
# Compressed dataset + frame cache: decode-on-hit entries must appear and
# the answers must still match the default engine bit for bit.
"$CLI" preprocess --input "$OBS_DIR/grid.bin" --out "$OBS_DIR/ds_grid_vd" \
    --p 4 --codec varint-delta > /dev/null
"$CLI" run --dataset "$OBS_DIR/ds_grid_vd" --algo sssp --root 0 --threads 1 \
    --mode semi --cache-compressed --values-out "$OBS_DIR/sssp_semi_vd.txt" \
    --report-json "$OBS_DIR/report_semi_vd.json" > /dev/null
cmp "$OBS_DIR/sssp_default.txt" "$OBS_DIR/sssp_semi_vd.txt"
python3 - "$OBS_DIR/report_semi_vd.json" <<'PYEOF'
import json, sys
buf = json.load(open(sys.argv[1]))["buffer"]
assert buf["frame_puts"] > 0, buf
PYEOF
echo "semi-external smoke: OK"

echo "== tier 1: SSD scheduling smoke (--device sim:ssd / real:ssd) =="
# The SSD cost preset moves the C_r <= C_s crossover toward on-demand: on a
# sparse-wavefront workload large enough that a full stream outweighs a
# handful of 60us seeks, the scheduler must flip at least one round to SCIU
# and log the decision (model "S") with its cost inputs in the report. The
# same workload then runs on the real:ssd backend (O_DIRECT + batched
# preadv, SSD scheduler economics, wall-clock time) with parallel compute
# and must produce bit-identical values.
"$CLI" generate --type grid --rows 256 --cols 256 --max-weight 9 \
    --out "$OBS_DIR/grid_ssd.bin" > /dev/null
"$CLI" preprocess --input "$OBS_DIR/grid_ssd.bin" --out "$OBS_DIR/ds_ssd" \
    --p 4 > /dev/null
"$CLI" run --dataset "$OBS_DIR/ds_ssd" --algo sssp --root 0 --threads 1 \
    --device sim:ssd --values-out "$OBS_DIR/sssp_ssd_sim.txt" \
    --report-json "$OBS_DIR/report_ssd.json" > /dev/null
python3 - "$OBS_DIR/report_ssd.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["cost_model"]["seek_seconds"] <= 1e-4, doc["cost_model"]
models = [r["model"] for r in doc["per_round"]]
assert "S" in models, models
for r in doc["per_round"]:
    if r["model"] in ("S", "F"):
        assert r["cost_on_demand"] > 0 and r["cost_full"] > 0, r
PYEOF
"$CLI" run --dataset "$OBS_DIR/ds_ssd" --algo sssp --root 0 --threads 8 \
    --compute-threads 8 --device real:ssd \
    --values-out "$OBS_DIR/sssp_ssd_real.txt" > /dev/null
cmp "$OBS_DIR/sssp_ssd_sim.txt" "$OBS_DIR/sssp_ssd_real.txt"
echo "ssd scheduling smoke: OK"

echo "== tier 1: query service smoke (graphsd serve / graphsd query) =="
# Resident daemon on a temp socket: open-once dataset registry, shared
# buffer tier, batched multi-source runs. Exercises the wire protocol end
# to end (verify / run / values / stats / shutdown) with the real CLI
# client and checks every response parses as JSON.
SOCK="$OBS_DIR/svc.sock"
"$CLI" serve --socket "$SOCK" --workers 2 --no-verify-on-open \
    > "$OBS_DIR/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 50); do
  test -S "$SOCK" && break
  sleep 0.1
done
test -S "$SOCK"
"$CLI" query --socket "$SOCK" --op verify --dataset "$OBS_DIR/ds" \
    > "$OBS_DIR/q_verify.json"
"$CLI" query --socket "$SOCK" --dataset "$OBS_DIR/ds" --algo pr \
    --iterations 10 > "$OBS_DIR/q_pr.json"
"$CLI" query --socket "$SOCK" --dataset "$OBS_DIR/ds" --algo bfs --root 0 \
    --values --vertices 0,1,2 > "$OBS_DIR/q_bfs.json"
"$CLI" query --socket "$SOCK" --op stats > "$OBS_DIR/q_stats.json"
python3 -m json.tool "$OBS_DIR/q_verify.json" > /dev/null
python3 -m json.tool "$OBS_DIR/q_pr.json" > /dev/null
python3 -m json.tool "$OBS_DIR/q_bfs.json" > /dev/null
python3 -m json.tool "$OBS_DIR/q_stats.json" > /dev/null
"$CLI" query --socket "$SOCK" --op shutdown > /dev/null
RC=0
wait "$SERVE_PID" || RC=$?
test "$RC" = "0"
test ! -S "$SOCK"
echo "service smoke: OK"

if [ "$1" = "--tier1-only" ]; then
  exit 0
fi

echo "== tier 2: ASan + UBSan =="
"$ROOT/tools/sanitize_build.sh" address

echo "== tier 3: TSan concurrency smoke =="
"$ROOT/tools/sanitize_build.sh" thread "^tsan_"
