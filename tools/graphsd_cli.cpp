// graphsd — command-line front end for the GraphSD library.
//
//   graphsd generate   --type rmat|er|web|grid --out graph.bin [...]
//   graphsd convert    --input graph.txt --out graph.bin [--weighted]
//   graphsd preprocess --input graph.bin --out dataset_dir [--p N] [--system ...]
//   graphsd info       --dataset dataset_dir
//   graphsd verify     --dataset dataset_dir
//   graphsd run        --dataset dataset_dir --algo pr|prd|cc|sssp|bfs [...]
//                      [--checkpoint-dir DIR [--checkpoint-every N] [--resume]]
//                      [--deadline-seconds S]
//   graphsd serve      --socket /tmp/graphsd.sock [--workers N]
//                      [--no-share-buffer] [--no-batching] [...]
//   graphsd query      --socket /tmp/graphsd.sock --op run --dataset DIR
//                      --algo bfs --root R [--values] [...]
//   graphsd profile    --dir /path/on/target/disk
//   graphsd difftest   [--seeds N] [--seed0 S] [--artifact-dir DIR]
//                      [--replay artifact.txt] [--kill-resume]
//
// `run` prints the execution report and optionally dumps per-vertex values.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "algos/bfs.hpp"
#include "algos/connected_components.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/sssp.hpp"
#include "algos/personalized_pagerank.hpp"
#include "algos/widest_path.hpp"
#include "baselines/hus_graph_engine.hpp"
#include "baselines/lumos_engine.hpp"
#include "core/cancellation.hpp"
#include "core/engine.hpp"
#include "graph/edge_io.hpp"
#include "graph/generators.hpp"
#include "graph/reference_algorithms.hpp"
#include "io/profiler.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "partition/baseline_preprocessors.hpp"
#include "partition/dataset_verify.hpp"
#include "partition/external_builder.hpp"
#include "partition/grid_dataset.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/server.hpp"
#include "testing/artifact.hpp"
#include "testing/difftest.hpp"
#include "testing/temp_dir.hpp"
#include "util/checked_cast.hpp"
#include "util/cli.hpp"

namespace graphsd {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::unique_ptr<io::Device>> MakeDevice(const CliFlags& flags) {
  return io::MakeDeviceForKind(flags.GetString("device"));
}

void DefineDeviceFlag(CliFlags& flags) {
  flags.Define("device", "scaled-hdd",
               "storage backend: scaled-hdd | sim:hdd | sim:ssd (modeled "
               "time) | real:ssd (O_DIRECT hardware reads) | posix");
}

int CmdGenerate(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("type", "rmat", "rmat | er | web | grid");
  flags.Define("out", "graph.bin", "output binary edge file");
  flags.Define("scale", "14", "rmat: log2 vertex count");
  flags.Define("edge-factor", "16", "rmat: edges per vertex");
  flags.Define("vertices", "16384", "er/web: vertex count");
  flags.Define("edges", "262144", "er: edge count");
  flags.Define("rows", "128", "grid: rows");
  flags.Define("cols", "128", "grid: cols");
  flags.Define("avg-degree", "16", "web: average out-degree");
  flags.Define("max-weight", "0", "attach uniform weights in [1,W] when > 0");
  flags.Define("whiskers", "0", "append this fraction of whisker vertices");
  flags.Define("seed", "1", "generator seed");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  const std::string type = flags.GetString("type");
  const double max_weight = flags.GetDouble("max-weight");
  const auto seed = CheckedCast<std::uint64_t>(flags.GetInt("seed"));
  EdgeList graph;
  if (type == "rmat") {
    RmatOptions o;
    o.scale = CheckedCast<std::uint32_t>(flags.GetInt("scale"));
    o.edge_factor = CheckedCast<std::uint32_t>(flags.GetInt("edge-factor"));
    o.max_weight = max_weight;
    o.seed = seed;
    graph = GenerateRmat(o);
  } else if (type == "er") {
    ErdosRenyiOptions o;
    o.num_vertices = CheckedCast<VertexId>(flags.GetInt("vertices"));
    o.num_edges = CheckedCast<std::uint64_t>(flags.GetInt("edges"));
    o.max_weight = max_weight;
    o.seed = seed;
    graph = GenerateErdosRenyi(o);
  } else if (type == "web") {
    WebGraphOptions o;
    o.num_vertices = CheckedCast<VertexId>(flags.GetInt("vertices"));
    o.avg_degree = CheckedCast<std::uint32_t>(flags.GetInt("avg-degree"));
    o.max_weight = max_weight;
    o.seed = seed;
    graph = GenerateWebGraph(o);
  } else if (type == "grid") {
    graph = GenerateGrid2D(CheckedCast<VertexId>(flags.GetInt("rows")),
                           CheckedCast<VertexId>(flags.GetInt("cols")), seed,
                           max_weight);
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 1;
  }
  const double whiskers = flags.GetDouble("whiskers");
  if (whiskers > 0) {
    AppendWhiskers(graph,
                   static_cast<VertexId>(graph.num_vertices() * whiskers), 32,
                   seed, max_weight);
  }

  auto device = io::MakePosixDevice();
  if (Status s = WriteBinaryEdgeList(graph, *device, flags.GetString("out"));
      !s.ok()) {
    return Fail(s);
  }
  std::printf("%s: %u vertices, %llu edges%s\n",
              flags.GetString("out").c_str(), graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.weighted() ? " (weighted)" : "");
  return 0;
}

int CmdConvert(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("input", "", "text edge list (src dst [weight] per line)");
  flags.Define("out", "graph.bin", "output binary edge file");
  flags.Define("weighted", "false", "parse the third column as weights");
  flags.Define("symmetrize", "false", "add reverse edges (for WCC)");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  auto list = ReadTextEdgeList(flags.GetString("input"),
                               flags.GetBool("weighted"));
  if (!list.ok()) return Fail(list.status());
  EdgeList graph = std::move(list).value();
  if (flags.GetBool("symmetrize")) graph = Symmetrize(graph);
  auto device = io::MakePosixDevice();
  if (Status s = WriteBinaryEdgeList(graph, *device, flags.GetString("out"));
      !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %llu edges over %u vertices to %s\n",
              static_cast<unsigned long long>(graph.num_edges()),
              graph.num_vertices(), flags.GetString("out").c_str());
  return 0;
}

int CmdPreprocess(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("input", "graph.bin", "binary edge file (see generate/convert)");
  flags.Define("out", "dataset", "output dataset directory");
  flags.Define("p", "0", "interval count (0 = derive from memory budget)");
  flags.Define("memory-budget", "0", "bytes; 0 = 5% of the raw edge bytes");
  flags.Define("system", "graphsd", "pipeline: graphsd | hus | lumos");
  flags.Define("external", "false",
               "stream out of core (bounded memory; graphsd layout only)");
  flags.Define("name", "graph", "dataset name stored in the manifest");
  flags.Define("codec", "none",
               "edge-payload codec: none | varint-delta (graphsd layout "
               "only; baselines always write raw)");
  DefineDeviceFlag(flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  auto device_or = MakeDevice(flags);
  if (!device_or.ok()) return Fail(device_or.status());
  std::unique_ptr<io::Device> device = std::move(device_or).value();
  partition::PreprocessOptions options;
  options.num_intervals = CheckedCast<std::uint32_t>(flags.GetInt("p"));
  options.memory_budget_bytes =
      CheckedCast<std::uint64_t>(flags.GetInt("memory-budget"));
  options.name = flags.GetString("name");
  options.codec = flags.GetString("codec");

  if (flags.GetBool("external")) {
    partition::ExternalBuildOptions external;
    external.num_intervals = options.num_intervals;
    external.memory_budget_bytes = options.memory_budget_bytes;
    external.name = options.name;
    external.codec = options.codec;
    auto manifest = partition::BuildGridExternal(
        flags.GetString("input"), *device, flags.GetString("out"), external);
    if (!manifest.ok()) return Fail(manifest.status());
    std::printf("out-of-core preprocessing: P=%u, %llu edges\n", manifest->p,
                static_cast<unsigned long long>(manifest->num_edges));
    return 0;
  }

  const std::string system = flags.GetString("system");
  Result<partition::PreprocessReport> report =
      InternalError("unknown system");
  if (system == "graphsd") {
    report = partition::PreprocessGraphSD(flags.GetString("input"), *device,
                                          flags.GetString("out"), options);
  } else if (system == "hus") {
    report = partition::PreprocessHusGraph(flags.GetString("input"), *device,
                                           flags.GetString("out"), options);
  } else if (system == "lumos") {
    report = partition::PreprocessLumos(flags.GetString("input"), *device,
                                        flags.GetString("out"), options);
  }
  if (!report.ok()) return Fail(report.status());
  std::printf("%s preprocessing: P=%u, modeled io %.3fs, pipeline wall "
              "%.3fs, traffic %s\n",
              report->system.c_str(), report->manifest.p, report->io_seconds,
              report->wall_seconds, report->io.ToString().c_str());
  return 0;
}

int CmdInfo(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("dataset", "dataset", "dataset directory");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  auto device = io::MakePosixDevice();
  auto dataset =
      partition::GridDataset::Open(*device, flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());
  const auto& m = dataset->manifest();
  std::printf("dataset '%s'\n", m.name.c_str());
  std::printf("  vertices:  %u\n", m.num_vertices);
  std::printf("  edges:     %llu%s\n",
              static_cast<unsigned long long>(m.num_edges),
              m.weighted ? " (weighted)" : "");
  std::printf("  intervals: %u (%s, %s)\n", m.p,
              m.sorted ? "sorted" : "unsorted",
              m.has_index ? "indexed" : "no index");
  std::printf("  payload:   %llu bytes\n",
              static_cast<unsigned long long>(m.TotalEdgeBytes()));
  if (m.compressed()) {
    std::printf("  codec:     %s (manifest v%u), edge frames %llu bytes on "
                "disk (%llu raw)\n",
                m.codec.c_str(), m.format_version,
                static_cast<unsigned long long>(m.TotalEdgeFileBytes()),
                static_cast<unsigned long long>(m.num_edges * kEdgeBytes));
  }
  std::printf("  sub-block edge counts:\n");
  for (std::uint32_t i = 0; i < m.p; ++i) {
    std::printf("   ");
    for (std::uint32_t j = 0; j < m.p; ++j) {
      std::printf(" %8llu", static_cast<unsigned long long>(m.EdgesIn(i, j)));
    }
    std::printf("\n");
  }
  return 0;
}

int CmdVerify(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("dataset", "dataset", "dataset directory");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  auto report = partition::VerifyDataset(flags.GetString("dataset"));
  if (!report.ok()) return Fail(report.status());
  std::printf("%s\n", report->Summary().c_str());
  return report->ok() ? 0 : 1;
}

int CmdRun(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("dataset", "dataset", "dataset directory");
  flags.Define("algo", "pr", "pr | prd | cc | sssp | bfs | widest | ppr");
  flags.Define("engine", "graphsd", "graphsd | hus | lumos");
  flags.Define("iterations", "10", "pr: iteration count");
  flags.Define("epsilon", "1e-9", "prd: residual activation threshold");
  flags.Define("root", "0", "sssp/bfs: source vertex");
  flags.Define("threads", "0", "worker threads (0 = hardware)");
  flags.Define("compute-threads", "0",
               "destination-range compute shards per apply pass "
               "(0 = match --threads pool, 1 = serial reference; results "
               "are bit-identical at any value)");
  flags.Define("no-cross-iteration", "false", "disable cross-iteration (b1)");
  flags.Define("no-selective", "false", "disable the on-demand model (b2)");
  flags.Define("no-buffer", "false", "disable the sub-block buffer");
  flags.Define("mode", "auto",
               "auto | semi: semi keeps vertex state RAM-resident and adds "
               "skip-summary selective streaming as a third scheduler choice");
  flags.Define("cache-compressed", "false",
               "cache compressed GSDF frames in the sub-block buffer "
               "(decode-on-hit; no effect on raw datasets)");
  flags.Define("prefetch-depth", "1",
               "async read look-ahead in fetch units (0 = synchronous I/O)");
  flags.Define("no-overlap-io", "false",
               "charge compute + io serially instead of max(compute, io)");
  flags.Define("values-out", "", "write per-vertex results to this file");
  flags.Define("trace-out", "",
               "write a chrome://tracing JSON of per-iteration phases "
               "(graphsd engine only)");
  flags.Define("report-json", "",
               "write the machine-readable run report to this file");
  flags.Define("checkpoint-dir", "",
               "write crash-safe GSCK checkpoints into this directory "
               "(graphsd engine only)");
  flags.Define("checkpoint-every", "1",
               "checkpoint every N committed iterations");
  flags.Define("resume", "false",
               "resume from the latest valid checkpoint in --checkpoint-dir");
  flags.Define("deadline-seconds", "0",
               "cancel the run after this many wall-clock seconds (0 = none)");
  DefineDeviceFlag(flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  auto device_or = MakeDevice(flags);
  if (!device_or.ok()) return Fail(device_or.status());
  std::unique_ptr<io::Device> device = std::move(device_or).value();
  auto dataset =
      partition::GridDataset::Open(*device, flags.GetString("dataset"));
  if (!dataset.ok()) return Fail(dataset.status());

  std::unique_ptr<core::Program> program;
  const std::string algo = flags.GetString("algo");
  if (algo == "pr") {
    program = std::make_unique<algos::PageRank>(
        CheckedCast<std::uint32_t>(flags.GetInt("iterations")));
  } else if (algo == "prd") {
    program =
        std::make_unique<algos::PageRankDelta>(flags.GetDouble("epsilon"));
  } else if (algo == "cc") {
    program = std::make_unique<algos::ConnectedComponents>();
  } else if (algo == "sssp") {
    program = std::make_unique<algos::Sssp>(
        CheckedCast<VertexId>(flags.GetInt("root")));
  } else if (algo == "bfs") {
    program = std::make_unique<algos::Bfs>(
        CheckedCast<VertexId>(flags.GetInt("root")));
  } else if (algo == "widest") {
    program = std::make_unique<algos::WidestPath>(
        CheckedCast<VertexId>(flags.GetInt("root")));
  } else if (algo == "ppr") {
    program = std::make_unique<algos::PersonalizedPageRank>(
        CheckedCast<VertexId>(flags.GetInt("root")),
        flags.GetDouble("epsilon"));
  } else {
    std::fprintf(stderr, "unknown --algo %s\n", algo.c_str());
    return 1;
  }

  const std::string engine_kind = flags.GetString("engine");
  Result<core::ExecutionReport> report = InternalError("unknown engine");
  const core::VertexState* state = nullptr;
  core::GraphSDEngine* graphsd_engine = nullptr;

  const std::string trace_out = flags.GetString("trace-out");
  const std::string report_json = flags.GetString("report-json");
  obs::TraceBuffer trace;
  obs::MetricsRegistry metrics;
  const bool want_obs = !trace_out.empty() || !report_json.empty();

  std::unique_ptr<core::GraphSDEngine> gsd;
  std::unique_ptr<baselines::HusGraphEngine> hus;
  std::unique_ptr<baselines::LumosEngine> lumos;
  core::CancellationToken interrupt_token;
  if (engine_kind == "graphsd") {
    core::EngineOptions options;
    options.num_threads = CheckedCast<std::size_t>(flags.GetInt("threads"));
    options.compute_threads =
        CheckedCast<std::size_t>(flags.GetInt("compute-threads"));
    options.enable_cross_iteration = !flags.GetBool("no-cross-iteration");
    options.enable_selective = !flags.GetBool("no-selective");
    options.enable_buffering = !flags.GetBool("no-buffer");
    const std::string mode = flags.GetString("mode");
    if (mode == "semi") {
      options.semi_external = true;
    } else if (mode != "auto") {
      std::fprintf(stderr, "unknown --mode %s (auto | semi)\n", mode.c_str());
      return 1;
    }
    options.cache_compressed = flags.GetBool("cache-compressed");
    options.prefetch_depth =
        CheckedCast<std::size_t>(flags.GetInt("prefetch-depth"));
    options.overlap_io = !flags.GetBool("no-overlap-io");
    if (!trace_out.empty()) options.trace = &trace;
    if (want_obs) options.metrics = &metrics;
    options.checkpoint_dir = flags.GetString("checkpoint-dir");
    options.checkpoint_every =
        CheckedCast<std::uint32_t>(flags.GetInt("checkpoint-every"));
    options.resume = flags.GetBool("resume");
    options.deadline_seconds = flags.GetDouble("deadline-seconds");
    options.cancel = &interrupt_token;
    gsd = std::make_unique<core::GraphSDEngine>(*dataset, options);
    graphsd_engine = gsd.get();
    // Ctrl-C / SIGTERM trips the token instead of killing the process: the
    // engine rolls back to the last committed boundary, writes a final
    // checkpoint (when --checkpoint-dir is set) and returns a partial
    // report. A second signal force-exits.
    core::SignalCancellationScope signal_scope(&interrupt_token);
    report = gsd->Run(*program);
    state = gsd->state();
  } else if (engine_kind == "hus") {
    baselines::HusGraphEngine::Options options;
    options.num_threads = CheckedCast<std::size_t>(flags.GetInt("threads"));
    hus = std::make_unique<baselines::HusGraphEngine>(*dataset, options);
    report = hus->Run(*program);
    state = hus->state();
  } else if (engine_kind == "lumos") {
    baselines::LumosEngine::Options options;
    options.num_threads = CheckedCast<std::size_t>(flags.GetInt("threads"));
    lumos = std::make_unique<baselines::LumosEngine>(*dataset, options);
    report = lumos->Run(*program);
    state = lumos->state();
  } else {
    std::fprintf(stderr, "unknown --engine %s\n", engine_kind.c_str());
    return 1;
  }
  (void)graphsd_engine;
  if (!report.ok()) return Fail(report.status());
  std::printf("%s", report->Summary().c_str());

  if (!trace_out.empty()) {
    if (Status s = obs::WriteChromeTrace(trace, trace_out); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %zu trace events to %s\n", trace.event_count(),
                trace_out.c_str());
  }
  if (!report_json.empty()) {
    const io::IoCostModel& cost_model = device->options().cost_model;
    if (Status s = obs::WriteRunReport(*report, cost_model, report_json,
                                       metrics.size() > 0 ? &metrics : nullptr);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote run report to %s\n", report_json.c_str());
  }

  const std::string values_out = flags.GetString("values-out");
  if (!values_out.empty() && state != nullptr) {
    std::FILE* f = std::fopen(values_out.c_str(), "w");
    if (f == nullptr) return Fail(ErrnoError("fopen " + values_out, errno));
    for (VertexId v = 0; v < state->num_vertices(); ++v) {
      std::fprintf(f, "%u %.17g\n", v, program->ValueOf(*state, v));
    }
    std::fclose(f);
    std::printf("wrote %u vertex values to %s\n", state->num_vertices(),
                values_out.c_str());
  }
  // Shell convention for interrupted commands: 128 + SIGINT. The partial
  // report, values and checkpoint above are still written, so a later
  // `--resume` picks up exactly where this run stopped.
  return report->cancelled ? 130 : 0;
}

int CmdProfile(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("dir", "/tmp", "directory on the device to profile");
  flags.Define("file-mb", "64", "scratch file size in MiB");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);
  io::ProfilerOptions options;
  options.file_bytes =
      CheckedCast<std::uint64_t>(flags.GetInt("file-mb")) * 1024 * 1024;
  auto result = io::ProfileDevice(flags.GetString("dir"), options);
  if (!result.ok()) return Fail(result.status());
  const io::IoCostModel model = result->ToCostModel(64 * 1024);
  std::printf("seq read  %.1f MiB/s\nseq write %.1f MiB/s\n"
              "rand read %.1f MiB/s (64 KiB requests)\n"
              "rand write %.1f MiB/s\nfitted model: %s\n",
              result->seq_read_bw / (1 << 20),
              result->seq_write_bw / (1 << 20),
              result->rand_read_bw / (1 << 20),
              result->rand_write_bw / (1 << 20), model.ToString().c_str());
  return 0;
}

// Differential correctness harness (DESIGN.md §11): randomized
// engine-vs-oracle sweep, or deterministic replay of a repro artifact.
// Exits nonzero when any divergence is found (replay included), printing a
// value-level first-divergence report.
int CmdDifftest(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("replay", "", "re-execute a repro artifact instead of sweeping");
  flags.Define("seeds", "8", "sweep: number of random seeds");
  flags.Define("seed0", "1", "sweep: first seed");
  flags.Define("artifact-dir", "",
               "sweep: where minimized repro artifacts are written");
  flags.Define("inject-fault", "none",
               "deliberate engine fault for harness self-tests: "
               "none | drop_max_edge");
  flags.Define("kill-resume", "false",
               "run the crash-safety sweep instead: kill checkpointed runs "
               "at randomized points, damage slots, resume, require "
               "bit-identical results");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  const std::string replay = flags.GetString("replay");
  if (!replay.empty()) {
    auto artifact = testing::ReadArtifact(replay);
    if (!artifact.ok()) return Fail(artifact.status());
    auto scratch = testing::ScratchDir::Create();
    if (!scratch.ok()) return Fail(scratch.status());
    auto divergence = testing::ReplayArtifact(*artifact, scratch->path());
    if (!divergence.ok()) return Fail(divergence.status());
    std::printf("replay %s: algo=%s model=%s p=%u codec=%s threads=%u "
                "cross=%d depth=%u fault=%s (%u vertices, %llu edges)\n",
                replay.c_str(), artifact->algo.c_str(),
                artifact->model.c_str(), artifact->p, artifact->codec.c_str(),
                artifact->threads, artifact->cross_iteration ? 1 : 0,
                artifact->prefetch_depth, testing::FaultName(artifact->fault),
                artifact->graph.num_vertices(),
                static_cast<unsigned long long>(artifact->graph.num_edges()));
    if (!divergence->has_value()) {
      std::printf("no divergence: engine matches the oracle\n");
      return 0;
    }
    std::fprintf(stderr, "DIVERGENCE %s\n",
                 testing::DescribeDivergence(**divergence).c_str());
    return 1;
  }

  if (flags.GetBool("kill-resume")) {
    testing::KillResumeSweepOptions kr;
    kr.num_seeds = CheckedCast<std::uint32_t>(flags.GetInt("seeds"));
    kr.seed0 = CheckedCast<std::uint64_t>(flags.GetInt("seed0"));
    kr.progress = [](const std::string& line) {
      std::printf("%s\n", line.c_str());
    };
    auto summary = testing::RunKillResumeSweep(kr);
    if (!summary.ok()) return Fail(summary.status());
    std::printf("difftest --kill-resume: %llu combos over %llu graphs "
                "(%llu datasets), %zu divergence(s)\n",
                static_cast<unsigned long long>(summary->combos_run),
                static_cast<unsigned long long>(summary->graphs),
                static_cast<unsigned long long>(summary->datasets_built),
                summary->divergences.size());
    if (!summary->divergences.empty()) {
      std::fprintf(stderr, "DIVERGENCE %s\n",
                   testing::DescribeDivergence(summary->divergences[0]).c_str());
      return 1;
    }
    return 0;
  }

  testing::SweepOptions options;
  options.num_seeds =
      CheckedCast<std::uint32_t>(flags.GetInt("seeds"));
  options.seed0 = CheckedCast<std::uint64_t>(flags.GetInt("seed0"));
  options.artifact_dir = flags.GetString("artifact-dir");
  if (flags.GetString("inject-fault") == "drop_max_edge") {
    options.fault = testing::EngineFault::kDropMaxEdge;
  }
  options.progress = [](const std::string& line) {
    std::printf("%s\n", line.c_str());
  };
  auto summary = testing::RunSweep(options);
  if (!summary.ok()) return Fail(summary.status());
  std::printf("difftest: %llu combos over %llu graphs (%llu datasets), "
              "%zu divergence(s)\n",
              static_cast<unsigned long long>(summary->combos_run),
              static_cast<unsigned long long>(summary->graphs),
              static_cast<unsigned long long>(summary->datasets_built),
              summary->divergences.size());
  for (const std::string& path : summary->artifact_paths) {
    std::printf("repro artifact: %s\n", path.c_str());
  }
  if (!summary->divergences.empty()) {
    std::fprintf(stderr, "DIVERGENCE %s\n",
                 testing::DescribeDivergence(summary->divergences[0]).c_str());
    return 1;
  }
  return 0;
}

// Resident query daemon (DESIGN.md §13). Blocks until a `shutdown` request
// or SIGINT/SIGTERM drains the service; a second signal force-exits.
int CmdServe(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("socket", "/tmp/graphsd.sock", "unix socket path to listen on");
  flags.Define("workers", "2", "concurrent engine runs");
  flags.Define("engine-threads", "0",
               "threads inside each engine run (0 = hardware)");
  flags.Define("buffer-mb", "0",
               "shared sub-block buffer per dataset in MiB (0 = 5% of edges)");
  flags.Define("prefetch-depth", "1",
               "async read look-ahead in fetch units (0 = synchronous I/O)");
  flags.Define("no-share-buffer", "false",
               "give every run a private buffer + prefetch tier instead of "
               "the dataset-shared one");
  flags.Define("no-batching", "false",
               "disable multi-source coalescing of compatible queries");
  flags.Define("max-batch", "8", "max value lanes per batched run");
  flags.Define("batch-linger-ms", "2",
               "how long a worker waits for extra batch members");
  flags.Define("max-queue", "64", "admission: max in-flight run requests");
  flags.Define("max-iterations", "10000",
               "admission: iteration cap per query");
  flags.Define("max-deadline-seconds", "300",
               "admission: per-query deadline cap (also the default)");
  flags.Define("no-verify-on-open", "false",
               "skip dataset checksum verification at first open");
  flags.Define("cache-compressed", "false",
               "cache compressed GSDF frames in the shared buffer "
               "(decode-on-hit; no effect on raw datasets)");
  flags.Define("scratch-dir", "",
               "per-run scratch root (default: <socket>.scratch)");
  DefineDeviceFlag(flags);
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  service::ServerOptions options;
  options.socket_path = flags.GetString("socket");
  options.registry.device = flags.GetString("device");
  options.registry.buffer_capacity_bytes =
      CheckedCast<std::uint64_t>(flags.GetInt("buffer-mb")) * 1024 * 1024;
  options.registry.prefetch_depth =
      CheckedCast<std::size_t>(flags.GetInt("prefetch-depth"));
  options.registry.verify_on_open = !flags.GetBool("no-verify-on-open");
  options.registry.cache_compressed = flags.GetBool("cache-compressed");
  options.limits.max_queue = CheckedCast<std::size_t>(flags.GetInt("max-queue"));
  options.limits.max_iterations =
      CheckedCast<std::uint32_t>(flags.GetInt("max-iterations"));
  options.limits.max_deadline_seconds =
      flags.GetDouble("max-deadline-seconds");
  options.workers = CheckedCast<std::size_t>(flags.GetInt("workers"));
  options.engine_threads =
      CheckedCast<std::size_t>(flags.GetInt("engine-threads"));
  options.share_buffer = !flags.GetBool("no-share-buffer");
  options.enable_batching = !flags.GetBool("no-batching");
  options.max_batch = CheckedCast<std::uint32_t>(flags.GetInt("max-batch"));
  options.batch_linger_ms = flags.GetDouble("batch-linger-ms");
  options.scratch_dir = flags.GetString("scratch-dir");

  obs::MetricsRegistry metrics;
  options.metrics = &metrics;
  core::CancellationToken interrupt_token;
  options.external_cancel = &interrupt_token;

  service::QueryServer server(std::move(options));
  // First signal trips the token: the daemon stops accepting work, drains
  // queued queries as cancelled partial reports, and exits cleanly. A
  // second signal force-exits.
  core::SignalCancellationScope signal_scope(&interrupt_token);
  if (Status s = server.Start(); !s.ok()) return Fail(s);
  std::printf("graphsd serve: listening on %s (workers=%zu, sharing=%s, "
              "batching=%s)\n",
              server.socket_path().c_str(),
              CheckedCast<std::size_t>(flags.GetInt("workers")),
              flags.GetBool("no-share-buffer") ? "off" : "on",
              flags.GetBool("no-batching") ? "off" : "on");
  std::fflush(stdout);
  server.Wait();
  const service::ServiceStats stats = server.stats();
  std::printf("graphsd serve: exiting after %llu requests (%llu runs, "
              "%llu batches, %llu errors)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.runs),
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.errors));
  return 0;
}

// One-shot client: builds a request line, prints the response JSON.
int CmdQuery(int argc, const char* const* argv) {
  CliFlags flags;
  flags.Define("socket", "/tmp/graphsd.sock", "daemon socket path");
  flags.Define("op", "run", "ping | info | verify | stats | run | shutdown");
  flags.Define("dataset", "", "dataset directory (a server-side path)");
  flags.Define("algo", "bfs",
               "pr | prd | cc | bfs | sssp | widest_path | ppr");
  flags.Define("root", "0", "source vertex for single-source algorithms");
  flags.Define("iterations", "0", "iteration cap (0 = service default)");
  flags.Define("epsilon", "1e-10", "residual threshold (prd/ppr)");
  flags.Define("deadline-seconds", "0",
               "per-query deadline (0 = the service cap)");
  flags.Define("values", "false", "request per-vertex values (hex doubles)");
  flags.Define("vertices", "",
               "comma-separated vertex ids for --values (empty = all)");
  flags.Define("id", "1", "request id echoed back in the response");
  flags.Define("timeout-seconds", "300", "client receive timeout");
  flags.Define("line", "", "send this raw JSON line instead of building one");
  if (Status s = flags.Parse(argc, argv); !s.ok()) return Fail(s);

  std::string line = flags.GetString("line");
  if (line.empty()) {
    obs::JsonWriter json;
    json.BeginObject();
    json.Field("id", CheckedCast<std::uint64_t>(flags.GetInt("id")));
    json.Field("op", flags.GetString("op"));
    if (!flags.GetString("dataset").empty()) {
      json.Field("dataset", flags.GetString("dataset"));
    }
    if (flags.GetString("op") == "run") {
      json.Field("algo", flags.GetString("algo"));
      json.Field("root", CheckedCast<std::uint64_t>(flags.GetInt("root")));
      if (flags.GetInt("iterations") > 0) {
        json.Field("iterations",
                   CheckedCast<std::uint64_t>(flags.GetInt("iterations")));
      }
      json.Field("epsilon", flags.GetDouble("epsilon"));
      if (flags.GetDouble("deadline-seconds") > 0) {
        json.Field("deadline_seconds", flags.GetDouble("deadline-seconds"));
      }
      if (flags.GetBool("values")) {
        json.Field("values", true);
        const std::string list = flags.GetString("vertices");
        if (!list.empty()) {
          json.Key("vertices");
          json.BeginArray();
          std::size_t start = 0;
          while (start < list.size()) {
            std::size_t comma = list.find(',', start);
            if (comma == std::string::npos) comma = list.size();
            json.Uint(std::strtoull(
                list.substr(start, comma - start).c_str(), nullptr, 10));
            start = comma + 1;
          }
          json.EndArray();
        }
      }
    }
    json.EndObject();
    line = json.Finish();
  }

  service::ServiceClient client;
  if (Status s = client.Connect(flags.GetString("socket")); !s.ok()) {
    return Fail(s);
  }
  auto response =
      client.RoundTrip(line, flags.GetDouble("timeout-seconds"));
  if (!response.ok()) return Fail(response.status());
  std::printf("%s\n", response->c_str());

  // Exit-code mirrors the one-shot CLI: 0 ok, 130 cancelled partial
  // result, 1 service-side error (the response line still prints).
  auto parsed = service::ParseJson(*response);
  if (!parsed.ok()) return Fail(parsed.status());
  if (!parsed->GetBool("ok", false)) return 1;
  const service::JsonValue* exit_code = parsed->Find("exit_code");
  if (exit_code != nullptr && exit_code->is_number()) {
    return static_cast<int>(exit_code->number());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: graphsd <command> [flags]\n"
               "commands: generate convert preprocess info verify run "
               "serve query profile difftest\n"
               "run `graphsd <command> --help=true` is not supported; see\n"
               "tools/graphsd_cli.cpp for every flag.\n");
  return 1;
}

}  // namespace
}  // namespace graphsd

int main(int argc, char** argv) {
  if (argc < 2) return graphsd::Usage();
  const std::string command = argv[1];
  // Shift argv so each command parses only its own flags.
  const int sub_argc = argc - 1;
  const char* const* sub_argv = argv + 1;
  if (command == "generate") return graphsd::CmdGenerate(sub_argc, sub_argv);
  if (command == "convert") return graphsd::CmdConvert(sub_argc, sub_argv);
  if (command == "preprocess") {
    return graphsd::CmdPreprocess(sub_argc, sub_argv);
  }
  if (command == "info") return graphsd::CmdInfo(sub_argc, sub_argv);
  if (command == "verify") return graphsd::CmdVerify(sub_argc, sub_argv);
  if (command == "run") return graphsd::CmdRun(sub_argc, sub_argv);
  if (command == "serve") return graphsd::CmdServe(sub_argc, sub_argv);
  if (command == "query") return graphsd::CmdQuery(sub_argc, sub_argv);
  if (command == "profile") return graphsd::CmdProfile(sub_argc, sub_argv);
  if (command == "difftest") return graphsd::CmdDifftest(sub_argc, sub_argv);
  return graphsd::Usage();
}
