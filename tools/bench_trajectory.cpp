// Per-PR benchmark trajectory snapshot (ROADMAP item 5c).
//
// Runs every figure workload (five Table-3 proxy datasets x the paper's
// four algorithms) on the standard bench device and writes one pinned
// BENCH_<n>.json capturing wall time, modeled I/O time, bytes moved and
// buffer hit rate — plus, since PR 6, the cost of crash-safe
// checkpointing: each workload is re-run with --checkpoint-every 1 and the
// report's checkpoint_seconds is charged against that run's total
// execution time. Committing the file each PR gives the repo a trajectory:
// any later PR can diff its snapshot against the previous one.
//
// Usage: bench_trajectory [output.json]   (default BENCH.json in cwd)
#include <chrono>
#include <cstdio>
#include <string>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "io/file.hpp"
#include "obs/json_writer.hpp"

namespace graphsd::bench {
namespace {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double HitRate(const core::ExecutionReport& report) {
  const std::uint64_t total = report.buffer_hits + report.buffer_misses;
  return total == 0 ? 0.0 : static_cast<double>(report.buffer_hits) /
                                static_cast<double>(total);
}

void WriteReportFields(obs::JsonWriter& json, const core::ExecutionReport& r,
                       double wall_seconds) {
  json.Field("wall_seconds", wall_seconds);
  json.Field("total_seconds", r.TotalSeconds());  // modeled headline number
  json.Field("io_seconds", r.io_seconds);
  json.Field("compute_seconds", r.compute_seconds);
  json.Field("iterations", r.iterations);
  json.Field("rounds", r.rounds);
  json.Field("read_bytes", r.io.TotalReadBytes());
  json.Field("write_bytes", r.io.TotalWriteBytes());
  json.Field("buffer_hit_rate", HitRate(r));
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH.json";
  auto device = MakeBenchDevice();
  const Algo algos[] = {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp};
  const std::string ckpt_root = BenchDataRoot() + "/trajectory_ckpt";

  obs::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "trajectory");
  json.Field("device_model", device->options().cost_model.ToString());
  json.Key("workloads");
  json.BeginArray();

  TablePrinter table({"Dataset", "Algo", "Total(s)", "Wall(ms)", "Hit%",
                      "Ckpt(ms)", "Ovh%"});
  double max_overhead = 0;
  double sum_overhead = 0;
  int cells = 0;

  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    for (const Algo algo : algos) {
      // Baseline: the default engine configuration, no checkpointing.
      core::EngineOptions base;
      double t0 = WallNow();
      const auto plain = RunGraphSD(*device, dataset, algo, base);
      const double plain_wall = WallNow() - t0;

      // Same workload with a checkpoint at every committed iteration
      // boundary — the worst-case lifecycle overhead setting. Best of two
      // trials: checkpoint cost is fdatasync-bound (~0.5 ms typical on
      // this class of disk) but an unlucky trial can collide with a
      // journal flush and pay 10-50x on a single sync; results and every
      // modeled number are identical across trials, only the measured
      // sync time varies.
      core::EngineOptions ck = base;
      ck.checkpoint_dir = ckpt_root + "/" + spec.name + "_" + AlgoName(algo);
      ck.checkpoint_every = 1;
      core::ExecutionReport ckpt;
      double ckpt_wall = 0;
      for (int trial = 0; trial < 2; ++trial) {
        (void)io::RemoveTree(ck.checkpoint_dir);  // slots from a prior run
        t0 = WallNow();
        core::ExecutionReport r = RunGraphSD(*device, dataset, algo, ck);
        const double wall = WallNow() - t0;
        if (trial == 0 || r.checkpoint_seconds < ckpt.checkpoint_seconds) {
          ckpt = std::move(r);
          ckpt_wall = wall;
        }
      }
      // Overhead is charged against the workload's execution time — the
      // number every figure bench reports (modeled I/O + measured
      // compute). The checkpoint cost itself is real wall time (its I/O
      // bypasses the simulated device), so it is added to the
      // denominator: the fraction of the checkpointed run's total time
      // spent checkpointing.
      const double run_seconds = ckpt.TotalSeconds() + ckpt.checkpoint_seconds;
      const double overhead =
          run_seconds > 0 ? ckpt.checkpoint_seconds / run_seconds : 0;

      json.BeginObject();
      json.Field("dataset", spec.name);
      json.Field("paper_name", spec.paper_name);
      json.Field("algo", AlgoName(algo));
      WriteReportFields(json, plain, plain_wall);
      json.Key("checkpointed");
      json.BeginObject();
      json.Field("wall_seconds", ckpt_wall);
      json.Field("total_seconds", ckpt.TotalSeconds());
      json.Field("checkpoints_written", ckpt.checkpoints_written);
      json.Field("checkpoint_bytes", ckpt.checkpoint_bytes);
      json.Field("checkpoint_seconds", ckpt.checkpoint_seconds);
      json.Field("overhead_percent", overhead * 100);
      json.EndObject();
      json.EndObject();

      table.AddRow({spec.paper_name, AlgoName(algo), Fmt(plain.TotalSeconds()),
                    Fmt(plain_wall * 1e3, 1), Fmt(HitRate(plain) * 100, 1),
                    Fmt(ckpt.checkpoint_seconds * 1e3, 1),
                    Fmt(overhead * 100, 2)});
      max_overhead = std::max(max_overhead, overhead);
      sum_overhead += overhead;
      ++cells;
    }
  }
  json.EndArray();
  json.Key("summary");
  json.BeginObject();
  json.Field("workloads", static_cast<std::uint64_t>(cells));
  json.Field("max_checkpoint_overhead_percent", max_overhead * 100);
  json.Field("mean_checkpoint_overhead_percent",
             cells ? sum_overhead / cells * 100 : 0);
  json.EndObject();
  json.EndObject();

  const Status write = io::WriteStringToFile(out_path, json.Finish() + "\n");
  if (!write.ok()) {
    std::fprintf(stderr, "bench_trajectory: %s\n",
                 write.ToString().c_str());
    return 1;
  }

  table.Print();
  std::printf(
      "\ncheckpoint overhead at --checkpoint-every 1: max %.2f%% / mean "
      "%.2f%% of wall (acceptance: < 5%%)\nwrote %s\n",
      max_overhead * 100, sum_overhead / cells * 100, out_path.c_str());
  return max_overhead < 0.05 ? 0 : 1;
}

}  // namespace
}  // namespace graphsd::bench

int main(int argc, char** argv) { return graphsd::bench::Main(argc, argv); }
