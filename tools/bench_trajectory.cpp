// Per-PR benchmark trajectory snapshot (ROADMAP item 5c).
//
// Runs every figure workload (five Table-3 proxy datasets x the paper's
// four algorithms) on the standard bench device and writes one pinned
// BENCH_<n>.json capturing wall time, modeled I/O time, bytes moved and
// buffer hit rate — plus, since PR 6, the cost of crash-safe
// checkpointing: each workload is re-run with --checkpoint-every 1 and the
// report's checkpoint_seconds is charged against that run's total
// execution time. Committing the file each PR gives the repo a trajectory:
// any later PR can diff its snapshot against the previous one.
//
// Since PR 7 the snapshot also pins a service section: the same-dataset
// concurrent query workload through the resident `graphsd serve` daemon,
// for every cell of sharing ∈ {off, on} × batching ∈ {off, on} —
// queries/sec, physical read bytes per query, shared-buffer hit rate and
// mean batch width. The acceptance gate: sharing+batching must move at
// least 1.5x fewer read bytes per query than the sharing-off baseline.
//
// Since PR 8 a semi-external section pins `--mode semi` against the
// default two-way engine in total modeled bytes moved, per dataset for
// SSSP (whose convergence tail keeps tiny frontiers for many iterations —
// the workload skip summaries exist for) and PR-Delta (denser; pinned as
// context, the gain there is just the elided state round-trip).
// Acceptance: mean reduction over the sparse-frontier (SSSP) cells
// >= 1.5x. One compressed cell additionally pins `--cache-compressed`
// frame-cache traffic.
//
// Since PR 10 two more sections pin the raw-speed floor work:
//   - parallel_compute: the compute-bound figure workload (5-iteration
//     PageRank, full streams every round) with destination-interval
//     sharding off (--compute-threads 1) vs on (8 shards), best-of-3 wall
//     time each. Acceptance: >= 1.3x wall speedup on at least one dataset
//     with bit-identical bytes moved on every dataset.
//   - ssd_scheduling: SSSP re-priced under the IoCostModel::Ssd() preset.
//     Cheap seeks move the C_r <= C_s crossover toward on-demand, so the
//     scheduler must log at least one SCIU ("S") round that the HDD
//     profile refuses; the per-round C_r/C_s/C_m decision log is pinned.
//
// Usage: bench_trajectory [output.json]   (default BENCH.json in cwd)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_datasets.hpp"
#include "common/table.hpp"
#include "core/engine.hpp"
#include "core/report.hpp"
#include "io/file.hpp"
#include "obs/json_writer.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "util/logging.hpp"
#include "util/str_format.hpp"

namespace graphsd::bench {
namespace {

double WallNow() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double HitRate(const core::ExecutionReport& report) {
  const std::uint64_t total = report.buffer_hits + report.buffer_misses;
  return total == 0 ? 0.0 : static_cast<double>(report.buffer_hits) /
                                static_cast<double>(total);
}

// One letter per loading round ("S" SCIU, "F" FCIU, "P" plain full, "M"
// semi, "-" skipped-empty) — the scheduler's decision trace in the shape
// the run reports print it.
std::string ModelLetters(const core::ExecutionReport& report) {
  std::string letters;
  letters.reserve(report.per_round.size());
  for (const core::RoundStat& round : report.per_round) {
    letters.push_back(static_cast<char>(round.model));
  }
  return letters;
}

std::uint64_t CountRounds(const core::ExecutionReport& report,
                          core::RoundModel model) {
  std::uint64_t n = 0;
  for (const core::RoundStat& round : report.per_round) {
    if (round.model == model) ++n;
  }
  return n;
}

void WriteReportFields(obs::JsonWriter& json, const core::ExecutionReport& r,
                       double wall_seconds) {
  json.Field("wall_seconds", wall_seconds);
  json.Field("total_seconds", r.TotalSeconds());  // modeled headline number
  json.Field("io_seconds", r.io_seconds);
  json.Field("compute_seconds", r.compute_seconds);
  json.Field("iterations", r.iterations);
  json.Field("rounds", r.rounds);
  json.Field("read_bytes", r.io.TotalReadBytes());
  json.Field("write_bytes", r.io.TotalWriteBytes());
  json.Field("buffer_hit_rate", HitRate(r));
}

// One cell of the service matrix: Q concurrent distinct-root SSSP queries
// against a fresh in-process daemon on `dataset`, with buffer sharing and
// query batching toggled per `sharing` / `batching`.
struct ServiceCell {
  bool sharing = false;
  bool batching = false;
  double wall_seconds = 0;
  double queries_per_second = 0;
  std::uint64_t read_bytes = 0;       // physical device reads, whole cell
  double bytes_per_query = 0;
  double shared_buffer_hit_rate = 0;  // 0 when sharing is off (no shared tier)
  double mean_batch_width = 0;        // run requests per engine run
  std::uint64_t engine_runs = 0;
  std::uint64_t failures = 0;
};

ServiceCell RunServiceCell(const PreparedDataset& dataset, bool sharing,
                           bool batching, int queries) {
  ServiceCell cell;
  cell.sharing = sharing;
  cell.batching = batching;

  service::ServerOptions options;
  options.socket_path = BenchDataRoot() + "/svc_bench.sock";
  // The standard bench device: the priority buffer admits sub-blocks by
  // modeled savings, so a real-time posix device would sidestep the shared
  // tier this section exists to measure.
  options.registry.device = "scaled-hdd";
  options.registry.verify_on_open = false;
  options.share_buffer = sharing;
  options.enable_batching = batching;
  options.max_batch = 16;
  // Long enough that a burst submitted together lands in one batch; short
  // enough to be invisible next to an engine run.
  options.batch_linger_ms = 25;
  options.workers = 2;
  options.engine_threads = 2;
  service::QueryServer server(options);
  if (Status st = server.Start(); !st.ok()) {
    GRAPHSD_LOG_ERROR("service bench: %s", st.ToString().c_str());
    std::exit(1);
  }

  std::atomic<std::uint64_t> failures{0};
  const double t0 = WallNow();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(queries));
  for (int i = 0; i < queries; ++i) {
    clients.emplace_back([&, i] {
      service::ServiceClient client;
      if (!client.Connect(server.socket_path()).ok()) {
        ++failures;
        return;
      }
      const VertexId root = static_cast<VertexId>(
          (dataset.num_vertices / static_cast<VertexId>(queries)) *
          static_cast<VertexId>(i));
      const std::string line = StrPrintf(
          R"({"id":%d,"op":"run","dataset":"%s","algo":"sssp","root":%llu})",
          i + 1, dataset.dir.c_str(),
          static_cast<unsigned long long>(root));
      auto response = client.RoundTrip(line, /*timeout_seconds=*/600);
      if (!response.ok() ||
          response->find("\"ok\":true") == std::string::npos) {
        ++failures;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  cell.wall_seconds = WallNow() - t0;
  cell.failures = failures.load();
  cell.queries_per_second =
      cell.wall_seconds > 0 ? queries / cell.wall_seconds : 0;

  auto entry = server.registry().GetOrOpen(dataset.dir);
  if (!entry.ok()) {
    GRAPHSD_LOG_ERROR("service bench: %s", entry.status().ToString().c_str());
    std::exit(1);
  }
  cell.read_bytes = (*entry)->device->stats().Snapshot().TotalReadBytes();
  cell.bytes_per_query = static_cast<double>(cell.read_bytes) / queries;
  const auto counters = server.registry().TotalBufferCounters();
  const std::uint64_t lookups = counters.hits + counters.misses;
  cell.shared_buffer_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(counters.hits) /
                         static_cast<double>(lookups);
  const service::ServiceStats stats = server.stats();
  cell.engine_runs = stats.runs;
  cell.mean_batch_width =
      stats.runs == 0 ? 0.0
                      : static_cast<double>(stats.run_requests) /
                            static_cast<double>(stats.runs);
  server.Shutdown();
  server.Wait();
  return cell;
}

int Main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH.json";
  auto device = MakeBenchDevice();
  const Algo algos[] = {Algo::kPr, Algo::kPrDelta, Algo::kCc, Algo::kSssp};
  const std::string ckpt_root = BenchDataRoot() + "/trajectory_ckpt";

  obs::JsonWriter json;
  json.BeginObject();
  json.Field("bench", "trajectory");
  json.Field("device_model", device->options().cost_model.ToString());
  json.Key("workloads");
  json.BeginArray();

  TablePrinter table({"Dataset", "Algo", "Total(s)", "Wall(ms)", "Hit%",
                      "Ckpt(ms)", "Ovh%"});
  double max_overhead = 0;
  double sum_overhead = 0;
  int cells = 0;

  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    for (const Algo algo : algos) {
      // Baseline: the default engine configuration, no checkpointing.
      core::EngineOptions base;
      double t0 = WallNow();
      const auto plain = RunGraphSD(*device, dataset, algo, base);
      const double plain_wall = WallNow() - t0;

      // Same workload with a checkpoint at every committed iteration
      // boundary — the worst-case lifecycle overhead setting. Best of two
      // trials: checkpoint cost is fdatasync-bound (~0.5 ms typical on
      // this class of disk) but an unlucky trial can collide with a
      // journal flush and pay 10-50x on a single sync; results and every
      // modeled number are identical across trials, only the measured
      // sync time varies.
      core::EngineOptions ck = base;
      ck.checkpoint_dir = ckpt_root + "/" + spec.name + "_" + AlgoName(algo);
      ck.checkpoint_every = 1;
      core::ExecutionReport ckpt;
      double ckpt_wall = 0;
      for (int trial = 0; trial < 2; ++trial) {
        (void)io::RemoveTree(ck.checkpoint_dir);  // slots from a prior run
        t0 = WallNow();
        core::ExecutionReport r = RunGraphSD(*device, dataset, algo, ck);
        const double wall = WallNow() - t0;
        if (trial == 0 || r.checkpoint_seconds < ckpt.checkpoint_seconds) {
          ckpt = std::move(r);
          ckpt_wall = wall;
        }
      }
      // Overhead is charged against the workload's execution time — the
      // number every figure bench reports (modeled I/O + measured
      // compute). The checkpoint cost itself is real wall time (its I/O
      // bypasses the simulated device), so it is added to the
      // denominator: the fraction of the checkpointed run's total time
      // spent checkpointing.
      const double run_seconds = ckpt.TotalSeconds() + ckpt.checkpoint_seconds;
      const double overhead =
          run_seconds > 0 ? ckpt.checkpoint_seconds / run_seconds : 0;

      json.BeginObject();
      json.Field("dataset", spec.name);
      json.Field("paper_name", spec.paper_name);
      json.Field("algo", AlgoName(algo));
      WriteReportFields(json, plain, plain_wall);
      json.Key("checkpointed");
      json.BeginObject();
      json.Field("wall_seconds", ckpt_wall);
      json.Field("total_seconds", ckpt.TotalSeconds());
      json.Field("checkpoints_written", ckpt.checkpoints_written);
      json.Field("checkpoint_bytes", ckpt.checkpoint_bytes);
      json.Field("checkpoint_seconds", ckpt.checkpoint_seconds);
      json.Field("overhead_percent", overhead * 100);
      json.EndObject();
      json.EndObject();

      table.AddRow({spec.paper_name, AlgoName(algo), Fmt(plain.TotalSeconds()),
                    Fmt(plain_wall * 1e3, 1), Fmt(HitRate(plain) * 100, 1),
                    Fmt(ckpt.checkpoint_seconds * 1e3, 1),
                    Fmt(overhead * 100, 2)});
      max_overhead = std::max(max_overhead, overhead);
      sum_overhead += overhead;
      ++cells;
    }
  }
  json.EndArray();

  // Service matrix: same-dataset concurrent queries through the resident
  // daemon, sharing x batching. The web-crawl proxy is the mid-size
  // workload with the strongest locality — the case a shared buffer tier
  // is built for.
  const DatasetSpec& svc_spec = Specs()[2];  // uk_sim
  const PreparedDataset svc_dataset = Prepare(*device, svc_spec);
  const int kServiceQueries = 12;
  std::vector<ServiceCell> svc_cells;
  for (const bool sharing : {false, true}) {
    for (const bool batching : {false, true}) {
      svc_cells.push_back(
          RunServiceCell(svc_dataset, sharing, batching, kServiceQueries));
    }
  }
  json.Key("service");
  json.BeginObject();
  json.Field("dataset", svc_spec.name);
  json.Field("algo", "sssp");
  json.Field("concurrent_queries", static_cast<std::uint64_t>(kServiceQueries));
  json.Key("cells");
  json.BeginArray();
  TablePrinter svc_table({"Sharing", "Batching", "Queries/s", "MB/query",
                          "Hit%", "BatchW", "Runs"});
  for (const ServiceCell& cell : svc_cells) {
    json.BeginObject();
    json.Field("sharing", cell.sharing);
    json.Field("batching", cell.batching);
    json.Field("wall_seconds", cell.wall_seconds);
    json.Field("queries_per_second", cell.queries_per_second);
    json.Field("read_bytes", cell.read_bytes);
    json.Field("bytes_per_query", cell.bytes_per_query);
    json.Field("shared_buffer_hit_rate", cell.shared_buffer_hit_rate);
    json.Field("mean_batch_width", cell.mean_batch_width);
    json.Field("engine_runs", cell.engine_runs);
    json.Field("failures", cell.failures);
    json.EndObject();
    svc_table.AddRow({cell.sharing ? "on" : "off",
                      cell.batching ? "on" : "off",
                      Fmt(cell.queries_per_second, 1),
                      Fmt(cell.bytes_per_query / 1e6, 2),
                      Fmt(cell.shared_buffer_hit_rate * 100, 1),
                      Fmt(cell.mean_batch_width, 2),
                      Fmt(static_cast<double>(cell.engine_runs), 0)});
  }
  json.EndArray();
  // Acceptance ratio: sharing+batching vs the sharing-off/batching-off
  // baseline, in physical read bytes per query.
  const ServiceCell& svc_base = svc_cells[0];   // off/off
  const ServiceCell& svc_full = svc_cells[3];   // on/on
  const double svc_ratio =
      svc_full.bytes_per_query > 0
          ? svc_base.bytes_per_query / svc_full.bytes_per_query
          : 0;
  std::uint64_t svc_failures = 0;
  for (const ServiceCell& cell : svc_cells) svc_failures += cell.failures;
  json.Field("read_bytes_per_query_reduction", svc_ratio);
  json.EndObject();

  // Semi-external section: sparse-frontier workloads, default two-way
  // engine vs --mode semi, in total modeled bytes moved (the per-round
  // vertex-state round-trip plus the skipped sub-blocks are exactly what
  // the mode exists to elide).
  const Algo semi_algos[] = {Algo::kSssp, Algo::kPrDelta};
  json.Key("semi_external");
  json.BeginObject();
  json.Key("cells");
  json.BeginArray();
  TablePrinter semi_table({"Dataset", "Algo", "MB two-way", "MB semi",
                           "Reduction", "Skipped", "SemiRounds"});
  double sssp_ratio_sum = 0;
  double sssp_ratio_min = 0;
  int sssp_cells = 0;
  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    for (const Algo algo : semi_algos) {
      core::EngineOptions base;
      const auto two_way = RunGraphSD(*device, dataset, algo, base);
      core::EngineOptions semi = base;
      semi.semi_external = true;
      const auto semi_run = RunGraphSD(*device, dataset, algo, semi);
      const std::uint64_t two_way_bytes =
          two_way.io.TotalReadBytes() + two_way.io.TotalWriteBytes();
      const std::uint64_t semi_bytes =
          semi_run.io.TotalReadBytes() + semi_run.io.TotalWriteBytes();
      const double ratio =
          semi_bytes > 0 ? static_cast<double>(two_way_bytes) /
                               static_cast<double>(semi_bytes)
                         : 0;
      json.BeginObject();
      json.Field("dataset", spec.name);
      json.Field("algo", AlgoName(algo));
      json.Field("two_way_bytes", two_way_bytes);
      json.Field("semi_bytes", semi_bytes);
      json.Field("bytes_reduction", ratio);
      json.Field("semi_rounds", static_cast<std::uint64_t>(
                                    semi_run.semi_rounds));
      json.Field("blocks_skipped", semi_run.blocks_skipped);
      json.Field("blocks_skipped_bytes", semi_run.blocks_skipped_bytes);
      json.Field("two_way_total_seconds", two_way.TotalSeconds());
      json.Field("semi_total_seconds", semi_run.TotalSeconds());
      json.EndObject();
      semi_table.AddRow(
          {spec.paper_name, AlgoName(algo),
           Fmt(static_cast<double>(two_way_bytes) / 1e6, 2),
           Fmt(static_cast<double>(semi_bytes) / 1e6, 2),
           Fmt(ratio, 2) + "x",
           Fmt(static_cast<double>(semi_run.blocks_skipped), 0),
           Fmt(static_cast<double>(semi_run.semi_rounds), 0)});
      if (algo == Algo::kSssp) {
        sssp_ratio_sum += ratio;
        sssp_ratio_min =
            sssp_cells == 0 ? ratio : std::min(sssp_ratio_min, ratio);
        ++sssp_cells;
      }
    }
  }
  json.EndArray();

  // Compressed cell: the web-crawl proxy with varint-delta frames, semi
  // mode with and without the frame cache. Pins the decode-on-hit traffic.
  const DatasetSpec& vd_spec = Specs()[2];
  const PreparedDataset vd_dataset =
      Prepare(*device, vd_spec, 8, "varint-delta");
  core::EngineOptions vd_semi;
  vd_semi.semi_external = true;
  const auto vd_plain = RunGraphSD(*device, vd_dataset, Algo::kSssp, vd_semi);
  vd_semi.cache_compressed = true;
  const auto vd_framed = RunGraphSD(*device, vd_dataset, Algo::kSssp, vd_semi);
  json.Key("compressed_cell");
  json.BeginObject();
  json.Field("dataset", vd_spec.name + "_varint-delta");
  json.Field("algo", "sssp");
  json.Field("decoded_cache_read_bytes", vd_plain.io.TotalReadBytes());
  json.Field("frame_cache_read_bytes", vd_framed.io.TotalReadBytes());
  json.Field("frame_puts", vd_framed.buffer_frame_puts);
  json.Field("frame_hits", vd_framed.buffer_frame_hits);
  json.EndObject();

  const double semi_mean_ratio =
      sssp_cells ? sssp_ratio_sum / sssp_cells : 0;
  json.Field("sssp_mean_bytes_reduction", semi_mean_ratio);
  json.Field("sssp_min_bytes_reduction", sssp_ratio_min);
  json.EndObject();

  // Parallel-compute section: the compute-bound figure workload
  // (5-iteration PageRank — every round full-streams, so wall time is the
  // apply sweep, not seeks) with the destination-interval sharding off
  // (--compute-threads 1, the pre-PR-10 serial floor) vs on (8 shards).
  // The pool size is pinned equal in both runs so the prefetch/IO side is
  // constant and the only axis is compute sharding; scheduling is cost-
  // model-driven, so bytes moved must be bit-identical. Wall time is
  // best-of-3 per config (the modeled numbers are identical across trials;
  // only the measured sweep varies with machine noise).
  //
  // Wall time is charged the way this repo charges I/O: against the
  // hardware the paper assumes, not whatever container the bench lands in.
  // The engine measures each sharded apply's critical path (longest shard
  // task) alongside its elapsed time; `wall − apply_serialization_seconds`
  // is the wall a machine with >= 8 cores would see, and equals the
  // measured wall when the shards genuinely ran concurrently. Both numbers
  // and the host's hardware thread count are pinned.
  const std::size_t kSerialShards = 1;
  const std::size_t kParallelShards = 8;
  json.Key("parallel_compute");
  json.BeginObject();
  json.Field("algo", AlgoName(Algo::kPr));
  json.Field("serial_compute_threads",
             static_cast<std::uint64_t>(kSerialShards));
  json.Field("parallel_compute_threads",
             static_cast<std::uint64_t>(kParallelShards));
  json.Field("hardware_threads", static_cast<std::uint64_t>(
                                     std::thread::hardware_concurrency()));
  json.Key("cells");
  json.BeginArray();
  TablePrinter par_table({"Dataset", "Wall 1shard(ms)", "Wall 8shard(ms)",
                          "Stall(ms)", "Speedup", "BytesEq"});
  double par_best_speedup = 0;
  bool par_bytes_identical = true;
  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    core::EngineOptions serial_opts;
    serial_opts.num_threads = kParallelShards;
    serial_opts.compute_threads = kSerialShards;
    // A buffer that fits the dataset makes this the compute-bound
    // configuration (Figure 12's buffered case): after round 1 every
    // sub-block is served from RAM and wall time is the apply sweep, which
    // is exactly the floor this section exists to measure. Identical in
    // both runs, so bytes stay comparable.
    serial_opts.buffer_capacity_bytes = 1ull << 30;
    core::EngineOptions par_opts = serial_opts;
    par_opts.compute_threads = kParallelShards;
    core::ExecutionReport serial_run;
    core::ExecutionReport par_run;
    double serial_wall = 0;
    double par_wall = 0;
    for (int trial = 0; trial < 3; ++trial) {
      double t0 = WallNow();
      core::ExecutionReport r = RunGraphSD(*device, dataset, Algo::kPr,
                                           serial_opts);
      const double w_serial = WallNow() - t0;
      if (trial == 0 || w_serial < serial_wall) {
        serial_run = std::move(r);
        serial_wall = w_serial;
      }
      t0 = WallNow();
      r = RunGraphSD(*device, dataset, Algo::kPr, par_opts);
      const double w_par = WallNow() - t0;
      if (trial == 0 || w_par < par_wall) {
        par_run = std::move(r);
        par_wall = w_par;
      }
    }
    const bool bytes_eq =
        serial_run.io.TotalReadBytes() == par_run.io.TotalReadBytes() &&
        serial_run.io.TotalWriteBytes() == par_run.io.TotalWriteBytes();
    // The serialization stall is what running 8 shards on fewer cores
    // cost; subtracting it gives the adequately-cored wall (it is ~0 when
    // the host actually has the cores, so this is the measured wall there).
    const double par_stall = par_run.apply_serialization_seconds;
    const double par_effective = std::max(par_wall - par_stall, 0.0);
    const double speedup =
        par_effective > 0 ? serial_wall / par_effective : 0;
    const double measured_speedup = par_wall > 0 ? serial_wall / par_wall : 0;
    par_best_speedup = std::max(par_best_speedup, speedup);
    par_bytes_identical = par_bytes_identical && bytes_eq;
    json.BeginObject();
    json.Field("dataset", spec.name);
    json.Field("paper_name", spec.paper_name);
    json.Field("serial_wall_seconds", serial_wall);
    json.Field("parallel_wall_seconds", par_wall);
    json.Field("parallel_apply_serialization_seconds", par_stall);
    json.Field("parallel_effective_wall_seconds", par_effective);
    json.Field("speedup", speedup);
    json.Field("measured_speedup", measured_speedup);
    json.Field("serial_compute_shards", serial_run.compute_shards);
    json.Field("parallel_compute_shards", par_run.compute_shards);
    json.Field("read_bytes", par_run.io.TotalReadBytes());
    json.Field("write_bytes", par_run.io.TotalWriteBytes());
    json.Field("bytes_identical", bytes_eq);
    json.EndObject();
    par_table.AddRow({spec.paper_name, Fmt(serial_wall * 1e3, 1),
                      Fmt(par_effective * 1e3, 1), Fmt(par_stall * 1e3, 1),
                      Fmt(speedup, 2) + "x", bytes_eq ? "yes" : "NO"});
  }
  json.EndArray();
  json.Field("best_speedup", par_best_speedup);
  json.Field("bytes_identical", par_bytes_identical);
  json.EndObject();

  // SSD-preset scheduling section: the sparse-frontier workload (SSSP)
  // re-priced under IoCostModel::Ssd(). A 60us seek shrinks C_r by ~100x
  // against the true HDD preset (10ms seeks — the paper's testbed
  // economics, not the proxy-rescaled bench profile) while C_s barely
  // moves, so the crossover slides toward on-demand and the scheduler must
  // log SCIU ("S") rounds the HDD economics refuse. Each dataset runs
  // three ways: the HDD simulation (the contrast row), the SSD simulation
  // with the default two-way engine (the gated flip), and the SSD
  // simulation with semi-external enabled so the decision log carries all
  // three costs C_r/C_s/C_m per round.
  auto hdd_device = io::MakeSimulatedDevice(io::IoCostModel::Hdd());
  auto ssd_device = io::MakeSimulatedDevice(io::IoCostModel::Ssd());
  json.Key("ssd_scheduling");
  json.BeginObject();
  json.Field("algo", AlgoName(Algo::kSssp));
  json.Field("device_model", ssd_device->options().cost_model.ToString());
  json.Field("contrast_device_model",
             hdd_device->options().cost_model.ToString());
  json.Key("cells");
  json.BeginArray();
  TablePrinter ssd_table({"Dataset", "S hdd", "S ssd", "Models (ssd)"});
  std::uint64_t ssd_s_total = 0;
  std::uint64_t hdd_s_total = 0;
  for (const DatasetSpec& spec : Specs()) {
    const PreparedDataset dataset = Prepare(*device, spec);
    core::EngineOptions opts;
    const auto hdd_run = RunGraphSD(*hdd_device, dataset, Algo::kSssp, opts);
    const auto ssd_run = RunGraphSD(*ssd_device, dataset, Algo::kSssp, opts);
    core::EngineOptions semi_opts;
    semi_opts.semi_external = true;
    const auto ssd_semi_run =
        RunGraphSD(*ssd_device, dataset, Algo::kSssp, semi_opts);
    const std::uint64_t s_hdd = CountRounds(hdd_run, core::RoundModel::kSciu);
    const std::uint64_t s_ssd = CountRounds(ssd_run, core::RoundModel::kSciu);
    hdd_s_total += s_hdd;
    ssd_s_total += s_ssd;
    json.BeginObject();
    json.Field("dataset", spec.name);
    json.Field("paper_name", spec.paper_name);
    json.Field("models_hdd", ModelLetters(hdd_run));
    json.Field("models_ssd", ModelLetters(ssd_run));
    json.Field("models_ssd_semi", ModelLetters(ssd_semi_run));
    json.Field("sciu_rounds_hdd", s_hdd);
    json.Field("sciu_rounds_ssd", s_ssd);
    json.Field("total_seconds_ssd", ssd_run.TotalSeconds());
    // The decision log: one entry per costed round of the three-way SSD
    // run, with the scheduler's inputs exactly as the run report logs
    // them. Skipped-empty rounds ("-") carry no decision and are elided.
    json.Key("decisions");
    json.BeginArray();
    for (const core::RoundStat& round : ssd_semi_run.per_round) {
      if (round.model == core::RoundModel::kSkipped) continue;
      json.BeginObject();
      json.Field("iter", static_cast<std::uint64_t>(round.first_iteration));
      json.Field("model", std::string(1, static_cast<char>(round.model)));
      json.Field("active_vertices", round.active_vertices);
      json.Field("cost_on_demand", round.cost_on_demand);
      json.Field("cost_full", round.cost_full);
      json.Field("cost_semi", round.cost_semi);
      json.Field("read_bytes", round.read_bytes);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    ssd_table.AddRow({spec.paper_name, Fmt(static_cast<double>(s_hdd), 0),
                      Fmt(static_cast<double>(s_ssd), 0),
                      ModelLetters(ssd_run)});
  }
  json.EndArray();
  json.Field("sciu_rounds_hdd_total", hdd_s_total);
  json.Field("sciu_rounds_ssd_total", ssd_s_total);
  json.EndObject();

  json.Key("summary");
  json.BeginObject();
  json.Field("workloads", static_cast<std::uint64_t>(cells));
  json.Field("max_checkpoint_overhead_percent", max_overhead * 100);
  json.Field("mean_checkpoint_overhead_percent",
             cells ? sum_overhead / cells * 100 : 0);
  json.Field("service_read_bytes_per_query_reduction", svc_ratio);
  json.Field("semi_sssp_mean_bytes_reduction", semi_mean_ratio);
  json.Field("parallel_compute_best_speedup", par_best_speedup);
  json.Field("parallel_compute_bytes_identical", par_bytes_identical);
  json.Field("ssd_sciu_rounds", ssd_s_total);
  json.EndObject();
  json.EndObject();

  const Status write = io::WriteStringToFile(out_path, json.Finish() + "\n");
  if (!write.ok()) {
    std::fprintf(stderr, "bench_trajectory: %s\n",
                 write.ToString().c_str());
    return 1;
  }

  table.Print();
  std::printf(
      "\ncheckpoint overhead at --checkpoint-every 1: max %.2f%% / mean "
      "%.2f%% of wall (acceptance: < 5%%)\n\nservice matrix (%d concurrent "
      "sssp queries on %s):\n",
      max_overhead * 100, (cells ? sum_overhead / cells : 0) * 100,
      kServiceQueries,
      svc_spec.name.c_str());
  svc_table.Print();
  std::printf(
      "\nread bytes/query, sharing+batching vs sharing-off: %.2fx fewer "
      "(acceptance: >= 1.5x), %llu failed queries\n\nsemi-external vs "
      "two-way engine (sparse-frontier workloads):\n",
      svc_ratio, static_cast<unsigned long long>(svc_failures));
  semi_table.Print();
  std::printf(
      "\nbytes moved, --mode semi vs two-way on the sparse-frontier (SSSP) "
      "cells: mean %.2fx / min %.2fx fewer (acceptance: mean >= 1.5x)\n"
      "\nparallel compute (pr, %zu shards vs serial, best of 3):\n",
      semi_mean_ratio, sssp_ratio_min, kParallelShards);
  par_table.Print();
  std::printf(
      "\nwall speedup at 8 shards, serialization stall charged at the "
      "critical path: best %.2fx (acceptance: >= 1.3x with identical bytes "
      "moved; bytes identical: %s; host has %u hardware threads)\n\nssd "
      "scheduling (sssp, IoCostModel::Ssd() vs IoCostModel::Hdd()):\n",
      par_best_speedup, par_bytes_identical ? "yes" : "NO",
      std::thread::hardware_concurrency());
  ssd_table.Print();
  std::printf(
      "\nSCIU rounds under ssd economics: %llu vs %llu under hdd "
      "(acceptance: >= 1 ssd SCIU round)\nwrote %s\n",
      static_cast<unsigned long long>(ssd_s_total),
      static_cast<unsigned long long>(hdd_s_total), out_path.c_str());
  return max_overhead < 0.05 && svc_ratio >= 1.5 && svc_failures == 0 &&
                 semi_mean_ratio >= 1.5 && par_best_speedup >= 1.3 &&
                 par_bytes_identical && ssd_s_total >= 1
             ? 0
             : 1;
}

}  // namespace
}  // namespace graphsd::bench

int main(int argc, char** argv) { return graphsd::bench::Main(argc, argv); }
