#!/bin/sh
# Builds and tests the tree under ASan+UBSan (GRAPHSD_SANITIZE=ON) in a
# separate build directory, so the instrumented binaries never mix with the
# regular build. Usage: tools/sanitize_build.sh [ctest-regex]
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-sanitize"

cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRAPHSD_SANITIZE=ON
cmake --build "$BUILD" -j "$(nproc)"

cd "$BUILD"
if [ -n "$1" ]; then
  ctest --output-on-failure -R "$1"
else
  ctest --output-on-failure
fi
