#!/bin/sh
# Builds and tests the tree under a sanitizer in a separate build directory,
# so the instrumented binaries never mix with the regular build.
#
# Usage: tools/sanitize_build.sh [address|thread] [ctest-regex]
#   address (default) — ASan + UBSan, full suite unless a regex is given.
#   thread            — TSan; races in the prefetch loader, ReadQueue and
#                       I/O accounting paths.
set -e
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

MODE="address"
case "$1" in
  address|thread)
    MODE="$1"
    shift
    ;;
esac
BUILD="$ROOT/build-sanitize-$MODE"

cmake -B "$BUILD" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGRAPHSD_SANITIZE="$MODE"
cmake --build "$BUILD" -j "$(nproc)"

cd "$BUILD"
if [ -n "$1" ]; then
  ctest --output-on-failure -R "$1"
else
  ctest --output-on-failure
fi
