#include "partition/grid_dataset.hpp"

#include "util/crc32c.hpp"

namespace graphsd::partition {
namespace {

template <typename T>
std::span<std::uint8_t> AsWritableBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

template <typename T>
std::span<const std::uint8_t> AsBytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

// Compares a freshly loaded payload against its build-time CRC, counting the
// mismatch in the device's stats so end-of-run reports surface it.
Status VerifyCrc(io::Device& device, const std::string& path,
                 std::span<const std::uint8_t> data, std::uint32_t expected) {
  const std::uint32_t actual = Crc32c(data);
  if (actual == expected) return Status::Ok();
  device.stats().RecordChecksumFailure();
  return CorruptDataError(path + ": CRC32C mismatch (stored " +
                          std::to_string(expected) + ", computed " +
                          std::to_string(actual) + ")");
}

}  // namespace

Status SubBlockReader::ReadRange(std::uint64_t first, std::uint64_t count,
                                 std::vector<Edge>& edges_out,
                                 std::vector<Weight>* weights_out) {
  if (count == 0) return Status::Ok();
  if (first > num_edges_ || count > num_edges_ - first) {
    return CorruptDataError(
        edges_.path() + ": range read [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") outside sub-block of " +
        std::to_string(num_edges_) + " edges (corrupt index?)");
  }
  const std::size_t edge_base = edges_out.size();
  edges_out.resize(edge_base + count);
  GRAPHSD_RETURN_IF_ERROR(edges_.ReadAt(
      first * sizeof(Edge),
      {reinterpret_cast<std::uint8_t*>(edges_out.data() + edge_base),
       count * sizeof(Edge)}));
  if (has_weights_ && weights_out != nullptr) {
    const std::size_t weight_base = weights_out->size();
    weights_out->resize(weight_base + count);
    GRAPHSD_RETURN_IF_ERROR(weights_.ReadAt(
        first * sizeof(Weight),
        {reinterpret_cast<std::uint8_t*>(weights_out->data() + weight_base),
         count * sizeof(Weight)}));
  }
  return Status::Ok();
}

Status IndexReader::ReadOffsets(VertexId first_local, VertexId count,
                                std::vector<std::uint32_t>& out) {
  out.resize(count);
  if (count == 0) return Status::Ok();
  const std::uint64_t first = first_local;
  if (first > num_entries_ || count > num_entries_ - first) {
    return CorruptDataError(file_.path() + ": offset read [" +
                            std::to_string(first) + ", " +
                            std::to_string(first + count) +
                            ") outside index of " +
                            std::to_string(num_entries_) + " entries");
  }
  return file_.ReadAt(static_cast<std::uint64_t>(first_local) *
                          sizeof(std::uint32_t),
                      AsWritableBytes(out));
}

Result<GridDataset> GridDataset::Open(io::Device& device,
                                      const std::string& dir) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::string text,
                           io::ReadFileToString(ManifestPath(dir)));
  GRAPHSD_ASSIGN_OR_RETURN(GridManifest manifest, GridManifest::Parse(text));

  GridDataset dataset;
  dataset.device_ = &device;
  dataset.dir_ = dir;
  dataset.manifest_ = std::move(manifest);

  dataset.degrees_.resize(dataset.manifest_.num_vertices);
  GRAPHSD_ASSIGN_OR_RETURN(
      io::DeviceFile file, device.Open(DegreesPath(dir), io::OpenMode::kRead));
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(dataset.degrees_)));
  if (dataset.manifest_.has_checksums) {
    GRAPHSD_RETURN_IF_ERROR(VerifyCrc(device, DegreesPath(dir),
                                      AsBytes(dataset.degrees_),
                                      dataset.manifest_.degrees_crc));
  }
  return dataset;
}

Result<SubBlock> GridDataset::LoadSubBlock(std::uint32_t i, std::uint32_t j,
                                           bool load_weights) const {
  GRAPHSD_CHECK(i < p() && j < p());
  SubBlock block;
  const std::uint64_t count = manifest_.EdgesIn(i, j);
  if (count == 0) return block;

  block.edges.resize(count);
  {
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device_->Open(SubBlockEdgesPath(dir_, i, j), io::OpenMode::kRead));
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(block.edges)));
    if (manifest_.has_checksums) {
      GRAPHSD_RETURN_IF_ERROR(
          VerifyCrc(*device_, SubBlockEdgesPath(dir_, i, j),
                    AsBytes(block.edges),
                    manifest_.edge_crcs[manifest_.SubBlockSlot(i, j)]));
    }
  }
  if (load_weights && weighted()) {
    block.weights.resize(count);
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device_->Open(SubBlockWeightsPath(dir_, i, j), io::OpenMode::kRead));
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(block.weights)));
    if (manifest_.has_checksums) {
      GRAPHSD_RETURN_IF_ERROR(
          VerifyCrc(*device_, SubBlockWeightsPath(dir_, i, j),
                    AsBytes(block.weights),
                    manifest_.weight_crcs[manifest_.SubBlockSlot(i, j)]));
    }
  }
  return block;
}

Result<std::vector<std::uint32_t>> GridDataset::LoadIndex(
    std::uint32_t i, std::uint32_t j) const {
  GRAPHSD_CHECK(i < p() && j < p());
  if (!manifest_.has_index) {
    return NotFoundError("dataset '" + manifest_.name + "' has no index");
  }
  std::vector<std::uint32_t> index(manifest_.IntervalSize(i) + 1);
  GRAPHSD_ASSIGN_OR_RETURN(
      io::DeviceFile file,
      device_->Open(SubBlockIndexPath(dir_, i, j), io::OpenMode::kRead));
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(index)));
  if (manifest_.has_checksums) {
    GRAPHSD_RETURN_IF_ERROR(
        VerifyCrc(*device_, SubBlockIndexPath(dir_, i, j), AsBytes(index),
                  manifest_.index_crcs[manifest_.SubBlockSlot(i, j)]));
  }
  return index;
}

Result<IndexReader> GridDataset::OpenIndexReader(std::uint32_t i,
                                                 std::uint32_t j) const {
  GRAPHSD_CHECK(i < p() && j < p());
  if (!manifest_.has_index) {
    return NotFoundError("dataset '" + manifest_.name + "' has no index");
  }
  IndexReader reader;
  reader.num_entries_ =
      static_cast<std::uint64_t>(manifest_.IntervalSize(i)) + 1;
  GRAPHSD_ASSIGN_OR_RETURN(
      reader.file_,
      device_->Open(SubBlockIndexPath(dir_, i, j), io::OpenMode::kRead));
  return reader;
}

Result<SubBlockReader> GridDataset::OpenSubBlockReader(
    std::uint32_t i, std::uint32_t j, bool with_weights) const {
  GRAPHSD_CHECK(i < p() && j < p());
  SubBlockReader reader;
  reader.num_edges_ = manifest_.EdgesIn(i, j);
  GRAPHSD_ASSIGN_OR_RETURN(
      reader.edges_,
      device_->Open(SubBlockEdgesPath(dir_, i, j), io::OpenMode::kRead));
  if (with_weights && weighted()) {
    GRAPHSD_ASSIGN_OR_RETURN(
        reader.weights_,
        device_->Open(SubBlockWeightsPath(dir_, i, j), io::OpenMode::kRead));
    reader.has_weights_ = true;
  }
  return reader;
}

}  // namespace graphsd::partition
