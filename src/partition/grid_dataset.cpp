#include "partition/grid_dataset.hpp"

namespace graphsd::partition {
namespace {

template <typename T>
std::span<std::uint8_t> AsWritableBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

}  // namespace

Status SubBlockReader::ReadRange(std::uint64_t first, std::uint64_t count,
                                 std::vector<Edge>& edges_out,
                                 std::vector<Weight>* weights_out) {
  if (count == 0) return Status::Ok();
  const std::size_t edge_base = edges_out.size();
  edges_out.resize(edge_base + count);
  GRAPHSD_RETURN_IF_ERROR(edges_.ReadAt(
      first * sizeof(Edge),
      {reinterpret_cast<std::uint8_t*>(edges_out.data() + edge_base),
       count * sizeof(Edge)}));
  if (has_weights_ && weights_out != nullptr) {
    const std::size_t weight_base = weights_out->size();
    weights_out->resize(weight_base + count);
    GRAPHSD_RETURN_IF_ERROR(weights_.ReadAt(
        first * sizeof(Weight),
        {reinterpret_cast<std::uint8_t*>(weights_out->data() + weight_base),
         count * sizeof(Weight)}));
  }
  return Status::Ok();
}

Status IndexReader::ReadOffsets(VertexId first_local, VertexId count,
                                std::vector<std::uint32_t>& out) {
  out.resize(count);
  if (count == 0) return Status::Ok();
  return file_.ReadAt(static_cast<std::uint64_t>(first_local) *
                          sizeof(std::uint32_t),
                      AsWritableBytes(out));
}

Result<GridDataset> GridDataset::Open(io::Device& device,
                                      const std::string& dir) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::string text,
                           io::ReadFileToString(ManifestPath(dir)));
  GRAPHSD_ASSIGN_OR_RETURN(GridManifest manifest, GridManifest::Parse(text));

  GridDataset dataset;
  dataset.device_ = &device;
  dataset.dir_ = dir;
  dataset.manifest_ = std::move(manifest);

  dataset.degrees_.resize(dataset.manifest_.num_vertices);
  GRAPHSD_ASSIGN_OR_RETURN(
      io::DeviceFile file, device.Open(DegreesPath(dir), io::OpenMode::kRead));
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(dataset.degrees_)));
  return dataset;
}

Result<SubBlock> GridDataset::LoadSubBlock(std::uint32_t i, std::uint32_t j,
                                           bool load_weights) const {
  GRAPHSD_CHECK(i < p() && j < p());
  SubBlock block;
  const std::uint64_t count = manifest_.EdgesIn(i, j);
  if (count == 0) return block;

  block.edges.resize(count);
  {
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device_->Open(SubBlockEdgesPath(dir_, i, j), io::OpenMode::kRead));
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(block.edges)));
  }
  if (load_weights && weighted()) {
    block.weights.resize(count);
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device_->Open(SubBlockWeightsPath(dir_, i, j), io::OpenMode::kRead));
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(block.weights)));
  }
  return block;
}

Result<std::vector<std::uint32_t>> GridDataset::LoadIndex(
    std::uint32_t i, std::uint32_t j) const {
  GRAPHSD_CHECK(i < p() && j < p());
  if (!manifest_.has_index) {
    return NotFoundError("dataset '" + manifest_.name + "' has no index");
  }
  std::vector<std::uint32_t> index(manifest_.IntervalSize(i) + 1);
  GRAPHSD_ASSIGN_OR_RETURN(
      io::DeviceFile file,
      device_->Open(SubBlockIndexPath(dir_, i, j), io::OpenMode::kRead));
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(index)));
  return index;
}

Result<IndexReader> GridDataset::OpenIndexReader(std::uint32_t i,
                                                 std::uint32_t j) const {
  GRAPHSD_CHECK(i < p() && j < p());
  if (!manifest_.has_index) {
    return NotFoundError("dataset '" + manifest_.name + "' has no index");
  }
  IndexReader reader;
  GRAPHSD_ASSIGN_OR_RETURN(
      reader.file_,
      device_->Open(SubBlockIndexPath(dir_, i, j), io::OpenMode::kRead));
  return reader;
}

Result<SubBlockReader> GridDataset::OpenSubBlockReader(
    std::uint32_t i, std::uint32_t j, bool with_weights) const {
  GRAPHSD_CHECK(i < p() && j < p());
  SubBlockReader reader;
  GRAPHSD_ASSIGN_OR_RETURN(
      reader.edges_,
      device_->Open(SubBlockEdgesPath(dir_, i, j), io::OpenMode::kRead));
  if (with_weights && weighted()) {
    GRAPHSD_ASSIGN_OR_RETURN(
        reader.weights_,
        device_->Open(SubBlockWeightsPath(dir_, i, j), io::OpenMode::kRead));
    reader.has_weights_ = true;
  }
  return reader;
}

}  // namespace graphsd::partition
