#include "partition/grid_dataset.hpp"

#include <algorithm>

#include "compress/frame.hpp"
#include "util/clock.hpp"
#include "util/crc32c.hpp"

namespace graphsd::partition {
namespace {

template <typename T>
std::span<std::uint8_t> AsWritableBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

template <typename T>
std::span<const std::uint8_t> AsBytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

// Compares a freshly loaded payload against its build-time CRC, counting the
// mismatch in the device's stats so end-of-run reports surface it.
Status VerifyCrc(io::Device& device, const std::string& path,
                 std::span<const std::uint8_t> data, std::uint32_t expected) {
  const std::uint32_t actual = Crc32c(data);
  if (actual == expected) return Status::Ok();
  device.stats().RecordChecksumFailure();
  return CorruptDataError(path + ": CRC32C mismatch (stored " +
                          std::to_string(expected) + ", computed " +
                          std::to_string(actual) + ")");
}

}  // namespace

Status SubBlockReader::ReadRange(std::uint64_t first, std::uint64_t count,
                                 std::vector<Edge>& edges_out,
                                 std::vector<Weight>* weights_out) {
  if (count == 0) return Status::Ok();
  if (first > num_edges_ || count > num_edges_ - first) {
    return CorruptDataError(
        edges_.path() + ": range read [" + std::to_string(first) + ", " +
        std::to_string(first + count) + ") outside sub-block of " +
        std::to_string(num_edges_) + " edges (corrupt index?)");
  }
  const std::size_t edge_base = edges_out.size();
  edges_out.resize(edge_base + count);
  GRAPHSD_RETURN_IF_ERROR(edges_.ReadAt(
      first * sizeof(Edge),
      {reinterpret_cast<std::uint8_t*>(edges_out.data() + edge_base),
       count * sizeof(Edge)}));
  if (has_weights_ && weights_out != nullptr) {
    const std::size_t weight_base = weights_out->size();
    weights_out->resize(weight_base + count);
    GRAPHSD_RETURN_IF_ERROR(weights_.ReadAt(
        first * sizeof(Weight),
        {reinterpret_cast<std::uint8_t*>(weights_out->data() + weight_base),
         count * sizeof(Weight)}));
  }
  return Status::Ok();
}

Status SubBlockReader::ReadRuns(
    std::span<const std::pair<std::uint64_t, std::uint64_t>> runs,
    std::vector<Edge>& edges_out, std::vector<Weight>* weights_out) {
  // Validate the whole script up front so the batched path cannot discover
  // a corrupt run after earlier runs already landed in the output arrays.
  std::uint64_t prev_end = 0;
  for (const auto& [first, end] : runs) {
    if (end < first || first < prev_end || end > num_edges_) {
      return CorruptDataError(
          edges_.path() + ": run read [" + std::to_string(first) + ", " +
          std::to_string(end) + ") not ascending within sub-block of " +
          std::to_string(num_edges_) + " edges (corrupt index?)");
    }
    prev_end = end;
  }
  if (batch_gap_bytes_ == 0) {
    for (const auto& [first, end] : runs) {
      GRAPHSD_RETURN_IF_ERROR(
          ReadRange(first, end - first, edges_out, weights_out));
    }
    return Status::Ok();
  }
  const bool read_weights = has_weights_ && weights_out != nullptr;
  std::vector<std::span<std::uint8_t>> bufs;  // reused per batch
  std::size_t g = 0;
  while (g < runs.size()) {
    // Grow the batch while the file gap to the next run stays within the
    // device's merge budget.
    std::size_t h = g + 1;
    std::uint64_t max_gap_edges = 0;
    std::uint64_t batch_edges = runs[g].second - runs[g].first;
    while (h < runs.size()) {
      const std::uint64_t gap = runs[h].first - runs[h - 1].second;
      if (gap * sizeof(Edge) > batch_gap_bytes_) break;
      max_gap_edges = std::max(max_gap_edges, gap);
      batch_edges += runs[h].second - runs[h].first;
      ++h;
    }
    if (h == g + 1) {
      GRAPHSD_RETURN_IF_ERROR(ReadRange(runs[g].first,
                                        runs[g].second - runs[g].first,
                                        edges_out, weights_out));
      g = h;
      continue;
    }
    // One vectored request per file: run destinations interleaved with a
    // shared gap-scratch span (each gap is filled then overwritten — the
    // bytes are discarded either way). Edge is the wider record, so one
    // scratch sizing covers the weight file too.
    gap_scratch_.resize(
        static_cast<std::size_t>(max_gap_edges * sizeof(Edge)));
    const std::size_t edge_base = edges_out.size();
    edges_out.resize(edge_base + batch_edges);
    bufs.clear();
    std::size_t out_pos = edge_base;
    for (std::size_t k = g; k < h; ++k) {
      if (k > g) {
        const std::uint64_t gap = runs[k].first - runs[k - 1].second;
        if (gap > 0) {
          bufs.emplace_back(gap_scratch_.data(), gap * sizeof(Edge));
        }
      }
      const std::uint64_t count = runs[k].second - runs[k].first;
      bufs.emplace_back(reinterpret_cast<std::uint8_t*>(edges_out.data() +
                                                        out_pos),
                        count * sizeof(Edge));
      out_pos += count;
    }
    GRAPHSD_RETURN_IF_ERROR(
        edges_.ReadVAt(runs[g].first * sizeof(Edge), bufs));
    if (read_weights) {
      const std::size_t weight_base = weights_out->size();
      weights_out->resize(weight_base + batch_edges);
      bufs.clear();
      std::size_t w_pos = weight_base;
      for (std::size_t k = g; k < h; ++k) {
        if (k > g) {
          const std::uint64_t gap = runs[k].first - runs[k - 1].second;
          if (gap > 0) {
            bufs.emplace_back(gap_scratch_.data(), gap * sizeof(Weight));
          }
        }
        const std::uint64_t count = runs[k].second - runs[k].first;
        bufs.emplace_back(
            reinterpret_cast<std::uint8_t*>(weights_out->data() + w_pos),
            count * sizeof(Weight));
        w_pos += count;
      }
      GRAPHSD_RETURN_IF_ERROR(
          weights_.ReadVAt(runs[g].first * sizeof(Weight), bufs));
    }
    g = h;
  }
  return Status::Ok();
}

Status IndexReader::ReadOffsets(VertexId first_local, VertexId count,
                                std::vector<std::uint32_t>& out) {
  out.resize(count);
  if (count == 0) return Status::Ok();
  const std::uint64_t first = first_local;
  if (first > num_entries_ || count > num_entries_ - first) {
    return CorruptDataError(file_.path() + ": offset read [" +
                            std::to_string(first) + ", " +
                            std::to_string(first + count) +
                            ") outside index of " +
                            std::to_string(num_entries_) + " entries");
  }
  return file_.ReadAt(static_cast<std::uint64_t>(first_local) *
                          sizeof(std::uint32_t),
                      AsWritableBytes(out));
}

Result<GridDataset> GridDataset::Open(io::Device& device,
                                      const std::string& dir) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::string text,
                           io::ReadFileToString(ManifestPath(dir)));
  GRAPHSD_ASSIGN_OR_RETURN(GridManifest manifest, GridManifest::Parse(text));

  GridDataset dataset;
  dataset.device_ = &device;
  dataset.dir_ = dir;
  dataset.manifest_ = std::move(manifest);
  dataset.decode_stats_ = std::make_shared<AtomicDecodeStats>();
  if (dataset.manifest_.compressed()) {
    dataset.codec_ = compress::FindCodec(dataset.manifest_.codec);
    if (dataset.codec_ == nullptr) {
      return UnimplementedError("dataset '" + dataset.manifest_.name +
                                "' uses unknown edge codec '" +
                                dataset.manifest_.codec +
                                "'; upgrade graphsd or rebuild the dataset");
    }
  }

  dataset.degrees_.resize(dataset.manifest_.num_vertices);
  GRAPHSD_ASSIGN_OR_RETURN(
      io::DeviceFile file, device.Open(DegreesPath(dir), io::OpenMode::kRead));
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(dataset.degrees_)));
  if (dataset.manifest_.has_checksums) {
    GRAPHSD_RETURN_IF_ERROR(VerifyCrc(device, DegreesPath(dir),
                                      AsBytes(dataset.degrees_),
                                      dataset.manifest_.degrees_crc));
  }
  return dataset;
}

Result<SubBlock> GridDataset::LoadSubBlock(std::uint32_t i, std::uint32_t j,
                                           bool load_weights) const {
  GRAPHSD_ASSIGN_OR_RETURN(SubBlockPayload payload,
                           FetchSubBlock(i, j, load_weights));
  GRAPHSD_RETURN_IF_ERROR(DecodeSubBlock(i, j, payload));
  return std::move(payload.block);
}

Result<SubBlockPayload> GridDataset::FetchSubBlock(std::uint32_t i,
                                                   std::uint32_t j,
                                                   bool load_weights) const {
  GRAPHSD_CHECK(i < p() && j < p());
  SubBlockPayload payload;
  SubBlock& block = payload.block;
  const std::uint64_t count = manifest_.EdgesIn(i, j);
  if (count == 0 && !compressed()) return payload;

  {
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device_->Open(SubBlockEdgesPath(dir_, i, j), io::OpenMode::kRead));
    if (compressed()) {
      // The whole frame streams sequentially from offset 0; the file-level
      // CRC (over the frame bytes) is checked here so torn reads surface
      // on the I/O side, and the frame's own payload CRC again at decode.
      payload.frame.resize(manifest_.EdgeFileBytes(i, j));
      GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, payload.frame));
      if (manifest_.has_checksums) {
        GRAPHSD_RETURN_IF_ERROR(
            VerifyCrc(*device_, SubBlockEdgesPath(dir_, i, j), payload.frame,
                      manifest_.edge_crcs[manifest_.SubBlockSlot(i, j)]));
      }
      block.disk_bytes += payload.frame.size();
    } else {
      block.edges.resize(count);
      GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(block.edges)));
      if (manifest_.has_checksums) {
        GRAPHSD_RETURN_IF_ERROR(
            VerifyCrc(*device_, SubBlockEdgesPath(dir_, i, j),
                      AsBytes(block.edges),
                      manifest_.edge_crcs[manifest_.SubBlockSlot(i, j)]));
      }
      block.disk_bytes += count * kEdgeBytes;
    }
  }
  if (load_weights && weighted() && count > 0) {
    block.weights.resize(count);
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device_->Open(SubBlockWeightsPath(dir_, i, j), io::OpenMode::kRead));
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(block.weights)));
    if (manifest_.has_checksums) {
      GRAPHSD_RETURN_IF_ERROR(
          VerifyCrc(*device_, SubBlockWeightsPath(dir_, i, j),
                    AsBytes(block.weights),
                    manifest_.weight_crcs[manifest_.SubBlockSlot(i, j)]));
    }
    block.disk_bytes += count * kWeightBytes;
  }
  return payload;
}

Status GridDataset::DecodeSubBlock(std::uint32_t i, std::uint32_t j,
                                   SubBlockPayload& payload) const {
  if (payload.frame.empty()) return Status::Ok();
  GRAPHSD_CHECK(i < p() && j < p());
  const std::uint64_t count = manifest_.EdgesIn(i, j);
  WallTimer timer;
  payload.block.edges.resize(count);
  const Status status = compress::DecodeFrameInto(
      payload.frame, AsWritableBytes(payload.block.edges));
  if (!status.ok()) {
    device_->stats().RecordChecksumFailure();
    return CorruptDataError(SubBlockEdgesPath(dir_, i, j) + ": " +
                            std::string(status.message()));
  }
  decode_stats_->frames_decoded.fetch_add(1, std::memory_order_relaxed);
  decode_stats_->compressed_bytes.fetch_add(payload.frame.size(),
                                            std::memory_order_relaxed);
  decode_stats_->decoded_bytes.fetch_add(count * kEdgeBytes,
                                         std::memory_order_relaxed);
  decode_stats_->decode_nanos.fetch_add(
      static_cast<std::uint64_t>(timer.Seconds() * 1e9),
      std::memory_order_relaxed);
  payload.frame.clear();
  payload.frame.shrink_to_fit();
  return Status::Ok();
}

DecodeStats GridDataset::decode_stats() const noexcept {
  DecodeStats s;
  s.frames_decoded =
      decode_stats_->frames_decoded.load(std::memory_order_relaxed);
  s.compressed_bytes =
      decode_stats_->compressed_bytes.load(std::memory_order_relaxed);
  s.decoded_bytes = decode_stats_->decoded_bytes.load(std::memory_order_relaxed);
  s.decode_seconds =
      static_cast<double>(
          decode_stats_->decode_nanos.load(std::memory_order_relaxed)) *
      1e-9;
  return s;
}

Result<std::vector<std::uint32_t>> GridDataset::LoadIndex(
    std::uint32_t i, std::uint32_t j) const {
  GRAPHSD_CHECK(i < p() && j < p());
  if (!manifest_.has_index) {
    return NotFoundError("dataset '" + manifest_.name + "' has no index");
  }
  std::vector<std::uint32_t> index(manifest_.IntervalSize(i) + 1);
  GRAPHSD_ASSIGN_OR_RETURN(
      io::DeviceFile file,
      device_->Open(SubBlockIndexPath(dir_, i, j), io::OpenMode::kRead));
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, AsWritableBytes(index)));
  if (manifest_.has_checksums) {
    GRAPHSD_RETURN_IF_ERROR(
        VerifyCrc(*device_, SubBlockIndexPath(dir_, i, j), AsBytes(index),
                  manifest_.index_crcs[manifest_.SubBlockSlot(i, j)]));
  }
  return index;
}

Result<IndexReader> GridDataset::OpenIndexReader(std::uint32_t i,
                                                 std::uint32_t j) const {
  GRAPHSD_CHECK(i < p() && j < p());
  if (!manifest_.has_index) {
    return NotFoundError("dataset '" + manifest_.name + "' has no index");
  }
  IndexReader reader;
  reader.num_entries_ =
      static_cast<std::uint64_t>(manifest_.IntervalSize(i)) + 1;
  GRAPHSD_ASSIGN_OR_RETURN(
      reader.file_,
      device_->Open(SubBlockIndexPath(dir_, i, j), io::OpenMode::kRead));
  return reader;
}

Result<SubBlockReader> GridDataset::OpenSubBlockReader(
    std::uint32_t i, std::uint32_t j, bool with_weights) const {
  GRAPHSD_CHECK(i < p() && j < p());
  SubBlockReader reader;
  reader.num_edges_ = manifest_.EdgesIn(i, j);
  reader.batch_gap_bytes_ = device_->options().read_batch_gap_bytes;
  GRAPHSD_ASSIGN_OR_RETURN(
      reader.edges_,
      device_->Open(SubBlockEdgesPath(dir_, i, j), io::OpenMode::kRead));
  if (with_weights && weighted()) {
    GRAPHSD_ASSIGN_OR_RETURN(
        reader.weights_,
        device_->Open(SubBlockWeightsPath(dir_, i, j), io::OpenMode::kRead));
    reader.has_weights_ = true;
  }
  return reader;
}

}  // namespace graphsd::partition
