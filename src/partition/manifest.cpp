#include "partition/manifest.hpp"

#include <charconv>
#include <sstream>

#include "compress/frame.hpp"

namespace graphsd::partition {
namespace {

std::string JoinU64(const std::vector<std::uint64_t>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(values[i]);
  }
  return out;
}

Result<std::vector<std::uint64_t>> SplitU64(const std::string& text) {
  std::vector<std::uint64_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(text.data() + pos, text.data() + comma, value);
    if (ec != std::errc() || ptr != text.data() + comma) {
      return CorruptDataError("bad integer list in manifest: " + text);
    }
    out.push_back(value);
    pos = comma + 1;
  }
  return out;
}

Result<std::vector<std::uint32_t>> SplitU32(const std::string& text) {
  GRAPHSD_ASSIGN_OR_RETURN(const auto wide, SplitU64(text));
  std::vector<std::uint32_t> out;
  out.reserve(wide.size());
  for (const auto value : wide) {
    if (value > UINT32_MAX) {
      return CorruptDataError("32-bit value out of range in manifest: " +
                              std::to_string(value));
    }
    out.push_back(static_cast<std::uint32_t>(value));
  }
  return out;
}

std::string JoinU32(const std::vector<std::uint32_t>& values) {
  return JoinU64(std::vector<std::uint64_t>(values.begin(), values.end()));
}

// Strict full-string parse; unlike std::stoull this never throws and
// rejects trailing garbage, so a damaged manifest surfaces as kCorruptData
// instead of terminating the process.
Result<std::uint64_t> ParseU64(const std::string& text) {
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || text.empty()) {
    return CorruptDataError("bad integer in manifest: '" + text + "'");
  }
  return value;
}

Result<std::uint32_t> ParseU32(const std::string& text) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::uint64_t value, ParseU64(text));
  if (value > UINT32_MAX) {
    return CorruptDataError("32-bit value out of range in manifest: " + text);
  }
  return static_cast<std::uint32_t>(value);
}

}  // namespace

Status GridManifest::Validate() const {
  if (format_version == 0 || format_version > kMaxManifestFormatVersion) {
    return CorruptDataError("manifest: bad format_version " +
                            std::to_string(format_version));
  }
  if (codec.empty()) return CorruptDataError("manifest: empty codec");
  if (compressed() && format_version < 2) {
    return CorruptDataError("manifest: codec '" + codec +
                            "' requires format_version >= 2");
  }
  if (p == 0) return CorruptDataError("manifest: p == 0");
  // Caps p*p (and every per-sub-block allocation sized from it) well below
  // anything a corrupted manifest could use to exhaust memory.
  if (p > 65536) {
    return CorruptDataError("manifest: implausible p " + std::to_string(p));
  }
  if (boundaries.size() != p + 1) {
    return CorruptDataError("manifest: boundary count != p+1");
  }
  if (boundaries.front() != 0 || boundaries.back() != num_vertices) {
    return CorruptDataError("manifest: boundaries do not span vertex set");
  }
  for (std::uint32_t i = 0; i < p; ++i) {
    if (boundaries[i] >= boundaries[i + 1]) {
      return CorruptDataError("manifest: empty or inverted interval " +
                              std::to_string(i));
    }
  }
  if (sub_block_edges.size() != static_cast<std::size_t>(p) * p) {
    return CorruptDataError("manifest: sub-block count != p*p");
  }
  std::uint64_t total = 0;
  for (const auto count : sub_block_edges) {
    if (count > num_edges - total) {  // overflow-safe: total <= num_edges
      return CorruptDataError(
          "manifest: sub-block edges sum exceeds num_edges " +
          std::to_string(num_edges));
    }
    total += count;
  }
  if (total != num_edges) {
    return CorruptDataError("manifest: sub-block edges sum " +
                            std::to_string(total) + " != num_edges " +
                            std::to_string(num_edges));
  }
  const std::size_t slots = static_cast<std::size_t>(p) * p;
  if (compressed()) {
    if (edge_frame_bytes.size() != slots) {
      return CorruptDataError("manifest: edge_frame_bytes count != p*p");
    }
    for (const auto bytes : edge_frame_bytes) {
      if (bytes < compress::kFrameHeaderBytes) {
        return CorruptDataError(
            "manifest: edge frame smaller than a frame header");
      }
    }
  } else if (!edge_frame_bytes.empty()) {
    return CorruptDataError("manifest: edge_frame_bytes without a codec");
  }
  if (has_checksums) {
    if (edge_crcs.size() != slots) {
      return CorruptDataError("manifest: edge checksum count != p*p");
    }
    if (weight_crcs.size() != (weighted ? slots : 0)) {
      return CorruptDataError("manifest: weight checksum count mismatch");
    }
    if (index_crcs.size() != (has_index ? slots : 0)) {
      return CorruptDataError("manifest: index checksum count mismatch");
    }
  } else if (!edge_crcs.empty() || !weight_crcs.empty() ||
             !index_crcs.empty()) {
    return CorruptDataError("manifest: checksum lists without checksum_algo");
  }
  return Status::Ok();
}

std::string GridManifest::Serialize() const {
  // Raw datasets keep emitting the original v1 text byte for byte (old
  // readers and builder-equivalence fixtures depend on it); v2 adds the
  // explicit version line and the codec fields.
  const bool v2 = format_version >= 2;
  std::ostringstream out;
  out << "graphsd_grid_manifest v" << (v2 ? 2 : 1) << "\n";
  if (v2) {
    out << "format_version=" << format_version << "\n";
    out << "codec=" << codec << "\n";
  }
  out << "name=" << name << "\n";
  out << "num_vertices=" << num_vertices << "\n";
  out << "num_edges=" << num_edges << "\n";
  out << "weighted=" << (weighted ? 1 : 0) << "\n";
  out << "sorted=" << (sorted ? 1 : 0) << "\n";
  out << "has_index=" << (has_index ? 1 : 0) << "\n";
  out << "p=" << p << "\n";
  std::vector<std::uint64_t> bounds(boundaries.begin(), boundaries.end());
  out << "boundaries=" << JoinU64(bounds) << "\n";
  out << "sub_block_edges=" << JoinU64(sub_block_edges) << "\n";
  if (compressed()) {
    out << "edge_frame_bytes=" << JoinU64(edge_frame_bytes) << "\n";
  }
  if (has_checksums) {
    out << "checksum_algo=crc32c\n";
    out << "degrees_crc=" << degrees_crc << "\n";
    out << "edge_crcs=" << JoinU32(edge_crcs) << "\n";
    if (weighted) out << "weight_crcs=" << JoinU32(weight_crcs) << "\n";
    if (has_index) out << "index_crcs=" << JoinU32(index_crcs) << "\n";
  }
  return out.str();
}

Result<GridManifest> GridManifest::Parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  constexpr std::string_view kHeaderPrefix = "graphsd_grid_manifest v";
  if (!std::getline(in, line) || !line.starts_with(kHeaderPrefix)) {
    return CorruptDataError("not a graphsd grid manifest");
  }
  GridManifest m;
  GRAPHSD_ASSIGN_OR_RETURN(m.format_version,
                           ParseU32(line.substr(kHeaderPrefix.size())));
  if (m.format_version == 0) {
    return CorruptDataError("manifest: bad format version line: " + line);
  }
  if (m.format_version > kMaxManifestFormatVersion) {
    return UnimplementedError(
        "dataset manifest format v" + std::to_string(m.format_version) +
        " is newer than the supported v" +
        std::to_string(kMaxManifestFormatVersion) +
        "; rebuild the dataset or upgrade graphsd");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return CorruptDataError("manifest line without '=': " + line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "name") {
      m.name = value;
    } else if (key == "format_version") {
      GRAPHSD_ASSIGN_OR_RETURN(const std::uint32_t body_version,
                               ParseU32(value));
      if (body_version != m.format_version) {
        return CorruptDataError(
            "manifest: format_version line disagrees with header");
      }
    } else if (key == "codec") {
      if (value.empty()) return CorruptDataError("manifest: empty codec");
      m.codec = value;
    } else if (key == "edge_frame_bytes") {
      GRAPHSD_ASSIGN_OR_RETURN(m.edge_frame_bytes, SplitU64(value));
    } else if (key == "num_vertices") {
      GRAPHSD_ASSIGN_OR_RETURN(m.num_vertices, ParseU32(value));
    } else if (key == "num_edges") {
      GRAPHSD_ASSIGN_OR_RETURN(m.num_edges, ParseU64(value));
    } else if (key == "weighted") {
      m.weighted = value == "1";
    } else if (key == "sorted") {
      m.sorted = value == "1";
    } else if (key == "has_index") {
      m.has_index = value == "1";
    } else if (key == "p") {
      GRAPHSD_ASSIGN_OR_RETURN(m.p, ParseU32(value));
    } else if (key == "boundaries") {
      GRAPHSD_ASSIGN_OR_RETURN(const auto bounds, SplitU64(value));
      m.boundaries.assign(bounds.begin(), bounds.end());
    } else if (key == "sub_block_edges") {
      GRAPHSD_ASSIGN_OR_RETURN(m.sub_block_edges, SplitU64(value));
    } else if (key == "checksum_algo") {
      if (value != "crc32c") {
        return CorruptDataError("unsupported checksum_algo: " + value);
      }
      m.has_checksums = true;
    } else if (key == "degrees_crc") {
      GRAPHSD_ASSIGN_OR_RETURN(m.degrees_crc, ParseU32(value));
    } else if (key == "edge_crcs") {
      GRAPHSD_ASSIGN_OR_RETURN(m.edge_crcs, SplitU32(value));
    } else if (key == "weight_crcs") {
      GRAPHSD_ASSIGN_OR_RETURN(m.weight_crcs, SplitU32(value));
    } else if (key == "index_crcs") {
      GRAPHSD_ASSIGN_OR_RETURN(m.index_crcs, SplitU32(value));
    } else {
      return CorruptDataError("unknown manifest key: " + key);
    }
  }
  GRAPHSD_RETURN_IF_ERROR(m.Validate());
  return m;
}

std::string ManifestPath(const std::string& dir) { return dir + "/manifest.txt"; }

std::string DegreesPath(const std::string& dir) { return dir + "/degrees.bin"; }

std::string SubBlockEdgesPath(const std::string& dir, std::uint32_t i,
                              std::uint32_t j) {
  return dir + "/sb_" + std::to_string(i) + "_" + std::to_string(j) + ".edges";
}

std::string SubBlockWeightsPath(const std::string& dir, std::uint32_t i,
                                std::uint32_t j) {
  return dir + "/sb_" + std::to_string(i) + "_" + std::to_string(j) +
         ".weights";
}

std::string SubBlockIndexPath(const std::string& dir, std::uint32_t i,
                              std::uint32_t j) {
  return dir + "/sb_" + std::to_string(i) + "_" + std::to_string(j) + ".index";
}

}  // namespace graphsd::partition
