// Read access to a preprocessed grid dataset.
//
// All reads flow through the owning Device, so traffic and modeled time are
// accounted. Two access paths mirror the paper's two I/O models:
//   * `LoadSubBlock` streams a whole sub-block (full I/O model);
//   * `OpenSubBlockReader` + the per-vertex index supports selective range
//     reads of active vertices' edge lists (on-demand I/O model). Adjacent
//     active ranges coalesce into single requests, which is what produces
//     the paper's S_seq vs S_ran split.
#pragma once

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "compress/codec.hpp"
#include "graph/types.hpp"
#include "io/device.hpp"
#include "partition/manifest.hpp"

namespace graphsd::partition {

/// An in-memory copy of one sub-block's payload.
struct SubBlock {
  std::vector<Edge> edges;
  std::vector<Weight> weights;  // empty when unweighted or not requested

  /// On-disk bytes this block was loaded from (frame + weight file when
  /// compressed; equals SizeBytes() for raw datasets). Lets the
  /// SubBlockBuffer report saved I/O in both byte views.
  std::uint64_t disk_bytes = 0;

  /// Decoded in-memory footprint (what buffer capacity is charged).
  std::uint64_t SizeBytes() const noexcept {
    return edges.size() * sizeof(Edge) + weights.size() * sizeof(Weight);
  }
};

/// A sub-block mid-load: the bytes read from disk before decode. For raw
/// datasets `block` is already complete and `frame` stays empty; for
/// compressed datasets `frame` holds the undecoded GSDF frame. Splitting
/// fetch (I/O, runs on the prefetch loader thread) from decode (pure
/// compute, runs on the consuming thread) keeps the loader busy with disk
/// work while decode time is charged to the compute side of the overlap
/// accounting.
struct SubBlockPayload {
  SubBlock block;
  std::vector<std::uint8_t> frame;
};

/// Cumulative decode-side counters of one dataset (monotonic across runs;
/// the engine reports per-run deltas).
struct DecodeStats {
  std::uint64_t frames_decoded = 0;
  std::uint64_t compressed_bytes = 0;  // on-disk frame bytes decoded
  std::uint64_t decoded_bytes = 0;     // raw edge bytes produced
  double decode_seconds = 0;
};

class GridDataset;

/// Ranged reader over one sub-block's source index. The on-demand I/O model
/// reads only the offset entries of active vertices (coalesced per run)
/// instead of streaming whole index files — this is what keeps the paper's
/// index term at O(|V|·N) rather than O(P·|V|).
class IndexReader {
 public:
  /// Reads `count` offset entries starting at local vertex `first_local`
  /// into `out` (overwriting).
  Status ReadOffsets(VertexId first_local, VertexId count,
                     std::vector<std::uint32_t>& out);

 private:
  friend class GridDataset;
  io::DeviceFile file_;
  std::uint64_t num_entries_ = 0;  // IntervalSize(i) + 1
};

/// Selective reader over one sub-block: issues accounted range reads against
/// the open edge/weight files. One reader per sub-block pass keeps the
/// device's sequential/random classification faithful.
class SubBlockReader {
 public:
  /// Reads `count` edges starting at edge `first` (indices within the
  /// sub-block) into `out`, appending. Weights follow when present and
  /// requested at open time.
  Status ReadRange(std::uint64_t first, std::uint64_t count,
                   std::vector<Edge>& edges_out, std::vector<Weight>* weights_out);

  /// Reads every `[first, end)` run (sub-block edge coordinates, ascending,
  /// non-overlapping) appending to `edges_out`/`weights_out` in run order,
  /// producing exactly what a ReadRange loop would. When the owning device
  /// enables read batching (`read_batch_gap_bytes > 0`), runs separated by
  /// at most that many edge-file bytes are fetched with one vectored
  /// request — the gap bytes land in scratch (and are accounted, they
  /// really crossed the bus); with batching off this IS the ReadRange loop,
  /// bit-identical in accounting.
  Status ReadRuns(std::span<const std::pair<std::uint64_t, std::uint64_t>> runs,
                  std::vector<Edge>& edges_out,
                  std::vector<Weight>* weights_out);

 private:
  friend class GridDataset;
  io::DeviceFile edges_;
  io::DeviceFile weights_;
  bool has_weights_ = false;
  std::uint64_t num_edges_ = 0;  // manifest EdgesIn(i, j), for bounds checks
  std::uint64_t batch_gap_bytes_ = 0;  // device read_batch_gap_bytes
  std::vector<std::uint8_t> gap_scratch_;  // discard target for merged gaps
};

class GridDataset {
 public:
  /// Opens the dataset in `dir`. Loads the manifest and the out-degree
  /// array (an accounted sequential read).
  static Result<GridDataset> Open(io::Device& device, const std::string& dir);

  const GridManifest& manifest() const noexcept { return manifest_; }
  const std::string& dir() const noexcept { return dir_; }
  io::Device& device() const noexcept { return *device_; }

  VertexId num_vertices() const noexcept { return manifest_.num_vertices; }
  std::uint64_t num_edges() const noexcept { return manifest_.num_edges; }
  bool weighted() const noexcept { return manifest_.weighted; }
  std::uint32_t p() const noexcept { return manifest_.p; }

  /// Out-degree of every vertex (loaded once at Open).
  const std::vector<std::uint32_t>& out_degrees() const noexcept {
    return degrees_;
  }

  /// True when edge payloads are stored as compressed frames.
  bool compressed() const noexcept { return codec_ != nullptr; }

  /// The dataset's negotiated edge codec name ("none" when raw).
  const std::string& codec_name() const noexcept { return manifest_.codec; }

  /// Streams the whole sub-block (i, j). `load_weights` additionally streams
  /// the weight file (the M+W vs M distinction of the cost model).
  /// Equivalent to FetchSubBlock + DecodeSubBlock.
  Result<SubBlock> LoadSubBlock(std::uint32_t i, std::uint32_t j,
                                bool load_weights) const;

  /// I/O half of LoadSubBlock: reads (and CRC-verifies) the sub-block's
  /// files but leaves compressed frames undecoded. Safe to run on a loader
  /// thread; no shared mutable state is touched.
  Result<SubBlockPayload> FetchSubBlock(std::uint32_t i, std::uint32_t j,
                                        bool load_weights) const;

  /// Compute half: decodes `payload.frame` (if any) into `payload.block`
  /// and releases the frame bytes. No-op for raw datasets. A decoded edge
  /// count that disagrees with the manifest yields kCorruptData.
  Status DecodeSubBlock(std::uint32_t i, std::uint32_t j,
                        SubBlockPayload& payload) const;

  /// Snapshot of the cumulative decode counters.
  DecodeStats decode_stats() const noexcept;

  /// Loads the per-source-vertex CSR index of sub-block (i, j):
  /// IntervalSize(i)+1 offsets. Requires manifest().has_index.
  Result<std::vector<std::uint32_t>> LoadIndex(std::uint32_t i,
                                               std::uint32_t j) const;

  /// Opens a selective reader for sub-block (i, j).
  Result<SubBlockReader> OpenSubBlockReader(std::uint32_t i, std::uint32_t j,
                                            bool with_weights) const;

  /// Opens a ranged reader over the index of sub-block (i, j).
  Result<IndexReader> OpenIndexReader(std::uint32_t i, std::uint32_t j) const;

  /// Decoded payload bytes of sub-block (i,j), counting weights when
  /// `with_weights`.
  std::uint64_t SubBlockBytes(std::uint32_t i, std::uint32_t j,
                              bool with_weights) const noexcept {
    const std::uint64_t per_edge =
        kEdgeBytes + (with_weights && weighted() ? kWeightBytes : 0);
    return manifest_.EdgesIn(i, j) * per_edge;
  }

  /// On-disk bytes a full load of sub-block (i,j) reads: the edge frame
  /// size when compressed (raw edge bytes otherwise) plus the raw weight
  /// file when `with_weights`. This is the byte count the scheduler charges
  /// for sequential sub-block streams.
  std::uint64_t SubBlockDiskBytes(std::uint32_t i, std::uint32_t j,
                                  bool with_weights) const {
    std::uint64_t bytes = manifest_.EdgeFileBytes(i, j);
    if (with_weights && weighted()) {
      bytes += manifest_.EdgesIn(i, j) * kWeightBytes;
    }
    return bytes;
  }

 private:
  // Decode counters live behind a shared_ptr: atomics are immovable and
  // GridDataset is returned by value from Open().
  struct AtomicDecodeStats {
    std::atomic<std::uint64_t> frames_decoded{0};
    std::atomic<std::uint64_t> compressed_bytes{0};
    std::atomic<std::uint64_t> decoded_bytes{0};
    std::atomic<std::uint64_t> decode_nanos{0};
  };

  io::Device* device_ = nullptr;
  std::string dir_;
  GridManifest manifest_;
  std::vector<std::uint32_t> degrees_;
  const compress::Codec* codec_ = nullptr;  // null = raw "none" layout
  std::shared_ptr<AtomicDecodeStats> decode_stats_;
};

}  // namespace graphsd::partition
