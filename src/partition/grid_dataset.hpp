// Read access to a preprocessed grid dataset.
//
// All reads flow through the owning Device, so traffic and modeled time are
// accounted. Two access paths mirror the paper's two I/O models:
//   * `LoadSubBlock` streams a whole sub-block (full I/O model);
//   * `OpenSubBlockReader` + the per-vertex index supports selective range
//     reads of active vertices' edge lists (on-demand I/O model). Adjacent
//     active ranges coalesce into single requests, which is what produces
//     the paper's S_seq vs S_ran split.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "io/device.hpp"
#include "partition/manifest.hpp"

namespace graphsd::partition {

/// An in-memory copy of one sub-block's payload.
struct SubBlock {
  std::vector<Edge> edges;
  std::vector<Weight> weights;  // empty when unweighted or not requested

  std::uint64_t SizeBytes() const noexcept {
    return edges.size() * sizeof(Edge) + weights.size() * sizeof(Weight);
  }
};

class GridDataset;

/// Ranged reader over one sub-block's source index. The on-demand I/O model
/// reads only the offset entries of active vertices (coalesced per run)
/// instead of streaming whole index files — this is what keeps the paper's
/// index term at O(|V|·N) rather than O(P·|V|).
class IndexReader {
 public:
  /// Reads `count` offset entries starting at local vertex `first_local`
  /// into `out` (overwriting).
  Status ReadOffsets(VertexId first_local, VertexId count,
                     std::vector<std::uint32_t>& out);

 private:
  friend class GridDataset;
  io::DeviceFile file_;
  std::uint64_t num_entries_ = 0;  // IntervalSize(i) + 1
};

/// Selective reader over one sub-block: issues accounted range reads against
/// the open edge/weight files. One reader per sub-block pass keeps the
/// device's sequential/random classification faithful.
class SubBlockReader {
 public:
  /// Reads `count` edges starting at edge `first` (indices within the
  /// sub-block) into `out`, appending. Weights follow when present and
  /// requested at open time.
  Status ReadRange(std::uint64_t first, std::uint64_t count,
                   std::vector<Edge>& edges_out, std::vector<Weight>* weights_out);

 private:
  friend class GridDataset;
  io::DeviceFile edges_;
  io::DeviceFile weights_;
  bool has_weights_ = false;
  std::uint64_t num_edges_ = 0;  // manifest EdgesIn(i, j), for bounds checks
};

class GridDataset {
 public:
  /// Opens the dataset in `dir`. Loads the manifest and the out-degree
  /// array (an accounted sequential read).
  static Result<GridDataset> Open(io::Device& device, const std::string& dir);

  const GridManifest& manifest() const noexcept { return manifest_; }
  const std::string& dir() const noexcept { return dir_; }
  io::Device& device() const noexcept { return *device_; }

  VertexId num_vertices() const noexcept { return manifest_.num_vertices; }
  std::uint64_t num_edges() const noexcept { return manifest_.num_edges; }
  bool weighted() const noexcept { return manifest_.weighted; }
  std::uint32_t p() const noexcept { return manifest_.p; }

  /// Out-degree of every vertex (loaded once at Open).
  const std::vector<std::uint32_t>& out_degrees() const noexcept {
    return degrees_;
  }

  /// Streams the whole sub-block (i, j). `load_weights` additionally streams
  /// the weight file (the M+W vs M distinction of the cost model).
  Result<SubBlock> LoadSubBlock(std::uint32_t i, std::uint32_t j,
                                bool load_weights) const;

  /// Loads the per-source-vertex CSR index of sub-block (i, j):
  /// IntervalSize(i)+1 offsets. Requires manifest().has_index.
  Result<std::vector<std::uint32_t>> LoadIndex(std::uint32_t i,
                                               std::uint32_t j) const;

  /// Opens a selective reader for sub-block (i, j).
  Result<SubBlockReader> OpenSubBlockReader(std::uint32_t i, std::uint32_t j,
                                            bool with_weights) const;

  /// Opens a ranged reader over the index of sub-block (i, j).
  Result<IndexReader> OpenIndexReader(std::uint32_t i, std::uint32_t j) const;

  /// Payload bytes of sub-block (i,j) counting weights when `with_weights`.
  std::uint64_t SubBlockBytes(std::uint32_t i, std::uint32_t j,
                              bool with_weights) const noexcept {
    const std::uint64_t per_edge =
        kEdgeBytes + (with_weights && weighted() ? kWeightBytes : 0);
    return manifest_.EdgesIn(i, j) * per_edge;
  }

 private:
  io::Device* device_ = nullptr;
  std::string dir_;
  GridManifest manifest_;
  std::vector<std::uint32_t> degrees_;
};

}  // namespace graphsd::partition
