// Vertex interval computation for the 2-D grid partitioning (paper §3.2).
//
// The vertex set is split into P disjoint contiguous intervals; edges land
// in sub-block (i, j) when src ∈ interval i and dst ∈ interval j.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace graphsd::partition {

/// How interval boundaries are chosen.
enum class IntervalScheme {
  kEqualVertices,  // |V|/P vertices per interval
  kBalancedEdges,  // boundaries chosen so out-edge counts are balanced
};

/// P+1 boundaries: interval i is [boundaries[i], boundaries[i+1]).
using IntervalBoundaries = std::vector<VertexId>;

/// Equal-vertex split of [0, num_vertices) into `p` intervals.
IntervalBoundaries ComputeEqualIntervals(VertexId num_vertices, std::uint32_t p);

/// Degree-balanced split: each interval holds ≈ |E|/P out-edges.
IntervalBoundaries ComputeBalancedIntervals(
    const std::vector<std::uint32_t>& out_degrees, std::uint32_t p);

/// Index of the interval containing `v` (binary search).
std::uint32_t IntervalOf(const IntervalBoundaries& boundaries, VertexId v);

/// Picks a default interval count so one sub-block row (≈ |E|/P edges plus
/// an interval of vertex values) fits the memory budget.
std::uint32_t ChooseIntervalCount(VertexId num_vertices,
                                  std::uint64_t num_edges,
                                  std::uint64_t memory_budget_bytes,
                                  bool weighted);

}  // namespace graphsd::partition
