// GraphSD preprocessing pipeline (paper §3.2 + §5.3).
//
// Steps: partition edges into P×P sub-blocks by (source interval,
// destination interval), sort each sub-block by (src, dst), build the
// per-sub-block CSR index that maps a source vertex to its edge range, and
// write everything through an accounted Device so preprocessing I/O is
// measurable (Figure 8).
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "io/device.hpp"
#include "partition/manifest.hpp"

namespace graphsd::partition {

struct GridBuildOptions {
  /// Interval count P; 0 = derive from `memory_budget_bytes`.
  std::uint32_t num_intervals = 0;
  /// Budget used when deriving P (0 = 5% of the raw edge bytes, the paper's
  /// evaluation setting).
  std::uint64_t memory_budget_bytes = 0;
  IntervalScheme scheme = IntervalScheme::kEqualVertices;
  /// Sort sub-blocks by (src, dst). GraphSD requires this; the Lumos-style
  /// pipeline turns it off.
  bool sort_sub_blocks = true;
  /// Build the per-sub-block source index (requires sorting).
  bool build_index = true;
  /// Edge-payload codec: "none" (raw v1 layout) or "varint-delta"
  /// (compressed GSDF frames, manifest format v2). Weights, index and
  /// degrees files are always raw.
  std::string codec = "none";
  /// Dataset name recorded in the manifest.
  std::string name = "graph";
};

/// Runs the full pipeline, writing the dataset into `dir` (created if
/// missing, wiped if present). Returns the manifest.
Result<GridManifest> BuildGrid(const EdgeList& list, io::Device& device,
                               const std::string& dir,
                               const GridBuildOptions& options = {});

}  // namespace graphsd::partition
