#include "partition/intervals.hpp"

#include <algorithm>

#include "util/checked_cast.hpp"
#include "util/status.hpp"

namespace graphsd::partition {

IntervalBoundaries ComputeEqualIntervals(VertexId num_vertices,
                                         std::uint32_t p) {
  GRAPHSD_CHECK(p >= 1);
  GRAPHSD_CHECK(num_vertices >= 1);
  // Cap P at the vertex count so no interval is empty.
  p = std::min<std::uint32_t>(p, num_vertices);
  IntervalBoundaries boundaries(p + 1);
  for (std::uint32_t i = 0; i <= p; ++i) {
    boundaries[i] = static_cast<VertexId>(
        (static_cast<std::uint64_t>(num_vertices) * i) / p);
  }
  return boundaries;
}

IntervalBoundaries ComputeBalancedIntervals(
    const std::vector<std::uint32_t>& out_degrees, std::uint32_t p) {
  GRAPHSD_CHECK(p >= 1);
  const auto n = CheckedCast<VertexId>(out_degrees.size());
  GRAPHSD_CHECK(n >= 1);
  p = std::min<std::uint32_t>(p, n);

  std::uint64_t total = 0;
  for (const auto d : out_degrees) total += d;

  IntervalBoundaries boundaries;
  boundaries.reserve(p + 1);
  boundaries.push_back(0);
  std::uint64_t accumulated = 0;
  std::uint32_t next_boundary = 1;
  for (VertexId v = 0; v < n && next_boundary < p; ++v) {
    accumulated += out_degrees[v];
    // Close interval `next_boundary-1` once it holds its fair share,
    // but never let an interval be empty.
    const std::uint64_t target =
        (total * next_boundary + p - 1) / p;
    if (accumulated >= target && v + 1 < n &&
        v + 1 > boundaries.back()) {
      boundaries.push_back(v + 1);
      ++next_boundary;
    }
  }
  // Close any remaining intervals at the tail, keeping them non-empty.
  while (boundaries.size() < p) {
    const VertexId last = boundaries.back();
    const auto remaining_intervals =
        static_cast<VertexId>(p + 1 - boundaries.size());
    const VertexId step =
        std::max<VertexId>(1, (n - last) / remaining_intervals);
    boundaries.push_back(std::min<VertexId>(n - (remaining_intervals - 1),
                                            last + step));
  }
  boundaries.push_back(n);
  return boundaries;
}

std::uint32_t IntervalOf(const IntervalBoundaries& boundaries, VertexId v) {
  GRAPHSD_CHECK(boundaries.size() >= 2);
  GRAPHSD_CHECK(v < boundaries.back());
  const auto it =
      std::upper_bound(boundaries.begin(), boundaries.end(), v);
  return static_cast<std::uint32_t>(it - boundaries.begin() - 1);
}

std::uint32_t ChooseIntervalCount(VertexId num_vertices,
                                  std::uint64_t num_edges,
                                  std::uint64_t memory_budget_bytes,
                                  bool weighted) {
  GRAPHSD_CHECK(memory_budget_bytes > 0);
  const std::uint64_t bytes_per_edge =
      kEdgeBytes + (weighted ? kWeightBytes : 0);
  // A processing step holds ~one sub-block row of edges plus one interval of
  // 8-byte vertex values.
  for (std::uint32_t p = 1; p < 1024; ++p) {
    const std::uint64_t row_bytes = num_edges * bytes_per_edge / p;
    const std::uint64_t value_bytes = 8ULL * num_vertices / p;
    if (row_bytes + value_bytes <= memory_budget_bytes) return p;
  }
  return 1024;
}

}  // namespace graphsd::partition
