// Preprocessing pipelines of the compared systems (paper §5.3, Figure 8).
//
// The three systems do measurably different preprocessing work:
//   * GraphSD   — one copy of the edges, bucketed into the P×P grid,
//                 sorted, plus the per-sub-block source index.
//   * HUS-Graph — TWO copies of the edges (one organized by source for its
//                 on-demand path, one by destination for its full path),
//                 both sorted. Longest pipeline.
//   * Lumos     — one copy, bucketed only (no sort, no index). Shortest.
//
// Each returns a dataset directory the corresponding engine can open, plus
// a timing/traffic report for the preprocessing bench.
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "io/device.hpp"
#include "partition/grid_builder.hpp"

namespace graphsd::partition {

struct PreprocessReport {
  std::string system;
  double wall_seconds = 0;      // measured CPU-side time (partition+sort)
  double io_seconds = 0;        // modeled I/O time (read raw + write layout)
  io::IoStatsSnapshot io;       // traffic
  GridManifest manifest;

  double TotalSeconds() const noexcept { return wall_seconds + io_seconds; }
};

struct PreprocessOptions {
  std::uint32_t num_intervals = 0;  // 0 = derive from memory budget
  std::uint64_t memory_budget_bytes = 0;
  std::string name = "graph";
  /// Edge-payload codec for the GraphSD pipeline ("none" = raw layout).
  /// The baselines always write raw: neither comparison system stores
  /// compressed sub-blocks, so their preprocessing byte counts stay honest.
  std::string codec = "none";
};

/// GraphSD pipeline: read raw binary edges via `device`, build the sorted +
/// indexed grid into `dir`.
Result<PreprocessReport> PreprocessGraphSD(const std::string& raw_edges_path,
                                           io::Device& device,
                                           const std::string& dir,
                                           const PreprocessOptions& options);

/// HUS-Graph pipeline: builds the same destination-organized grid PLUS a
/// second, source-organized copy (written under `<dir>_src`), both sorted.
Result<PreprocessReport> PreprocessHusGraph(const std::string& raw_edges_path,
                                            io::Device& device,
                                            const std::string& dir,
                                            const PreprocessOptions& options);

/// Lumos pipeline: bucket-only grid, unsorted, no index.
Result<PreprocessReport> PreprocessLumos(const std::string& raw_edges_path,
                                         io::Device& device,
                                         const std::string& dir,
                                         const PreprocessOptions& options);

}  // namespace graphsd::partition
