#include "partition/dataset_verify.hpp"

#include <algorithm>

#include "graph/types.hpp"
#include "io/file.hpp"
#include "util/crc32c.hpp"

namespace graphsd::partition {
namespace {

constexpr std::size_t kChunkBytes = 1 << 20;

}  // namespace

std::string DatasetVerifyReport::Summary() const {
  std::string out;
  out += "verified " + std::to_string(files_checked) + " files: ";
  if (!has_checksums) {
    out += "no checksums recorded (dataset predates checksumming)";
  } else if (failures.empty()) {
    out += "all checksums match";
  } else {
    out += std::to_string(failures.size()) + " failed";
    for (const FileCheck& check : failures) {
      out += "\n  " + check.path + ": " + check.status.ToString();
    }
  }
  return out;
}

Status VerifyFileCrc(const std::string& path, std::uint64_t expected_bytes,
                     std::uint32_t expected_crc) {
  GRAPHSD_ASSIGN_OR_RETURN(io::File file,
                           io::File::Open(path, io::OpenMode::kRead));
  GRAPHSD_ASSIGN_OR_RETURN(const std::uint64_t size, file.Size());
  if (size != expected_bytes) {
    return CorruptDataError(path + ": size " + std::to_string(size) +
                            " != expected " + std::to_string(expected_bytes));
  }
  std::vector<std::uint8_t> chunk;
  std::uint32_t crc = 0;
  for (std::uint64_t offset = 0; offset < size;) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunkBytes,
                                                         size - offset));
    chunk.resize(n);
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(offset, chunk));
    crc = Crc32c(crc, chunk.data(), n);
    offset += n;
  }
  if (crc != expected_crc) {
    return CorruptDataError(path + ": CRC32C mismatch (stored " +
                            std::to_string(expected_crc) + ", computed " +
                            std::to_string(crc) + ")");
  }
  return Status::Ok();
}

Result<DatasetVerifyReport> VerifyDataset(const std::string& dir) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::string text,
                           io::ReadFileToString(ManifestPath(dir)));
  GRAPHSD_ASSIGN_OR_RETURN(const GridManifest manifest,
                           GridManifest::Parse(text));

  DatasetVerifyReport report;
  report.has_checksums = manifest.has_checksums;
  if (!manifest.has_checksums) return report;

  const auto check = [&report](const std::string& path, std::uint64_t bytes,
                               std::uint32_t crc) {
    ++report.files_checked;
    Status status = VerifyFileCrc(path, bytes, crc);
    if (!status.ok()) report.failures.push_back({path, std::move(status)});
  };

  check(DegreesPath(dir),
        static_cast<std::uint64_t>(manifest.num_vertices) *
            sizeof(std::uint32_t),
        manifest.degrees_crc);
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      const std::size_t slot = manifest.SubBlockSlot(i, j);
      const std::uint64_t edges = manifest.EdgesIn(i, j);
      check(SubBlockEdgesPath(dir, i, j), edges * kEdgeBytes,
            manifest.edge_crcs[slot]);
      if (manifest.weighted) {
        check(SubBlockWeightsPath(dir, i, j), edges * kWeightBytes,
              manifest.weight_crcs[slot]);
      }
      if (manifest.has_index) {
        check(SubBlockIndexPath(dir, i, j),
              (static_cast<std::uint64_t>(manifest.IntervalSize(i)) + 1) *
                  sizeof(std::uint32_t),
              manifest.index_crcs[slot]);
      }
    }
  }
  return report;
}

}  // namespace graphsd::partition
