#include "partition/dataset_verify.hpp"

#include <algorithm>

#include "compress/frame.hpp"
#include "graph/types.hpp"
#include "io/file.hpp"
#include "util/crc32c.hpp"

namespace graphsd::partition {
namespace {

constexpr std::size_t kChunkBytes = 1 << 20;

/// Validates one compressed edge frame beyond its whole-file CRC: header
/// magic/codec/sizes, payload CRC, and that the decoded byte count matches
/// what the manifest says the sub-block holds. Returns the frame's actual
/// codec name through `codec_name` on success.
Status VerifyEdgeFrame(const std::string& path,
                       std::uint64_t expected_raw_bytes,
                       std::string* codec_name) {
  GRAPHSD_ASSIGN_OR_RETURN(io::File file,
                           io::File::Open(path, io::OpenMode::kRead));
  GRAPHSD_ASSIGN_OR_RETURN(const std::uint64_t size, file.Size());
  std::vector<std::uint8_t> frame(size);
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(0, frame));
  auto header_result = compress::ParseFrameHeader(frame);
  if (!header_result.ok()) {
    return CorruptDataError(path + ": " +
                            std::string(header_result.status().message()));
  }
  const compress::FrameHeader& header = *header_result;
  if (header.raw_bytes != expected_raw_bytes) {
    return CorruptDataError(
        path + ": frame declares " + std::to_string(header.raw_bytes) +
        " raw bytes, manifest implies " + std::to_string(expected_raw_bytes));
  }
  auto decoded = compress::DecodeFrame(frame);
  if (!decoded.ok()) {
    return CorruptDataError(path + ": " +
                            std::string(decoded.status().message()));
  }
  // DecodeFrame sizes its output from header.raw_bytes and the codecs
  // reject length mismatches, so reaching here means the decode round-trip
  // produced exactly expected_raw_bytes.
  const compress::Codec* codec = compress::FindCodecById(header.codec_id);
  *codec_name = codec != nullptr ? std::string(codec->name()) : "unknown";
  return Status::Ok();
}

}  // namespace

std::string DatasetVerifyReport::Summary() const {
  std::string out;
  out += "verified " + std::to_string(files_checked) + " files: ";
  if (!has_checksums && frames_checked == 0) {
    out += "no checksums recorded (dataset predates checksumming)";
  } else if (failures.empty()) {
    out += has_checksums ? "all checksums match" : "all frames decode";
  } else {
    out += std::to_string(failures.size()) + " failed";
    for (const FileCheck& check : failures) {
      out += "\n  " + check.path + ": " + check.status.ToString();
    }
  }
  if (codec != "none") {
    out += "\n  edge codec " + codec + ", " + std::to_string(frames_checked) +
           " frames validated";
    for (const auto& [name, count] : frame_codecs) {
      out += "\n    " + name + ": " + std::to_string(count) + " files";
    }
  }
  return out;
}

Status VerifyFileCrc(const std::string& path, std::uint64_t expected_bytes,
                     std::uint32_t expected_crc) {
  GRAPHSD_ASSIGN_OR_RETURN(io::File file,
                           io::File::Open(path, io::OpenMode::kRead));
  GRAPHSD_ASSIGN_OR_RETURN(const std::uint64_t size, file.Size());
  if (size != expected_bytes) {
    return CorruptDataError(path + ": size " + std::to_string(size) +
                            " != expected " + std::to_string(expected_bytes));
  }
  std::vector<std::uint8_t> chunk;
  std::uint32_t crc = 0;
  for (std::uint64_t offset = 0; offset < size;) {
    const std::size_t n =
        static_cast<std::size_t>(std::min<std::uint64_t>(kChunkBytes,
                                                         size - offset));
    chunk.resize(n);
    GRAPHSD_RETURN_IF_ERROR(file.ReadAt(offset, chunk));
    crc = Crc32c(crc, chunk.data(), n);
    offset += n;
  }
  if (crc != expected_crc) {
    return CorruptDataError(path + ": CRC32C mismatch (stored " +
                            std::to_string(expected_crc) + ", computed " +
                            std::to_string(crc) + ")");
  }
  return Status::Ok();
}

Result<DatasetVerifyReport> VerifyDataset(const std::string& dir) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::string text,
                           io::ReadFileToString(ManifestPath(dir)));
  GRAPHSD_ASSIGN_OR_RETURN(const GridManifest manifest,
                           GridManifest::Parse(text));

  DatasetVerifyReport report;
  report.has_checksums = manifest.has_checksums;
  report.codec = manifest.codec;
  if (!manifest.has_checksums && !manifest.compressed()) return report;

  const auto check = [&report](const std::string& path, std::uint64_t bytes,
                               std::uint32_t crc) {
    ++report.files_checked;
    Status status = VerifyFileCrc(path, bytes, crc);
    if (!status.ok()) report.failures.push_back({path, std::move(status)});
  };

  if (manifest.has_checksums) {
    check(DegreesPath(dir),
          static_cast<std::uint64_t>(manifest.num_vertices) *
              sizeof(std::uint32_t),
          manifest.degrees_crc);
  }
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      const std::size_t slot = manifest.SubBlockSlot(i, j);
      const std::uint64_t edges = manifest.EdgesIn(i, j);
      if (manifest.has_checksums) {
        check(SubBlockEdgesPath(dir, i, j), manifest.EdgeFileBytes(i, j),
              manifest.edge_crcs[slot]);
      }
      if (manifest.compressed()) {
        // Beyond the whole-file CRC: parse the frame header, verify the
        // payload CRC, and decode to confirm the declared raw size.
        const std::string path = SubBlockEdgesPath(dir, i, j);
        if (!manifest.has_checksums) ++report.files_checked;
        ++report.frames_checked;
        std::string frame_codec;
        Status status = VerifyEdgeFrame(path, edges * kEdgeBytes, &frame_codec);
        if (!status.ok()) {
          report.failures.push_back({path, std::move(status)});
        } else {
          ++report.frame_codecs[frame_codec];
        }
      }
      if (!manifest.has_checksums) continue;
      if (manifest.weighted) {
        check(SubBlockWeightsPath(dir, i, j), edges * kWeightBytes,
              manifest.weight_crcs[slot]);
      }
      if (manifest.has_index) {
        check(SubBlockIndexPath(dir, i, j),
              (static_cast<std::uint64_t>(manifest.IntervalSize(i)) + 1) *
                  sizeof(std::uint32_t),
              manifest.index_crcs[slot]);
      }
    }
  }
  return report;
}

}  // namespace graphsd::partition
