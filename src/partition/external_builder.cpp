#include "partition/external_builder.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "compress/frame.hpp"
#include "graph/edge_io.hpp"
#include "util/crc32c.hpp"
#include "util/logging.hpp"

namespace graphsd::partition {
namespace {

template <typename T>
std::span<const std::uint8_t> AsBytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

template <typename T>
std::span<std::uint8_t> AsWritableBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

std::string SpillEdgesPath(const std::string& dir, std::uint32_t i,
                           std::uint32_t j) {
  return dir + "/spill_" + std::to_string(i) + "_" + std::to_string(j) +
         ".edges";
}

std::string SpillWeightsPath(const std::string& dir, std::uint32_t i,
                             std::uint32_t j) {
  return dir + "/spill_" + std::to_string(i) + "_" + std::to_string(j) +
         ".weights";
}

/// Bounded-memory append sink for one sub-block's spill files.
class SpillBucket {
 public:
  void Configure(io::Device* device, std::string edges_path,
                 std::string weights_path, bool weighted,
                 std::uint64_t buffer_bytes) {
    device_ = device;
    edges_path_ = std::move(edges_path);
    weights_path_ = std::move(weights_path);
    weighted_ = weighted;
    capacity_ = std::max<std::uint64_t>(1, buffer_bytes / sizeof(Edge));
    edges_.reserve(capacity_);
    if (weighted_) weights_.reserve(capacity_);
  }

  Status Add(const Edge& edge, Weight weight) {
    edges_.push_back(edge);
    if (weighted_) weights_.push_back(weight);
    ++count_;
    if (edges_.size() >= capacity_) return Flush();
    return Status::Ok();
  }

  Status Flush() {
    if (edges_.empty()) return Status::Ok();
    {
      GRAPHSD_ASSIGN_OR_RETURN(
          io::DeviceFile file,
          device_->Open(edges_path_, io::OpenMode::kReadWrite));
      GRAPHSD_RETURN_IF_ERROR(
          file.WriteAt(edge_offset_bytes_, AsBytes(edges_)));
      edge_offset_bytes_ += edges_.size() * sizeof(Edge);
    }
    if (weighted_) {
      GRAPHSD_ASSIGN_OR_RETURN(
          io::DeviceFile file,
          device_->Open(weights_path_, io::OpenMode::kReadWrite));
      GRAPHSD_RETURN_IF_ERROR(
          file.WriteAt(weight_offset_bytes_, AsBytes(weights_)));
      weight_offset_bytes_ += weights_.size() * sizeof(Weight);
    }
    edges_.clear();
    weights_.clear();
    return Status::Ok();
  }

  std::uint64_t count() const noexcept { return count_; }

 private:
  io::Device* device_ = nullptr;
  std::string edges_path_;
  std::string weights_path_;
  bool weighted_ = false;
  std::uint64_t capacity_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t edge_offset_bytes_ = 0;
  std::uint64_t weight_offset_bytes_ = 0;
  std::vector<Edge> edges_;
  std::vector<Weight> weights_;
};

/// Streams the input edge (and weight) arrays chunk by chunk.
class EdgeStream {
 public:
  static Result<EdgeStream> Open(io::Device& device, const std::string& path,
                                 const BinaryEdgeHeader& header,
                                 std::uint64_t chunk_edges) {
    EdgeStream stream;
    stream.header_ = header;
    stream.chunk_edges_ = std::max<std::uint64_t>(1, chunk_edges);
    GRAPHSD_ASSIGN_OR_RETURN(stream.file_,
                             device.Open(path, io::OpenMode::kRead));
    return stream;
  }

  /// Reads the next chunk; empty spans signal end of stream.
  Status Next(std::span<const Edge>& edges, std::span<const Weight>& weights) {
    const std::uint64_t remaining = header_.num_edges - position_;
    const std::uint64_t count = std::min(chunk_edges_, remaining);
    edge_buffer_.resize(count);
    weight_buffer_.resize(header_.weighted ? count : 0);
    if (count > 0) {
      GRAPHSD_RETURN_IF_ERROR(
          file_.ReadAt(header_.edges_offset + position_ * sizeof(Edge),
                       AsWritableBytes(edge_buffer_)));
      if (header_.weighted) {
        GRAPHSD_RETURN_IF_ERROR(
            file_.ReadAt(header_.weights_offset + position_ * sizeof(Weight),
                         AsWritableBytes(weight_buffer_)));
      }
      position_ += count;
    }
    edges = edge_buffer_;
    weights = weight_buffer_;
    return Status::Ok();
  }

  void Rewind() noexcept { position_ = 0; }

 private:
  BinaryEdgeHeader header_;
  std::uint64_t chunk_edges_ = 0;
  std::uint64_t position_ = 0;
  io::DeviceFile file_;
  std::vector<Edge> edge_buffer_;
  std::vector<Weight> weight_buffer_;
};

}  // namespace

Result<GridManifest> BuildGridExternal(const std::string& raw_edges_path,
                                       io::Device& device,
                                       const std::string& dir,
                                       const ExternalBuildOptions& options) {
  if (options.build_index && !options.sort_sub_blocks) {
    return InvalidArgumentError("the source index requires sorted sub-blocks");
  }
  const compress::Codec* codec = compress::FindCodec(options.codec);
  if (codec == nullptr) {
    return InvalidArgumentError("unknown edge codec: " + options.codec);
  }
  GRAPHSD_ASSIGN_OR_RETURN(const BinaryEdgeHeader header,
                           ReadBinaryEdgeHeader(device, raw_edges_path));
  if (header.num_vertices == 0) {
    return InvalidArgumentError("cannot build a grid over an empty graph");
  }
  GRAPHSD_RETURN_IF_ERROR(io::RemoveTree(dir));
  GRAPHSD_RETURN_IF_ERROR(io::MakeDirectories(dir));

  GRAPHSD_ASSIGN_OR_RETURN(
      EdgeStream stream,
      EdgeStream::Open(device, raw_edges_path, header,
                       options.input_chunk_edges));

  // --- pass 0: degrees (also validates vertex ids) -------------------------
  std::vector<std::uint32_t> degrees(header.num_vertices, 0);
  for (;;) {
    std::span<const Edge> edges;
    std::span<const Weight> weights;
    GRAPHSD_RETURN_IF_ERROR(stream.Next(edges, weights));
    if (edges.empty()) break;
    for (const Edge& e : edges) {
      if (e.src >= header.num_vertices || e.dst >= header.num_vertices) {
        return CorruptDataError(raw_edges_path + ": edge out of range");
      }
      ++degrees[e.src];
    }
    // Same weight contract as EdgeList::Validate (which in-memory builds go
    // through): finite and nonnegative, checked before any dataset bytes
    // are committed.
    for (const Weight w : weights) {
      if (!std::isfinite(w) || w < 0.0f) {
        return InvalidArgumentError(
            raw_edges_path + ": " +
            (std::isfinite(w) ? std::string("negative") :
                                std::string("non-finite")) +
            " edge weight " + std::to_string(w) +
            "; weights must be finite and >= 0");
      }
    }
  }

  // --- intervals + manifest skeleton ---------------------------------------
  std::uint32_t p = options.num_intervals;
  const std::uint64_t bytes_per_edge =
      kEdgeBytes + (header.weighted ? kWeightBytes : 0);
  if (p == 0) {
    std::uint64_t budget = options.memory_budget_bytes;
    if (budget == 0) {
      budget =
          std::max<std::uint64_t>(1, header.num_edges * bytes_per_edge / 20);
    }
    p = ChooseIntervalCount(header.num_vertices, header.num_edges, budget,
                            header.weighted);
  }
  GridManifest manifest;
  manifest.name = options.name;
  manifest.num_vertices = header.num_vertices;
  manifest.num_edges = header.num_edges;
  manifest.weighted = header.weighted;
  manifest.sorted = options.sort_sub_blocks;
  manifest.has_index = options.build_index;
  manifest.boundaries =
      options.scheme == IntervalScheme::kEqualVertices
          ? ComputeEqualIntervals(header.num_vertices, p)
          : ComputeBalancedIntervals(degrees, p);
  manifest.p = static_cast<std::uint32_t>(manifest.boundaries.size() - 1);
  p = manifest.p;
  manifest.sub_block_edges.assign(static_cast<std::size_t>(p) * p, 0);
  manifest.has_checksums = true;
  if (codec->id() != compress::CodecId::kNone) {
    manifest.format_version = 2;
    manifest.codec = std::string(codec->name());
    manifest.edge_frame_bytes.assign(static_cast<std::size_t>(p) * p, 0);
  }
  manifest.edge_crcs.assign(static_cast<std::size_t>(p) * p, 0);
  if (header.weighted) {
    manifest.weight_crcs.assign(static_cast<std::size_t>(p) * p, 0);
  }
  if (options.build_index) {
    manifest.index_crcs.assign(static_cast<std::size_t>(p) * p, 0);
  }

  // --- pass 1: route edges into per-sub-block spill files ------------------
  std::vector<SpillBucket> buckets(static_cast<std::size_t>(p) * p);
  for (std::uint32_t i = 0; i < p; ++i) {
    for (std::uint32_t j = 0; j < p; ++j) {
      buckets[static_cast<std::size_t>(i) * p + j].Configure(
          &device, SpillEdgesPath(dir, i, j), SpillWeightsPath(dir, i, j),
          header.weighted, options.spill_buffer_bytes);
    }
  }
  stream.Rewind();
  for (;;) {
    std::span<const Edge> edges;
    std::span<const Weight> weights;
    GRAPHSD_RETURN_IF_ERROR(stream.Next(edges, weights));
    if (edges.empty()) break;
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const Edge& e = edges[k];
      const std::uint32_t i = IntervalOf(manifest.boundaries, e.src);
      const std::uint32_t j = IntervalOf(manifest.boundaries, e.dst);
      GRAPHSD_RETURN_IF_ERROR(
          buckets[static_cast<std::size_t>(i) * p + j].Add(
              e, header.weighted ? weights[k] : Weight{1}));
    }
  }
  for (auto& bucket : buckets) GRAPHSD_RETURN_IF_ERROR(bucket.Flush());

  // --- pass 2: per sub-block sort + index + final files --------------------
  std::vector<Edge> block_edges;
  std::vector<Weight> block_weights;
  std::vector<std::uint32_t> index;
  for (std::uint32_t i = 0; i < p; ++i) {
    for (std::uint32_t j = 0; j < p; ++j) {
      const std::uint64_t count =
          buckets[static_cast<std::size_t>(i) * p + j].count();
      manifest.sub_block_edges[static_cast<std::size_t>(i) * p + j] = count;

      block_edges.resize(count);
      block_weights.resize(header.weighted ? count : 0);
      if (count > 0) {
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile spill,
            device.Open(SpillEdgesPath(dir, i, j), io::OpenMode::kRead));
        GRAPHSD_RETURN_IF_ERROR(spill.ReadAt(0, AsWritableBytes(block_edges)));
        if (header.weighted) {
          GRAPHSD_ASSIGN_OR_RETURN(
              io::DeviceFile wspill,
              device.Open(SpillWeightsPath(dir, i, j), io::OpenMode::kRead));
          GRAPHSD_RETURN_IF_ERROR(
              wspill.ReadAt(0, AsWritableBytes(block_weights)));
        }
      }

      if (options.sort_sub_blocks && count > 1) {
        if (header.weighted) {
          std::vector<std::uint32_t> order(count);
          std::iota(order.begin(), order.end(), 0);
          std::sort(order.begin(), order.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      return block_edges[a] < block_edges[b];
                    });
          std::vector<Edge> sorted_edges(count);
          std::vector<Weight> sorted_weights(count);
          for (std::uint64_t k = 0; k < count; ++k) {
            sorted_edges[k] = block_edges[order[k]];
            sorted_weights[k] = block_weights[order[k]];
          }
          block_edges = std::move(sorted_edges);
          block_weights = std::move(sorted_weights);
        } else {
          std::sort(block_edges.begin(), block_edges.end());
        }
      }

      const std::size_t slot = static_cast<std::size_t>(i) * p + j;
      {
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile file,
            device.Open(SubBlockEdgesPath(dir, i, j), io::OpenMode::kWrite));
        if (manifest.compressed()) {
          GRAPHSD_ASSIGN_OR_RETURN(
              const std::vector<std::uint8_t> frame,
              compress::EncodeFrame(*codec, AsBytes(block_edges)));
          GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, frame));
          manifest.edge_frame_bytes[slot] = frame.size();
          manifest.edge_crcs[slot] = Crc32c(frame);
        } else {
          GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(block_edges)));
          manifest.edge_crcs[slot] = Crc32c(AsBytes(block_edges));
        }
      }
      if (header.weighted) {
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile file,
            device.Open(SubBlockWeightsPath(dir, i, j), io::OpenMode::kWrite));
        GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(block_weights)));
        manifest.weight_crcs[slot] = Crc32c(AsBytes(block_weights));
      }
      if (options.build_index) {
        const VertexId begin = manifest.boundaries[i];
        const VertexId size = manifest.IntervalSize(i);
        index.assign(size + 1, 0);
        for (const Edge& e : block_edges) ++index[e.src - begin + 1];
        for (VertexId k = 0; k < size; ++k) index[k + 1] += index[k];
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile file,
            device.Open(SubBlockIndexPath(dir, i, j), io::OpenMode::kWrite));
        GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(index)));
        manifest.index_crcs[slot] = Crc32c(AsBytes(index));
      }

      GRAPHSD_RETURN_IF_ERROR(io::RemoveFile(SpillEdgesPath(dir, i, j)));
      if (header.weighted) {
        GRAPHSD_RETURN_IF_ERROR(io::RemoveFile(SpillWeightsPath(dir, i, j)));
      }
    }
  }

  // --- degrees + manifest ---------------------------------------------------
  {
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device.Open(DegreesPath(dir), io::OpenMode::kWrite));
    GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(degrees)));
    manifest.degrees_crc = Crc32c(AsBytes(degrees));
  }
  GRAPHSD_RETURN_IF_ERROR(manifest.Validate());
  GRAPHSD_RETURN_IF_ERROR(
      io::WriteStringToFile(ManifestPath(dir), manifest.Serialize()));
  GRAPHSD_LOG_DEBUG("externally built grid '%s': P=%u, %llu edges",
                    manifest.name.c_str(), manifest.p,
                    static_cast<unsigned long long>(manifest.num_edges));
  return manifest;
}

}  // namespace graphsd::partition
