#include "partition/grid_builder.hpp"

#include <algorithm>
#include <numeric>

#include "compress/frame.hpp"
#include "util/crc32c.hpp"
#include "util/logging.hpp"

namespace graphsd::partition {
namespace {

template <typename T>
std::span<const std::uint8_t> AsBytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

}  // namespace

Result<GridManifest> BuildGrid(const EdgeList& list, io::Device& device,
                               const std::string& dir,
                               const GridBuildOptions& options) {
  GRAPHSD_RETURN_IF_ERROR(list.Validate());
  if (list.num_vertices() == 0) {
    return InvalidArgumentError("cannot build a grid over an empty graph");
  }
  if (options.build_index && !options.sort_sub_blocks) {
    return InvalidArgumentError("the source index requires sorted sub-blocks");
  }
  const compress::Codec* codec = compress::FindCodec(options.codec);
  if (codec == nullptr) {
    return InvalidArgumentError("unknown edge codec: " + options.codec);
  }
  GRAPHSD_RETURN_IF_ERROR(io::RemoveTree(dir));
  GRAPHSD_RETURN_IF_ERROR(io::MakeDirectories(dir));

  // --- choose intervals ---------------------------------------------------
  std::uint32_t p = options.num_intervals;
  if (p == 0) {
    std::uint64_t budget = options.memory_budget_bytes;
    if (budget == 0) budget = std::max<std::uint64_t>(1, list.RawBytes() / 20);
    p = ChooseIntervalCount(list.num_vertices(), list.num_edges(), budget,
                            list.weighted());
  }
  GridManifest manifest;
  manifest.name = options.name;
  manifest.num_vertices = list.num_vertices();
  manifest.num_edges = list.num_edges();
  manifest.weighted = list.weighted();
  manifest.sorted = options.sort_sub_blocks;
  manifest.has_index = options.build_index;
  manifest.boundaries =
      options.scheme == IntervalScheme::kEqualVertices
          ? ComputeEqualIntervals(list.num_vertices(), p)
          : ComputeBalancedIntervals(list.OutDegrees(), p);
  manifest.p = static_cast<std::uint32_t>(manifest.boundaries.size() - 1);
  p = manifest.p;
  manifest.sub_block_edges.assign(static_cast<std::size_t>(p) * p, 0);
  manifest.has_checksums = true;
  if (codec->id() != compress::CodecId::kNone) {
    manifest.format_version = 2;
    manifest.codec = std::string(codec->name());
    manifest.edge_frame_bytes.assign(static_cast<std::size_t>(p) * p, 0);
  }
  manifest.edge_crcs.assign(static_cast<std::size_t>(p) * p, 0);
  if (list.weighted()) {
    manifest.weight_crcs.assign(static_cast<std::size_t>(p) * p, 0);
  }
  if (options.build_index) {
    manifest.index_crcs.assign(static_cast<std::size_t>(p) * p, 0);
  }

  // --- bucket edges into sub-blocks ---------------------------------------
  struct Bucket {
    std::vector<Edge> edges;
    std::vector<Weight> weights;
  };
  std::vector<Bucket> buckets(static_cast<std::size_t>(p) * p);
  for (std::uint64_t e = 0; e < list.num_edges(); ++e) {
    const Edge& edge = list.edges()[e];
    const std::uint32_t i = IntervalOf(manifest.boundaries, edge.src);
    const std::uint32_t j = IntervalOf(manifest.boundaries, edge.dst);
    Bucket& bucket = buckets[static_cast<std::size_t>(i) * p + j];
    bucket.edges.push_back(edge);
    if (list.weighted()) bucket.weights.push_back(list.weights()[e]);
  }

  // --- sort, index, write --------------------------------------------------
  std::vector<std::uint32_t> index;
  for (std::uint32_t i = 0; i < p; ++i) {
    for (std::uint32_t j = 0; j < p; ++j) {
      Bucket& bucket = buckets[static_cast<std::size_t>(i) * p + j];
      manifest.sub_block_edges[static_cast<std::size_t>(i) * p + j] =
          bucket.edges.size();

      if (options.sort_sub_blocks && !bucket.edges.empty()) {
        if (list.weighted()) {
          std::vector<std::uint32_t> order(bucket.edges.size());
          std::iota(order.begin(), order.end(), 0);
          std::sort(order.begin(), order.end(),
                    [&bucket](std::uint32_t a, std::uint32_t b) {
                      return bucket.edges[a] < bucket.edges[b];
                    });
          std::vector<Edge> edges(bucket.edges.size());
          std::vector<Weight> weights(bucket.edges.size());
          for (std::size_t k = 0; k < order.size(); ++k) {
            edges[k] = bucket.edges[order[k]];
            weights[k] = bucket.weights[order[k]];
          }
          bucket.edges = std::move(edges);
          bucket.weights = std::move(weights);
        } else {
          std::sort(bucket.edges.begin(), bucket.edges.end());
        }
      }

      const std::size_t slot = static_cast<std::size_t>(i) * p + j;
      {
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile file,
            device.Open(SubBlockEdgesPath(dir, i, j), io::OpenMode::kWrite));
        if (manifest.compressed()) {
          GRAPHSD_ASSIGN_OR_RETURN(
              const std::vector<std::uint8_t> frame,
              compress::EncodeFrame(*codec, AsBytes(bucket.edges)));
          GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, frame));
          manifest.edge_frame_bytes[slot] = frame.size();
          manifest.edge_crcs[slot] = Crc32c(frame);
        } else {
          GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(bucket.edges)));
          manifest.edge_crcs[slot] = Crc32c(AsBytes(bucket.edges));
        }
      }
      if (list.weighted()) {
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile file,
            device.Open(SubBlockWeightsPath(dir, i, j), io::OpenMode::kWrite));
        GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(bucket.weights)));
        manifest.weight_crcs[slot] = Crc32c(AsBytes(bucket.weights));
      }

      if (options.build_index) {
        // CSR offsets over the source interval: index[k] is the first edge
        // whose src is boundaries[i]+k; size interval_size+1.
        const VertexId begin = manifest.boundaries[i];
        const VertexId size = manifest.IntervalSize(i);
        index.assign(size + 1, 0);
        for (const Edge& edge : bucket.edges) {
          ++index[edge.src - begin + 1];
        }
        for (VertexId k = 0; k < size; ++k) index[k + 1] += index[k];
        GRAPHSD_ASSIGN_OR_RETURN(
            io::DeviceFile file,
            device.Open(SubBlockIndexPath(dir, i, j), io::OpenMode::kWrite));
        GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(index)));
        manifest.index_crcs[slot] = Crc32c(AsBytes(index));
      }

      // Release bucket memory as we go.
      bucket = Bucket{};
    }
  }

  // --- degrees + manifest ---------------------------------------------------
  {
    const auto degrees = list.OutDegrees();
    GRAPHSD_ASSIGN_OR_RETURN(
        io::DeviceFile file,
        device.Open(DegreesPath(dir), io::OpenMode::kWrite));
    GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, AsBytes(degrees)));
    manifest.degrees_crc = Crc32c(AsBytes(degrees));
  }
  GRAPHSD_RETURN_IF_ERROR(manifest.Validate());
  GRAPHSD_RETURN_IF_ERROR(
      io::WriteStringToFile(ManifestPath(dir), manifest.Serialize()));
  GRAPHSD_LOG_DEBUG("built grid '%s': P=%u, %u vertices, %llu edges",
                    manifest.name.c_str(), manifest.p, manifest.num_vertices,
                    static_cast<unsigned long long>(manifest.num_edges));
  return manifest;
}

}  // namespace graphsd::partition
