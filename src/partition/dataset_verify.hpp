// Offline integrity verification of a preprocessed grid dataset.
//
// `VerifyDataset` re-reads every payload file (degrees, sub-block
// edges/weights/index) through raw unaccounted I/O, checks sizes implied by
// the manifest, and compares CRC32C checksums recorded at build time. It
// backs the `graphsd_cli verify` subcommand and the engine's one-time
// sub-block verification on the on-demand path.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "partition/manifest.hpp"
#include "util/status.hpp"

namespace graphsd::partition {

/// Outcome of checking one file.
struct FileCheck {
  std::string path;
  Status status;  // kOk, or why the file failed
};

struct DatasetVerifyReport {
  bool has_checksums = false;    // manifest records CRCs at all
  std::string codec = "none";    // manifest-level edge codec
  std::uint64_t files_checked = 0;
  std::uint64_t frames_checked = 0;  // compressed edge frames validated
  /// Edge payload files per actual frame codec (frames self-describe; an
  /// incompressible block falls back to "none" inside a compressed
  /// dataset). Empty for raw datasets.
  std::map<std::string, std::uint64_t> frame_codecs;
  std::vector<FileCheck> failures;

  bool ok() const noexcept { return failures.empty(); }

  /// Multi-line human-readable summary (one line per failure).
  std::string Summary() const;
};

/// Reads `path` in full (raw, unaccounted I/O), requiring exactly
/// `expected_bytes` bytes whose CRC32C equals `expected_crc`.
Status VerifyFileCrc(const std::string& path, std::uint64_t expected_bytes,
                     std::uint32_t expected_crc);

/// Verifies every payload file of the dataset in `dir` against its manifest.
/// Returns an error only when the manifest itself cannot be read; per-file
/// problems are collected in the report.
Result<DatasetVerifyReport> VerifyDataset(const std::string& dir);

}  // namespace graphsd::partition
