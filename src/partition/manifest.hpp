// On-disk dataset manifest: the metadata record describing a preprocessed
// grid dataset (paper §3.2 representation).
//
// Stored as a line-oriented `key=value` text file so datasets are
// self-describing and debuggable with `cat`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "partition/intervals.hpp"
#include "util/status.hpp"

namespace graphsd::partition {

// Newest manifest format this build can read. v1 is the original raw
// layout; v2 adds an explicit `format_version` line, the dataset-level edge
// codec and per-sub-block frame sizes. Parse rejects anything newer with a
// clear kUnimplemented status instead of misparsing it.
inline constexpr std::uint32_t kMaxManifestFormatVersion = 2;

struct GridManifest {
  // On-disk format version. Raw (codec "none") datasets serialize as the
  // original v1 text, byte for byte, so old readers and old datasets keep
  // working; compressed datasets require v2.
  std::uint32_t format_version = 1;
  std::string name;            // dataset name (informational)
  VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool weighted = false;
  bool sorted = false;         // sub-blocks sorted by (src,dst)
  bool has_index = false;      // per-sub-block CSR index present
  std::uint32_t p = 0;         // interval count
  IntervalBoundaries boundaries;           // p+1 entries
  std::vector<std::uint64_t> sub_block_edges;  // p*p entries, row-major (i*p+j)

  // Edge-payload codec negotiated for the dataset ("none" = raw fixed-width
  // edges, no frames). When compressed, every `.edges` file is a
  // self-describing GSDF frame (see compress/frame.hpp) and
  // `edge_frame_bytes` records each file's on-disk size (p*p, row-major) —
  // the byte counts the scheduler charges for sequential sub-block reads.
  // Weights, index and degrees files stay raw in either case.
  std::string codec = "none";
  std::vector<std::uint64_t> edge_frame_bytes;

  // CRC32C checksums of every payload file, recorded at build time and
  // verified on load (DESIGN.md "Failure model & recovery"). Datasets built
  // before checksumming load with has_checksums=false and skip verification.
  bool has_checksums = false;
  std::uint32_t degrees_crc = 0;
  std::vector<std::uint32_t> edge_crcs;    // p*p, row-major
  std::vector<std::uint32_t> weight_crcs;  // p*p when weighted, else empty
  std::vector<std::uint32_t> index_crcs;   // p*p when has_index, else empty

  /// Row-major flat index of sub-block (i, j), bounds-checked.
  std::size_t SubBlockSlot(std::uint32_t i, std::uint32_t j) const {
    GRAPHSD_CHECK(i < p && j < p);
    return static_cast<std::size_t>(i) * p + j;
  }

  /// Edge count of sub-block (i, j).
  std::uint64_t EdgesIn(std::uint32_t i, std::uint32_t j) const {
    return sub_block_edges[SubBlockSlot(i, j)];
  }

  /// Vertex count of interval i.
  VertexId IntervalSize(std::uint32_t i) const {
    GRAPHSD_CHECK(i < p);
    return boundaries[i + 1] - boundaries[i];
  }

  /// Bytes per stored edge (M, or M+W when weighted).
  std::uint64_t BytesPerEdge() const noexcept {
    return kEdgeBytes + (weighted ? kWeightBytes : 0);
  }

  /// Total bytes of all edge (+weight) payload.
  std::uint64_t TotalEdgeBytes() const noexcept {
    return num_edges * BytesPerEdge();
  }

  /// True when edge payloads are stored as compressed frames.
  bool compressed() const noexcept { return codec != "none"; }

  /// On-disk bytes of sub-block (i, j)'s `.edges` file: the frame size when
  /// compressed, the raw edge array size otherwise.
  std::uint64_t EdgeFileBytes(std::uint32_t i, std::uint32_t j) const {
    return compressed() ? edge_frame_bytes[SubBlockSlot(i, j)]
                        : EdgesIn(i, j) * kEdgeBytes;
  }

  /// Total on-disk bytes of all `.edges` files.
  std::uint64_t TotalEdgeFileBytes() const noexcept {
    if (!compressed()) return num_edges * kEdgeBytes;
    std::uint64_t total = 0;
    for (const auto bytes : edge_frame_bytes) total += bytes;
    return total;
  }

  /// Validates internal consistency.
  Status Validate() const;

  /// Serializes to the text format.
  std::string Serialize() const;

  /// Parses the text format.
  static Result<GridManifest> Parse(const std::string& text);
};

/// Standard file names inside a dataset directory.
std::string ManifestPath(const std::string& dir);
std::string DegreesPath(const std::string& dir);
std::string SubBlockEdgesPath(const std::string& dir, std::uint32_t i,
                              std::uint32_t j);
std::string SubBlockWeightsPath(const std::string& dir, std::uint32_t i,
                                std::uint32_t j);
std::string SubBlockIndexPath(const std::string& dir, std::uint32_t i,
                              std::uint32_t j);

}  // namespace graphsd::partition
