#include "partition/baseline_preprocessors.hpp"

#include "graph/edge_io.hpp"
#include "util/clock.hpp"

namespace graphsd::partition {
namespace {

/// Shared skeleton: read raw edges, run `build`, report timing split.
template <typename BuildFn>
Result<PreprocessReport> RunPipeline(const std::string& system,
                                     const std::string& raw_edges_path,
                                     io::Device& device, BuildFn&& build) {
  PreprocessReport report;
  report.system = system;
  const auto io_before = device.stats().Snapshot();
  const double virt_before = device.clock().Seconds();
  WallTimer wall;

  GRAPHSD_ASSIGN_OR_RETURN(const EdgeList list,
                           ReadBinaryEdgeList(device, raw_edges_path));
  GRAPHSD_ASSIGN_OR_RETURN(report.manifest, build(list));

  report.io = device.stats().Snapshot() - io_before;
  report.io_seconds = device.clock().Seconds() - virt_before;
  // CPU-side time: total wall minus the real time the accounted I/O took is
  // not separable here, so we report wall time of the whole pipeline as the
  // compute component; at bench scale the dominant modeled cost is
  // `io_seconds` anyway.
  report.wall_seconds = wall.Seconds();
  return report;
}

}  // namespace

Result<PreprocessReport> PreprocessGraphSD(const std::string& raw_edges_path,
                                           io::Device& device,
                                           const std::string& dir,
                                           const PreprocessOptions& options) {
  return RunPipeline(
      "GraphSD", raw_edges_path, device,
      [&](const EdgeList& list) -> Result<GridManifest> {
        GridBuildOptions build;
        build.num_intervals = options.num_intervals;
        build.memory_budget_bytes = options.memory_budget_bytes;
        build.sort_sub_blocks = true;
        build.build_index = true;
        build.name = options.name;
        build.codec = options.codec;
        return BuildGrid(list, device, dir, build);
      });
}

Result<PreprocessReport> PreprocessHusGraph(const std::string& raw_edges_path,
                                            io::Device& device,
                                            const std::string& dir,
                                            const PreprocessOptions& options) {
  return RunPipeline(
      "HUS-Graph", raw_edges_path, device,
      [&](const EdgeList& list) -> Result<GridManifest> {
        GridBuildOptions build;
        build.num_intervals = options.num_intervals;
        build.memory_budget_bytes = options.memory_budget_bytes;
        build.sort_sub_blocks = true;
        build.build_index = true;
        build.name = options.name;
        // Destination-organized copy (what the engine runs on).
        GRAPHSD_ASSIGN_OR_RETURN(GridManifest manifest,
                                 BuildGrid(list, device, dir, build));
        // Second, source-organized copy: HUS-Graph keeps both orientations
        // on disk. We build it by swapping edge direction, which performs
        // the same bucket+sort+write work and doubles the written bytes.
        EdgeList reversed(list.num_vertices());
        for (std::uint64_t e = 0; e < list.num_edges(); ++e) {
          const Edge& edge = list.edges()[e];
          if (list.weighted()) {
            reversed.AddEdge(edge.dst, edge.src, list.weights()[e]);
          } else {
            reversed.AddEdge(edge.dst, edge.src);
          }
        }
        build.name = options.name + "_src";
        GRAPHSD_RETURN_IF_ERROR(
            BuildGrid(reversed, device, dir + "_src", build).status());
        return manifest;
      });
}

Result<PreprocessReport> PreprocessLumos(const std::string& raw_edges_path,
                                         io::Device& device,
                                         const std::string& dir,
                                         const PreprocessOptions& options) {
  return RunPipeline(
      "Lumos", raw_edges_path, device,
      [&](const EdgeList& list) -> Result<GridManifest> {
        GridBuildOptions build;
        build.num_intervals = options.num_intervals;
        build.memory_budget_bytes = options.memory_budget_bytes;
        build.sort_sub_blocks = false;  // Lumos does not sort...
        build.build_index = false;      // ...and keeps no source index.
        build.name = options.name;
        return BuildGrid(list, device, dir, build);
      });
}

}  // namespace graphsd::partition
