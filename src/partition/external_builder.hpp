// Out-of-core preprocessing: builds a grid dataset from a binary edge file
// WITHOUT materializing the edge list in memory.
//
// The paper's largest input (Kron30, 32 B edges ≈ 384 GB) cannot pass
// through the in-memory BuildGrid; a real GraphSD deployment preprocesses
// out of core. This builder makes three bounded-memory passes:
//
//   pass 0 — stream the input once to count degrees (for interval
//            computation and the degrees file);
//   pass 1 — stream the input again, routing each edge into a buffered
//            append-only spill file per sub-block (P² write buffers of
//            `spill_buffer_bytes` each);
//   pass 2 — per sub-block: load the spill (one sub-block is the memory
//            high-water mark, the same bound the engine itself needs),
//            sort, build the source index, write the final files.
//
// Output is byte-identical in layout to BuildGrid's (same manifest, same
// file formats), which the tests assert.
#pragma once

#include <string>

#include "io/device.hpp"
#include "partition/grid_builder.hpp"
#include "partition/manifest.hpp"

namespace graphsd::partition {

struct ExternalBuildOptions {
  /// Interval count P; 0 = derive from `memory_budget_bytes`.
  std::uint32_t num_intervals = 0;
  /// Budget used when deriving P (0 = 5% of the raw edge bytes).
  std::uint64_t memory_budget_bytes = 0;
  IntervalScheme scheme = IntervalScheme::kEqualVertices;
  bool sort_sub_blocks = true;
  bool build_index = true;
  /// Edge-payload codec: "none" or "varint-delta" (see GridBuildOptions).
  std::string codec = "none";
  std::string name = "graph";
  /// Per-sub-block spill write buffer. P² of these are live in pass 1.
  std::uint64_t spill_buffer_bytes = 64 * 1024;
  /// Edges read per input chunk in passes 0 and 1.
  std::uint64_t input_chunk_edges = 1 << 16;
};

/// Streams `raw_edges_path` (GSDE binary format) into a grid dataset at
/// `dir` using bounded memory. All I/O flows through `device`.
Result<GridManifest> BuildGridExternal(const std::string& raw_edges_path,
                                       io::Device& device,
                                       const std::string& dir,
                                       const ExternalBuildOptions& options = {});

}  // namespace graphsd::partition
