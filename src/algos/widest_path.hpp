// Widest path / maximum-bottleneck path (push kind, weighted).
//
// width[dst] = max(width[dst], min(width[src], w)). The max-min combine is
// commutative, associative and idempotent — the third monotone combine
// class (after min-plus SSSP and min-label CC) — exercising the
// programming model beyond the paper's four algorithms. Classic uses:
// maximum-bandwidth routing, bottleneck capacity planning.
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class WidestPath final : public core::PushProgram {
 public:
  explicit WidestPath(VertexId root) : root_(root) {}

  std::string name() const override { return "widest_path"; }
  bool needs_weights() const override { return true; }
  std::uint32_t num_value_arrays() const override { return 1; }  // width

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

 private:
  VertexId root_;
};

}  // namespace graphsd::algos
