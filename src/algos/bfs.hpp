// Breadth-First Search (push kind): hop count from a root via min-level
// propagation. The paper's motivating example of a shrinking frontier.
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class Bfs final : public core::PushProgram {
 public:
  explicit Bfs(VertexId root) : root_(root) {}

  std::string name() const override { return "bfs"; }
  std::uint32_t num_value_arrays() const override { return 1; }  // level

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

  /// Level of `v` after a run; UINT64_MAX when unreached.
  static std::uint64_t LevelOf(const core::VertexState& state, VertexId v) {
    return state.array(0)[v];
  }

 private:
  VertexId root_;
};

}  // namespace graphsd::algos
