// Connected Components via min-label propagation (push kind).
//
// label_0[v] = v; an edge (u, v) lowers label[v] to label[u] when smaller.
// For *weakly* connected components the dataset must be built from a
// symmetrized edge list (see graphsd::Symmetrize); on a directed dataset
// the result is directional label reachability, which is what every
// GridGraph-family system computes in that case.
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class ConnectedComponents final : public core::PushProgram {
 public:
  ConnectedComponents() = default;

  std::string name() const override { return "cc"; }
  std::uint32_t num_value_arrays() const override { return 1; }  // label

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

  /// Component label of `v` after a run.
  static VertexId LabelOf(const core::VertexState& state, VertexId v) {
    return static_cast<VertexId>(state.array(0)[v]);
  }
};

}  // namespace graphsd::algos
