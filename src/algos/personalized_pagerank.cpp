#include "algos/personalized_pagerank.hpp"

#include "core/slot.hpp"

namespace graphsd::algos {

using core::AtomicAddDouble;
using core::SlotFromDouble;
using core::SlotToDouble;

namespace {
constexpr std::uint32_t kRank = 0;
constexpr std::uint32_t kResidual = 1;
}  // namespace

void PersonalizedPageRank::Init(core::VertexState& state,
                                core::Frontier& initial) {
  GRAPHSD_CHECK(source_ < state.num_vertices());
  auto rank = state.array(kRank);
  auto residual = state.array(kResidual);
  for (VertexId v = 0; v < state.num_vertices(); ++v) {
    rank[v] = SlotFromDouble(0.0);
    residual[v] = SlotFromDouble(0.0);
  }
  residual[source_] = SlotFromDouble(1.0);
  initial.Activate(source_);
}

void PersonalizedPageRank::MakeContribution(core::VertexState& state,
                                            VertexId v,
                                            core::ContribSlot slot) const {
  auto rank = state.array(kRank);
  auto residual = state.array(kResidual);
  const double res = SlotToDouble(residual[v]);
  residual[v] = SlotFromDouble(0.0);
  // The restart probability's share settles into the rank; the rest walks.
  rank[v] = SlotFromDouble(SlotToDouble(rank[v]) + (1.0 - damping_) * res);
  const std::uint32_t degree = (*out_degrees_)[v];
  state.contrib(slot)[v] =
      SlotFromDouble(degree == 0 ? 0.0 : damping_ * res / degree);
}

bool PersonalizedPageRank::Apply(core::VertexState& state, VertexId src,
                                 VertexId dst, Weight /*w*/,
                                 core::ContribSlot slot) const {
  const double share = SlotToDouble(state.contrib(slot)[src]);
  if (share == 0.0) return false;
  const double updated = AtomicAddDouble(&state.array(kResidual)[dst], share);
  return updated > epsilon_;
}

double PersonalizedPageRank::ValueOf(const core::VertexState& state,
                                     VertexId v) const {
  return SlotToDouble(state.array(kRank)[v]) +
         (1.0 - damping_) * SlotToDouble(state.array(kResidual)[v]);
}

}  // namespace graphsd::algos
