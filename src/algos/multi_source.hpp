// Multi-source batched programs: K single-source queries in one edge pass.
//
// The `graphsd serve` coalescer turns K concurrent single-source requests on
// one dataset into one batched program with K value *lanes*: lane k carries
// query k's per-vertex state, contributions are laid out lane-major
// (contrib[v * K + k], see Program::contrib_width()), and one streaming pass
// over an edge applies it to every lane. The frontier is the union (OR) of
// the per-lane frontiers — a vertex active for any lane re-pushes all lanes.
//
// Correctness: BFS / SSSP / widest-path use monotone idempotent combines
// (min / min-plus / max-min) with non-consuming contributions, so the extra
// OR-activation re-pushes already-settled lane values harmlessly and each
// lane converges to the same unique fixed point as a solo run —
// bit-identical values. PPR's residual push is consuming: OR-activation
// drains residual mass that a solo run would have left below epsilon, so
// lane values agree with solo runs only to the sum-threshold tolerance
// (DESIGN.md §13; the service differential test pins it down).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/program.hpp"

namespace graphsd::algos {

/// Base for batched push programs. `lanes()` is the batch width K and
/// `LaneValueOf` reads lane k's result for one vertex — it must match the
/// solo program's ValueOf for the same root bit-for-bit (monotone lanes) or
/// within the sum-threshold tolerance (PPR lanes).
class MultiSourceProgram : public core::PushProgram {
 public:
  explicit MultiSourceProgram(std::vector<VertexId> roots)
      : roots_(std::move(roots)) {}

  std::uint32_t lanes() const noexcept {
    return static_cast<std::uint32_t>(roots_.size());
  }
  const std::vector<VertexId>& roots() const noexcept { return roots_; }

  std::uint32_t contrib_width() const final { return lanes(); }

  virtual double LaneValueOf(const core::VertexState& state,
                             std::uint32_t lane, VertexId v) const = 0;

  /// Lane 0's value, so a batch-of-one reports exactly like the solo run.
  double ValueOf(const core::VertexState& state, VertexId v) const override {
    return LaneValueOf(state, 0, v);
  }

 protected:
  std::vector<VertexId> roots_;
};

/// K-lane BFS: array k holds lane k's levels (u64, UINT64_MAX unreached).
class MultiBfs final : public MultiSourceProgram {
 public:
  explicit MultiBfs(std::vector<VertexId> roots)
      : MultiSourceProgram(std::move(roots)) {}

  std::string name() const override { return "multi_bfs"; }
  std::uint32_t num_value_arrays() const override { return lanes(); }

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double LaneValueOf(const core::VertexState& state, std::uint32_t lane,
                     VertexId v) const override;
};

/// K-lane SSSP: array k holds lane k's distances (double, +inf unreached).
class MultiSssp final : public MultiSourceProgram {
 public:
  explicit MultiSssp(std::vector<VertexId> roots)
      : MultiSourceProgram(std::move(roots)) {}

  std::string name() const override { return "multi_sssp"; }
  bool needs_weights() const override { return true; }
  std::uint32_t num_value_arrays() const override { return lanes(); }

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double LaneValueOf(const core::VertexState& state, std::uint32_t lane,
                     VertexId v) const override;
};

/// K-lane widest path: array k holds lane k's widths (double, 0 unreached).
class MultiWidestPath final : public MultiSourceProgram {
 public:
  explicit MultiWidestPath(std::vector<VertexId> roots)
      : MultiSourceProgram(std::move(roots)) {}

  std::string name() const override { return "multi_widest_path"; }
  bool needs_weights() const override { return true; }
  std::uint32_t num_value_arrays() const override { return lanes(); }

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double LaneValueOf(const core::VertexState& state, std::uint32_t lane,
                     VertexId v) const override;
};

/// K-lane personalized PageRank: array k is lane k's rank, array K + k its
/// residual. Same residual-push recurrence as the solo program per lane.
class MultiPpr final : public MultiSourceProgram {
 public:
  explicit MultiPpr(std::vector<VertexId> roots, double epsilon = 1e-10,
                    double damping = 0.85)
      : MultiSourceProgram(std::move(roots)),
        epsilon_(epsilon),
        damping_(damping) {}

  std::string name() const override { return "multi_ppr"; }
  std::uint32_t num_value_arrays() const override { return 2 * lanes(); }

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double LaneValueOf(const core::VertexState& state, std::uint32_t lane,
                     VertexId v) const override;

  double epsilon() const noexcept { return epsilon_; }
  double damping() const noexcept { return damping_; }

 private:
  double epsilon_;
  double damping_;
};

/// Builds the batched counterpart of a single-source algorithm ("bfs",
/// "sssp", "widest_path", "ppr"). Returns null for algorithms that are not
/// single-source batchable (pagerank, pagerank_delta, cc) or an empty root
/// list. `epsilon` / `damping` only apply to "ppr".
std::unique_ptr<MultiSourceProgram> MakeMultiSourceProgram(
    const std::string& algo, std::vector<VertexId> roots,
    double epsilon = 1e-10, double damping = 0.85);

/// True iff `algo` names a single-source algorithm the service may batch.
bool IsBatchableAlgo(const std::string& algo);

}  // namespace graphsd::algos
