#include "algos/widest_path.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/slot.hpp"

namespace graphsd::algos {

using core::Slot;
using core::SlotFromDouble;
using core::SlotToDouble;

namespace {

/// Atomic max over double payloads; returns true iff the value rose.
bool AtomicMaxDouble(Slot* slot, double value) noexcept {
  std::atomic_ref<Slot> ref(*slot);
  Slot observed = ref.load(std::memory_order_relaxed);
  while (SlotToDouble(observed) < value) {
    if (ref.compare_exchange_weak(observed, SlotFromDouble(value),
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

void WidestPath::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(root_ < state.num_vertices());
  auto width = state.array(0);
  for (auto& slot : width) slot = SlotFromDouble(0.0);  // unreached: width 0
  width[root_] = SlotFromDouble(std::numeric_limits<double>::infinity());
  initial.Activate(root_);
}

void WidestPath::MakeContribution(core::VertexState& state, VertexId v,
                                  core::ContribSlot slot) const {
  state.contrib(slot)[v] = state.array(0)[v];
}

bool WidestPath::Apply(core::VertexState& state, VertexId src, VertexId dst,
                       Weight w, core::ContribSlot slot) const {
  const double src_width = SlotToDouble(state.contrib(slot)[src]);
  if (src_width <= 0.0) return false;
  // The root's width is +inf, so the bottleneck is finite whenever the
  // weight is; an inf/NaN weight on a corrupted dataset must not install a
  // non-finite width that would then dominate every later max.
  const double bottleneck = std::min(src_width, static_cast<double>(w));
  if (!std::isfinite(bottleneck) || bottleneck <= 0.0) return false;
  return AtomicMaxDouble(&state.array(0)[dst], bottleneck);
}

double WidestPath::ValueOf(const core::VertexState& state, VertexId v) const {
  return SlotToDouble(state.array(0)[v]);
}

}  // namespace graphsd::algos
