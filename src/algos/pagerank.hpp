// PageRank (gather kind).
//
// Synchronous BSP PageRank over `iterations` rounds:
//   rank_{t+1}[v] = (1-d)/|V| + d * sum_{u->v} rank_t[u] / outdeg(u)
// rank_0 = 1/|V|; dangling mass is dropped (GridGraph-family convention).
// Every vertex is active every iteration, so the scheduler always selects
// the full I/O model and FCIU folds two rounds into each graph load.
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class PageRank final : public core::GatherProgram {
 public:
  explicit PageRank(std::uint32_t iterations, double damping = 0.85)
      : iterations_(iterations), damping_(damping) {}

  std::string name() const override { return "pagerank"; }
  std::uint32_t num_value_arrays() const override { return 1; }  // rank
  std::uint32_t max_iterations() const override { return iterations_; }

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  void ResetAccum(core::VertexState& state, core::AccumSlot a) const override;
  void Accumulate(core::VertexState& state, VertexId src, VertexId dst,
                  Weight w, core::ContribSlot c,
                  core::AccumSlot a) const override;
  void Finalize(core::VertexState& state, VertexId begin, VertexId end,
                core::AccumSlot a) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

 private:
  std::uint32_t iterations_;
  double damping_;
};

}  // namespace graphsd::algos
