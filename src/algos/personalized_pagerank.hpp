// Personalized PageRank (push kind): PageRank with restart at a single
// source — the recommendation/similarity workload (paper §1 cites
// event-recommendation social networks).
//
// Same residual-push machinery as PageRank-Delta, but all the initial
// residual mass sits on the source: rank converges to the stationary
// distribution of a random walk that teleports back to `source` with
// probability 1-d. Activity starts at one vertex and radiates — the most
// scheduler-friendly activity profile of the library (mostly on-demand).
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class PersonalizedPageRank final : public core::PushProgram {
 public:
  PersonalizedPageRank(VertexId source, double epsilon = 1e-10,
                       double damping = 0.85)
      : source_(source), epsilon_(epsilon), damping_(damping) {}

  std::string name() const override { return "ppr"; }
  std::uint32_t num_value_arrays() const override { return 2; }  // rank, res

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

  VertexId source() const noexcept { return source_; }

 private:
  VertexId source_;
  double epsilon_;
  double damping_;
};

}  // namespace graphsd::algos
