#include "algos/pagerank.hpp"

#include "core/slot.hpp"

namespace graphsd::algos {

using core::AtomicAddDouble;
using core::Slot;
using core::SlotFromDouble;
using core::SlotToDouble;

void PageRank::Init(core::VertexState& state, core::Frontier& initial) {
  const VertexId n = state.num_vertices();
  auto rank = state.array(0);
  for (VertexId v = 0; v < n; ++v) rank[v] = SlotFromDouble(1.0 / n);
  initial.ActivateAll();  // informational; gather runs all-active anyway
}

void PageRank::MakeContribution(core::VertexState& state, VertexId v,
                                core::ContribSlot slot) const {
  const double rank = SlotToDouble(state.array(0)[v]);
  const std::uint32_t degree = (*out_degrees_)[v];
  state.contrib(slot)[v] =
      SlotFromDouble(degree == 0 ? 0.0 : damping_ * rank / degree);
}

void PageRank::ResetAccum(core::VertexState& state,
                          core::AccumSlot a) const {
  const double base = (1.0 - damping_) / state.num_vertices();
  auto accum = state.accum(a);
  for (auto& slot : accum) slot = SlotFromDouble(base);
}

void PageRank::Accumulate(core::VertexState& state, VertexId src, VertexId dst,
                          Weight /*w*/, core::ContribSlot c,
                          core::AccumSlot a) const {
  const double share = SlotToDouble(state.contrib(c)[src]);
  if (share != 0.0) AtomicAddDouble(&state.accum(a)[dst], share);
}

void PageRank::Finalize(core::VertexState& state, VertexId begin, VertexId end,
                        core::AccumSlot a) const {
  auto rank = state.array(0);
  auto accum = state.accum(a);
  for (VertexId v = begin; v < end; ++v) rank[v] = accum[v];
}

double PageRank::ValueOf(const core::VertexState& state, VertexId v) const {
  return SlotToDouble(state.array(0)[v]);
}

}  // namespace graphsd::algos
