#include "algos/connected_components.hpp"

#include "core/slot.hpp"

namespace graphsd::algos {

void ConnectedComponents::Init(core::VertexState& state,
                               core::Frontier& initial) {
  auto label = state.array(0);
  for (VertexId v = 0; v < state.num_vertices(); ++v) label[v] = v;
  initial.ActivateAll();
}

void ConnectedComponents::MakeContribution(core::VertexState& state,
                                           VertexId v,
                                           core::ContribSlot slot) const {
  state.contrib(slot)[v] = state.array(0)[v];
}

bool ConnectedComponents::Apply(core::VertexState& state, VertexId src,
                                VertexId dst, Weight /*w*/,
                                core::ContribSlot slot) const {
  return core::AtomicMinU64(&state.array(0)[dst], state.contrib(slot)[src]);
}

double ConnectedComponents::ValueOf(const core::VertexState& state,
                                    VertexId v) const {
  return static_cast<double>(state.array(0)[v]);
}

}  // namespace graphsd::algos
