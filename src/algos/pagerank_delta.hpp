// PageRank-Delta (push kind) — paper §5.1: "vertices are activated in an
// iteration only if they have accumulated enough changes in their PR
// values".
//
// Residual/push formulation: each vertex keeps (rank, residual).
// When active, it folds its residual into its rank and pushes
// d·residual/outdeg to each out-neighbor's residual; a vertex activates
// when its residual exceeds `epsilon`. Converges to the PageRank fixpoint.
// Residual addition is a commutative sum, so cross-iteration pushes are
// exact.
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class PageRankDelta final : public core::PushProgram {
 public:
  /// With `relative_epsilon`, the activation threshold is
  /// `epsilon * (1-d)/|V|` — a fixed fraction of the per-vertex seed
  /// residual, which keeps the activity profile invariant across graph
  /// sizes. Otherwise `epsilon` is the absolute residual threshold.
  explicit PageRankDelta(double epsilon = 1e-9, double damping = 0.85,
                         std::uint32_t max_iterations = UINT32_MAX,
                         bool relative_epsilon = false)
      : epsilon_(epsilon),
        damping_(damping),
        max_iterations_(max_iterations),
        relative_epsilon_(relative_epsilon) {}

  std::string name() const override { return "pagerank_delta"; }
  std::uint32_t num_value_arrays() const override { return 2; }  // rank, res
  std::uint32_t max_iterations() const override { return max_iterations_; }

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

 private:
  double epsilon_;
  double damping_;
  std::uint32_t max_iterations_;
  bool relative_epsilon_;
  double threshold_ = 0.0;  // resolved at Init
};

}  // namespace graphsd::algos
