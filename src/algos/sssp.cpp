#include "algos/sssp.hpp"

#include <cmath>
#include <limits>

#include "core/slot.hpp"

namespace graphsd::algos {

using core::SlotFromDouble;
using core::SlotToDouble;

void Sssp::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(root_ < state.num_vertices());
  auto dist = state.array(0);
  const double inf = std::numeric_limits<double>::infinity();
  for (auto& slot : dist) slot = SlotFromDouble(inf);
  dist[root_] = SlotFromDouble(0.0);
  initial.Activate(root_);
}

void Sssp::MakeContribution(core::VertexState& state, VertexId v,
                            core::ContribSlot slot) const {
  state.contrib(slot)[v] = state.array(0)[v];
}

bool Sssp::Apply(core::VertexState& state, VertexId src, VertexId dst,
                 Weight w, core::ContribSlot slot) const {
  const double src_dist = SlotToDouble(state.contrib(slot)[src]);
  if (src_dist == std::numeric_limits<double>::infinity()) return false;
  // Saturate explicitly: a sum that overflows to inf (or passes through a
  // NaN on a corrupted dataset) must never win a relaxation against an
  // unreached (inf) destination or activate it.
  const double candidate = src_dist + static_cast<double>(w);
  if (!std::isfinite(candidate)) return false;
  return core::AtomicMinDouble(&state.array(0)[dst], candidate);
}

double Sssp::ValueOf(const core::VertexState& state, VertexId v) const {
  return SlotToDouble(state.array(0)[v]);
}

}  // namespace graphsd::algos
