// Single-Source Shortest Path (push kind, weighted).
//
// Frontier-based Bellman-Ford relaxation: dist[dst] = min(dist[dst],
// dist[src] + w). Nonnegative weights; converges to exact distances. The
// only GraphSD algorithm that streams the weight files (the M+W edge-size
// case of the cost model).
#pragma once

#include "core/program.hpp"

namespace graphsd::algos {

class Sssp final : public core::PushProgram {
 public:
  explicit Sssp(VertexId root) : root_(root) {}

  std::string name() const override { return "sssp"; }
  bool needs_weights() const override { return true; }
  std::uint32_t num_value_arrays() const override { return 1; }  // dist

  void Init(core::VertexState& state, core::Frontier& initial) override;
  void MakeContribution(core::VertexState& state, VertexId v,
                        core::ContribSlot slot) const override;
  bool Apply(core::VertexState& state, VertexId src, VertexId dst, Weight w,
             core::ContribSlot slot) const override;
  double ValueOf(const core::VertexState& state, VertexId v) const override;

  VertexId root() const noexcept { return root_; }

 private:
  VertexId root_;
};

}  // namespace graphsd::algos
