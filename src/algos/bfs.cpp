#include "algos/bfs.hpp"

#include "core/slot.hpp"

namespace graphsd::algos {

void Bfs::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(root_ < state.num_vertices());
  auto level = state.array(0);
  for (auto& slot : level) slot = UINT64_MAX;
  level[root_] = 0;
  initial.Activate(root_);
}

void Bfs::MakeContribution(core::VertexState& state, VertexId v,
                           core::ContribSlot slot) const {
  state.contrib(slot)[v] = state.array(0)[v];
}

bool Bfs::Apply(core::VertexState& state, VertexId src, VertexId dst,
                Weight /*w*/, core::ContribSlot slot) const {
  const std::uint64_t src_level = state.contrib(slot)[src];
  if (src_level == UINT64_MAX) return false;
  return core::AtomicMinU64(&state.array(0)[dst], src_level + 1);
}

double Bfs::ValueOf(const core::VertexState& state, VertexId v) const {
  return static_cast<double>(state.array(0)[v]);
}

}  // namespace graphsd::algos
