#include "algos/pagerank_delta.hpp"

#include "core/slot.hpp"

namespace graphsd::algos {

using core::AtomicAddDouble;
using core::SlotFromDouble;
using core::SlotToDouble;

namespace {
constexpr std::uint32_t kRank = 0;
constexpr std::uint32_t kResidual = 1;
}  // namespace

void PageRankDelta::Init(core::VertexState& state, core::Frontier& initial) {
  const VertexId n = state.num_vertices();
  auto rank = state.array(kRank);
  auto residual = state.array(kResidual);
  const double seed = (1.0 - damping_) / n;
  for (VertexId v = 0; v < n; ++v) {
    rank[v] = SlotFromDouble(0.0);
    residual[v] = SlotFromDouble(seed);
  }
  threshold_ = relative_epsilon_ ? epsilon_ * seed : epsilon_;
  initial.ActivateAll();
}

void PageRankDelta::MakeContribution(core::VertexState& state, VertexId v,
                                     core::ContribSlot slot) const {
  auto rank = state.array(kRank);
  auto residual = state.array(kResidual);
  const double res = SlotToDouble(residual[v]);
  // Consume: the residual moves into the rank and is split across edges.
  residual[v] = SlotFromDouble(0.0);
  rank[v] = SlotFromDouble(SlotToDouble(rank[v]) + res);
  const std::uint32_t degree = (*out_degrees_)[v];
  state.contrib(slot)[v] =
      SlotFromDouble(degree == 0 ? 0.0 : damping_ * res / degree);
}

bool PageRankDelta::Apply(core::VertexState& state, VertexId src, VertexId dst,
                          Weight /*w*/, core::ContribSlot slot) const {
  const double share = SlotToDouble(state.contrib(slot)[src]);
  if (share == 0.0) return false;
  const double updated = AtomicAddDouble(&state.array(kResidual)[dst], share);
  return updated > threshold_;
}

double PageRankDelta::ValueOf(const core::VertexState& state,
                              VertexId v) const {
  // Rank plus any unconsumed residual: the value the algorithm would settle
  // on if the remaining (sub-epsilon) mass were folded in.
  return SlotToDouble(state.array(kRank)[v]) +
         SlotToDouble(state.array(kResidual)[v]);
}

}  // namespace graphsd::algos
