#include "algos/multi_source.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/slot.hpp"

namespace graphsd::algos {

using core::AtomicAddDouble;
using core::AtomicMinDouble;
using core::AtomicMinU64;
using core::Slot;
using core::SlotFromDouble;
using core::SlotToDouble;

namespace {

/// Atomic max over double payloads; returns true iff the value rose.
/// (Mirrors the solo widest-path combine so lane results stay
/// bit-identical.)
bool AtomicMaxDouble(Slot* slot, double value) noexcept {
  std::atomic_ref<Slot> ref(*slot);
  Slot observed = ref.load(std::memory_order_relaxed);
  while (SlotToDouble(observed) < value) {
    if (ref.compare_exchange_weak(observed, SlotFromDouble(value),
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ---- MultiBfs --------------------------------------------------------------

void MultiBfs::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(!roots_.empty());
  for (std::uint32_t k = 0; k < lanes(); ++k) {
    GRAPHSD_CHECK(roots_[k] < state.num_vertices());
    auto level = state.array(k);
    for (auto& slot : level) slot = UINT64_MAX;
    level[roots_[k]] = 0;
    initial.Activate(roots_[k]);
  }
}

void MultiBfs::MakeContribution(core::VertexState& state, VertexId v,
                                core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    contrib[static_cast<std::size_t>(v) * k_lanes + k] = state.array(k)[v];
  }
}

bool MultiBfs::Apply(core::VertexState& state, VertexId src, VertexId dst,
                     Weight /*w*/, core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  bool activate = false;
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    const std::uint64_t src_level =
        contrib[static_cast<std::size_t>(src) * k_lanes + k];
    if (src_level == UINT64_MAX) continue;
    if (AtomicMinU64(&state.array(k)[dst], src_level + 1)) activate = true;
  }
  return activate;
}

double MultiBfs::LaneValueOf(const core::VertexState& state,
                             std::uint32_t lane, VertexId v) const {
  return static_cast<double>(state.array(lane)[v]);
}

// ---- MultiSssp -------------------------------------------------------------

void MultiSssp::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(!roots_.empty());
  const double inf = std::numeric_limits<double>::infinity();
  for (std::uint32_t k = 0; k < lanes(); ++k) {
    GRAPHSD_CHECK(roots_[k] < state.num_vertices());
    auto dist = state.array(k);
    for (auto& slot : dist) slot = SlotFromDouble(inf);
    dist[roots_[k]] = SlotFromDouble(0.0);
    initial.Activate(roots_[k]);
  }
}

void MultiSssp::MakeContribution(core::VertexState& state, VertexId v,
                                 core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    contrib[static_cast<std::size_t>(v) * k_lanes + k] = state.array(k)[v];
  }
}

bool MultiSssp::Apply(core::VertexState& state, VertexId src, VertexId dst,
                      Weight w, core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  bool activate = false;
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    const double src_dist =
        SlotToDouble(contrib[static_cast<std::size_t>(src) * k_lanes + k]);
    if (src_dist == std::numeric_limits<double>::infinity()) continue;
    // Same saturation guard as the solo program: an overflow-to-inf or NaN
    // sum must never win a relaxation or activate the destination.
    const double candidate = src_dist + static_cast<double>(w);
    if (!std::isfinite(candidate)) continue;
    if (AtomicMinDouble(&state.array(k)[dst], candidate)) activate = true;
  }
  return activate;
}

double MultiSssp::LaneValueOf(const core::VertexState& state,
                              std::uint32_t lane, VertexId v) const {
  return SlotToDouble(state.array(lane)[v]);
}

// ---- MultiWidestPath -------------------------------------------------------

void MultiWidestPath::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(!roots_.empty());
  for (std::uint32_t k = 0; k < lanes(); ++k) {
    GRAPHSD_CHECK(roots_[k] < state.num_vertices());
    auto width = state.array(k);
    for (auto& slot : width) slot = SlotFromDouble(0.0);
    width[roots_[k]] = SlotFromDouble(std::numeric_limits<double>::infinity());
    initial.Activate(roots_[k]);
  }
}

void MultiWidestPath::MakeContribution(core::VertexState& state, VertexId v,
                                       core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    contrib[static_cast<std::size_t>(v) * k_lanes + k] = state.array(k)[v];
  }
}

bool MultiWidestPath::Apply(core::VertexState& state, VertexId src,
                            VertexId dst, Weight w,
                            core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  bool activate = false;
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    const double src_width =
        SlotToDouble(contrib[static_cast<std::size_t>(src) * k_lanes + k]);
    if (src_width <= 0.0) continue;
    const double bottleneck = std::min(src_width, static_cast<double>(w));
    if (!std::isfinite(bottleneck) || bottleneck <= 0.0) continue;
    if (AtomicMaxDouble(&state.array(k)[dst], bottleneck)) activate = true;
  }
  return activate;
}

double MultiWidestPath::LaneValueOf(const core::VertexState& state,
                                    std::uint32_t lane, VertexId v) const {
  return SlotToDouble(state.array(lane)[v]);
}

// ---- MultiPpr --------------------------------------------------------------

void MultiPpr::Init(core::VertexState& state, core::Frontier& initial) {
  GRAPHSD_CHECK(!roots_.empty());
  const std::uint32_t k_lanes = lanes();
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    GRAPHSD_CHECK(roots_[k] < state.num_vertices());
    auto rank = state.array(k);
    auto residual = state.array(k_lanes + k);
    for (VertexId v = 0; v < state.num_vertices(); ++v) {
      rank[v] = SlotFromDouble(0.0);
      residual[v] = SlotFromDouble(0.0);
    }
    residual[roots_[k]] = SlotFromDouble(1.0);
    initial.Activate(roots_[k]);
  }
}

void MultiPpr::MakeContribution(core::VertexState& state, VertexId v,
                                core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  const std::uint32_t degree = (*out_degrees_)[v];
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    auto rank = state.array(k);
    auto residual = state.array(k_lanes + k);
    const double res = SlotToDouble(residual[v]);
    residual[v] = SlotFromDouble(0.0);
    rank[v] = SlotFromDouble(SlotToDouble(rank[v]) + (1.0 - damping_) * res);
    contrib[static_cast<std::size_t>(v) * k_lanes + k] =
        SlotFromDouble(degree == 0 ? 0.0 : damping_ * res / degree);
  }
}

bool MultiPpr::Apply(core::VertexState& state, VertexId src, VertexId dst,
                     Weight /*w*/, core::ContribSlot slot) const {
  const std::uint32_t k_lanes = lanes();
  auto contrib = state.contrib(slot);
  bool activate = false;
  for (std::uint32_t k = 0; k < k_lanes; ++k) {
    const double share =
        SlotToDouble(contrib[static_cast<std::size_t>(src) * k_lanes + k]);
    if (share == 0.0) continue;
    const double updated =
        AtomicAddDouble(&state.array(k_lanes + k)[dst], share);
    if (updated > epsilon_) activate = true;
  }
  return activate;
}

double MultiPpr::LaneValueOf(const core::VertexState& state,
                             std::uint32_t lane, VertexId v) const {
  return SlotToDouble(state.array(lane)[v]) +
         (1.0 - damping_) * SlotToDouble(state.array(lanes() + lane)[v]);
}

// ---- Factory ---------------------------------------------------------------

bool IsBatchableAlgo(const std::string& algo) {
  return algo == "bfs" || algo == "sssp" || algo == "widest_path" ||
         algo == "ppr";
}

std::unique_ptr<MultiSourceProgram> MakeMultiSourceProgram(
    const std::string& algo, std::vector<VertexId> roots, double epsilon,
    double damping) {
  if (roots.empty()) return nullptr;
  if (algo == "bfs") return std::make_unique<MultiBfs>(std::move(roots));
  if (algo == "sssp") return std::make_unique<MultiSssp>(std::move(roots));
  if (algo == "widest_path") {
    return std::make_unique<MultiWidestPath>(std::move(roots));
  }
  if (algo == "ppr") {
    return std::make_unique<MultiPpr>(std::move(roots), epsilon, damping);
  }
  return nullptr;
}

}  // namespace graphsd::algos
