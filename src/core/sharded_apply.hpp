// Deterministic parallel edge application, sharded by destination vertex.
//
// The executors' combines are commutative and associative per destination,
// but floating-point combines are NOT associative across reordering — so
// chunk-claiming parallelism over the edge array (any thread may apply any
// edge) produces run-to-run nondeterminism for float programs. Sharding by
// *destination* instead makes parallel compute bit-identical to serial:
//
//   * the destination range of a pass (interval j for a sub-block pass, the
//     whole vertex space for SCIU's retained-edge step) is split into S
//     contiguous sub-ranges, one pool task each;
//   * every task scans the full edge span in file order and applies only
//     the edges whose `dst` falls in its sub-range.
//
// Each destination's updates therefore arrive in exactly the serial order
// (file order), and two tasks never touch the same destination — no atomics
// needed for correctness, no reordering of any per-dst combine chain. Reads
// of source contributions are stable during a pass (contributions are
// sealed before it), frontier activation is a thread-safe per-dst bitset
// op, so the only cost of parallelism is the S-fold re-scan of the edge
// array — cheap sequential traffic against the random-access apply work it
// spreads across cores.
//
// `shards <= 1`, a single-worker pool or a span below `grain` all fall back
// to the plain serial loop, which is byte-for-byte the pre-parallel code
// path.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/exec_context.hpp"
#include "graph/types.hpp"
#include "partition/grid_dataset.hpp"
#include "util/clock.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::core {

/// Applies `fn(edge, weight)` to edges[begin, end) (weights aligned when
/// `need_weights`), restricted per task to destinations in
/// [dst_begin, dst_end). Bit-identical to the serial loop for any shard
/// count.
///
/// `serialization_excess`, when non-null, accumulates (measured elapsed −
/// longest shard task) per parallel pass: the wall time lost to running
/// more shards than the machine has cores. Task cost is the task's *thread
/// CPU time*, not its wall time — on an oversubscribed host the tasks
/// time-slice, so every task's wall spans the whole pass while its CPU
/// delta is still exactly the work it did; on an adequately-cored host the
/// two coincide. It is ~0 when shards execute truly concurrently and
/// exactly 0 on the serial fallback, so `compute_seconds − excess` is the
/// compute wall a machine with >= `shards` cores would see. Strictly
/// passive — never read by the executors, never affects results or
/// decisions.
template <typename Fn>
void ShardedDstApplyRange(ThreadPool& pool, std::size_t shards,
                          std::size_t grain, const Edge* edges,
                          const Weight* weights, std::size_t begin,
                          std::size_t end, bool need_weights,
                          VertexId dst_begin, VertexId dst_end, Fn&& fn,
                          double* serialization_excess = nullptr) {
  const auto serial = [&] {
    for (std::size_t k = begin; k < end; ++k) {
      const Weight w = need_weights ? weights[k] : Weight{1};
      fn(edges[k], w);
    }
  };
  if (begin >= end) return;
  const std::uint64_t span =
      dst_end > dst_begin ? static_cast<std::uint64_t>(dst_end - dst_begin) : 0;
  const std::size_t effective = static_cast<std::size_t>(std::min<std::uint64_t>(
      std::max<std::size_t>(shards, 1), std::max<std::uint64_t>(span, 1)));
  if (effective <= 1 || pool.size() <= 1 ||
      end - begin <= std::max<std::size_t>(grain, 1)) {
    serial();
    return;
  }
  using Clock = std::chrono::steady_clock;
  // One slot per shard start index; tasks cover disjoint [s, s_end) ranges
  // so the writes never race. Only allocated when the caller asked for the
  // critical-path measurement.
  std::vector<double> task_seconds;
  if (serialization_excess != nullptr) task_seconds.assign(effective, 0);
  const Clock::time_point pass_start = Clock::now();
  pool.ParallelFor(0, effective, 1, [&](std::size_t s, std::size_t s_end) {
    const double task_cpu_start =
        serialization_excess != nullptr ? ThreadCpuSeconds() : 0;
    const std::size_t task_slot = s;
    for (; s < s_end; ++s) {
      // 64-bit shard boundaries: span * (s + 1) stays well under 2^64 for
      // any real vertex count.
      const VertexId lo =
          dst_begin + static_cast<VertexId>(span * s / effective);
      const VertexId hi =
          dst_begin + static_cast<VertexId>(span * (s + 1) / effective);
      // The filter scan is the price of sharding (every task walks the
      // whole span), so it is the hot loop: one unsigned compare — dst−lo
      // wraps for dst < lo, landing >= width — instead of two.
      const VertexId width = hi - lo;
      for (std::size_t k = begin; k < end; ++k) {
        const Edge& edge = edges[k];
        if (static_cast<VertexId>(edge.dst - lo) >= width) continue;
        const Weight w = need_weights ? weights[k] : Weight{1};
        fn(edge, w);
      }
    }
    if (serialization_excess != nullptr) {
      task_seconds[task_slot] = ThreadCpuSeconds() - task_cpu_start;
    }
  });
  if (serialization_excess != nullptr) {
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - pass_start).count();
    double critical = 0;
    for (const double t : task_seconds) critical = std::max(critical, t);
    *serialization_excess += std::max(0.0, elapsed - critical);
  }
}

/// SubBlock convenience wrapper: applies over the whole block, destinations
/// restricted to [dst_begin, dst_end) — the block's destination interval.
template <typename Fn>
void ShardedDstApply(ThreadPool& pool, std::size_t shards, std::size_t grain,
                     const partition::SubBlock& block, bool need_weights,
                     VertexId dst_begin, VertexId dst_end, Fn&& fn,
                     double* serialization_excess = nullptr) {
  ShardedDstApplyRange(pool, shards, grain, block.edges.data(),
                       block.weights.data(), 0, block.edges.size(),
                       need_weights, dst_begin, dst_end,
                       static_cast<Fn&&>(fn), serialization_excess);
}

/// ExecContext conveniences: pool / shard count / grain and the
/// serialization-excess accumulator all come from the context, which is
/// what every executor call site wants.
template <typename Fn>
void ShardedDstApplyRange(const ExecContext& ctx, const Edge* edges,
                          const Weight* weights, std::size_t begin,
                          std::size_t end, bool need_weights,
                          VertexId dst_begin, VertexId dst_end, Fn&& fn) {
  ShardedDstApplyRange(*ctx.pool, ctx.compute_shards, ctx.parallel_grain,
                       edges, weights, begin, end, need_weights, dst_begin,
                       dst_end, static_cast<Fn&&>(fn), ctx.apply_excess);
}

template <typename Fn>
void ShardedDstApply(const ExecContext& ctx, const partition::SubBlock& block,
                     bool need_weights, VertexId dst_begin, VertexId dst_end,
                     Fn&& fn) {
  ShardedDstApplyRange(*ctx.pool, ctx.compute_shards, ctx.parallel_grain,
                       block.edges.data(), block.weights.data(), 0,
                       block.edges.size(), need_weights, dst_begin, dst_end,
                       static_cast<Fn&&>(fn), ctx.apply_excess);
}

}  // namespace graphsd::core
