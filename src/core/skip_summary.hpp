// Active-source skip summaries for the semi-external model (DESIGN.md §14).
//
// One exact bitset per sub-block (i, j) over interval i's local source
// vertices: bit v is set iff local vertex v has at least one edge in the
// sub-block. The semi-external executor consults the summary *before any
// edge I/O*: a sub-block none of whose edge-bearing sources are active can
// be skipped outright — its edges cannot change a single destination this
// iteration. Summaries are exact (built from decoded edges or the CSR
// index), so a skip can never drop an update; an unknown summary simply
// means no skip, never a wrong one.
//
// Summaries are a property of the dataset, not of any one run: once built
// they stay valid for the dataset's lifetime, so the store is shareable
// across runs (the `graphsd serve` registry keeps one per dataset next to
// the shared sub-block buffer). Record is publish-once: the first writer
// fills the bit words and releases them with an acquire/release flag;
// later writers return immediately and readers only dereference the words
// after observing the flag, so concurrent executor threads need no lock on
// the hot lookup path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/types.hpp"
#include "partition/manifest.hpp"

namespace graphsd::core {

class SkipSummaryStore {
 public:
  explicit SkipSummaryStore(const partition::GridManifest& manifest);

  std::uint32_t p() const noexcept { return p_; }

  /// True once sub-block (i, j)'s summary has been recorded.
  bool Known(std::uint32_t i, std::uint32_t j) const;

  /// Builds (i, j)'s summary from its decoded edges. Sources are global
  /// vertex ids; `interval_first` is boundaries[i]. No-op when already
  /// recorded (summaries are dataset-static).
  void RecordFromEdges(std::uint32_t i, std::uint32_t j,
                       std::span<const Edge> edges, VertexId interval_first);

  /// Builds (i, j)'s summary from its CSR index offsets (IntervalSize(i)+1
  /// entries): local vertex v has edges iff offsets[v+1] > offsets[v]. This
  /// is the cheap pre-I/O path — the index read is a few KiB against the
  /// sub-block's edge payload. No-op when already recorded.
  void RecordFromOffsets(std::uint32_t i, std::uint32_t j,
                         std::span<const std::uint32_t> offsets);

  /// True iff (i, j)'s summary is known and none of `active_locals`
  /// (interval-local indices of the active sources in interval i, any
  /// order) has its bit set — i.e. the sub-block provably moves no updates
  /// this iteration and its I/O can be skipped.
  bool CanSkip(std::uint32_t i, std::uint32_t j,
               std::span<const VertexId> active_locals) const;

  /// Number of recorded summaries (diagnostics).
  std::size_t known_count() const;

 private:
  struct Summary {
    std::atomic<bool> known{false};
    std::mutex write_mutex;
    std::vector<std::uint64_t> words;
  };

  Summary& At(std::uint32_t i, std::uint32_t j) const {
    return *summaries_[static_cast<std::size_t>(i) * p_ + j];
  }

  std::uint32_t p_ = 0;
  std::vector<VertexId> interval_sizes_;
  // unique_ptr per cell: Summary holds an atomic and a mutex (immovable),
  // and the store must be constructible for any P without relocation.
  std::vector<std::unique_ptr<Summary>> summaries_;
};

}  // namespace graphsd::core
