// Vertex value slots and atomic combine primitives.
//
// Every per-vertex quantity is stored in a 64-bit `Slot`; programs reinterpret
// slots as double / float / u32 via std::bit_cast. Combines (min, add) are
// lock-free CAS loops over std::atomic_ref so worker threads can apply edges
// within a destination interval concurrently. All combines used by GraphSD
// programs are commutative and associative, which is what makes both the
// parallelism and the cross-iteration update exact under BSP.
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>

namespace graphsd::core {

using Slot = std::uint64_t;

inline Slot SlotFromDouble(double v) noexcept { return std::bit_cast<Slot>(v); }
inline double SlotToDouble(Slot s) noexcept { return std::bit_cast<double>(s); }

inline Slot SlotFromU64(std::uint64_t v) noexcept { return v; }
inline std::uint64_t SlotToU64(Slot s) noexcept { return s; }

/// Atomically `*slot = min(*slot, value)` for double payloads.
/// Returns true iff the stored value was lowered.
inline bool AtomicMinDouble(Slot* slot, double value) noexcept {
  std::atomic_ref<Slot> ref(*slot);
  Slot observed = ref.load(std::memory_order_relaxed);
  while (SlotToDouble(observed) > value) {
    if (ref.compare_exchange_weak(observed, SlotFromDouble(value),
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically `*slot = min(*slot, value)` for u64 payloads.
inline bool AtomicMinU64(Slot* slot, std::uint64_t value) noexcept {
  std::atomic_ref<Slot> ref(*slot);
  Slot observed = ref.load(std::memory_order_relaxed);
  while (observed > value) {
    if (ref.compare_exchange_weak(observed, value,
                                  std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Atomically `*slot += value` for double payloads. Returns the new value.
inline double AtomicAddDouble(Slot* slot, double value) noexcept {
  std::atomic_ref<Slot> ref(*slot);
  Slot observed = ref.load(std::memory_order_relaxed);
  for (;;) {
    const double updated = SlotToDouble(observed) + value;
    if (ref.compare_exchange_weak(observed, SlotFromDouble(updated),
                                  std::memory_order_relaxed)) {
      return updated;
    }
  }
}

/// Plain (non-atomic) slot load as double.
inline double LoadDouble(const Slot* slot) noexcept {
  return SlotToDouble(std::atomic_ref<const Slot>(*slot).load(
      std::memory_order_relaxed));
}

}  // namespace graphsd::core
