#include "core/frontier.hpp"

// Frontier is header-only; this translation unit anchors the target.
