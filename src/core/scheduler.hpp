// State-aware I/O scheduling strategy (paper §4.1).
//
// Per iteration, estimates the cost of the two I/O access models and picks
// the cheaper:
//
//   C_s = (|V|·N + |E|·(M[+W])) / B_sr + |V|·N / B_sw          (full)
//   C_r = S_ran/B_rr + S_seq/B_sr + 2|V|·N/B_sr + |V|·N/B_sw   (on-demand)
//
// S_seq / S_ran are computed with one O(|A|) pass over the active set and
// the degree array, exactly as the paper describes: maximal runs of active
// vertices (gaps of zero-out-degree vertices do not break a run, since they
// occupy no edge bytes) read sequentially; each run boundary costs a seek in
// each of the P column sub-blocks it touches. The "2|V|·N" term is the
// vertex values plus the per-sub-block source index the on-demand model
// must consult; we charge the index at its true size.
//
// Compressed datasets are evaluated on *on-disk* bytes: C_s streams the
// frame files (plus raw weights), and the on-demand model fetches the whole
// frames of rows containing active runs (the CSR index addresses decoded
// offsets, so edge bytes can only arrive frame-at-a-time) while weights
// remain per-run ranged reads. Frame decode runs on the compute side of the
// pipeline, so each model's decode estimate is folded into its compute
// floor rather than its disk time.
#pragma once

#include <cstdint>
#include <span>

#include "core/frontier.hpp"
#include "core/skip_summary.hpp"
#include "core/sub_block_buffer.hpp"
#include "io/cost_model.hpp"
#include "partition/grid_dataset.hpp"

namespace graphsd::core {

/// Log-linear interpolation of a per-row expected-distinct-columns curve
/// sampled at `anchors` (strictly increasing run sizes, in edges). Run
/// sizes below the first / above the last anchor clamp to the end values;
/// between anchors the estimate is linear in log2(edges), matching the
/// roughly logarithmic growth of E[distinct cols] = sum_j 1 - (1-p_ij)^E.
/// Exposed for regression testing of the scheduler's request estimator.
double InterpolateExpectedColumns(std::span<const std::uint64_t> anchors,
                                  std::span<const double> expected,
                                  std::uint64_t edges);

/// Optional inputs that make the semi-external model (DESIGN.md §14) a
/// third costed choice in Evaluate. `summaries` drives the skip estimate
/// (an unknown summary is conservatively costed as a full fetch plus its
/// index probe); `buffer` credits resident sub-blocks with a decode-only
/// charge. Either pointer may be null — the corresponding credit is then
/// simply not taken.
struct SemiCostInputs {
  const SkipSummaryStore* summaries = nullptr;
  const SubBlockBuffer* buffer = nullptr;
};

struct SchedulerDecision {
  bool on_demand = false;
  /// Semi-external chosen (wins only when STRICTLY cheaper than the better
  /// of the two paper models, so adding the third choice can never flip a
  /// two-way decision that still stands). When set, `on_demand` still
  /// records the two-way winner the semi model beat.
  bool semi = false;
  double cost_on_demand = 0;  // C_r, seconds (pipelined charge when overlapped)
  double cost_full = 0;       // C_s, seconds (pipelined charge when overlapped)
  double cost_semi = 0;       // C_m, seconds (0 = semi not costed)
  // The raw serial formulas, before any overlap charging. Equal to the
  // charged costs when the evaluation was not overlapped.
  double serial_cost_on_demand = 0;
  double serial_cost_full = 0;
  double serial_cost_semi = 0;
  // Semi-model estimate detail: sub-blocks its skip summaries elide and the
  // on-disk bytes those elisions avoid reading.
  std::uint64_t semi_skipped_blocks = 0;
  std::uint64_t semi_skipped_bytes = 0;
  bool overlapped = false;  // costs were charged max(C_x, compute estimate)
  std::uint64_t active_vertices = 0;
  std::uint64_t active_edges = 0;
  // Byte terms as they hit the disk: for compressed datasets these are
  // on-disk (frame) bytes — the scheduler compares what actually moves,
  // not the decoded view.
  std::uint64_t seq_bytes = 0;   // S_seq
  std::uint64_t rand_bytes = 0;  // S_ran
  std::uint64_t random_requests = 0;
  // On-demand request shape behind the byte terms: total per-sub-block
  // ranged requests (each charged one index seek + one edge seek) and the
  // index bytes those requests read. Charged per (row, edges) segment of
  // each run, so a run spanning interval boundaries pays every row it has
  // edges in.
  std::uint64_t seeks = 0;
  std::uint64_t index_bytes = 0;
  // Estimated frame-decode seconds folded into each model's compute floor
  // (zero for raw datasets).
  double decode_seconds_on_demand = 0;
  double decode_seconds_full = 0;
  double decode_seconds_semi = 0;
  double eval_seconds = 0;  // wall time of the evaluation itself (Fig 11)
};

class StateAwareScheduler {
 public:
  StateAwareScheduler(const partition::GridDataset& dataset,
                      io::IoCostModel model)
      : dataset_(&dataset), model_(model) {}

  /// Evaluates both models for the given active set.
  /// `vertex_record_bytes` is N (the program's per-vertex on-disk record);
  /// `with_weights` selects M+W vs M for the edge term. When `fciu_round`
  /// is set, the full-model cost C_s is the per-iteration cost of an FCIU
  /// round — one full sweep plus the secondary sub-blocks, amortized over
  /// the two BSP iterations the round executes — instead of the plain
  /// single-iteration formula.
  ///
  /// `overlap_compute_seconds >= 0` enables overlap-aware charging: with
  /// the prefetch pipeline active, each model's disk time hides behind the
  /// iteration's compute, so both costs are charged max(C_x, compute).
  /// Because the compute floor is common to both models and max(c, ·) is
  /// monotone, the comparison can at most collapse into a tie — which is
  /// broken by the raw costs, so the decision (and with it the I/O byte
  /// stream) is provably identical to serial charging, preserving the
  /// paper's cost-model shapes.
  ///
  /// Passing `semi` makes the semi-external model a third choice: C_m sums
  /// the on-disk bytes of the non-skippable sub-blocks (plus index-probe
  /// bytes for unknown summaries) with NO vertex-values terms — the state
  /// is RAM-resident in semi mode. Semi wins only when strictly cheaper
  /// than the two-way winner (charged, then serial tie-break), so a null
  /// `semi` — and every existing call site — behaves exactly as before.
  SchedulerDecision Evaluate(const Frontier& active,
                             std::uint64_t vertex_record_bytes,
                             bool with_weights, bool fciu_round = false,
                             double overlap_compute_seconds = -1.0,
                             const SemiCostInputs* semi = nullptr) const;

  const io::IoCostModel& model() const noexcept { return model_; }

 private:
  const partition::GridDataset* dataset_;
  io::IoCostModel model_;
};

}  // namespace graphsd::core
