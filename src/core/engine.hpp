// GraphSD engine: the Algorithm-1 driver.
//
// Per iteration it consults the state-aware scheduler (§4.1) and dispatches
// to SCIU (on-demand I/O) or FCIU (full I/O); FCIU rounds execute two BSP
// iterations per load and use the priority sub-block buffer (§4.3).
//
// The option switches correspond exactly to the paper's ablations (§5.4):
//   enable_cross_iteration=false  -> GraphSD-b1
//   enable_selective=false        -> GraphSD-b2 / GraphSD-b3
//   force_on_demand=true          -> GraphSD-b4
//   enable_buffering=false        -> Figure 12's "w/o buffering"
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/program.hpp"
#include "core/report.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cancellation.hpp"

namespace graphsd::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace graphsd::obs

namespace graphsd::io {
class PrefetchPipeline;
}  // namespace graphsd::io

namespace graphsd::core {

class SubBlockBuffer;
class SkipSummaryStore;

/// Per-round I/O-model directive for EngineOptions::model_override.
/// kAuto defers to the state-aware scheduler (or the force_on_demand /
/// enable_selective switches); kOnDemand, kFull and kSemi pin the round to
/// the SCIU, full-streaming and semi-external models respectively, skipping
/// the cost evaluation entirely.
enum class RoundModelChoice : std::uint8_t { kAuto, kOnDemand, kFull, kSemi };

struct EngineOptions {
  /// Worker threads (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Destination-range shards per compute pass (core/sharded_apply.hpp):
  /// each apply loop splits its destination interval into this many
  /// contiguous sub-ranges, one pool task each, every task scanning the
  /// edge span in file order and applying only its own destinations. Per-
  /// destination application order therefore equals serial, so results are
  /// bit-identical to `compute_threads = 1` for every program — float
  /// reductions included. 0 (the default) matches the worker pool size;
  /// 1 pins the serial reference path. Frame decode and SCIU checksum
  /// verification also move off the consumer thread when > 1.
  std::size_t compute_threads = 0;
  /// Cross-iteration value computation (SCIU step 3 / FCIU second half).
  bool enable_cross_iteration = true;
  /// State-aware scheduling: allow the on-demand I/O model at all.
  bool enable_selective = true;
  /// Force the on-demand model every iteration (ablation b4).
  bool force_on_demand = false;
  /// Semi-external-memory mode (DESIGN.md §14): the vertex state stays
  /// RAM-resident across rounds — no per-round |V|·N state read/write, one
  /// final persist at run end — and the semi-external update model (skip
  /// sub-blocks whose active-source summary proves them idle, before any
  /// edge I/O) joins SCIU and full streaming as a third costed scheduler
  /// choice. Push programs only; gather runs ignore it.
  bool semi_external = false;
  /// Cache compressed GSDF frames in the sub-block buffer instead of
  /// decoded edges (decode-on-hit): ~codec-ratio more sub-blocks per byte
  /// of budget, one decode per hit charged to compute. No effect on raw
  /// datasets.
  bool cache_compressed = false;
  /// The §4.3 priority buffer for secondary sub-blocks.
  bool enable_buffering = true;
  /// Buffer capacity; 0 = 5 % of the dataset's edge payload (the paper's
  /// memory-budget setting).
  std::uint64_t buffer_capacity_bytes = 0;
  /// SCIU edge-retention budget for its cross-iteration step; 0 = same 5 %.
  std::uint64_t memory_budget_bytes = 0;
  /// Asynchronous prefetch: sub-blocks (FCIU) and coalesced edge runs
  /// (SCIU) load on a dedicated loader thread up to this many fetch units
  /// ahead of the applies. 0 = fully synchronous I/O. Results, I/O byte
  /// counts and buffer hit/miss accounting are identical at any depth.
  std::size_t prefetch_depth = 1;
  /// Overlap-aware accounting: charge each loading round max(compute, io)
  /// instead of compute + io, reflecting the pipeline's hiding of disk
  /// time behind compute. Takes effect only when the pipeline can actually
  /// overlap (prefetch_depth > 0). Scheduler decisions are provably
  /// unaffected (see StateAwareScheduler::Evaluate); disable for serial
  /// baselines and ablations.
  bool overlap_io = true;
  /// Hard iteration cap on top of the program's own budget.
  std::uint32_t max_iterations = UINT32_MAX;
  /// Record the per-round series (Figure 10).
  bool record_per_round = true;
  /// Model Lumos's propagation materialization: Lumos's out-of-order
  /// execution writes the proactively-computed next-iteration values to
  /// disk per round and reads them back in the next round (GraphSD keeps
  /// them in the in-memory value arrays instead). The Lumos baseline
  /// enables this; it costs one |V|·N write + read per cross-iteration
  /// round.
  bool model_lumos_propagation = false;
  /// Directory for the vertex-value file; empty = the dataset directory.
  std::string scratch_dir;
  /// Name stamped into reports.
  std::string engine_name = "GraphSD";
  /// Phase-trace sink (non-owning; must outlive the engine run). Null
  /// disables tracing. Strictly passive: attaching a buffer changes no
  /// bytes, decisions or results (asserted by the prefetch-equivalence
  /// suite).
  obs::TraceBuffer* trace = nullptr;
  /// Metrics sink (non-owning; must outlive the engine run). Null disables
  /// metrics. Engine counters accumulate per run; device/buffer/prefetch
  /// levels are published as end-of-run gauge snapshots. Passive, like
  /// `trace`.
  obs::MetricsRegistry* metrics = nullptr;
  /// Differential-testing hook (DESIGN.md §11): consulted with each push
  /// round's first iteration before the scheduler. Null means kAuto for
  /// every round. A kOnDemand directive still honors index availability
  /// and on-demand degradation (the round falls back to full streaming
  /// when the selective path is unusable).
  std::function<RoundModelChoice(std::uint32_t first_iteration)>
      model_override;
  /// Differential-testing hook (DESIGN.md §11): invoked after Init with
  /// (0, initial frontier) and after every committed push round with the
  /// next iteration number and the frontier entering it. Only reflects
  /// plain-BSP iteration boundaries when enable_cross_iteration is false
  /// (cross-iteration rounds pre-execute future work, splitting the next
  /// frontier across the active and pre-activated sets). Must not mutate
  /// engine state.
  std::function<void(std::uint32_t next_iteration, const Frontier& active)>
      frontier_probe;

  // --- Run lifecycle (DESIGN.md §12) -------------------------------------
  /// Non-empty enables crash-safe checkpointing: a GSCK checkpoint (vertex
  /// arrays + frontiers + iteration + cumulative measurement baseline) is
  /// written into this directory at committed iteration boundaries and once
  /// more when the run finishes or is cancelled. Two slots are retained;
  /// writes are atomic (write-temp -> fsync -> rename). Checkpoint I/O goes
  /// through the plain filesystem, NOT the accounted device, so modeled
  /// I/O, IoStats and scheduler decisions are unperturbed.
  std::string checkpoint_dir;
  /// Write a checkpoint every N committed BSP iterations (clamped to >= 1).
  std::uint32_t checkpoint_every = 1;
  /// Resume from the latest valid checkpoint in `checkpoint_dir`. A
  /// checkpoint from a different dataset build or algorithm is refused with
  /// kFailedPrecondition; a directory with only torn/corrupt slots fails
  /// with kCorruptData; an empty directory starts fresh.
  bool resume = false;
  /// External cooperative-cancellation token (non-owning; may be tripped
  /// from a signal handler). A tripped token stops the run at the next
  /// poll point, rolls back to the last committed iteration boundary,
  /// writes a final checkpoint (when checkpointing), and returns a partial
  /// report with `cancelled` set — never an error.
  const CancellationToken* cancel = nullptr;
  /// Cancel the run this many wall-clock seconds after it starts
  /// (0 = no deadline). Cancels through the same mechanism as `cancel`.
  double deadline_seconds = 0;

  // --- Engine re-entry / resource sharing (DESIGN.md §13) -----------------
  /// Shared sub-block buffer (non-owning; must outlive the run). When set,
  /// the run consumes and donates blocks through it instead of building a
  /// private buffer, so one physical sub-block load can feed many logical
  /// runs (`graphsd serve`). Entries a run is reading are pinned and cannot
  /// be evicted by concurrent runs. `enable_buffering` and
  /// `buffer_capacity_bytes` are ignored. The report's buffer counters
  /// become this run's delta of the shared counters — exact when runs are
  /// serial, fleet-approximate under true concurrency (the counters are
  /// buffer-global).
  SubBlockBuffer* shared_buffer = nullptr;
  /// Shared prefetch pipeline (non-owning; must outlive the run). When
  /// set, the run's read plan is submitted through it instead of a private
  /// per-run pipeline, serializing disk access across concurrent runs on
  /// one loader thread. The pipeline's cancellation token belongs to its
  /// owner (the service installs its shutdown token); this run's own
  /// cancel/deadline still stops the run at fetch boundaries.
  io::PrefetchPipeline* shared_prefetch = nullptr;
  /// Shared active-source summary store (non-owning; must outlive the run).
  /// Summaries are dataset-static, so the `graphsd serve` registry keeps
  /// one per dataset: every run records what it decodes and skips what any
  /// run has learned. Null: the engine builds a private store when
  /// semi_external is set (and records nothing otherwise).
  SkipSummaryStore* shared_summaries = nullptr;
};

class GraphSDEngine {
 public:
  /// The dataset must outlive the engine.
  explicit GraphSDEngine(const partition::GridDataset& dataset,
                         EngineOptions options = {});

  /// Executes `program` to completion (frontier drained or iteration budget
  /// exhausted) and returns the measurement report.
  Result<ExecutionReport> Run(Program& program);

  /// Final vertex state of the last Run (null before any Run).
  const VertexState* state() const noexcept { return state_.get(); }

  const EngineOptions& options() const noexcept { return options_; }

 private:
  Result<ExecutionReport> RunPush(PushProgram& program);
  Result<ExecutionReport> RunGather(GatherProgram& program);
  std::string ValuesPath(const Program& program) const;

  const partition::GridDataset* dataset_;
  EngineOptions options_;
  std::unique_ptr<VertexState> state_;
};

}  // namespace graphsd::core
