// GraphSD engine: the Algorithm-1 driver.
//
// Per iteration it consults the state-aware scheduler (§4.1) and dispatches
// to SCIU (on-demand I/O) or FCIU (full I/O); FCIU rounds execute two BSP
// iterations per load and use the priority sub-block buffer (§4.3).
//
// The option switches correspond exactly to the paper's ablations (§5.4):
//   enable_cross_iteration=false  -> GraphSD-b1
//   enable_selective=false        -> GraphSD-b2 / GraphSD-b3
//   force_on_demand=true          -> GraphSD-b4
//   enable_buffering=false        -> Figure 12's "w/o buffering"
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/program.hpp"
#include "core/report.hpp"
#include "partition/grid_dataset.hpp"

namespace graphsd::obs {
class MetricsRegistry;
class TraceBuffer;
}  // namespace graphsd::obs

namespace graphsd::core {

struct EngineOptions {
  /// Worker threads (0 = hardware concurrency).
  std::size_t num_threads = 0;
  /// Cross-iteration value computation (SCIU step 3 / FCIU second half).
  bool enable_cross_iteration = true;
  /// State-aware scheduling: allow the on-demand I/O model at all.
  bool enable_selective = true;
  /// Force the on-demand model every iteration (ablation b4).
  bool force_on_demand = false;
  /// The §4.3 priority buffer for secondary sub-blocks.
  bool enable_buffering = true;
  /// Buffer capacity; 0 = 5 % of the dataset's edge payload (the paper's
  /// memory-budget setting).
  std::uint64_t buffer_capacity_bytes = 0;
  /// SCIU edge-retention budget for its cross-iteration step; 0 = same 5 %.
  std::uint64_t memory_budget_bytes = 0;
  /// Asynchronous prefetch: sub-blocks (FCIU) and coalesced edge runs
  /// (SCIU) load on a dedicated loader thread up to this many fetch units
  /// ahead of the applies. 0 = fully synchronous I/O. Results, I/O byte
  /// counts and buffer hit/miss accounting are identical at any depth.
  std::size_t prefetch_depth = 1;
  /// Overlap-aware accounting: charge each loading round max(compute, io)
  /// instead of compute + io, reflecting the pipeline's hiding of disk
  /// time behind compute. Takes effect only when the pipeline can actually
  /// overlap (prefetch_depth > 0). Scheduler decisions are provably
  /// unaffected (see StateAwareScheduler::Evaluate); disable for serial
  /// baselines and ablations.
  bool overlap_io = true;
  /// Hard iteration cap on top of the program's own budget.
  std::uint32_t max_iterations = UINT32_MAX;
  /// Record the per-round series (Figure 10).
  bool record_per_round = true;
  /// Model Lumos's propagation materialization: Lumos's out-of-order
  /// execution writes the proactively-computed next-iteration values to
  /// disk per round and reads them back in the next round (GraphSD keeps
  /// them in the in-memory value arrays instead). The Lumos baseline
  /// enables this; it costs one |V|·N write + read per cross-iteration
  /// round.
  bool model_lumos_propagation = false;
  /// Directory for the vertex-value file; empty = the dataset directory.
  std::string scratch_dir;
  /// Name stamped into reports.
  std::string engine_name = "GraphSD";
  /// Phase-trace sink (non-owning; must outlive the engine run). Null
  /// disables tracing. Strictly passive: attaching a buffer changes no
  /// bytes, decisions or results (asserted by the prefetch-equivalence
  /// suite).
  obs::TraceBuffer* trace = nullptr;
  /// Metrics sink (non-owning; must outlive the engine run). Null disables
  /// metrics. Engine counters accumulate per run; device/buffer/prefetch
  /// levels are published as end-of-run gauge snapshots. Passive, like
  /// `trace`.
  obs::MetricsRegistry* metrics = nullptr;
};

class GraphSDEngine {
 public:
  /// The dataset must outlive the engine.
  explicit GraphSDEngine(const partition::GridDataset& dataset,
                         EngineOptions options = {});

  /// Executes `program` to completion (frontier drained or iteration budget
  /// exhausted) and returns the measurement report.
  Result<ExecutionReport> Run(Program& program);

  /// Final vertex state of the last Run (null before any Run).
  const VertexState* state() const noexcept { return state_.get(); }

  const EngineOptions& options() const noexcept { return options_; }

 private:
  Result<ExecutionReport> RunPush(PushProgram& program);
  Result<ExecutionReport> RunGather(GatherProgram& program);
  std::string ValuesPath(const Program& program) const;

  const partition::GridDataset* dataset_;
  EngineOptions options_;
  std::unique_ptr<VertexState> state_;
};

}  // namespace graphsd::core
