// Semi-external-memory update model (DESIGN.md §14, GraphMP direction).
//
// The engine keeps the whole vertex state RAM-resident in semi mode, so a
// round pays no per-round |V|·N state read/write. Edges still stream from
// disk — but selectively: before any edge I/O, each sub-block (i, j) is
// tested against its active-source summary (an exact bitset over interval
// i's source vertices, SkipSummaryStore). A sub-block none of whose sources
// are active is elided entirely; the round counts it (and the on-disk bytes
// it would have read) in RoundStat::blocks_skipped[_bytes].
//
// Rounds execute exactly ONE plain BSP iteration, column-major like the
// FCIU first half, with every apply guarded by frontier membership — so a
// semi round is bitwise-equivalent to a plain full round over the same
// frontier (the difftest `semi` axis asserts this).
//
// Summaries are learned, not precomputed: a sub-block whose summary is
// unknown is probed through its CSR source index (one small accounted read,
// RecordFromOffsets) when the dataset has one, and otherwise fetched and
// recorded from its decoded edges. Summaries are dataset-static, so a
// shared store (the `graphsd serve` registry tier) lets every run skip what
// any run has learned.
//
// Fetched sub-blocks flow through the same priority buffer and prefetch
// pipeline as FCIU, including compressed-frame caching with decode-on-hit.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/exec_context.hpp"
#include "core/frontier.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "io/prefetch.hpp"
#include "util/status.hpp"

namespace graphsd::core {

class SemiExecutor {
 public:
  explicit SemiExecutor(const ExecContext& ctx) : ctx_(ctx) {}

  /// Runs one plain BSP iteration over the sub-blocks that survive the
  /// skip tests. `stat` receives model = kSemi, iterations_covered = 1 and
  /// the skip counters.
  Status RunIteration(const PushProgram& program, VertexState& state,
                      const Frontier& active, Frontier& out, RoundStat& stat,
                      double* update_seconds);

 private:
  using SubBlockStream = io::PrefetchStream<partition::SubBlockPayload>;

  ExecContext ctx_;
  std::uint32_t trace_iteration_ = 0;
};

}  // namespace graphsd::core
