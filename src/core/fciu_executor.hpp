// Full cross-iteration update — FCIU (paper §4.2, Algorithm 3).
//
// One loading round under the full I/O model executes up to TWO BSP
// iterations. Sub-blocks are swept column-major (for j, for i): after
// column j completes, every vertex of interval j holds its final
// iteration-t value ("sealed"). Sub-block (i, j) with i < j therefore has
// fully-updated sources the moment it is streamed, so its edges also
// produce iteration t+1 values (CrossIterUpdate) using the same in-memory
// copy — no reload. The diagonal (j, j) is held in memory until its column
// seals, then cross-iterated. Only the secondary sub-blocks (i > j) must be
// touched again in the second half of the round; those are the blocks the
// priority buffer (§4.3) caches.
//
// The push variant guards every apply by frontier membership (GraphSD's
// state-awareness); the gather variant accumulates every edge (PageRank).
//
// The (j, i) sweep order of each half-round is known before any byte is
// read, so both halves run off a PrefetchStream: sub-blocks load on the
// pipeline's loader thread while the previous block's edges are applied.
// Blocks the priority buffer already holds are skipped at issue time
// (SubBlockBuffer::Contains) and consumed via Get() as before, keeping
// byte counts and hit/miss accounting identical to the synchronous path.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/exec_context.hpp"
#include "core/frontier.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "io/prefetch.hpp"
#include "util/status.hpp"

namespace graphsd::core {

class FciuExecutor {
 public:
  explicit FciuExecutor(const ExecContext& ctx) : ctx_(ctx) {}

  /// Push round. Entering: `active` is the iteration-t frontier, `out` is
  /// pre-seeded with cross-activated vertices from the previous round.
  /// With `two_iterations`: executes t and t+1; `out` is fully consumed and
  /// the next frontier is `out_ni`. Without: executes only t (plain full
  /// iteration, the GraphSD-b1 / baseline behaviour); next frontier is
  /// `out`.
  Status RunPushRound(const PushProgram& program, VertexState& state,
                      const Frontier& active, Frontier& out, Frontier& out_ni,
                      bool two_iterations, RoundStat& stat,
                      double* update_seconds);

  /// Gather round (all vertices implicitly active). With `two_iterations`
  /// advances the values by two BSP iterations in one loading round.
  Status RunGatherRound(const GatherProgram& program, VertexState& state,
                        bool two_iterations, RoundStat& stat,
                        double* update_seconds);

 private:
  // The stream carries fetched-but-undecoded payloads: the loader thread
  // only does I/O (FetchSubBlock); compressed frames decode on the
  // consuming thread in Fetch(), charging decode to compute.
  using SubBlockStream = io::PrefetchStream<partition::SubBlockPayload>;

  /// One planned fetch of sub-block (i, j): skip probe = buffer residency,
  /// fetch = FetchSubBlock. Runs inline when the pipeline is disabled.
  SubBlockStream::Unit FetchUnit(std::uint32_t i, std::uint32_t j,
                                 bool need_weights) const;

  /// Opens a stream over an ordered (i, j) plan.
  SubBlockStream MakeStream(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& plan,
      bool need_weights) const;

  /// A consumed sub-block: `block` points either into the shared buffer
  /// (then `pin` keeps the entry alive for the lifetime of this struct,
  /// even under concurrent Puts from other runs) or at the caller's local
  /// copy.
  struct FetchedBlock {
    const partition::SubBlock* block = nullptr;
    SubBlockBuffer::Pin pin;
    /// The buffer already holds this sub-block even though `block` points
    /// at the caller's local copy (a compressed entry decoded on hit) —
    /// the caller must not offer the block back.
    bool resident = false;
    /// Undecoded frame retained for a PutFrame offer after processing
    /// (cache-compressed mode, secondary sub-blocks only).
    std::vector<std::uint8_t> frame_copy;
    bool from_buffer() const noexcept { return static_cast<bool>(pin); }
  };

  /// Consumes the next planned sub-block — which must be (i, j) — through
  /// the buffer; `local` receives the block when it was not buffered (and
  /// may then be donated to the buffer).
  Result<FetchedBlock> Fetch(SubBlockStream& stream, std::uint32_t i,
                             std::uint32_t j, bool need_weights,
                             partition::SubBlock& local);

  /// Publishes (i, j)'s active-source skip summary from its decoded edges
  /// (no-op without a summary store, or once recorded).
  void RecordSummary(std::uint32_t i, std::uint32_t j,
                     const partition::SubBlock& block) const;

  ExecContext ctx_;
  /// Iteration label for trace spans recorded by fetch closures. Set at
  /// round start, before any stream is planned, and stable until the round
  /// returns, so the loader thread reads it race-free.
  std::uint32_t trace_iteration_ = 0;
};

}  // namespace graphsd::core
