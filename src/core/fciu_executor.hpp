// Full cross-iteration update — FCIU (paper §4.2, Algorithm 3).
//
// One loading round under the full I/O model executes up to TWO BSP
// iterations. Sub-blocks are swept column-major (for j, for i): after
// column j completes, every vertex of interval j holds its final
// iteration-t value ("sealed"). Sub-block (i, j) with i < j therefore has
// fully-updated sources the moment it is streamed, so its edges also
// produce iteration t+1 values (CrossIterUpdate) using the same in-memory
// copy — no reload. The diagonal (j, j) is held in memory until its column
// seals, then cross-iterated. Only the secondary sub-blocks (i > j) must be
// touched again in the second half of the round; those are the blocks the
// priority buffer (§4.3) caches.
//
// The push variant guards every apply by frontier membership (GraphSD's
// state-awareness); the gather variant accumulates every edge (PageRank).
#pragma once

#include "core/exec_context.hpp"
#include "core/frontier.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "util/status.hpp"

namespace graphsd::core {

class FciuExecutor {
 public:
  explicit FciuExecutor(const ExecContext& ctx) : ctx_(ctx) {}

  /// Push round. Entering: `active` is the iteration-t frontier, `out` is
  /// pre-seeded with cross-activated vertices from the previous round.
  /// With `two_iterations`: executes t and t+1; `out` is fully consumed and
  /// the next frontier is `out_ni`. Without: executes only t (plain full
  /// iteration, the GraphSD-b1 / baseline behaviour); next frontier is
  /// `out`.
  Status RunPushRound(const PushProgram& program, VertexState& state,
                      const Frontier& active, Frontier& out, Frontier& out_ni,
                      bool two_iterations, RoundStat& stat,
                      double* update_seconds);

  /// Gather round (all vertices implicitly active). With `two_iterations`
  /// advances the values by two BSP iterations in one loading round.
  Status RunGatherRound(const GatherProgram& program, VertexState& state,
                        bool two_iterations, RoundStat& stat,
                        double* update_seconds);

 private:
  /// Loads (i,j) through the buffer; `loaded` receives the freshly-read
  /// block when it was a miss (and may then be donated to the buffer).
  Result<const partition::SubBlock*> Fetch(std::uint32_t i, std::uint32_t j,
                                           bool need_weights,
                                           partition::SubBlock& local);

  ExecContext ctx_;
};

}  // namespace graphsd::core
