// Crash-safe run checkpoints: self-describing GSCK frames plus a two-slot
// on-disk store with atomic replacement.
//
// A checkpoint captures everything needed to resume an engine run at a
// committed iteration boundary: the program-defined vertex arrays, the push
// frontiers (active + pre-activated), the iteration counter, and the
// cumulative measurement baseline (report scalars + IoStats) so a resumed
// run's report continues where the interrupted one stopped.
//
// On-disk format (all integers little-endian):
//
//   offset  size  field
//        0     4  magic "GSCK"
//        4     4  format version (u32, currently 1)
//        8     8  payload bytes (u64)
//       16     4  CRC32C over the payload (u32)
//       20    12  reserved (zero)
//       32     -  payload (see EncodeCheckpoint)
//
// The header mirrors the GSDF compressed-frame format (compress/frame.hpp):
// magic + CRC + declared size make every checkpoint independently
// verifiable, so torn, truncated or bit-flipped files are detected on load
// rather than silently resumed from.
//
// Durability: CheckpointStore keeps two slots (checkpoint.0.gsck /
// checkpoint.1.gsck) and always overwrites the *older* one via the shared
// atomic-write helper (write-temp -> fsync -> rename). The parent-directory
// fsync is deliberately skipped: losing a rename in a crash resurfaces the
// slot's previous contents, which the two-slot fallback already handles. A
// crash at any point leaves at least one complete, verifiable checkpoint on
// disk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/slot.hpp"
#include "graph/types.hpp"
#include "io/io_stats.hpp"
#include "partition/manifest.hpp"
#include "util/status.hpp"

namespace graphsd::core {

/// Checkpoint format version this build reads and writes.
inline constexpr std::uint32_t kCheckpointFormatVersion = 1;

/// Checkpoint header size in bytes.
inline constexpr std::size_t kCheckpointHeaderBytes = 32;

/// Checkpoint magic, "GSCK".
inline constexpr std::uint8_t kCheckpointMagic[4] = {'G', 'S', 'C', 'K'};

/// One resumable snapshot of an engine run at an iteration boundary.
struct Checkpoint {
  /// CRC32C of the dataset manifest text; resume refuses a checkpoint whose
  /// fingerprint disagrees with the opened dataset (kFailedPrecondition).
  std::uint32_t fingerprint = 0;
  /// Program name the run executed (second resume precondition).
  std::string algorithm;
  /// Gather (pull) program: no frontiers are stored.
  bool gather = false;
  /// The iteration the resumed run continues *from* (all iterations below
  /// this are committed in the arrays/frontiers here).
  std::uint32_t iteration = 0;
  VertexId num_vertices = 0;

  /// Program-defined vertex arrays (VertexState::array(i)), each
  /// `num_vertices` slots.
  std::vector<std::vector<Slot>> arrays;

  /// Push frontiers as ascending vertex-id lists: the active set entering
  /// `iteration` and the pre-activated set (cross-iteration Out_NI).
  std::vector<VertexId> active;
  std::vector<VertexId> preact;

  // --- Cumulative measurement baseline (ExecutionReport scalars at the
  // --- checkpoint boundary). A resumed run seeds its report with these so
  // --- the final report covers the whole logical run. The per-round series
  // --- is intentionally not persisted; resumed runs restart it.
  std::uint32_t rounds = 0;
  std::uint32_t degraded_rounds = 0;
  double compute_seconds = 0;
  double update_seconds = 0;
  double io_seconds = 0;
  double scheduler_seconds = 0;
  double overlapped_seconds = 0;
  double decode_seconds = 0;
  io::IoStatsSnapshot io;
  std::uint64_t buffer_hits = 0;
  std::uint64_t buffer_misses = 0;
  std::uint64_t buffer_bytes_saved = 0;
  std::uint64_t buffer_disk_bytes_saved = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t compressed_bytes_read = 0;
  std::uint64_t decoded_bytes = 0;
  // Checkpoint-overhead baseline, so "checkpoint cost so far" also survives
  // the restart.
  std::uint32_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0;
};

/// Fingerprint of a dataset: CRC32C over the serialized manifest text.
/// Covers shape (vertices, edges, p, boundaries), codec, and — for
/// checksummed datasets — every payload CRC, so any rebuild that changes
/// bytes changes the fingerprint.
std::uint32_t DatasetFingerprint(const partition::GridManifest& manifest);

/// Serializes a checkpoint into a complete GSCK frame (header + payload).
std::vector<std::uint8_t> EncodeCheckpoint(const Checkpoint& checkpoint);

/// Parses and validates a GSCK frame (magic, version, declared size,
/// payload CRC, internal consistency). Returns kCorruptData on any
/// mismatch — a torn or bit-flipped file never yields a checkpoint.
Result<Checkpoint> DecodeCheckpoint(std::span<const std::uint8_t> frame);

/// Two-slot checkpoint store in a directory.
///
/// Write alternates slots so the previous checkpoint survives until the new
/// one is durably in place; LoadLatest validates both slots and returns the
/// highest-iteration valid one, silently falling back to the older slot
/// when the newer is corrupt.
class CheckpointStore {
 public:
  /// `dir` is created on the first Write if missing.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const noexcept { return dir_; }

  /// Path of slot 0 or 1.
  std::string SlotPath(int slot) const;

  /// True when either slot file exists (regardless of validity).
  bool AnySlotExists() const;

  /// Durably writes `checkpoint` into the slot not holding the latest valid
  /// checkpoint. On success `*frame_bytes` (if non-null) receives the
  /// on-disk frame size.
  Status Write(const Checkpoint& checkpoint,
               std::uint64_t* frame_bytes = nullptr);

  /// Same, for an already-encoded GSCK frame (the async writer's path).
  Status WriteFrame(std::span<const std::uint8_t> frame);

  /// Loads the highest-iteration valid checkpoint.
  ///   - kNotFound: no slot file exists (fresh start).
  ///   - kCorruptData: slot files exist but none decodes cleanly.
  Result<Checkpoint> LoadLatest();

 private:
  /// Decodes one slot; any failure (missing, torn, corrupt) -> error.
  Result<Checkpoint> TryLoadSlot(int slot) const;

  /// Picks the slot to overwrite: the one NOT holding the latest valid
  /// checkpoint (ties and empty stores overwrite slot 0).
  int PickWriteSlot() const;

  std::string dir_;
  int write_slot_ = -1;  // -1 until first Write scans the slots
};

/// Takes checkpoint writes off the engine's critical path: Submit encodes
/// the frame synchronously (cheap, memory-only) and hands it to a single
/// background thread that performs the fdatasync-bound atomic slot write.
/// Submitting while an older frame is still queued replaces it ("latest
/// wins") — a newer boundary strictly supersedes an older one, and the
/// two-slot store keeps its previous on-disk checkpoint either way.
///
/// Crash semantics: a frame accepted by Submit is durable only after
/// Flush() returns; losing queued frames in a crash means resume restarts
/// from the previous durable boundary — exactly the guarantee the two-slot
/// design already provides. Engines therefore Flush before returning, so a
/// run that observed cancellation (or finished) always leaves its final
/// boundary on disk.
///
/// The store must outlive the writer, and must not be used concurrently by
/// other threads between the first Submit and Flush/destruction.
class AsyncCheckpointWriter {
 public:
  explicit AsyncCheckpointWriter(CheckpointStore* store);
  /// Drains queued work (without status propagation) and joins.
  ~AsyncCheckpointWriter();

  AsyncCheckpointWriter(const AsyncCheckpointWriter&) = delete;
  AsyncCheckpointWriter& operator=(const AsyncCheckpointWriter&) = delete;

  /// Encodes `checkpoint` and queues the frame; returns its size. A failure
  /// from an earlier background write is surfaced here (or at Flush,
  /// whichever observes it first).
  Result<std::uint64_t> Submit(const Checkpoint& checkpoint);

  /// Blocks until every accepted frame is on disk (or dropped as
  /// superseded) and returns the first background write error, if any.
  Status Flush();

  /// Frames superseded by a newer Submit before reaching disk.
  std::uint64_t frames_dropped() const;
  /// Bytes actually written through the store (excludes dropped frames).
  std::uint64_t bytes_written() const;

 private:
  void Loop();

  CheckpointStore* store_;
  mutable std::mutex mu_;
  std::condition_variable wake_;  // writer thread: pending work or stop
  std::condition_variable idle_;  // Flush: queue empty and write finished
  std::vector<std::uint8_t> pending_;
  bool has_pending_ = false;
  bool writing_ = false;
  bool stop_ = false;
  Status error_;  // sticky first background failure
  std::uint64_t dropped_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::thread thread_;  // lazily started by the first Submit
};

}  // namespace graphsd::core
