// Shared execution context handed to the update-model executors.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/skip_summary.hpp"
#include "core/sub_block_buffer.hpp"
#include "io/prefetch.hpp"
#include "obs/trace.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cancellation.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::core {

struct ExecContext {
  const partition::GridDataset* dataset = nullptr;
  ThreadPool* pool = nullptr;
  /// May be a disabled (capacity 0) buffer; never null.
  SubBlockBuffer* buffer = nullptr;
  /// Asynchronous read pipeline. May be null or disabled (depth 0), in
  /// which case the executors run their fetches inline (synchronous path).
  io::PrefetchPipeline* prefetch = nullptr;
  /// Phase-trace sink. Null (the default) disables tracing entirely; spans
  /// then cost one pointer compare. Strictly passive — attaching a buffer
  /// never changes bytes read, decisions or results.
  obs::TraceBuffer* trace = nullptr;
  /// Memory budget for SCIU's in-memory retention of loaded active edges
  /// (the precondition for its cross-iteration step).
  std::uint64_t memory_budget_bytes = 0;
  /// Edges per parallel task.
  std::size_t parallel_grain = 16384;
  /// Destination-range shards per compute pass (core/sharded_apply.hpp).
  /// <= 1 runs every apply loop serially — the bit-exact reference path.
  /// Results are bit-identical at any value; this only trades the S-fold
  /// edge re-scan against apply parallelism.
  std::size_t compute_shards = 1;
  /// Accumulates the wall time sharded applies lost to running more shards
  /// than the machine has cores (Σ elapsed − longest shard per pass); see
  /// core/sharded_apply.hpp. Null disables the measurement. Written only on
  /// the executor's apply path (single-threaded at that point), strictly
  /// passive.
  double* apply_excess = nullptr;
  /// Cooperative-cancellation token polled at fetch boundaries (before each
  /// sub-block / pass load, never per edge). Null = not cancellable. A
  /// tripped token makes the executor return kCancelled without committing
  /// the round; the engine then rolls back to the last committed iteration
  /// boundary.
  const CancellationToken* cancel = nullptr;
  /// Active-source skip summaries (DESIGN.md §14). Null disables both
  /// recording and skipping. Executors record a sub-block's summary
  /// whenever its decoded edges are in hand; the semi-external executor
  /// additionally consults it to skip sub-blocks before any edge I/O.
  SkipSummaryStore* summaries = nullptr;
  /// Cache compressed GSDF frames in the sub-block buffer instead of
  /// decoded edges (decode-on-hit): ~codec-ratio more sub-blocks fit the
  /// same byte budget, at one decode per hit charged to compute. No effect
  /// on raw datasets.
  bool cache_compressed = false;
};

}  // namespace graphsd::core
