// Shared execution context handed to the update-model executors.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/sub_block_buffer.hpp"
#include "io/prefetch.hpp"
#include "obs/trace.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cancellation.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::core {

struct ExecContext {
  const partition::GridDataset* dataset = nullptr;
  ThreadPool* pool = nullptr;
  /// May be a disabled (capacity 0) buffer; never null.
  SubBlockBuffer* buffer = nullptr;
  /// Asynchronous read pipeline. May be null or disabled (depth 0), in
  /// which case the executors run their fetches inline (synchronous path).
  io::PrefetchPipeline* prefetch = nullptr;
  /// Phase-trace sink. Null (the default) disables tracing entirely; spans
  /// then cost one pointer compare. Strictly passive — attaching a buffer
  /// never changes bytes read, decisions or results.
  obs::TraceBuffer* trace = nullptr;
  /// Memory budget for SCIU's in-memory retention of loaded active edges
  /// (the precondition for its cross-iteration step).
  std::uint64_t memory_budget_bytes = 0;
  /// Edges per parallel task.
  std::size_t parallel_grain = 16384;
  /// Cooperative-cancellation token polled at fetch boundaries (before each
  /// sub-block / pass load, never per edge). Null = not cancellable. A
  /// tripped token makes the executor return kCancelled without committing
  /// the round; the engine then rolls back to the last committed iteration
  /// boundary.
  const CancellationToken* cancel = nullptr;
};

}  // namespace graphsd::core
