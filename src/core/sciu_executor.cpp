#include "core/sciu_executor.hpp"

#include <memory>
#include <utility>

#include "core/sharded_apply.hpp"
#include "partition/dataset_verify.hpp"
#include "util/clock.hpp"

namespace graphsd::core {
namespace {

// Index entries are read per active run (never whole index files): nearby
// active vertices share one ranged offset read, so the index traffic scales
// with |A|, matching the paper's 2|V|·N bound for a full frontier.
constexpr VertexId kIndexCoalesceGap = 64;

}  // namespace

Status SciuExecutor::EnsureSubBlockVerified(std::uint32_t i, std::uint32_t j,
                                            bool need_weights) {
  const auto& dataset = *ctx_.dataset;
  const auto& manifest = dataset.manifest();
  if (!manifest.has_checksums) return Status::Ok();
  if (verified_.empty()) {
    verified_.assign(static_cast<std::size_t>(manifest.p) * manifest.p, 0);
  }
  const std::size_t slot = manifest.SubBlockSlot(i, j);
  if (verified_[slot]) return Status::Ok();

  const std::uint64_t edges = manifest.EdgesIn(i, j);
  const std::string& dir = dataset.dir();
  // Compressed datasets store the edge payload as a GSDF frame; the
  // manifest CRC covers the frame bytes, so that is what gets verified.
  Status status = partition::VerifyFileCrc(
      partition::SubBlockEdgesPath(dir, i, j), manifest.EdgeFileBytes(i, j),
      manifest.edge_crcs[slot]);
  if (status.ok() && need_weights) {
    status = partition::VerifyFileCrc(
        partition::SubBlockWeightsPath(dir, i, j), edges * kWeightBytes,
        manifest.weight_crcs[slot]);
  }
  if (status.ok() && manifest.has_index) {
    status = partition::VerifyFileCrc(
        partition::SubBlockIndexPath(dir, i, j),
        (static_cast<std::uint64_t>(manifest.IntervalSize(i)) + 1) *
            sizeof(std::uint32_t),
        manifest.index_crcs[slot]);
  }
  if (!status.ok()) {
    if (status.code() == StatusCode::kCorruptData) {
      dataset.device().stats().RecordChecksumFailure();
    }
    return status;
  }
  verified_[slot] = 1;
  return Status::Ok();
}

Status SciuExecutor::PreverifySubBlocks(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& coords,
    bool need_weights) {
  const auto& manifest = ctx_.dataset->manifest();
  if (!manifest.has_checksums || coords.empty()) return Status::Ok();
  if (verified_.empty()) {
    // Size up front: the lazy assign inside EnsureSubBlockVerified must not
    // race across pool workers.
    verified_.assign(static_cast<std::size_t>(manifest.p) * manifest.p, 0);
  }
  std::vector<Status> results(coords.size());
  ctx_.pool->ParallelFor(0, coords.size(), 1,
                         [&](std::size_t b, std::size_t e) {
                           for (std::size_t k = b; k < e; ++k) {
                             results[k] = EnsureSubBlockVerified(
                                 coords[k].first, coords[k].second,
                                 need_weights);
                           }
                         });
  for (Status& status : results) {
    if (!status.ok()) return std::move(status);
  }
  return Status::Ok();
}

Status SciuExecutor::FetchPass(std::uint32_t i, std::uint32_t j,
                               const IntervalActives& actives,
                               bool need_weights, bool resident,
                               SciuPassPayload& out) {
  const auto& dataset = *ctx_.dataset;
  const auto& manifest = dataset.manifest();
  const bool compressed = dataset.compressed();
  GRAPHSD_RETURN_IF_ERROR(EnsureSubBlockVerified(i, j, need_weights));
  GRAPHSD_ASSIGN_OR_RETURN(partition::IndexReader index_reader,
                           dataset.OpenIndexReader(i, j));
  // Compressed edge files cannot be range-read (they hold one GSDF frame),
  // so only the raw weight file gets a ranged reader; the frame itself is
  // fetched whole after the runs are known.
  partition::SubBlockReader reader;
  io::DeviceFile weights_file;
  if (!compressed) {
    GRAPHSD_ASSIGN_OR_RETURN(reader,
                             dataset.OpenSubBlockReader(i, j, need_weights));
  } else if (need_weights) {
    GRAPHSD_ASSIGN_OR_RETURN(
        weights_file,
        dataset.device().Open(partition::SubBlockWeightsPath(dataset.dir(), i, j),
                              io::OpenMode::kRead));
  }

  std::vector<std::uint32_t> offsets;  // scratch for ranged index reads
  // Coalesced runs in sub-block edge coordinates. Raw datasets submit the
  // whole script through ReadRuns after the index sweep (one vectored
  // request per batch on devices that merge; a plain ReadRange loop
  // otherwise); compressed datasets keep these coordinates for the consumer
  // to copy out of the decoded frame.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> block_runs;
  std::uint64_t pending_begin = 0;
  std::uint64_t pending_end = 0;

  auto flush = [&]() -> Status {
    if (pending_end == pending_begin) return Status::Ok();
    block_runs.emplace_back(pending_begin, pending_end);
    if (compressed && need_weights) {
      // Weights read now, run-aligned, from the raw file.
      obs::TraceSpan span(ctx_.trace, "edge-read", trace_iteration_);
      const std::size_t base = out.weights.size();
      const std::uint64_t count = pending_end - pending_begin;
      out.weights.resize(base + count);
      GRAPHSD_RETURN_IF_ERROR(weights_file.ReadAt(
          pending_begin * sizeof(Weight),
          {reinterpret_cast<std::uint8_t*>(out.weights.data() + base),
           count * sizeof(Weight)}));
    }
    pending_begin = pending_end = 0;
    return Status::Ok();
  };

  for (const IntervalActives::Group& group : actives.groups) {
    const VertexId first_local = actives.locals[group.begin_pos];
    const VertexId last_local = actives.locals[group.end_pos - 1];
    {
      obs::TraceSpan span(ctx_.trace, "index-load", trace_iteration_);
      GRAPHSD_RETURN_IF_ERROR(index_reader.ReadOffsets(
          first_local, last_local - first_local + 2, offsets));
    }
    for (std::size_t pos = group.begin_pos; pos < group.end_pos; ++pos) {
      const VertexId local = actives.locals[pos];
      const std::uint64_t range_begin = offsets[local - first_local];
      const std::uint64_t range_end = offsets[local - first_local + 1];
      if (range_end < range_begin || range_end > manifest.EdgesIn(i, j)) {
        return CorruptDataError(
            partition::SubBlockIndexPath(dataset.dir(), i, j) +
            ": non-monotonic or out-of-range offsets for local vertex " +
            std::to_string(local));
      }
      if (range_begin == range_end) continue;
      if (pending_end == range_begin && pending_end > pending_begin) {
        pending_end = range_end;  // coalesce with the pending run
      } else {
        GRAPHSD_RETURN_IF_ERROR(flush());
        pending_begin = range_begin;
        pending_end = range_end;
      }
    }
  }
  GRAPHSD_RETURN_IF_ERROR(flush());
  if (compressed) {
    for (const auto& [run_begin, run_end] : block_runs) {
      out.runs.emplace_back(run_begin, run_end);
    }
    if (!out.runs.empty() && !resident) {
      // The whole frame streams sequentially; decode happens on the
      // consumer thread so the loader stays an I/O-only stage.
      obs::TraceSpan span(ctx_.trace, "edge-read", trace_iteration_);
      GRAPHSD_ASSIGN_OR_RETURN(
          partition::SubBlockPayload fetched,
          dataset.FetchSubBlock(i, j, /*load_weights=*/false));
      out.frame = std::move(fetched.frame);
    }
    return Status::Ok();
  }
  if (!block_runs.empty()) {
    obs::TraceSpan span(ctx_.trace, "edge-read", trace_iteration_);
    std::size_t base = out.edges.size();
    for (const auto& [run_begin, run_end] : block_runs) {
      out.runs.emplace_back(base, base + (run_end - run_begin));
      base += run_end - run_begin;
    }
    GRAPHSD_RETURN_IF_ERROR(reader.ReadRuns(
        block_runs, out.edges, need_weights ? &out.weights : nullptr));
  }
  return Status::Ok();
}

Status SciuExecutor::MaterializeCompressedPass(std::uint32_t i, std::uint32_t j,
                                               SciuPassPayload& payload) {
  const auto& dataset = *ctx_.dataset;
  std::uint64_t active_edges = 0;
  for (const auto& [run_begin, run_end] : payload.runs) {
    active_edges += run_end - run_begin;
  }

  SubBlockBuffer::Pin cached;
  partition::SubBlockPayload decoded;
  bool resident = false;  // the buffer already holds this sub-block
  if (payload.frame.empty()) {
    // Resident at issue time: consume through the buffer. A miss means the
    // entry was evicted between issue and consume — fall back to the same
    // accounted frame read the loader would have performed. The pin keeps
    // the entry stable while the runs are copied out below.
    cached = ctx_.buffer->Get(i, j);
    if (!cached) {
      obs::TraceSpan span(ctx_.trace, "edge-read", trace_iteration_);
      GRAPHSD_ASSIGN_OR_RETURN(decoded,
                               dataset.FetchSubBlock(i, j, /*load_weights=*/false));
    } else {
      ctx_.buffer->UpdatePriority(i, j, active_edges);
      resident = true;
      if (cached.compressed()) {
        // Compressed entry: copy the frame out and decode on this thread
        // (decode-on-hit). The entry stays cached, so nothing is re-Put.
        decoded.frame = cached.frame();
        decoded.block.disk_bytes = cached->disk_bytes;
        cached.Release();
      }
    }
  } else {
    decoded.frame = std::move(payload.frame);
    decoded.block.disk_bytes = decoded.frame.size();
  }
  std::vector<std::uint8_t> frame_copy;
  if (!cached) {
    // In cache-compressed mode a freshly fetched frame is offered back
    // undecoded below; keep a copy before decode releases it.
    if (ctx_.cache_compressed && !resident && !decoded.frame.empty()) {
      frame_copy = decoded.frame;
    }
    obs::TraceSpan span(ctx_.trace, "decode", trace_iteration_);
    GRAPHSD_RETURN_IF_ERROR(dataset.DecodeSubBlock(i, j, decoded));
  }

  if (ctx_.summaries != nullptr) {
    ctx_.summaries->RecordFromEdges(i, j,
                                    cached ? cached->edges : decoded.block.edges,
                                    dataset.manifest().boundaries[i]);
  }

  // Copy the active runs out of the decoded block, rebasing `runs` into
  // payload-local coordinates. The weights were read run-aligned by the
  // loader, so edges[k] and weights[k] line up as in the raw path.
  const std::vector<Edge>& source =
      cached ? cached->edges : decoded.block.edges;
  payload.edges.reserve(active_edges);
  for (auto& run : payload.runs) {
    const std::size_t base = payload.edges.size();
    payload.edges.insert(payload.edges.end(),
                         source.begin() + static_cast<std::ptrdiff_t>(run.first),
                         source.begin() + static_cast<std::ptrdiff_t>(run.second));
    run = {base, payload.edges.size()};
  }
  if (!cached && !resident) {
    if (!frame_copy.empty()) {
      const std::uint64_t served = decoded.block.SizeBytes();
      partition::SubBlockPayload entry;
      entry.frame = std::move(frame_copy);
      entry.block.disk_bytes = decoded.block.disk_bytes;
      ctx_.buffer->PutFrame(i, j, std::move(entry), served, active_edges);
    } else {
      ctx_.buffer->Put(i, j, std::move(decoded.block), active_edges);
    }
  }
  return Status::Ok();
}

Status SciuExecutor::RunIteration(const PushProgram& program,
                                  VertexState& state, const Frontier& active,
                                  Frontier& out, Frontier& out_ni,
                                  bool cross_iteration, RoundStat& stat,
                                  double* update_seconds) {
  const auto& dataset = *ctx_.dataset;
  const auto& manifest = dataset.manifest();
  const auto& degrees = dataset.out_degrees();
  trace_iteration_ = stat.first_iteration;
  const bool need_weights = program.needs_weights() && manifest.weighted;
  const std::uint64_t bytes_per_edge =
      kEdgeBytes + (need_weights ? kWeightBytes : 0);

  // --- contributions of the active set (iteration-t snapshot) -------------
  std::uint64_t active_edge_bytes = 0;
  {
    ScopedWallAccumulator acc(update_seconds);
    active.ForEachActive([&](std::size_t v) {
      program.MakeContribution(state, static_cast<VertexId>(v),
                               ContribSlot::kPrimary);
      active_edge_bytes += degrees[v] * bytes_per_edge;
    });
  }

  // Retain loaded edges only if they all fit the budget (all-or-nothing;
  // the cross-iteration step needs every edge of a qualifying vertex).
  const bool retain = cross_iteration &&
                      (ctx_.memory_budget_bytes == 0 ||
                       active_edge_bytes <= ctx_.memory_budget_bytes);
  std::vector<Edge> arena_edges;
  std::vector<Weight> arena_weights;
  if (retain) {
    arena_edges.reserve(active_edge_bytes / kEdgeBytes);
  }

  // --- selective sweep: rows with active vertices, all columns ------------
  // The per-interval active runs (and with them the whole read script) are
  // computed before the sweep starts; each (i, j) pass then streams through
  // the prefetch pipeline while earlier passes' edges are applied.
  const bool compressed = dataset.compressed();
  std::vector<IntervalActives> intervals(manifest.p);
  std::vector<io::PrefetchStream<SciuPassPayload>::Unit> units;
  // (i, j) of each planned pass, for the consumer-side decode of
  // compressed frames.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan_coords;
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    const VertexId interval_begin = manifest.boundaries[i];
    const VertexId interval_end = manifest.boundaries[i + 1];
    IntervalActives& ia = intervals[i];
    active.ForEachActiveInRange(interval_begin, interval_end,
                                [&](std::size_t idx) {
                                  ia.locals.push_back(
                                      static_cast<VertexId>(idx) -
                                      interval_begin);
                                });
    if (ia.locals.empty()) continue;

    // Group nearby actives: one index read per group per sub-block.
    ia.groups.push_back({0, 1});
    for (std::size_t pos = 1; pos < ia.locals.size(); ++pos) {
      if (ia.locals[pos] - ia.locals[pos - 1] <= kIndexCoalesceGap) {
        ia.groups.back().end_pos = pos + 1;
      } else {
        ia.groups.push_back({pos, pos + 1});
      }
    }

    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      if (manifest.EdgesIn(i, j) == 0) continue;
      io::PrefetchStream<SciuPassPayload>::Unit unit;
      if (compressed) {
        // The pass must always run (index offsets and raw weight ranges are
        // read regardless of frame residency), so the "skip" probe only
        // records whether the decoded block is buffered at issue time; the
        // fetch closure then elides the frame read. The probe runs on the
        // consumer thread and the flag is published to the loader through
        // the read queue's submission, so no race.
        auto resident = std::make_shared<bool>(false);
        unit.skip = [this, i, j, resident]() {
          *resident = ctx_.buffer->Contains(i, j);
          return false;
        };
        unit.fetch = [this, i, j, actives = &ia, need_weights,
                      resident](SciuPassPayload& out) {
          return FetchPass(i, j, *actives, need_weights, *resident, out);
        };
      } else {
        // `intervals` is fully sized up front, so the pointer stays valid.
        unit.fetch = [this, i, j, actives = &ia,
                      need_weights](SciuPassPayload& out) {
          return FetchPass(i, j, *actives, need_weights, /*resident=*/false,
                           out);
        };
      }
      units.push_back(std::move(unit));
      plan_coords.emplace_back(i, j);
    }
  }

  // Parallel compute: hash every planned sub-block's checksums across the
  // pool up front instead of serially inside the first FetchPass that
  // touches it. Verification I/O is unaccounted, so bytes and scheduler
  // decisions are untouched; under corruption the first plan-order error
  // still wins.
  if (ctx_.compute_shards > 1) {
    GRAPHSD_RETURN_IF_ERROR(PreverifySubBlocks(plan_coords, need_weights));
  }

  io::PrefetchStream<SciuPassPayload> stream(ctx_.prefetch, std::move(units));
  for (std::size_t pass = 0; pass < stream.planned(); ++pass) {
    if (ctx_.cancel != nullptr) {
      GRAPHSD_RETURN_IF_ERROR(ctx_.cancel->Check());
    }
    auto item = stream.Take();
    GRAPHSD_RETURN_IF_ERROR(item.status);
    SciuPassPayload& payload = item.payload;
    if (compressed && !payload.runs.empty()) {
      GRAPHSD_RETURN_IF_ERROR(MaterializeCompressedPass(
          plan_coords[pass].first, plan_coords[pass].second, payload));
    }
    obs::TraceSpan compute_span(ctx_.trace, "compute", trace_iteration_);
    {
      // The runs tile [0, edges.size()) in read order (raw reads append;
      // the compressed materialize rebases), so one destination-sharded
      // apply over the whole payload visits every edge in exactly the
      // serial per-run order.
      const std::uint32_t j = plan_coords[pass].second;
      ScopedWallAccumulator acc(update_seconds);
      ShardedDstApplyRange(
          ctx_, payload.edges.data(), payload.weights.data(), 0,
          payload.edges.size(), need_weights, manifest.boundaries[j],
          manifest.boundaries[j + 1], [&](const Edge& edge, Weight w) {
            if (program.Apply(state, edge.src, edge.dst, w,
                              ContribSlot::kPrimary)) {
              out.Activate(edge.dst);
            }
          });
    }
    if (retain) {
      arena_edges.insert(arena_edges.end(), payload.edges.begin(),
                         payload.edges.end());
      if (need_weights) {
        arena_weights.insert(arena_weights.end(), payload.weights.begin(),
                             payload.weights.end());
      }
    }
  }

  // --- cross-iteration step (Algorithm 2, lines 15-23) ---------------------
  bool cross_step_ran = false;
  if (retain) {
    Frontier qualifying(active.size());
    std::uint64_t qualify_count = 0;
    out.ForEachActive([&](std::size_t v) {
      if (active.IsActive(static_cast<VertexId>(v))) {
        qualifying.Activate(static_cast<VertexId>(v));
        ++qualify_count;
      }
    });
    if (qualify_count > 0) {
      cross_step_ran = true;
      obs::TraceSpan span(ctx_.trace, "cross-iter-update", trace_iteration_);
      ScopedWallAccumulator acc(update_seconds);
      // Seal the re-activated vertices' fresh values, then push them into
      // iteration t+1 using the resident edges.
      qualifying.ForEachActive([&](std::size_t v) {
        program.MakeContribution(state, static_cast<VertexId>(v),
                                 ContribSlot::kSecondary);
      });
      // Retained edges span every destination interval, so the shard range
      // is the whole vertex space.
      ShardedDstApplyRange(
          ctx_, arena_edges.data(), arena_weights.data(), 0, arena_edges.size(),
          need_weights, 0, manifest.num_vertices,
          [&](const Edge& edge, Weight w) {
            if (!qualifying.IsActive(edge.src)) return;
            if (program.Apply(state, edge.src, edge.dst, w,
                              ContribSlot::kSecondary)) {
              out_ni.Activate(edge.dst);
            }
          });
      qualifying.ForEachActive(
          [&](std::size_t v) { out.Deactivate(static_cast<VertexId>(v)); });
    }
  }

  stat.model = RoundModel::kSciu;
  // When the cross-iteration step consumed every activation (the t+1
  // frontier was exactly the re-activated set, whose retained edges were
  // all pushed) and produced no further activations, BSP iteration t+1 ran
  // to completion inside this round.
  stat.iterations_covered =
      cross_step_ran && out.Empty() && out_ni.Empty() ? 2 : 1;
  return Status::Ok();
}

}  // namespace graphsd::core
