#include "core/engine.hpp"

#include <algorithm>

#include "core/checkpoint.hpp"
#include "core/fciu_executor.hpp"
#include "core/scheduler.hpp"
#include "core/sciu_executor.hpp"
#include "core/semi_executor.hpp"
#include "core/skip_summary.hpp"
#include "core/sub_block_buffer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"
#include "util/str_format.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::core {
namespace {

/// Per-round accounting: snapshots the device counters at construction and
/// folds the deltas into the stat and report at Commit().
class RoundAccounting {
 public:
  /// `overlap` selects the pipelined per-round charge max(compute, io);
  /// otherwise the serial sum is charged (baselines, ablations).
  RoundAccounting(io::Device& device, RoundStat& stat, ExecutionReport& report,
                  bool overlap)
      : device_(device),
        stat_(stat),
        report_(report),
        overlap_(overlap),
        io_before_(device.stats().Snapshot()),
        clock_before_(device.clock().Seconds()) {}

  void Commit(bool record) {
    const auto io_delta = device_.stats().Snapshot() - io_before_;
    stat_.io_seconds = device_.clock().Seconds() - clock_before_;
    stat_.compute_seconds = wall_.Seconds();
    stat_.overlapped_seconds =
        overlap_ ? io::IoCostModel::OverlapSeconds(stat_.io_seconds,
                                                   stat_.compute_seconds)
                 : stat_.io_seconds + stat_.compute_seconds;
    stat_.read_bytes = io_delta.TotalReadBytes();
    stat_.write_bytes = io_delta.TotalWriteBytes();

    report_.io += io_delta;
    report_.io_seconds += stat_.io_seconds;
    report_.compute_seconds += stat_.compute_seconds;
    report_.overlapped_seconds += stat_.overlapped_seconds;
    report_.scheduler_seconds += stat_.scheduler_seconds;
    ++report_.rounds;
    if (record) report_.per_round.push_back(stat_);
  }

 private:
  io::Device& device_;
  RoundStat& stat_;
  ExecutionReport& report_;
  bool overlap_;
  io::IoStatsSnapshot io_before_;
  double clock_before_;
  WallTimer wall_;
};

/// End-of-run metrics publication. Engine totals accumulate as counters
/// (one Add per run); the I/O-stack components publish gauge snapshots.
/// Strictly passive: reads counters, performs no I/O, feeds nothing back.
void PublishRunMetrics(obs::MetricsRegistry* metrics,
                       const ExecutionReport& report, const io::Device& device,
                       const SubBlockBuffer& buffer,
                       const io::PrefetchPipeline& prefetch) {
  if (metrics == nullptr) return;
  metrics->GetCounter("engine.runs").Add(1);
  metrics->GetCounter("engine.iterations").Add(report.iterations);
  metrics->GetCounter("engine.rounds").Add(report.rounds);
  metrics->GetCounter("engine.degraded_rounds").Add(report.degraded_rounds);
  metrics->GetCounter("engine.frames_decoded").Add(report.frames_decoded);
  metrics->GetCounter("engine.compressed_bytes_read")
      .Add(report.compressed_bytes_read);
  metrics->GetCounter("engine.decoded_bytes").Add(report.decoded_bytes);
  obs::Histogram& reads = metrics->GetHistogram("engine.round_read_bytes");
  obs::Histogram& writes = metrics->GetHistogram("engine.round_write_bytes");
  for (const RoundStat& stat : report.per_round) {
    switch (stat.model) {
      case RoundModel::kSciu:
        metrics->GetCounter("engine.rounds_sciu").Add(1);
        break;
      case RoundModel::kFciu:
        metrics->GetCounter("engine.rounds_fciu").Add(1);
        break;
      case RoundModel::kPlainFull:
        metrics->GetCounter("engine.rounds_plain_full").Add(1);
        break;
      case RoundModel::kSemi:
        metrics->GetCounter("engine.rounds_semi").Add(1);
        break;
      case RoundModel::kSkipped:
        metrics->GetCounter("engine.rounds_skipped").Add(1);
        break;
    }
    reads.Record(stat.read_bytes);
    writes.Record(stat.write_bytes);
  }
  if (report.blocks_skipped != 0) {
    metrics->GetCounter("engine.blocks_skipped").Add(report.blocks_skipped);
    metrics->GetCounter("engine.blocks_skipped_bytes")
        .Add(report.blocks_skipped_bytes);
  }
  device.PublishMetrics(*metrics);
  buffer.PublishMetrics(*metrics);
  prefetch.PublishMetrics(*metrics);
}

/// Folds this run's decode-side deltas (the dataset's counters are
/// cumulative across runs) and the buffer's on-disk byte view into the
/// report. Buffer counters are deltas against `buf_before` for the same
/// reason: a shared buffer outlives and spans runs.
void FinishCompressionReport(const partition::GridDataset& dataset,
                             const partition::DecodeStats& before,
                             const SubBlockBuffer& buffer,
                             const SubBlockBuffer::Counters& buf_before,
                             ExecutionReport& report) {
  report.codec = dataset.codec_name();
  const partition::DecodeStats after = dataset.decode_stats();
  report.frames_decoded = after.frames_decoded - before.frames_decoded;
  report.compressed_bytes_read =
      after.compressed_bytes - before.compressed_bytes;
  report.decoded_bytes = after.decoded_bytes - before.decoded_bytes;
  report.decode_seconds = after.decode_seconds - before.decode_seconds;
  report.buffer_disk_bytes_saved =
      buffer.counters().disk_bytes_saved - buf_before.disk_bytes_saved;
}

/// Snapshots the run's committed boundary into a Checkpoint. `base` carries
/// the cumulative totals of the checkpoint this run resumed from (all-zero
/// on a fresh run) so persisted counters always cover the whole logical
/// run; buffer/decode counters are this run's deltas added on top of it.
Checkpoint MakeCheckpoint(std::uint32_t fingerprint, const Program& program,
                          bool gather, std::uint32_t iteration,
                          const VertexState& state, const Frontier* active,
                          const Frontier* preact,
                          const ExecutionReport& report,
                          const Checkpoint& base, const SubBlockBuffer& buffer,
                          const SubBlockBuffer::Counters& buf_before,
                          const partition::GridDataset& dataset,
                          const partition::DecodeStats& decode_before) {
  Checkpoint cp;
  cp.fingerprint = fingerprint;
  cp.algorithm = program.name();
  cp.gather = gather;
  cp.iteration = iteration;
  cp.num_vertices = state.num_vertices();
  cp.arrays.resize(state.num_program_arrays());
  for (std::uint32_t a = 0; a < state.num_program_arrays(); ++a) {
    const auto src = state.array(a);
    cp.arrays[a].assign(src.begin(), src.end());
  }
  if (active != nullptr) {
    active->ForEachActive([&](std::size_t v) {
      cp.active.push_back(static_cast<VertexId>(v));
    });
  }
  if (preact != nullptr) {
    preact->ForEachActive([&](std::size_t v) {
      cp.preact.push_back(static_cast<VertexId>(v));
    });
  }
  cp.rounds = report.rounds;
  cp.degraded_rounds = report.degraded_rounds;
  cp.compute_seconds = report.compute_seconds;
  cp.update_seconds = report.update_seconds;
  cp.io_seconds = report.io_seconds;
  cp.scheduler_seconds = report.scheduler_seconds;
  cp.overlapped_seconds = report.overlapped_seconds;
  cp.io = report.io;
  const SubBlockBuffer::Counters buf_now = buffer.counters();
  cp.buffer_hits = base.buffer_hits + (buf_now.hits - buf_before.hits);
  cp.buffer_misses = base.buffer_misses + (buf_now.misses - buf_before.misses);
  cp.buffer_bytes_saved =
      base.buffer_bytes_saved + (buf_now.bytes_saved - buf_before.bytes_saved);
  cp.buffer_disk_bytes_saved =
      base.buffer_disk_bytes_saved +
      (buf_now.disk_bytes_saved - buf_before.disk_bytes_saved);
  const partition::DecodeStats now = dataset.decode_stats();
  cp.frames_decoded =
      base.frames_decoded + (now.frames_decoded - decode_before.frames_decoded);
  cp.compressed_bytes_read =
      base.compressed_bytes_read +
      (now.compressed_bytes - decode_before.compressed_bytes);
  cp.decoded_bytes =
      base.decoded_bytes + (now.decoded_bytes - decode_before.decoded_bytes);
  cp.decode_seconds =
      base.decode_seconds + (now.decode_seconds - decode_before.decode_seconds);
  cp.checkpoints_written = report.checkpoints_written;
  cp.checkpoint_bytes = report.checkpoint_bytes;
  cp.checkpoint_seconds = report.checkpoint_seconds;
  return cp;
}

/// Validates the resume preconditions and restores `cp` into the run:
/// vertex arrays, frontiers (push only) and the report's cumulative
/// baseline. kFailedPrecondition on any shape/identity mismatch — resuming
/// a checkpoint against a different dataset build or program would silently
/// corrupt results.
Status RestoreCheckpoint(const Checkpoint& cp, std::uint32_t fingerprint,
                         const Program& program, bool gather,
                         VertexState& state, Frontier* active,
                         Frontier* preact, ExecutionReport& report) {
  if (cp.fingerprint != fingerprint) {
    return FailedPreconditionError(StrPrintf(
        "checkpoint fingerprint %08x does not match dataset fingerprint "
        "%08x — refusing to resume on a different or rebuilt dataset",
        cp.fingerprint, fingerprint));
  }
  if (cp.algorithm != program.name()) {
    return FailedPreconditionError(StrPrintf(
        "checkpoint was written by algorithm '%s', not '%s'",
        cp.algorithm.c_str(), program.name().c_str()));
  }
  if (cp.gather != gather) {
    return FailedPreconditionError(
        "checkpoint program kind (push/gather) does not match");
  }
  if (cp.num_vertices != state.num_vertices() ||
      cp.arrays.size() != state.num_program_arrays()) {
    return FailedPreconditionError(StrPrintf(
        "checkpoint shape (%u vertices, %zu arrays) does not match the run "
        "(%u vertices, %u arrays)",
        cp.num_vertices, cp.arrays.size(), state.num_vertices(),
        state.num_program_arrays()));
  }
  for (std::uint32_t a = 0; a < state.num_program_arrays(); ++a) {
    const auto dst = state.array(a);
    std::copy(cp.arrays[a].begin(), cp.arrays[a].end(), dst.begin());
  }
  if (active != nullptr) {
    active->Clear();
    for (const VertexId v : cp.active) active->Activate(v);
  }
  if (preact != nullptr) {
    preact->Clear();
    for (const VertexId v : cp.preact) preact->Activate(v);
  }
  report.rounds = cp.rounds;
  report.degraded_rounds = cp.degraded_rounds;
  report.compute_seconds = cp.compute_seconds;
  report.update_seconds = cp.update_seconds;
  report.io_seconds = cp.io_seconds;
  report.scheduler_seconds = cp.scheduler_seconds;
  report.overlapped_seconds = cp.overlapped_seconds;
  report.io = cp.io;
  report.checkpoints_written = cp.checkpoints_written;
  report.checkpoint_bytes = cp.checkpoint_bytes;
  report.checkpoint_seconds = cp.checkpoint_seconds;
  report.resumed = true;
  report.resume_iteration = cp.iteration;
  return Status::Ok();
}

/// Lifecycle counters (`checkpoint.*`, `engine.cancelled_runs`). Deltas vs
/// the resumed baseline so counters reflect this process's work only.
void PublishLifecycleMetrics(obs::MetricsRegistry* metrics,
                             const ExecutionReport& report,
                             const Checkpoint& base) {
  if (metrics == nullptr) return;
  if (report.cancelled) metrics->GetCounter("engine.cancelled_runs").Add(1);
  if (report.resumed) metrics->GetCounter("checkpoint.resumes").Add(1);
  if (report.checkpoints_written > base.checkpoints_written) {
    metrics->GetCounter("checkpoint.written")
        .Add(report.checkpoints_written - base.checkpoints_written);
    metrics->GetCounter("checkpoint.bytes")
        .Add(report.checkpoint_bytes - base.checkpoint_bytes);
  }
}

}  // namespace

GraphSDEngine::GraphSDEngine(const partition::GridDataset& dataset,
                             EngineOptions options)
    : dataset_(&dataset), options_(std::move(options)) {
  // SCIU needs the source index; degrade gracefully on index-less layouts.
  if (!dataset.manifest().has_index) options_.enable_selective = false;
}

std::string GraphSDEngine::ValuesPath(const Program& program) const {
  const std::string base =
      options_.scratch_dir.empty() ? dataset_->dir() : options_.scratch_dir;
  return base + "/values_" + program.name() + ".bin";
}

Result<ExecutionReport> GraphSDEngine::Run(Program& program) {
  program.Bind(dataset_->out_degrees());
  state_ = std::make_unique<VertexState>(
      dataset_->num_vertices(), program.num_value_arrays(),
      program.kind() == ProgramKind::kGather, program.contrib_width());
  if (program.kind() == ProgramKind::kPush) {
    return RunPush(static_cast<PushProgram&>(program));
  }
  return RunGather(static_cast<GatherProgram&>(program));
}

Result<ExecutionReport> GraphSDEngine::RunPush(PushProgram& program) {
  const auto& manifest = dataset_->manifest();
  io::Device& device = dataset_->device();
  const VertexId n = manifest.num_vertices;
  const std::uint64_t default_budget =
      std::max<std::uint64_t>(1, manifest.TotalEdgeBytes() / 20);

  ThreadPool pool(options_.num_threads);
  // Resource sharing (DESIGN.md §13): a caller-provided buffer/pipeline
  // (the `graphsd serve` shared tier) replaces the private per-run ones.
  // Counter reporting switches to deltas against the entry snapshot so
  // the report still describes this run, not the buffer's whole life.
  std::unique_ptr<SubBlockBuffer> local_buffer;
  SubBlockBuffer* buffer = options_.shared_buffer;
  if (buffer == nullptr) {
    local_buffer = std::make_unique<SubBlockBuffer>(
        options_.enable_buffering ? (options_.buffer_capacity_bytes != 0
                                         ? options_.buffer_capacity_bytes
                                         : default_budget)
                                  : 0);
    buffer = local_buffer.get();
  }
  const SubBlockBuffer::Counters buf_before = buffer->counters();
  ExecContext ctx;
  ctx.dataset = dataset_;
  ctx.pool = &pool;
  ctx.buffer = buffer;
  ctx.memory_budget_bytes = options_.memory_budget_bytes != 0
                                ? options_.memory_budget_bytes
                                : default_budget;
  std::unique_ptr<io::PrefetchPipeline> local_prefetch;
  io::PrefetchPipeline* prefetch = options_.shared_prefetch;
  if (prefetch == nullptr) {
    local_prefetch =
        std::make_unique<io::PrefetchPipeline>(options_.prefetch_depth);
    prefetch = local_prefetch.get();
  }
  ctx.prefetch = prefetch;
  ctx.trace = options_.trace;
  // Skip summaries (DESIGN.md §14): shared store when the caller provides
  // one (the serve registry's per-dataset tier), private when running
  // semi-external solo, absent otherwise (zero overhead on classic runs).
  std::unique_ptr<SkipSummaryStore> local_summaries;
  SkipSummaryStore* summaries = options_.shared_summaries;
  if (summaries == nullptr && options_.semi_external) {
    local_summaries = std::make_unique<SkipSummaryStore>(manifest);
    summaries = local_summaries.get();
  }
  ctx.summaries = summaries;
  ctx.cache_compressed = options_.cache_compressed && dataset_->compressed();
  // Destination-range compute sharding (core/sharded_apply.hpp): 0 follows
  // the pool size, 1 is the bit-exact serial reference. Results are
  // bit-identical either way; only wall time changes.
  ctx.compute_shards = options_.compute_threads == 0 ? pool.size()
                                                     : options_.compute_threads;
  // Critical-path measurement for the sharded applies (the executors copy
  // ctx, so the accumulator must outlive them; folded into the report at
  // the end). Passive: never read during the run.
  double apply_excess = 0;
  ctx.apply_excess = &apply_excess;
  // Run-local cancellation: chains the caller's token (signal handlers trip
  // that one) and arms the optional deadline. Executors poll it at fetch
  // boundaries; the prefetch loader drains queued reads when it trips.
  CancellationToken run_token;
  run_token.set_parent(options_.cancel);
  if (options_.deadline_seconds > 0) {
    run_token.SetDeadline(options_.deadline_seconds);
  }
  ctx.cancel = &run_token;
  // A shared pipeline's token belongs to its owner: pointing it at this
  // stack-local token would dangle (and clobber concurrent runs).
  if (local_prefetch != nullptr) local_prefetch->set_cancellation(&run_token);
  SciuExecutor sciu(ctx);
  FciuExecutor fciu(ctx);
  SemiExecutor semi(ctx);
  StateAwareScheduler scheduler(*dataset_, device.options().cost_model);
  const bool semi_mode = options_.semi_external;
  const SemiCostInputs semi_inputs{summaries, buffer};

  const bool checkpointing = !options_.checkpoint_dir.empty();
  CheckpointStore store(options_.checkpoint_dir);
  // Slot writes are fdatasync-bound; the async writer keeps them off the
  // round critical path (its thread starts lazily on the first submit).
  AsyncCheckpointWriter checkpoint_writer(&store);
  const std::uint32_t checkpoint_every =
      std::max<std::uint32_t>(1, options_.checkpoint_every);
  const std::uint32_t fingerprint =
      checkpointing ? DatasetFingerprint(manifest) : 0;

  // Overlap charging is only honest when the pipeline actually overlaps.
  const bool overlap = options_.overlap_io && prefetch->enabled();

  ExecutionReport report;
  report.engine = options_.engine_name;
  report.algorithm = program.name();
  report.dataset = manifest.name;
  report.overlap_io = overlap;
  report.compute_shards = ctx.compute_shards;
  const partition::DecodeStats decode_before = dataset_->decode_stats();

  VertexState& state = *state_;
  Frontier active(n);
  Frontier out(n);
  Frontier out_ni(n);
  Frontier preact(n);
  program.Init(state, active);

  std::uint32_t iterations = 0;
  std::uint32_t last_checkpoint_iteration = 0;
  // Cumulative totals of the checkpoint this run resumed from (all-zero on
  // a fresh run); buffer/decode report fields are this run's deltas added
  // on top of it.
  Checkpoint base;
  if (checkpointing && options_.resume) {
    obs::TraceSpan span(options_.trace, "resume", 0);
    auto loaded = store.LoadLatest();
    if (loaded.ok()) {
      GRAPHSD_RETURN_IF_ERROR(RestoreCheckpoint(
          loaded.value(), fingerprint, program, /*gather=*/false, state,
          &active, &preact, report));
      iterations = loaded.value().iteration;
      last_checkpoint_iteration = iterations;
      base = std::move(loaded).value();
      base.arrays.clear();
      base.active.clear();
      base.preact.clear();
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      // Slots exist but none is valid (all torn/corrupt) — surface it
      // rather than silently recomputing from scratch.
      return loaded.status();
    }
  }
  if (options_.frontier_probe) options_.frontier_probe(iterations, active);

  const std::string values_path = ValuesPath(program);
  GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));

  const std::uint32_t max_iterations =
      std::min(program.max_iterations(), options_.max_iterations);
  // Cleared when the on-demand model hits unusable inputs (missing index,
  // checksum mismatch); the full-streaming model needs neither the index
  // nor ranged reads, so the run degrades instead of failing.
  bool selective_healthy = true;

  // Writes the committed boundary (in-memory arrays + frontiers are in sync
  // with the persisted values file whenever this is called).
  auto write_checkpoint = [&](std::uint32_t boundary) -> Status {
    obs::TraceSpan span(options_.trace, "checkpoint", boundary);
    WallTimer timer;
    const Checkpoint cp = MakeCheckpoint(
        fingerprint, program, /*gather=*/false, boundary, state, &active,
        &preact, report, base, *buffer, buf_before, *dataset_, decode_before);
    GRAPHSD_RETURN_IF_ERROR(checkpoint_writer.Submit(cp).status());
    ++report.checkpoints_written;
    report.checkpoint_seconds += timer.Seconds();
    last_checkpoint_iteration = boundary;
    return Status::Ok();
  };

  while (iterations < max_iterations) {
    // Loop-top poll: everything here is committed (values file persisted,
    // frontiers current), so cancellation just stops before the next round.
    if (run_token.cancelled()) {
      report.cancelled = true;
      report.cancel_reason = run_token.reason();
      break;
    }
    if (active.Empty()) {
      if (preact.Empty()) break;
      // Iteration t has no regularly-active vertices; the pre-activated set
      // becomes the next frontier at zero I/O cost.
      active.Swap(preact);
      preact.Clear();
      RoundStat stat;
      stat.first_iteration = iterations;
      stat.model = RoundModel::kSkipped;
      ++iterations;
      ++report.rounds;
      if (options_.record_per_round) report.per_round.push_back(stat);
      if (options_.frontier_probe) options_.frontier_probe(iterations, active);
      continue;
    }

    RoundStat stat;
    stat.first_iteration = iterations;
    bool on_demand = false;
    bool semi_round = false;
    const RoundModelChoice choice = options_.model_override
                                        ? options_.model_override(iterations)
                                        : RoundModelChoice::kAuto;
    if (choice != RoundModelChoice::kAuto) {
      // Forced model (differential testing): skip the cost evaluation. The
      // on-demand directive still requires a usable selective path.
      on_demand = choice == RoundModelChoice::kOnDemand && selective_healthy &&
                  options_.enable_selective;
      semi_round = choice == RoundModelChoice::kSemi;
      stat.active_vertices = active.Count();
    } else if ((selective_healthy &&
                (options_.force_on_demand || options_.enable_selective)) ||
               semi_mode) {
      // Under overlap charging the scheduler floors both model costs at the
      // run's observed per-round compute (0 before the first round commits,
      // i.e. the first evaluation is effectively serial).
      const double overlap_compute =
          overlap && report.rounds > 0
              ? report.compute_seconds / report.rounds
              : (overlap ? 0.0 : -1.0);
      obs::TraceSpan span(options_.trace, "schedule-decision", iterations);
      // Semi mode keeps the state RAM-resident, so the per-round |V|·N
      // values terms drop out of every model's formula (record bytes = 0).
      const SchedulerDecision decision = scheduler.Evaluate(
          active, semi_mode ? 0 : state.BytesPerVertex(),
          program.needs_weights() && manifest.weighted,
          /*fciu_round=*/options_.enable_cross_iteration &&
              iterations + 2 <= max_iterations,
          overlap_compute, semi_mode ? &semi_inputs : nullptr);
      stat.scheduler_seconds = decision.eval_seconds;
      // Record the raw model estimates: the charged (compute-floored)
      // values only break ties for the decision and would obscure the
      // cost-model shapes Figure 10 plots.
      stat.cost_on_demand = decision.serial_cost_on_demand;
      stat.cost_full = decision.serial_cost_full;
      stat.cost_semi = decision.serial_cost_semi;
      stat.active_vertices = decision.active_vertices;
      stat.active_edges = decision.active_edges;
      stat.seq_bytes = decision.seq_bytes;
      stat.rand_bytes = decision.rand_bytes;
      stat.random_requests = decision.random_requests;
      const bool sciu_usable =
          selective_healthy &&
          (options_.force_on_demand || options_.enable_selective);
      on_demand =
          sciu_usable && (options_.force_on_demand || decision.on_demand);
      semi_round = !options_.force_on_demand && decision.semi;
    } else {
      stat.active_vertices = active.Count();
    }

    RoundAccounting accounting(device, stat, report, overlap);
    // Semi-external: the state is RAM-resident — no per-round reload.
    // Instead the program arrays are snapshotted in memory so the rollback
    // paths below (mid-round cancel, on-demand degradation) can restore the
    // committed boundary without touching the stale values file.
    std::vector<std::vector<Slot>> state_snapshot;
    auto restore_state = [&] {
      for (std::uint32_t a = 0; a < state.num_program_arrays(); ++a) {
        const auto dst = state.array(a);
        std::copy(state_snapshot[a].begin(), state_snapshot[a].end(),
                  dst.begin());
      }
    };
    if (semi_mode) {
      state_snapshot.resize(state.num_program_arrays());
      for (std::uint32_t a = 0; a < state.num_program_arrays(); ++a) {
        const auto src = state.array(a);
        state_snapshot[a].assign(src.begin(), src.end());
      }
    } else {
      obs::TraceSpan span(options_.trace, "state-load", iterations);
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
    }
    // `preact` is kept intact until the round commits: if the on-demand
    // attempt fails it reseeds the full-streaming redo of the same round.
    out.CopyFrom(preact);
    out_ni.Clear();

    bool cancelled_mid_round = false;
    if (semi_round) {
      Status status = semi.RunIteration(program, state, active, out, stat,
                                        &report.update_seconds);
      if (status.code() == StatusCode::kCancelled) {
        cancelled_mid_round = true;
      } else {
        GRAPHSD_RETURN_IF_ERROR(status);
        iterations += stat.iterations_covered;
        preact.Clear();
        active.Swap(out);
      }
    } else if (on_demand) {
      Status status = sciu.RunIteration(program, state, active, out, out_ni,
                                        options_.enable_cross_iteration, stat,
                                        &report.update_seconds);
      if (status.code() == StatusCode::kCancelled) {
        cancelled_mid_round = true;
      } else if (!status.ok() && (status.code() == StatusCode::kNotFound ||
                                  status.code() == StatusCode::kCorruptData)) {
        GRAPHSD_LOG_WARN(
            "iteration %u: on-demand model unusable (%s); degrading to "
            "full-streaming for the rest of the run",
            iterations, status.ToString().c_str());
        selective_healthy = false;
        ++report.degraded_rounds;
        // Discard the partial iteration and redo it under the full model:
        // restore committed values (in-memory snapshot in semi mode, the
        // persisted file otherwise) and reseed the output frontiers.
        if (semi_mode) {
          restore_state();
        } else {
          obs::TraceSpan span(options_.trace, "state-load", iterations);
          GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
        }
        out.CopyFrom(preact);
        out_ni.Clear();
        on_demand = false;
      } else {
        GRAPHSD_RETURN_IF_ERROR(status);
        // The round may have fully pre-executed the following BSP iteration
        // (terminal cross-iteration step, see SciuExecutor); keep the
        // accounted span within the iteration budget.
        if (stat.first_iteration + stat.iterations_covered > max_iterations) {
          stat.iterations_covered = max_iterations - stat.first_iteration;
        }
        iterations += stat.iterations_covered;
        preact.Clear();
        active.Swap(out);
        preact.Swap(out_ni);
      }
    }
    if (!semi_round && !on_demand && !cancelled_mid_round) {
      const bool two = options_.enable_cross_iteration &&
                       iterations + 2 <= max_iterations;
      Status status = fciu.RunPushRound(program, state, active, out, out_ni,
                                        two, stat, &report.update_seconds);
      if (status.code() == StatusCode::kCancelled) {
        cancelled_mid_round = true;
      } else {
        GRAPHSD_RETURN_IF_ERROR(status);
        preact.Clear();
        iterations += stat.iterations_covered;
        if (stat.iterations_covered == 2) {
          active.Swap(out_ni);  // `out` was fully consumed inside the round
          if (options_.model_lumos_propagation) {
            GRAPHSD_RETURN_IF_ERROR(
                state.Persist(device, values_path + ".prop"));
            GRAPHSD_RETURN_IF_ERROR(
                state.Load(device, values_path + ".prop"));
          }
        } else {
          active.Swap(out);
        }
      }
    }

    if (cancelled_mid_round) {
      // The round never committed: frontier swaps only happen after
      // executor success, so `active`/`preact` still describe the last
      // committed boundary — restore its values and stop there. The partial
      // round's accounting is deliberately dropped (never Commit()ed).
      if (semi_mode) {
        restore_state();
      } else {
        obs::TraceSpan span(options_.trace, "state-load", iterations);
        GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
      }
      report.cancelled = true;
      report.cancel_reason = run_token.reason();
      break;
    }

    if (stat.model == RoundModel::kSemi) {
      ++report.semi_rounds;
      report.blocks_skipped += stat.blocks_skipped;
      report.blocks_skipped_bytes += stat.blocks_skipped_bytes;
    }
    if (!semi_mode) {
      obs::TraceSpan span(options_.trace, "write-back", stat.first_iteration);
      GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));
    }
    accounting.Commit(options_.record_per_round);
    if (options_.frontier_probe) options_.frontier_probe(iterations, active);
    if (checkpointing &&
        iterations - last_checkpoint_iteration >= checkpoint_every) {
      GRAPHSD_RETURN_IF_ERROR(write_checkpoint(iterations));
    }
  }

  if (semi_mode) {
    // Semi mode's replacement for the per-round write-back: one |V|·N
    // accounted write for the whole run. Folded into the report manually —
    // it commits outside any round's accounting window.
    obs::TraceSpan span(options_.trace, "write-back", iterations);
    const auto io_before = device.stats().Snapshot();
    const double clock_before = device.clock().Seconds();
    GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));
    report.io += device.stats().Snapshot() - io_before;
    report.io_seconds += device.clock().Seconds() - clock_before;
  }
  if (report.cancelled) {
    GRAPHSD_LOG_INFO("run cancelled at iteration %u (%s); partial report",
                     iterations, report.cancel_reason.c_str());
  }
  // Final checkpoint: on cancellation this is what `--resume` picks up; on
  // natural completion it makes a later resume a no-op re-run.
  if (checkpointing && iterations != last_checkpoint_iteration) {
    GRAPHSD_RETURN_IF_ERROR(write_checkpoint(iterations));
  }
  if (checkpointing) {
    // Join the background writer: the final boundary must be durable
    // before the report (cancelled or complete) is returned. Bytes are
    // accounted here because superseded frames never reach disk.
    WallTimer flush_timer;
    GRAPHSD_RETURN_IF_ERROR(checkpoint_writer.Flush());
    report.checkpoint_seconds += flush_timer.Seconds();
    report.checkpoint_bytes += checkpoint_writer.bytes_written();
  }

  report.iterations = iterations;
  report.apply_serialization_seconds = apply_excess;
  const SubBlockBuffer::Counters buf_now = buffer->counters();
  report.buffer_hits = base.buffer_hits + (buf_now.hits - buf_before.hits);
  report.buffer_misses =
      base.buffer_misses + (buf_now.misses - buf_before.misses);
  report.buffer_bytes_saved =
      base.buffer_bytes_saved + (buf_now.bytes_saved - buf_before.bytes_saved);
  report.buffer_frame_hits = buf_now.frame_hits - buf_before.frame_hits;
  report.buffer_frame_puts = buf_now.frame_puts - buf_before.frame_puts;
  FinishCompressionReport(*dataset_, decode_before, *buffer, buf_before,
                          report);
  report.frames_decoded += base.frames_decoded;
  report.compressed_bytes_read += base.compressed_bytes_read;
  report.decoded_bytes += base.decoded_bytes;
  report.decode_seconds += base.decode_seconds;
  report.buffer_disk_bytes_saved += base.buffer_disk_bytes_saved;
  PublishRunMetrics(options_.metrics, report, device, *buffer, *prefetch);
  PublishLifecycleMetrics(options_.metrics, report, base);
  return report;
}

Result<ExecutionReport> GraphSDEngine::RunGather(GatherProgram& program) {
  const auto& manifest = dataset_->manifest();
  io::Device& device = dataset_->device();
  const std::uint64_t default_budget =
      std::max<std::uint64_t>(1, manifest.TotalEdgeBytes() / 20);

  ThreadPool pool(options_.num_threads);
  std::unique_ptr<SubBlockBuffer> local_buffer;
  SubBlockBuffer* buffer = options_.shared_buffer;
  if (buffer == nullptr) {
    local_buffer = std::make_unique<SubBlockBuffer>(
        options_.enable_buffering ? (options_.buffer_capacity_bytes != 0
                                         ? options_.buffer_capacity_bytes
                                         : default_budget)
                                  : 0);
    buffer = local_buffer.get();
  }
  const SubBlockBuffer::Counters buf_before = buffer->counters();
  ExecContext ctx;
  ctx.dataset = dataset_;
  ctx.pool = &pool;
  ctx.buffer = buffer;
  // Gather runs never choose the semi model (push-only), but they still
  // record summaries into a shared store and honor frame caching.
  ctx.summaries = options_.shared_summaries;
  ctx.cache_compressed = options_.cache_compressed && dataset_->compressed();
  ctx.compute_shards = options_.compute_threads == 0 ? pool.size()
                                                     : options_.compute_threads;
  // See RunPush: passive critical-path accumulator for the sharded applies.
  double apply_excess = 0;
  ctx.apply_excess = &apply_excess;
  std::unique_ptr<io::PrefetchPipeline> local_prefetch;
  io::PrefetchPipeline* prefetch = options_.shared_prefetch;
  if (prefetch == nullptr) {
    local_prefetch =
        std::make_unique<io::PrefetchPipeline>(options_.prefetch_depth);
    prefetch = local_prefetch.get();
  }
  ctx.prefetch = prefetch;
  ctx.trace = options_.trace;
  CancellationToken run_token;
  run_token.set_parent(options_.cancel);
  if (options_.deadline_seconds > 0) {
    run_token.SetDeadline(options_.deadline_seconds);
  }
  ctx.cancel = &run_token;
  if (local_prefetch != nullptr) local_prefetch->set_cancellation(&run_token);
  FciuExecutor fciu(ctx);

  const bool checkpointing = !options_.checkpoint_dir.empty();
  CheckpointStore store(options_.checkpoint_dir);
  // Slot writes are fdatasync-bound; the async writer keeps them off the
  // round critical path (its thread starts lazily on the first submit).
  AsyncCheckpointWriter checkpoint_writer(&store);
  const std::uint32_t checkpoint_every =
      std::max<std::uint32_t>(1, options_.checkpoint_every);
  const std::uint32_t fingerprint =
      checkpointing ? DatasetFingerprint(manifest) : 0;

  const bool overlap = options_.overlap_io && prefetch->enabled();

  ExecutionReport report;
  report.engine = options_.engine_name;
  report.algorithm = program.name();
  report.dataset = manifest.name;
  report.overlap_io = overlap;
  report.compute_shards = ctx.compute_shards;
  const partition::DecodeStats decode_before = dataset_->decode_stats();

  VertexState& state = *state_;
  Frontier unused(manifest.num_vertices);
  program.Init(state, unused);

  std::uint32_t iterations = 0;
  std::uint32_t last_checkpoint_iteration = 0;
  Checkpoint base;
  if (checkpointing && options_.resume) {
    obs::TraceSpan span(options_.trace, "resume", 0);
    auto loaded = store.LoadLatest();
    if (loaded.ok()) {
      GRAPHSD_RETURN_IF_ERROR(RestoreCheckpoint(
          loaded.value(), fingerprint, program, /*gather=*/true, state,
          /*active=*/nullptr, /*preact=*/nullptr, report));
      iterations = loaded.value().iteration;
      last_checkpoint_iteration = iterations;
      base = std::move(loaded).value();
      base.arrays.clear();
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  const std::string values_path = ValuesPath(program);
  GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));

  const std::uint32_t max_iterations =
      std::min(program.max_iterations(), options_.max_iterations);

  auto write_checkpoint = [&](std::uint32_t boundary) -> Status {
    obs::TraceSpan span(options_.trace, "checkpoint", boundary);
    WallTimer timer;
    const Checkpoint cp = MakeCheckpoint(
        fingerprint, program, /*gather=*/true, boundary, state,
        /*active=*/nullptr, /*preact=*/nullptr, report, base, *buffer,
        buf_before, *dataset_, decode_before);
    GRAPHSD_RETURN_IF_ERROR(checkpoint_writer.Submit(cp).status());
    ++report.checkpoints_written;
    report.checkpoint_seconds += timer.Seconds();
    last_checkpoint_iteration = boundary;
    return Status::Ok();
  };

  while (iterations < max_iterations) {
    if (run_token.cancelled()) {
      report.cancelled = true;
      report.cancel_reason = run_token.reason();
      break;
    }
    RoundStat stat;
    stat.first_iteration = iterations;
    stat.active_vertices = manifest.num_vertices;
    stat.active_edges = manifest.num_edges;

    RoundAccounting accounting(device, stat, report, overlap);
    {
      obs::TraceSpan span(options_.trace, "state-load", iterations);
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
    }
    const bool two = options_.enable_cross_iteration &&
                     iterations + 2 <= max_iterations;
    Status status = fciu.RunGatherRound(program, state, two, stat,
                                        &report.update_seconds);
    if (status.code() == StatusCode::kCancelled) {
      // The round never committed: gather rounds mutate only the in-memory
      // arrays, which the next state.Load would overwrite anyway — reload
      // the committed values and stop there.
      obs::TraceSpan span(options_.trace, "state-load", iterations);
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
      report.cancelled = true;
      report.cancel_reason = run_token.reason();
      break;
    }
    GRAPHSD_RETURN_IF_ERROR(status);
    iterations += stat.iterations_covered;
    if (two && options_.model_lumos_propagation) {
      GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path + ".prop"));
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path + ".prop"));
    }
    {
      obs::TraceSpan span(options_.trace, "write-back", stat.first_iteration);
      GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));
    }
    accounting.Commit(options_.record_per_round);
    if (checkpointing &&
        iterations - last_checkpoint_iteration >= checkpoint_every) {
      GRAPHSD_RETURN_IF_ERROR(write_checkpoint(iterations));
    }
  }

  if (report.cancelled) {
    GRAPHSD_LOG_INFO("run cancelled at iteration %u (%s); partial report",
                     iterations, report.cancel_reason.c_str());
  }
  if (checkpointing && iterations != last_checkpoint_iteration) {
    GRAPHSD_RETURN_IF_ERROR(write_checkpoint(iterations));
  }
  if (checkpointing) {
    // Join the background writer: the final boundary must be durable
    // before the report (cancelled or complete) is returned. Bytes are
    // accounted here because superseded frames never reach disk.
    WallTimer flush_timer;
    GRAPHSD_RETURN_IF_ERROR(checkpoint_writer.Flush());
    report.checkpoint_seconds += flush_timer.Seconds();
    report.checkpoint_bytes += checkpoint_writer.bytes_written();
  }

  report.iterations = iterations;
  report.apply_serialization_seconds = apply_excess;
  const SubBlockBuffer::Counters buf_now = buffer->counters();
  report.buffer_hits = base.buffer_hits + (buf_now.hits - buf_before.hits);
  report.buffer_misses =
      base.buffer_misses + (buf_now.misses - buf_before.misses);
  report.buffer_bytes_saved =
      base.buffer_bytes_saved + (buf_now.bytes_saved - buf_before.bytes_saved);
  report.buffer_frame_hits = buf_now.frame_hits - buf_before.frame_hits;
  report.buffer_frame_puts = buf_now.frame_puts - buf_before.frame_puts;
  FinishCompressionReport(*dataset_, decode_before, *buffer, buf_before,
                          report);
  report.frames_decoded += base.frames_decoded;
  report.compressed_bytes_read += base.compressed_bytes_read;
  report.decoded_bytes += base.decoded_bytes;
  report.decode_seconds += base.decode_seconds;
  report.buffer_disk_bytes_saved += base.buffer_disk_bytes_saved;
  PublishRunMetrics(options_.metrics, report, device, *buffer, *prefetch);
  PublishLifecycleMetrics(options_.metrics, report, base);
  return report;
}

}  // namespace graphsd::core
