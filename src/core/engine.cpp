#include "core/engine.hpp"

#include <algorithm>

#include "core/fciu_executor.hpp"
#include "core/scheduler.hpp"
#include "core/sciu_executor.hpp"
#include "core/sub_block_buffer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/clock.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::core {
namespace {

/// Per-round accounting: snapshots the device counters at construction and
/// folds the deltas into the stat and report at Commit().
class RoundAccounting {
 public:
  /// `overlap` selects the pipelined per-round charge max(compute, io);
  /// otherwise the serial sum is charged (baselines, ablations).
  RoundAccounting(io::Device& device, RoundStat& stat, ExecutionReport& report,
                  bool overlap)
      : device_(device),
        stat_(stat),
        report_(report),
        overlap_(overlap),
        io_before_(device.stats().Snapshot()),
        clock_before_(device.clock().Seconds()) {}

  void Commit(bool record) {
    const auto io_delta = device_.stats().Snapshot() - io_before_;
    stat_.io_seconds = device_.clock().Seconds() - clock_before_;
    stat_.compute_seconds = wall_.Seconds();
    stat_.overlapped_seconds =
        overlap_ ? io::IoCostModel::OverlapSeconds(stat_.io_seconds,
                                                   stat_.compute_seconds)
                 : stat_.io_seconds + stat_.compute_seconds;
    stat_.read_bytes = io_delta.TotalReadBytes();
    stat_.write_bytes = io_delta.TotalWriteBytes();

    report_.io += io_delta;
    report_.io_seconds += stat_.io_seconds;
    report_.compute_seconds += stat_.compute_seconds;
    report_.overlapped_seconds += stat_.overlapped_seconds;
    report_.scheduler_seconds += stat_.scheduler_seconds;
    ++report_.rounds;
    if (record) report_.per_round.push_back(stat_);
  }

 private:
  io::Device& device_;
  RoundStat& stat_;
  ExecutionReport& report_;
  bool overlap_;
  io::IoStatsSnapshot io_before_;
  double clock_before_;
  WallTimer wall_;
};

/// End-of-run metrics publication. Engine totals accumulate as counters
/// (one Add per run); the I/O-stack components publish gauge snapshots.
/// Strictly passive: reads counters, performs no I/O, feeds nothing back.
void PublishRunMetrics(obs::MetricsRegistry* metrics,
                       const ExecutionReport& report, const io::Device& device,
                       const SubBlockBuffer& buffer,
                       const io::PrefetchPipeline& prefetch) {
  if (metrics == nullptr) return;
  metrics->GetCounter("engine.runs").Add(1);
  metrics->GetCounter("engine.iterations").Add(report.iterations);
  metrics->GetCounter("engine.rounds").Add(report.rounds);
  metrics->GetCounter("engine.degraded_rounds").Add(report.degraded_rounds);
  metrics->GetCounter("engine.frames_decoded").Add(report.frames_decoded);
  metrics->GetCounter("engine.compressed_bytes_read")
      .Add(report.compressed_bytes_read);
  metrics->GetCounter("engine.decoded_bytes").Add(report.decoded_bytes);
  obs::Histogram& reads = metrics->GetHistogram("engine.round_read_bytes");
  obs::Histogram& writes = metrics->GetHistogram("engine.round_write_bytes");
  for (const RoundStat& stat : report.per_round) {
    switch (stat.model) {
      case RoundModel::kSciu:
        metrics->GetCounter("engine.rounds_sciu").Add(1);
        break;
      case RoundModel::kFciu:
        metrics->GetCounter("engine.rounds_fciu").Add(1);
        break;
      case RoundModel::kPlainFull:
        metrics->GetCounter("engine.rounds_plain_full").Add(1);
        break;
      case RoundModel::kSkipped:
        metrics->GetCounter("engine.rounds_skipped").Add(1);
        break;
    }
    reads.Record(stat.read_bytes);
    writes.Record(stat.write_bytes);
  }
  device.PublishMetrics(*metrics);
  buffer.PublishMetrics(*metrics);
  prefetch.PublishMetrics(*metrics);
}

/// Folds this run's decode-side deltas (the dataset's counters are
/// cumulative across runs) and the buffer's on-disk byte view into the
/// report.
void FinishCompressionReport(const partition::GridDataset& dataset,
                             const partition::DecodeStats& before,
                             const SubBlockBuffer& buffer,
                             ExecutionReport& report) {
  report.codec = dataset.codec_name();
  const partition::DecodeStats after = dataset.decode_stats();
  report.frames_decoded = after.frames_decoded - before.frames_decoded;
  report.compressed_bytes_read =
      after.compressed_bytes - before.compressed_bytes;
  report.decoded_bytes = after.decoded_bytes - before.decoded_bytes;
  report.decode_seconds = after.decode_seconds - before.decode_seconds;
  report.buffer_disk_bytes_saved = buffer.disk_bytes_saved();
}

}  // namespace

GraphSDEngine::GraphSDEngine(const partition::GridDataset& dataset,
                             EngineOptions options)
    : dataset_(&dataset), options_(std::move(options)) {
  // SCIU needs the source index; degrade gracefully on index-less layouts.
  if (!dataset.manifest().has_index) options_.enable_selective = false;
}

std::string GraphSDEngine::ValuesPath(const Program& program) const {
  const std::string base =
      options_.scratch_dir.empty() ? dataset_->dir() : options_.scratch_dir;
  return base + "/values_" + program.name() + ".bin";
}

Result<ExecutionReport> GraphSDEngine::Run(Program& program) {
  program.Bind(dataset_->out_degrees());
  state_ = std::make_unique<VertexState>(
      dataset_->num_vertices(), program.num_value_arrays(),
      program.kind() == ProgramKind::kGather);
  if (program.kind() == ProgramKind::kPush) {
    return RunPush(static_cast<PushProgram&>(program));
  }
  return RunGather(static_cast<GatherProgram&>(program));
}

Result<ExecutionReport> GraphSDEngine::RunPush(PushProgram& program) {
  const auto& manifest = dataset_->manifest();
  io::Device& device = dataset_->device();
  const VertexId n = manifest.num_vertices;
  const std::uint64_t default_budget =
      std::max<std::uint64_t>(1, manifest.TotalEdgeBytes() / 20);

  ThreadPool pool(options_.num_threads);
  SubBlockBuffer buffer(options_.enable_buffering
                            ? (options_.buffer_capacity_bytes != 0
                                   ? options_.buffer_capacity_bytes
                                   : default_budget)
                            : 0);
  ExecContext ctx;
  ctx.dataset = dataset_;
  ctx.pool = &pool;
  ctx.buffer = &buffer;
  ctx.memory_budget_bytes = options_.memory_budget_bytes != 0
                                ? options_.memory_budget_bytes
                                : default_budget;
  io::PrefetchPipeline prefetch(options_.prefetch_depth);
  ctx.prefetch = &prefetch;
  ctx.trace = options_.trace;
  SciuExecutor sciu(ctx);
  FciuExecutor fciu(ctx);
  StateAwareScheduler scheduler(*dataset_, device.options().cost_model);

  // Overlap charging is only honest when the pipeline actually overlaps.
  const bool overlap = options_.overlap_io && prefetch.enabled();

  ExecutionReport report;
  report.engine = options_.engine_name;
  report.algorithm = program.name();
  report.dataset = manifest.name;
  report.overlap_io = overlap;
  const partition::DecodeStats decode_before = dataset_->decode_stats();

  VertexState& state = *state_;
  Frontier active(n);
  Frontier out(n);
  Frontier out_ni(n);
  Frontier preact(n);
  program.Init(state, active);
  if (options_.frontier_probe) options_.frontier_probe(0, active);

  const std::string values_path = ValuesPath(program);
  GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));

  const std::uint32_t max_iterations =
      std::min(program.max_iterations(), options_.max_iterations);
  std::uint32_t iterations = 0;
  // Cleared when the on-demand model hits unusable inputs (missing index,
  // checksum mismatch); the full-streaming model needs neither the index
  // nor ranged reads, so the run degrades instead of failing.
  bool selective_healthy = true;

  while (iterations < max_iterations) {
    if (active.Empty()) {
      if (preact.Empty()) break;
      // Iteration t has no regularly-active vertices; the pre-activated set
      // becomes the next frontier at zero I/O cost.
      active.Swap(preact);
      preact.Clear();
      RoundStat stat;
      stat.first_iteration = iterations;
      stat.model = RoundModel::kSkipped;
      ++iterations;
      ++report.rounds;
      if (options_.record_per_round) report.per_round.push_back(stat);
      if (options_.frontier_probe) options_.frontier_probe(iterations, active);
      continue;
    }

    RoundStat stat;
    stat.first_iteration = iterations;
    bool on_demand = false;
    const RoundModelChoice choice = options_.model_override
                                        ? options_.model_override(iterations)
                                        : RoundModelChoice::kAuto;
    if (choice != RoundModelChoice::kAuto) {
      // Forced model (differential testing): skip the cost evaluation. The
      // on-demand directive still requires a usable selective path.
      on_demand = choice == RoundModelChoice::kOnDemand && selective_healthy &&
                  options_.enable_selective;
      stat.active_vertices = active.Count();
    } else if (selective_healthy &&
               (options_.force_on_demand || options_.enable_selective)) {
      // Under overlap charging the scheduler floors both model costs at the
      // run's observed per-round compute (0 before the first round commits,
      // i.e. the first evaluation is effectively serial).
      const double overlap_compute =
          overlap && report.rounds > 0
              ? report.compute_seconds / report.rounds
              : (overlap ? 0.0 : -1.0);
      obs::TraceSpan span(options_.trace, "schedule-decision", iterations);
      const SchedulerDecision decision = scheduler.Evaluate(
          active, state.BytesPerVertex(),
          program.needs_weights() && manifest.weighted,
          /*fciu_round=*/options_.enable_cross_iteration &&
              iterations + 2 <= max_iterations,
          overlap_compute);
      stat.scheduler_seconds = decision.eval_seconds;
      // Record the raw model estimates: the charged (compute-floored)
      // values only break ties for the decision and would obscure the
      // cost-model shapes Figure 10 plots.
      stat.cost_on_demand = decision.serial_cost_on_demand;
      stat.cost_full = decision.serial_cost_full;
      stat.active_vertices = decision.active_vertices;
      stat.active_edges = decision.active_edges;
      stat.seq_bytes = decision.seq_bytes;
      stat.rand_bytes = decision.rand_bytes;
      stat.random_requests = decision.random_requests;
      on_demand = options_.force_on_demand || decision.on_demand;
    } else {
      stat.active_vertices = active.Count();
    }

    RoundAccounting accounting(device, stat, report, overlap);
    {
      obs::TraceSpan span(options_.trace, "state-load", iterations);
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
    }
    // `preact` is kept intact until the round commits: if the on-demand
    // attempt fails it reseeds the full-streaming redo of the same round.
    out.CopyFrom(preact);
    out_ni.Clear();

    if (on_demand) {
      Status status = sciu.RunIteration(program, state, active, out, out_ni,
                                        options_.enable_cross_iteration, stat,
                                        &report.update_seconds);
      if (!status.ok() && (status.code() == StatusCode::kNotFound ||
                           status.code() == StatusCode::kCorruptData)) {
        GRAPHSD_LOG_WARN(
            "iteration %u: on-demand model unusable (%s); degrading to "
            "full-streaming for the rest of the run",
            iterations, status.ToString().c_str());
        selective_healthy = false;
        ++report.degraded_rounds;
        // Discard the partial iteration and redo it under the full model:
        // reload persisted values and reseed the output frontiers.
        obs::TraceSpan span(options_.trace, "state-load", iterations);
        GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
        out.CopyFrom(preact);
        out_ni.Clear();
        on_demand = false;
      } else {
        GRAPHSD_RETURN_IF_ERROR(status);
        // The round may have fully pre-executed the following BSP iteration
        // (terminal cross-iteration step, see SciuExecutor); keep the
        // accounted span within the iteration budget.
        if (stat.first_iteration + stat.iterations_covered > max_iterations) {
          stat.iterations_covered = max_iterations - stat.first_iteration;
        }
        iterations += stat.iterations_covered;
        preact.Clear();
        active.Swap(out);
        preact.Swap(out_ni);
      }
    }
    if (!on_demand) {
      const bool two = options_.enable_cross_iteration &&
                       iterations + 2 <= max_iterations;
      GRAPHSD_RETURN_IF_ERROR(fciu.RunPushRound(program, state, active, out,
                                                out_ni, two, stat,
                                                &report.update_seconds));
      preact.Clear();
      iterations += stat.iterations_covered;
      if (stat.iterations_covered == 2) {
        active.Swap(out_ni);  // `out` was fully consumed inside the round
        if (options_.model_lumos_propagation) {
          GRAPHSD_RETURN_IF_ERROR(
              state.Persist(device, values_path + ".prop"));
          GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path + ".prop"));
        }
      } else {
        active.Swap(out);
      }
    }

    {
      obs::TraceSpan span(options_.trace, "write-back", stat.first_iteration);
      GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));
    }
    accounting.Commit(options_.record_per_round);
    if (options_.frontier_probe) options_.frontier_probe(iterations, active);
  }

  report.iterations = iterations;
  report.buffer_hits = buffer.hits();
  report.buffer_misses = buffer.misses();
  report.buffer_bytes_saved = buffer.bytes_saved();
  FinishCompressionReport(*dataset_, decode_before, buffer, report);
  PublishRunMetrics(options_.metrics, report, device, buffer, prefetch);
  return report;
}

Result<ExecutionReport> GraphSDEngine::RunGather(GatherProgram& program) {
  const auto& manifest = dataset_->manifest();
  io::Device& device = dataset_->device();
  const std::uint64_t default_budget =
      std::max<std::uint64_t>(1, manifest.TotalEdgeBytes() / 20);

  ThreadPool pool(options_.num_threads);
  SubBlockBuffer buffer(options_.enable_buffering
                            ? (options_.buffer_capacity_bytes != 0
                                   ? options_.buffer_capacity_bytes
                                   : default_budget)
                            : 0);
  ExecContext ctx;
  ctx.dataset = dataset_;
  ctx.pool = &pool;
  ctx.buffer = &buffer;
  io::PrefetchPipeline prefetch(options_.prefetch_depth);
  ctx.prefetch = &prefetch;
  ctx.trace = options_.trace;
  FciuExecutor fciu(ctx);

  const bool overlap = options_.overlap_io && prefetch.enabled();

  ExecutionReport report;
  report.engine = options_.engine_name;
  report.algorithm = program.name();
  report.dataset = manifest.name;
  report.overlap_io = overlap;
  const partition::DecodeStats decode_before = dataset_->decode_stats();

  VertexState& state = *state_;
  Frontier unused(manifest.num_vertices);
  program.Init(state, unused);

  const std::string values_path = ValuesPath(program);
  GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));

  const std::uint32_t max_iterations =
      std::min(program.max_iterations(), options_.max_iterations);
  std::uint32_t iterations = 0;

  while (iterations < max_iterations) {
    RoundStat stat;
    stat.first_iteration = iterations;
    stat.active_vertices = manifest.num_vertices;
    stat.active_edges = manifest.num_edges;

    RoundAccounting accounting(device, stat, report, overlap);
    {
      obs::TraceSpan span(options_.trace, "state-load", iterations);
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path));
    }
    const bool two = options_.enable_cross_iteration &&
                     iterations + 2 <= max_iterations;
    GRAPHSD_RETURN_IF_ERROR(fciu.RunGatherRound(program, state, two, stat,
                                                &report.update_seconds));
    iterations += stat.iterations_covered;
    if (two && options_.model_lumos_propagation) {
      GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path + ".prop"));
      GRAPHSD_RETURN_IF_ERROR(state.Load(device, values_path + ".prop"));
    }
    {
      obs::TraceSpan span(options_.trace, "write-back", stat.first_iteration);
      GRAPHSD_RETURN_IF_ERROR(state.Persist(device, values_path));
    }
    accounting.Commit(options_.record_per_round);
  }

  report.iterations = iterations;
  report.buffer_hits = buffer.hits();
  report.buffer_misses = buffer.misses();
  report.buffer_bytes_saved = buffer.bytes_saved();
  FinishCompressionReport(*dataset_, decode_before, buffer, report);
  PublishRunMetrics(options_.metrics, report, device, buffer, prefetch);
  return report;
}

}  // namespace graphsd::core
