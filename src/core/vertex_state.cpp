#include "core/vertex_state.hpp"

namespace graphsd::core {

VertexState::VertexState(VertexId num_vertices,
                         std::uint32_t num_program_arrays, bool gather,
                         std::uint32_t contrib_width)
    : num_vertices_(num_vertices), contrib_width_(contrib_width) {
  GRAPHSD_CHECK(num_program_arrays >= 1);
  GRAPHSD_CHECK(contrib_width >= 1);
  program_arrays_.resize(num_program_arrays);
  for (auto& a : program_arrays_) a.assign(num_vertices, 0);
  for (int s = 0; s < 2; ++s) {
    contrib_storage_[s].assign(
        static_cast<std::size_t>(num_vertices) * contrib_width, 0);
    contrib_[s] = contrib_storage_[s];
  }
  if (gather) {
    for (int s = 0; s < 2; ++s) {
      accum_storage_[s].assign(num_vertices, 0);
      accum_[s] = accum_storage_[s];
    }
  }
}

Status VertexState::Persist(io::Device& device, const std::string& path) const {
  GRAPHSD_ASSIGN_OR_RETURN(io::DeviceFile file,
                           device.Open(path, io::OpenMode::kWrite));
  std::uint64_t offset = 0;
  for (const auto& a : program_arrays_) {
    GRAPHSD_RETURN_IF_ERROR(file.WriteAt(
        offset, {reinterpret_cast<const std::uint8_t*>(a.data()),
                 a.size() * sizeof(Slot)}));
    offset += a.size() * sizeof(Slot);
  }
  return Status::Ok();
}

Status VertexState::Load(io::Device& device, const std::string& path) {
  GRAPHSD_ASSIGN_OR_RETURN(io::DeviceFile file,
                           device.Open(path, io::OpenMode::kRead));
  std::uint64_t offset = 0;
  for (auto& a : program_arrays_) {
    GRAPHSD_RETURN_IF_ERROR(
        file.ReadAt(offset, {reinterpret_cast<std::uint8_t*>(a.data()),
                             a.size() * sizeof(Slot)}));
    offset += a.size() * sizeof(Slot);
  }
  return Status::Ok();
}

}  // namespace graphsd::core
