#include "core/sub_block_buffer.hpp"

#include "obs/metrics.hpp"

namespace graphsd::core {

const partition::SubBlock* SubBlockBuffer::Get(std::uint32_t i,
                                               std::uint32_t j,
                                               bool require_weights) {
  if (!enabled()) return nullptr;
  const auto it = entries_.find(Key(i, j));
  if (it == entries_.end() ||
      (require_weights && !it->second.block.edges.empty() &&
       it->second.block.weights.empty())) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  bytes_saved_ += it->second.block.SizeBytes();
  disk_bytes_saved_ += it->second.block.disk_bytes;
  return &it->second.block;
}

bool SubBlockBuffer::Put(std::uint32_t i, std::uint32_t j,
                         partition::SubBlock block, std::uint64_t priority) {
  if (!enabled()) return false;
  const std::uint64_t bytes = block.SizeBytes();
  const std::uint64_t key = Key(i, j);
  if (bytes > capacity_) {
    // A block that can never fit is rejected before any eviction: flushing
    // the cache for an insert that must fail would only destroy hits.
    ++rejected_;
    return false;
  }
  // Feasibility first: only the same-key entry (it is being replaced) and
  // strictly-lower-priority entries may be evicted for this insert. If that
  // budget cannot make room, reject without touching the cache — the old
  // code evicted cold entries one by one and could flush several of them
  // before discovering the insert was doomed.
  std::uint64_t evictable = 0;
  for (const auto& [entry_key, entry] : entries_) {
    if (entry_key == key || entry.priority < priority) {
      evictable += entry.block.SizeBytes();
    }
  }
  if (used_ - evictable + bytes > capacity_) {
    ++rejected_;
    return false;
  }
  // Replacing an existing entry: release its bytes first (not an eviction).
  if (const auto it = entries_.find(key); it != entries_.end()) {
    used_ -= it->second.block.SizeBytes();
    entries_.erase(it);
  }
  // Evict coldest-first until the block fits. Equal priorities tie-break on
  // the smaller key so the victim sequence is independent of hash-map
  // iteration order — runs must be reproducible.
  while (used_ + bytes > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.priority < victim->second.priority ||
          (it->second.priority == victim->second.priority &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    used_ -= victim->second.block.SizeBytes();
    entries_.erase(victim);
    ++evictions_;
  }
  used_ += bytes;
  entries_.emplace(key, Entry{std::move(block), priority});
  return true;
}

void SubBlockBuffer::UpdatePriority(std::uint32_t i, std::uint32_t j,
                                    std::uint64_t priority) {
  if (const auto it = entries_.find(Key(i, j)); it != entries_.end()) {
    it->second.priority = priority;
  }
}

void SubBlockBuffer::Erase(std::uint32_t i, std::uint32_t j) {
  if (const auto it = entries_.find(Key(i, j)); it != entries_.end()) {
    used_ -= it->second.block.SizeBytes();
    entries_.erase(it);
  }
}

void SubBlockBuffer::Clear() {
  entries_.clear();
  used_ = 0;
}

void SubBlockBuffer::PublishMetrics(obs::MetricsRegistry& metrics) const {
  metrics.GetGauge("buffer.capacity_bytes").Set(static_cast<double>(capacity_));
  metrics.GetGauge("buffer.used_bytes").Set(static_cast<double>(used_));
  metrics.GetGauge("buffer.hits").Set(static_cast<double>(hits_));
  metrics.GetGauge("buffer.misses").Set(static_cast<double>(misses_));
  metrics.GetGauge("buffer.bytes_saved").Set(static_cast<double>(bytes_saved_));
  metrics.GetGauge("buffer.disk_bytes_saved")
      .Set(static_cast<double>(disk_bytes_saved_));
  metrics.GetGauge("buffer.evictions").Set(static_cast<double>(evictions_));
  metrics.GetGauge("buffer.rejected_puts").Set(static_cast<double>(rejected_));
}

}  // namespace graphsd::core
