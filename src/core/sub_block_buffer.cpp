#include "core/sub_block_buffer.hpp"

#include "obs/metrics.hpp"

namespace graphsd::core {

// unordered_map never invalidates references to mapped values on insert or
// rehash, so a Pin's block/frame pointers stay valid for exactly as long as
// their entry stays in the map — which the pin count guarantees.

std::uint64_t SubBlockBuffer::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t SubBlockBuffer::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t SubBlockBuffer::pinned_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t pinned = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.pins > 0) ++pinned;
  }
  return pinned;
}

std::uint64_t SubBlockBuffer::AuditUsedBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, entry] : entries_) total += entry.stored_bytes;
  return total;
}

bool SubBlockBuffer::Contains(std::uint32_t i, std::uint32_t j) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(Key(i, j)) != entries_.end();
}

SubBlockBuffer::Pin SubBlockBuffer::Get(std::uint32_t i, std::uint32_t j,
                                        bool require_weights) {
  if (!enabled()) return Pin();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key(i, j));
  if (it == entries_.end()) {
    ++misses_;
    return Pin();
  }
  Entry& entry = it->second;
  // Edge-bearing entries (decoded edges, or a frame that decodes into them)
  // cached without their weights miss a weighted consumer.
  const bool has_edges = !entry.block.edges.empty() || !entry.frame.empty();
  if (require_weights && has_edges && entry.block.weights.empty()) {
    ++misses_;
    return Pin();
  }
  ++hits_;
  if (!entry.frame.empty()) ++frame_hits_;
  bytes_saved_ += entry.served_bytes;
  disk_bytes_saved_ += entry.block.disk_bytes;
  ++entry.pins;
  return Pin(this, it->first, &entry.block, &entry.frame);
}

void SubBlockBuffer::Unpin(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

bool SubBlockBuffer::Put(std::uint32_t i, std::uint32_t j,
                         partition::SubBlock block, std::uint64_t priority) {
  Entry entry;
  entry.stored_bytes = block.SizeBytes();
  entry.served_bytes = entry.stored_bytes;
  entry.block = std::move(block);
  entry.priority = priority;
  return PutEntry(Key(i, j), std::move(entry));
}

bool SubBlockBuffer::PutFrame(std::uint32_t i, std::uint32_t j,
                              partition::SubBlockPayload payload,
                              std::uint64_t served_bytes,
                              std::uint64_t priority) {
  if (payload.frame.empty()) {
    return Put(i, j, std::move(payload.block), priority);
  }
  Entry entry;
  entry.stored_bytes = payload.frame.size() + payload.block.SizeBytes();
  entry.served_bytes = served_bytes;
  entry.block = std::move(payload.block);
  entry.frame = std::move(payload.frame);
  entry.priority = priority;
  return PutEntry(Key(i, j), std::move(entry));
}

bool SubBlockBuffer::PutEntry(std::uint64_t key, Entry entry) {
  if (!enabled()) return false;
  const std::uint64_t bytes = entry.stored_bytes;
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > capacity_) {
    // An entry that can never fit is rejected before any eviction: flushing
    // the cache for an insert that must fail would only destroy hits.
    ++rejected_;
    return false;
  }
  // A pinned same-key entry cannot be replaced — another caller still reads
  // through its pointers. Reject; the caller keeps its locally-loaded copy.
  if (const auto it = entries_.find(key);
      it != entries_.end() && it->second.pins > 0) {
    ++rejected_;
    ++pinned_rejected_;
    return false;
  }
  // Feasibility first: only the same-key entry (it is being replaced) and
  // strictly-lower-priority *unpinned* entries may be evicted for this
  // insert. If that budget cannot make room, reject without touching the
  // cache — the old code evicted cold entries one by one and could flush
  // several of them before discovering the insert was doomed.
  std::uint64_t evictable = 0;
  for (const auto& [entry_key, resident] : entries_) {
    if (entry_key == key ||
        (resident.pins == 0 && resident.priority < entry.priority)) {
      evictable += resident.stored_bytes;
    }
  }
  if (used_ - evictable + bytes > capacity_) {
    ++rejected_;
    return false;
  }
  // Replacing an existing entry: release its bytes first (not an eviction).
  if (const auto it = entries_.find(key); it != entries_.end()) {
    used_ -= it->second.stored_bytes;
    entries_.erase(it);
  }
  // Evict coldest-first until the entry fits. Equal priorities tie-break on
  // the smaller key so the victim sequence is independent of hash-map
  // iteration order — runs must be reproducible. Pinned entries are never
  // victims.
  while (used_ + bytes > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.priority < victim->second.priority ||
          (it->second.priority == victim->second.priority &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    used_ -= victim->second.stored_bytes;
    entries_.erase(victim);
    ++evictions_;
  }
  used_ += bytes;
  if (!entry.frame.empty()) ++frame_puts_;
  entries_.emplace(key, std::move(entry));
  return true;
}

void SubBlockBuffer::UpdatePriority(std::uint32_t i, std::uint32_t j,
                                    std::uint64_t priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(Key(i, j)); it != entries_.end()) {
    it->second.priority = priority;
  }
}

void SubBlockBuffer::Erase(std::uint32_t i, std::uint32_t j) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(Key(i, j));
      it != entries_.end() && it->second.pins == 0) {
    used_ -= it->second.stored_bytes;
    entries_.erase(it);
  }
}

void SubBlockBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.pins == 0) {
      used_ -= it->second.stored_bytes;
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

SubBlockBuffer::Counters SubBlockBuffer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.bytes_saved = bytes_saved_;
  c.disk_bytes_saved = disk_bytes_saved_;
  c.evictions = evictions_;
  c.rejected_puts = rejected_;
  c.pinned_rejected_puts = pinned_rejected_;
  c.frame_hits = frame_hits_;
  c.frame_puts = frame_puts_;
  return c;
}

void SubBlockBuffer::PublishMetrics(obs::MetricsRegistry& metrics) const {
  const Counters c = counters();
  metrics.GetGauge("buffer.capacity_bytes").Set(static_cast<double>(capacity_));
  metrics.GetGauge("buffer.used_bytes").Set(static_cast<double>(size_bytes()));
  metrics.GetGauge("buffer.hits").Set(static_cast<double>(c.hits));
  metrics.GetGauge("buffer.misses").Set(static_cast<double>(c.misses));
  metrics.GetGauge("buffer.bytes_saved")
      .Set(static_cast<double>(c.bytes_saved));
  metrics.GetGauge("buffer.disk_bytes_saved")
      .Set(static_cast<double>(c.disk_bytes_saved));
  metrics.GetGauge("buffer.evictions").Set(static_cast<double>(c.evictions));
  metrics.GetGauge("buffer.rejected_puts")
      .Set(static_cast<double>(c.rejected_puts));
  metrics.GetGauge("buffer.pinned_rejected_puts")
      .Set(static_cast<double>(c.pinned_rejected_puts));
  metrics.GetGauge("buffer.frame_hits").Set(static_cast<double>(c.frame_hits));
  metrics.GetGauge("buffer.frame_puts").Set(static_cast<double>(c.frame_puts));
}

}  // namespace graphsd::core
