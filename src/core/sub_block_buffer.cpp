#include "core/sub_block_buffer.hpp"

#include "obs/metrics.hpp"

namespace graphsd::core {

// unordered_map never invalidates references to mapped values on insert or
// rehash, so a Pin's block pointer stays valid for exactly as long as its
// entry stays in the map — which the pin count guarantees.

std::uint64_t SubBlockBuffer::size_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return used_;
}

std::size_t SubBlockBuffer::entry_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t SubBlockBuffer::pinned_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t pinned = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.pins > 0) ++pinned;
  }
  return pinned;
}

bool SubBlockBuffer::Contains(std::uint32_t i, std::uint32_t j) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(Key(i, j)) != entries_.end();
}

SubBlockBuffer::Pin SubBlockBuffer::Get(std::uint32_t i, std::uint32_t j,
                                        bool require_weights) {
  if (!enabled()) return Pin();
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(Key(i, j));
  if (it == entries_.end() ||
      (require_weights && !it->second.block.edges.empty() &&
       it->second.block.weights.empty())) {
    ++misses_;
    return Pin();
  }
  ++hits_;
  bytes_saved_ += it->second.block.SizeBytes();
  disk_bytes_saved_ += it->second.block.disk_bytes;
  ++it->second.pins;
  return Pin(this, it->first, &it->second.block);
}

void SubBlockBuffer::Unpin(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.pins > 0) --it->second.pins;
}

bool SubBlockBuffer::Put(std::uint32_t i, std::uint32_t j,
                         partition::SubBlock block, std::uint64_t priority) {
  if (!enabled()) return false;
  const std::uint64_t bytes = block.SizeBytes();
  const std::uint64_t key = Key(i, j);
  std::lock_guard<std::mutex> lock(mutex_);
  if (bytes > capacity_) {
    // A block that can never fit is rejected before any eviction: flushing
    // the cache for an insert that must fail would only destroy hits.
    ++rejected_;
    return false;
  }
  // A pinned same-key entry cannot be replaced — another caller still reads
  // through its pointer. Reject; the caller keeps its locally-loaded copy.
  if (const auto it = entries_.find(key);
      it != entries_.end() && it->second.pins > 0) {
    ++rejected_;
    ++pinned_rejected_;
    return false;
  }
  // Feasibility first: only the same-key entry (it is being replaced) and
  // strictly-lower-priority *unpinned* entries may be evicted for this
  // insert. If that budget cannot make room, reject without touching the
  // cache — the old code evicted cold entries one by one and could flush
  // several of them before discovering the insert was doomed.
  std::uint64_t evictable = 0;
  for (const auto& [entry_key, entry] : entries_) {
    if (entry_key == key ||
        (entry.pins == 0 && entry.priority < priority)) {
      evictable += entry.block.SizeBytes();
    }
  }
  if (used_ - evictable + bytes > capacity_) {
    ++rejected_;
    return false;
  }
  // Replacing an existing entry: release its bytes first (not an eviction).
  if (const auto it = entries_.find(key); it != entries_.end()) {
    used_ -= it->second.block.SizeBytes();
    entries_.erase(it);
  }
  // Evict coldest-first until the block fits. Equal priorities tie-break on
  // the smaller key so the victim sequence is independent of hash-map
  // iteration order — runs must be reproducible. Pinned entries are never
  // victims.
  while (used_ + bytes > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == entries_.end() ||
          it->second.priority < victim->second.priority ||
          (it->second.priority == victim->second.priority &&
           it->first < victim->first)) {
        victim = it;
      }
    }
    used_ -= victim->second.block.SizeBytes();
    entries_.erase(victim);
    ++evictions_;
  }
  used_ += bytes;
  entries_.emplace(key, Entry{std::move(block), priority, 0});
  return true;
}

void SubBlockBuffer::UpdatePriority(std::uint32_t i, std::uint32_t j,
                                    std::uint64_t priority) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(Key(i, j)); it != entries_.end()) {
    it->second.priority = priority;
  }
}

void SubBlockBuffer::Erase(std::uint32_t i, std::uint32_t j) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = entries_.find(Key(i, j));
      it != entries_.end() && it->second.pins == 0) {
    used_ -= it->second.block.SizeBytes();
    entries_.erase(it);
  }
}

void SubBlockBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.pins == 0) {
      used_ -= it->second.block.SizeBytes();
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

SubBlockBuffer::Counters SubBlockBuffer::counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.bytes_saved = bytes_saved_;
  c.disk_bytes_saved = disk_bytes_saved_;
  c.evictions = evictions_;
  c.rejected_puts = rejected_;
  c.pinned_rejected_puts = pinned_rejected_;
  return c;
}

void SubBlockBuffer::PublishMetrics(obs::MetricsRegistry& metrics) const {
  const Counters c = counters();
  metrics.GetGauge("buffer.capacity_bytes").Set(static_cast<double>(capacity_));
  metrics.GetGauge("buffer.used_bytes").Set(static_cast<double>(size_bytes()));
  metrics.GetGauge("buffer.hits").Set(static_cast<double>(c.hits));
  metrics.GetGauge("buffer.misses").Set(static_cast<double>(c.misses));
  metrics.GetGauge("buffer.bytes_saved")
      .Set(static_cast<double>(c.bytes_saved));
  metrics.GetGauge("buffer.disk_bytes_saved")
      .Set(static_cast<double>(c.disk_bytes_saved));
  metrics.GetGauge("buffer.evictions").Set(static_cast<double>(c.evictions));
  metrics.GetGauge("buffer.rejected_puts")
      .Set(static_cast<double>(c.rejected_puts));
  metrics.GetGauge("buffer.pinned_rejected_puts")
      .Set(static_cast<double>(c.pinned_rejected_puts));
}

}  // namespace graphsd::core
