#include "core/sub_block_buffer.hpp"

namespace graphsd::core {

const partition::SubBlock* SubBlockBuffer::Get(std::uint32_t i,
                                               std::uint32_t j) {
  if (!enabled()) return nullptr;
  const auto it = entries_.find(Key(i, j));
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  bytes_saved_ += it->second.block.SizeBytes();
  return &it->second.block;
}

bool SubBlockBuffer::Put(std::uint32_t i, std::uint32_t j,
                         partition::SubBlock block, std::uint64_t priority) {
  if (!enabled()) return false;
  const std::uint64_t bytes = block.SizeBytes();
  if (bytes > capacity_) return false;
  const std::uint64_t key = Key(i, j);
  // Replacing an existing entry: release its bytes first.
  if (const auto it = entries_.find(key); it != entries_.end()) {
    used_ -= it->second.block.SizeBytes();
    entries_.erase(it);
  }
  // Evict strictly-lower-priority entries until the block fits.
  while (used_ + bytes > capacity_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (victim == entries_.end() ||
          it->second.priority < victim->second.priority) {
        victim = it;
      }
    }
    if (victim == entries_.end() || victim->second.priority >= priority) {
      return false;  // nothing cheaper to evict — reject the insert
    }
    used_ -= victim->second.block.SizeBytes();
    entries_.erase(victim);
  }
  used_ += bytes;
  entries_.emplace(key, Entry{std::move(block), priority});
  return true;
}

void SubBlockBuffer::UpdatePriority(std::uint32_t i, std::uint32_t j,
                                    std::uint64_t priority) {
  if (const auto it = entries_.find(Key(i, j)); it != entries_.end()) {
    it->second.priority = priority;
  }
}

void SubBlockBuffer::Erase(std::uint32_t i, std::uint32_t j) {
  if (const auto it = entries_.find(Key(i, j)); it != entries_.end()) {
    used_ -= it->second.block.SizeBytes();
    entries_.erase(it);
  }
}

void SubBlockBuffer::Clear() {
  entries_.clear();
  used_ = 0;
}

}  // namespace graphsd::core
