#include "core/report.hpp"

#include <cstdio>

#include "util/stats.hpp"

namespace graphsd::core {

std::string ExecutionReport::Summary() const {
  char line[512];
  std::string out;
  std::snprintf(line, sizeof(line),
                "%s/%s on %s: %u iterations in %u rounds, total %s "
                "(io %s, compute %s, scheduler %s)\n",
                engine.c_str(), algorithm.c_str(), dataset.c_str(), iterations,
                rounds, graphsd::FormatSeconds(TotalSeconds()).c_str(),
                graphsd::FormatSeconds(io_seconds).c_str(),
                graphsd::FormatSeconds(compute_seconds).c_str(),
                graphsd::FormatSeconds(scheduler_seconds).c_str());
  out += line;
  if (overlap_io) {
    std::snprintf(line, sizeof(line),
                  "  overlap: pipelined charge %s (serial would be %s)\n",
                  graphsd::FormatSeconds(overlapped_seconds).c_str(),
                  graphsd::FormatSeconds(SerialSeconds()).c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  traffic: %s\n", io.ToString().c_str());
  out += line;
  if (buffer_hits + buffer_misses > 0) {
    std::snprintf(line, sizeof(line),
                  "  buffer: %llu hits / %llu misses, %s saved\n",
                  static_cast<unsigned long long>(buffer_hits),
                  static_cast<unsigned long long>(buffer_misses),
                  graphsd::FormatBytes(buffer_bytes_saved).c_str());
    out += line;
  }
  if (io.retries > 0 || io.checksum_failures > 0 || degraded_rounds > 0) {
    std::snprintf(line, sizeof(line),
                  "  resilience: %llu retries, %llu checksum failures, "
                  "%u degraded rounds\n",
                  static_cast<unsigned long long>(io.retries),
                  static_cast<unsigned long long>(io.checksum_failures),
                  degraded_rounds);
    out += line;
  }
  return out;
}

}  // namespace graphsd::core
