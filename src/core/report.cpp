#include "core/report.hpp"

#include "util/stats.hpp"
#include "util/str_format.hpp"

namespace graphsd::core {

std::string ExecutionReport::Summary() const {
  // StrAppendf sizes each line exactly, so long engine/algorithm/dataset
  // names can never truncate the summary.
  std::string out;
  StrAppendf(&out,
             "%s/%s on %s: %u iterations in %u rounds, total %s "
             "(io %s, compute %s, scheduler %s)\n",
             engine.c_str(), algorithm.c_str(), dataset.c_str(), iterations,
             rounds, graphsd::FormatSeconds(TotalSeconds()).c_str(),
             graphsd::FormatSeconds(io_seconds).c_str(),
             graphsd::FormatSeconds(compute_seconds).c_str(),
             graphsd::FormatSeconds(scheduler_seconds).c_str());
  if (overlap_io) {
    StrAppendf(&out, "  overlap: pipelined charge %s (serial would be %s)\n",
               graphsd::FormatSeconds(overlapped_seconds).c_str(),
               graphsd::FormatSeconds(SerialSeconds()).c_str());
  }
  StrAppendf(&out, "  traffic: %s\n", io.ToString().c_str());
  if (buffer_hits + buffer_misses > 0) {
    StrAppendf(&out, "  buffer: %llu hits / %llu misses, %s saved\n",
               static_cast<unsigned long long>(buffer_hits),
               static_cast<unsigned long long>(buffer_misses),
               graphsd::FormatBytes(buffer_bytes_saved).c_str());
  }
  if (buffer_frame_puts + buffer_frame_hits > 0) {
    StrAppendf(&out,
               "  frame cache: %llu compressed entries inserted, "
               "%llu decode-on-hit serves\n",
               static_cast<unsigned long long>(buffer_frame_puts),
               static_cast<unsigned long long>(buffer_frame_hits));
  }
  if (semi_rounds > 0) {
    StrAppendf(&out,
               "  semi-external: %u rounds, %llu sub-blocks skipped "
               "(%s of edge I/O elided)\n",
               semi_rounds, static_cast<unsigned long long>(blocks_skipped),
               graphsd::FormatBytes(blocks_skipped_bytes).c_str());
  }
  if (codec != "none") {
    StrAppendf(&out,
               "  compression: codec %s, %llu frames decoded, %s on disk -> "
               "%s decoded (decode %s)\n",
               codec.c_str(), static_cast<unsigned long long>(frames_decoded),
               graphsd::FormatBytes(compressed_bytes_read).c_str(),
               graphsd::FormatBytes(decoded_bytes).c_str(),
               graphsd::FormatSeconds(decode_seconds).c_str());
  }
  if (io.retries > 0 || io.checksum_failures > 0 || degraded_rounds > 0) {
    StrAppendf(&out,
               "  resilience: %llu retries, %llu checksum failures, "
               "%u degraded rounds\n",
               static_cast<unsigned long long>(io.retries),
               static_cast<unsigned long long>(io.checksum_failures),
               degraded_rounds);
  }
  if (resumed) {
    StrAppendf(&out, "  lifecycle: resumed from iteration %u\n",
               resume_iteration);
  }
  if (checkpoints_written > 0) {
    StrAppendf(&out, "  lifecycle: %u checkpoints written (%s, %s wall)\n",
               checkpoints_written,
               graphsd::FormatBytes(checkpoint_bytes).c_str(),
               graphsd::FormatSeconds(checkpoint_seconds).c_str());
  }
  if (cancelled) {
    StrAppendf(&out, "  lifecycle: CANCELLED (%s) — partial run up to "
               "iteration %u\n",
               cancel_reason.c_str(), iterations);
  }
  return out;
}

}  // namespace graphsd::core
