#include "core/semi_executor.hpp"

#include <atomic>

#include "core/sharded_apply.hpp"
#include "util/clock.hpp"

namespace graphsd::core {

Status SemiExecutor::RunIteration(const PushProgram& program,
                                  VertexState& state, const Frontier& active,
                                  Frontier& out, RoundStat& stat,
                                  double* update_seconds) {
  const auto& dataset = *ctx_.dataset;
  const auto& manifest = dataset.manifest();
  trace_iteration_ = stat.first_iteration;
  const bool need_weights = program.needs_weights() && manifest.weighted;
  const std::uint32_t p = manifest.p;
  SkipSummaryStore* summaries = ctx_.summaries;

  {
    ScopedWallAccumulator acc(update_seconds);
    active.ForEachActive([&](std::size_t v) {
      program.MakeContribution(state, static_cast<VertexId>(v),
                               ContribSlot::kPrimary);
    });
  }

  // Active source vertices of each interval, as ascending local ids — the
  // per-row input to every skip test below.
  std::vector<std::vector<VertexId>> row_actives(p);
  for (std::uint32_t i = 0; i < p; ++i) {
    const VertexId first = manifest.boundaries[i];
    active.ForEachActiveInRange(first, manifest.boundaries[i + 1],
                                [&](std::size_t v) {
                                  row_actives[i].push_back(
                                      static_cast<VertexId>(v) - first);
                                });
  }

  // Plan the sweep up front so the survivors stream on the prefetch
  // pipeline. Three ways a sub-block is elided before any edge I/O:
  //   1. its whole source row has no active vertices;
  //   2. its recorded summary proves no active source has edges in it;
  //   3. its summary was unknown, one accounted index probe records it
  //      (RecordFromOffsets), and the fresh summary proves the same.
  // Anything else is fetched, applied, and — as a side effect — recorded
  // from its decoded edges, so later rounds skip it without the probe.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan;
  for (std::uint32_t j = 0; j < p; ++j) {
    for (std::uint32_t i = 0; i < p; ++i) {
      if (manifest.EdgesIn(i, j) == 0) continue;
      if (!row_actives[i].empty() && summaries != nullptr &&
          !summaries->Known(i, j) && manifest.has_index) {
        obs::TraceSpan span(ctx_.trace, "index-read", trace_iteration_);
        auto offsets = dataset.LoadIndex(i, j);
        if (offsets.ok()) summaries->RecordFromOffsets(i, j, *offsets);
      }
      if (row_actives[i].empty() ||
          (summaries != nullptr &&
           summaries->CanSkip(i, j, row_actives[i]))) {
        ++stat.blocks_skipped;
        stat.blocks_skipped_bytes +=
            dataset.SubBlockDiskBytes(i, j, need_weights);
        continue;
      }
      plan.emplace_back(i, j);
    }
  }

  std::vector<SubBlockStream::Unit> units;
  units.reserve(plan.size());
  for (const auto& [i, j] : plan) {
    SubBlockStream::Unit unit;
    unit.skip = [buffer = ctx_.buffer, i = i, j = j] {
      return buffer->Contains(i, j);
    };
    // Parallel compute moves frame decode into the fetch closure (loader
    // thread, or inline in sync mode) — except in cache-compressed mode,
    // where the consumer needs the undecoded frame for its buffer offer.
    const bool decode_in_fetch = ctx_.compute_shards > 1 &&
                                 dataset.compressed() && !ctx_.cache_compressed;
    unit.fetch = [&dataset, i = i, j = j, need_weights, decode_in_fetch,
                  trace = ctx_.trace,
                  iteration =
                      trace_iteration_](partition::SubBlockPayload& fetched) {
      {
        obs::TraceSpan span(trace, "edge-read", iteration);
        GRAPHSD_ASSIGN_OR_RETURN(fetched,
                                 dataset.FetchSubBlock(i, j, need_weights));
      }
      if (decode_in_fetch) {
        obs::TraceSpan span(trace, "decode", iteration);
        GRAPHSD_RETURN_IF_ERROR(dataset.DecodeSubBlock(i, j, fetched));
      }
      return Status::Ok();
    };
    units.push_back(std::move(unit));
  }
  SubBlockStream stream(ctx_.prefetch, std::move(units));

  for (const auto& [i, j] : plan) {
    if (ctx_.cancel != nullptr) {
      GRAPHSD_RETURN_IF_ERROR(ctx_.cancel->Check());
    }
    SubBlockStream::Item item = stream.Take();

    // Obtain the decoded block: buffer hit (decoding compressed entries on
    // this thread), fetched payload, or a synchronous reload when the entry
    // was evicted between issue and consume. Mirrors FciuExecutor::Fetch.
    partition::SubBlock local;
    const partition::SubBlock* block = nullptr;
    SubBlockBuffer::Pin pin;
    bool resident = false;
    std::vector<std::uint8_t> frame_copy;
    if (SubBlockBuffer::Pin cached = ctx_.buffer->Get(i, j, need_weights);
        cached) {
      if (cached.compressed()) {
        partition::SubBlockPayload payload;
        payload.frame = cached.frame();
        payload.block.weights = cached->weights;
        payload.block.disk_bytes = cached->disk_bytes;
        cached.Release();
        obs::TraceSpan span(ctx_.trace, "decode", trace_iteration_);
        GRAPHSD_RETURN_IF_ERROR(dataset.DecodeSubBlock(i, j, payload));
        local = std::move(payload.block);
        block = &local;
        resident = true;
      } else {
        block = cached.get();
        pin = std::move(cached);
      }
    } else if (item.fetched) {
      GRAPHSD_RETURN_IF_ERROR(item.status);
      // An empty frame means the fetch closure already decoded (or the
      // dataset is raw) — nothing left for the consumer side.
      if (dataset.compressed() && !item.payload.frame.empty()) {
        if (ctx_.cache_compressed && !item.payload.frame.empty()) {
          frame_copy = item.payload.frame;
        }
        obs::TraceSpan span(ctx_.trace, "decode", trace_iteration_);
        GRAPHSD_RETURN_IF_ERROR(dataset.DecodeSubBlock(i, j, item.payload));
      }
      local = std::move(item.payload.block);
      block = &local;
    } else {
      obs::TraceSpan span(ctx_.trace, "edge-read", trace_iteration_);
      GRAPHSD_ASSIGN_OR_RETURN(local,
                               dataset.LoadSubBlock(i, j, need_weights));
      block = &local;
    }
    if (summaries != nullptr) {
      summaries->RecordFromEdges(i, j, block->edges, manifest.boundaries[i]);
    }

    std::atomic<std::uint64_t> applied{0};
    {
      obs::TraceSpan span(ctx_.trace, "compute", trace_iteration_);
      ScopedWallAccumulator acc(update_seconds);
      ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                      manifest.boundaries[j + 1],
                      [&](const Edge& edge, Weight w) {
                        if (!active.IsActive(edge.src)) return;
                        applied.fetch_add(1, std::memory_order_relaxed);
                        if (program.Apply(state, edge.src, edge.dst, w,
                                          ContribSlot::kPrimary)) {
                          out.Activate(edge.dst);
                        }
                      });
    }

    // Offer the block for future rounds: in semi mode every sub-block is a
    // re-read candidate, scored by the active edges it just served.
    if (!pin && !resident) {
      const std::uint64_t priority = applied.load(std::memory_order_relaxed);
      if (!frame_copy.empty()) {
        const std::uint64_t served = local.SizeBytes();
        partition::SubBlockPayload entry;
        entry.frame = std::move(frame_copy);
        entry.block.weights = std::move(local.weights);
        entry.block.disk_bytes = local.disk_bytes;
        ctx_.buffer->PutFrame(i, j, std::move(entry), served, priority);
      } else {
        ctx_.buffer->Put(i, j, std::move(local), priority);
      }
    }
  }

  stat.model = RoundModel::kSemi;
  stat.iterations_covered = 1;
  return Status::Ok();
}

}  // namespace graphsd::core
