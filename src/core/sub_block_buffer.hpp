// Priority buffer for secondary sub-blocks (paper §4.3).
//
// FCIU loads secondary sub-blocks (i > j) twice per round. This buffer
// caches them under a byte budget; the priority of a cached sub-block is
// the number of active edges it holds, and the lowest-priority entry is
// evicted when space is needed. Priorities are updated after the block is
// processed in the first half of the round, as the paper describes.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "partition/grid_dataset.hpp"

namespace graphsd::obs {
class MetricsRegistry;
}  // namespace graphsd::obs

namespace graphsd::core {

class SubBlockBuffer {
 public:
  /// `capacity_bytes == 0` disables the buffer entirely.
  explicit SubBlockBuffer(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  bool enabled() const noexcept { return capacity_ > 0; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t size_bytes() const noexcept { return used_; }
  std::size_t entry_count() const noexcept { return entries_.size(); }

  /// Cached block (i, j), or nullptr. Bumps the hit/miss counters. With
  /// `require_weights`, an entry whose edges were cached without their
  /// weights (a weightless SCIU decode meeting a weighted FCIU consumer)
  /// counts as a miss, so the caller reloads instead of applying garbage.
  const partition::SubBlock* Get(std::uint32_t i, std::uint32_t j,
                                 bool require_weights = false);

  /// Issue-time residency probe for the prefetch pipeline. Deliberately
  /// bumps no counters: the consumer still calls Get() exactly once per
  /// sub-block, keeping hit/miss accounting identical to the synchronous
  /// path.
  bool Contains(std::uint32_t i, std::uint32_t j) const noexcept {
    return entries_.find(Key(i, j)) != entries_.end();
  }

  /// Inserts block (i,j) with `priority` (active-edge count). The insert is
  /// feasibility-checked first: if the block cannot fit even after evicting
  /// every strictly-lower-priority entry (plus the same-key entry being
  /// replaced), it is rejected with the cache untouched. Otherwise evicts
  /// coldest-first, tie-breaking equal priorities on the smaller (i,j) key
  /// so the victim sequence is deterministic. Returns true if cached.
  bool Put(std::uint32_t i, std::uint32_t j, partition::SubBlock block,
           std::uint64_t priority);

  /// Re-scores an existing entry (no-op when absent).
  void UpdatePriority(std::uint32_t i, std::uint32_t j, std::uint64_t priority);

  /// Removes one entry (no-op when absent).
  void Erase(std::uint32_t i, std::uint32_t j);

  /// Drops everything (between rounds when priorities are stale).
  void Clear();

  /// Visits every cached entry as fn(i, j, block). Used to re-score
  /// priorities after the first half of an FCIU round.
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    for (const auto& [key, entry] : entries_) {
      fn(static_cast<std::uint32_t>(key >> 32),
         static_cast<std::uint32_t>(key & 0xffffffffu), entry.block);
    }
  }

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t bytes_saved() const noexcept { return bytes_saved_; }
  /// On-disk bytes a hit avoided re-reading (frame + weight files for
  /// compressed blocks; equals bytes_saved for raw datasets). The buffer
  /// caches *decoded* blocks, so the two views differ exactly by the
  /// compression savings.
  std::uint64_t disk_bytes_saved() const noexcept { return disk_bytes_saved_; }
  std::uint64_t evictions() const noexcept { return evictions_; }
  std::uint64_t rejected_puts() const noexcept { return rejected_; }

  /// Publishes the current counters as `buffer.*` gauges (snapshot
  /// semantics: safe to call repeatedly, last write wins).
  void PublishMetrics(obs::MetricsRegistry& metrics) const;

 private:
  struct Entry {
    partition::SubBlock block;
    std::uint64_t priority = 0;
  };
  static std::uint64_t Key(std::uint32_t i, std::uint32_t j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_saved_ = 0;
  std::uint64_t disk_bytes_saved_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace graphsd::core
