// Priority buffer for secondary sub-blocks (paper §4.3).
//
// FCIU loads secondary sub-blocks (i > j) twice per round. This buffer
// caches them under a byte budget; the priority of a cached sub-block is
// the number of active edges it holds, and the lowest-priority entry is
// evicted when space is needed. Priorities are updated after the block is
// processed in the first half of the round, as the paper describes.
//
// Entries come in two shapes (DESIGN.md §14):
//   * decoded: `block` holds the edges (and weights when loaded) ready to
//     consume — a hit costs nothing beyond the pointer;
//   * compressed: `frame` holds the undecoded GSDF frame and `block` only
//     the raw weights (they are stored uncompressed on disk). A hit hands
//     the frame back to the consumer, which decodes it on its own thread —
//     decode time lands on the compute side of the overlap accounting, and
//     the cache holds ~the codec ratio more sub-blocks per byte.
// Capacity is charged at each entry's *stored* footprint (frame + block
// bytes); the bytes-saved counters credit hits with the entry's *served*
// bytes (the decoded view a hit avoids re-reading). Every accounting site
// uses the same stored_bytes figure, so `size_bytes()` always equals the
// sum over residents (see AuditUsedBytes).
//
// Thread safety: every method is safe to call from any thread — one
// internal mutex guards the map, the byte budget and all counters, so
// hit/miss/eviction accounting stays exact under concurrent Get/Put
// (DESIGN.md §13). Get() hands out a RAII `Pin` instead of a raw pointer:
// while a pin is live its entry cannot be evicted, replaced or erased, so
// one engine run's working set cannot be invalidated mid-pass by another
// run sharing the buffer (the `graphsd serve` shared buffer tier).
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "partition/grid_dataset.hpp"

namespace graphsd::obs {
class MetricsRegistry;
}  // namespace graphsd::obs

namespace graphsd::core {

class SubBlockBuffer {
 public:
  /// `capacity_bytes == 0` disables the buffer entirely.
  explicit SubBlockBuffer(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  SubBlockBuffer(const SubBlockBuffer&) = delete;
  SubBlockBuffer& operator=(const SubBlockBuffer&) = delete;

  /// Movable handle to a cached block. While live, the entry is pinned:
  /// eviction, replacement and Erase/Clear all skip it, so the pointers
  /// stay valid even when other threads Put into the same buffer.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        Release();
        buffer_ = other.buffer_;
        key_ = other.key_;
        block_ = other.block_;
        frame_ = other.frame_;
        other.buffer_ = nullptr;
        other.block_ = nullptr;
        other.frame_ = nullptr;
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;
    ~Pin() { Release(); }

    const partition::SubBlock* get() const noexcept { return block_; }
    const partition::SubBlock& operator*() const noexcept { return *block_; }
    const partition::SubBlock* operator->() const noexcept { return block_; }
    explicit operator bool() const noexcept { return block_ != nullptr; }

    /// True when the pinned entry stores an undecoded frame: the edges live
    /// in frame() and the block holds only the weights. The consumer copies
    /// the frame out and decodes it on its own thread (decode-on-hit).
    bool compressed() const noexcept {
      return frame_ != nullptr && !frame_->empty();
    }
    /// The entry's undecoded GSDF frame (empty for decoded entries).
    const std::vector<std::uint8_t>& frame() const noexcept { return *frame_; }

    /// Drops the pin early (before scope exit). Safe on an empty pin.
    void Release() noexcept {
      if (buffer_ != nullptr && block_ != nullptr) buffer_->Unpin(key_);
      buffer_ = nullptr;
      block_ = nullptr;
      frame_ = nullptr;
    }

   private:
    friend class SubBlockBuffer;
    Pin(SubBlockBuffer* buffer, std::uint64_t key,
        const partition::SubBlock* block,
        const std::vector<std::uint8_t>* frame)
        : buffer_(buffer), key_(key), block_(block), frame_(frame) {}

    SubBlockBuffer* buffer_ = nullptr;
    std::uint64_t key_ = 0;
    const partition::SubBlock* block_ = nullptr;
    const std::vector<std::uint8_t>* frame_ = nullptr;
  };

  bool enabled() const noexcept { return capacity_ > 0; }
  std::uint64_t capacity_bytes() const noexcept { return capacity_; }
  std::uint64_t size_bytes() const;
  std::size_t entry_count() const;
  /// Number of entries currently held by at least one live Pin.
  std::size_t pinned_count() const;

  /// Recomputes the byte budget from the resident entries under the lock.
  /// Invariant check for tests: must equal size_bytes() at every quiescent
  /// point — a divergence means some accounting site charged stored bytes
  /// it never released (the satellite-3 audit).
  std::uint64_t AuditUsedBytes() const;

  /// Pinned handle to cached block (i, j), or an empty pin. Bumps the
  /// hit/miss counters. With `require_weights`, an entry whose edges were
  /// cached without their weights (a weightless SCIU decode meeting a
  /// weighted FCIU consumer) counts as a miss, so the caller reloads
  /// instead of applying garbage.
  Pin Get(std::uint32_t i, std::uint32_t j, bool require_weights = false);

  /// Issue-time residency probe for the prefetch pipeline. Deliberately
  /// bumps no counters: the consumer still calls Get() exactly once per
  /// sub-block, keeping hit/miss accounting identical to the synchronous
  /// path.
  bool Contains(std::uint32_t i, std::uint32_t j) const;

  /// Inserts decoded block (i,j) with `priority` (active-edge count). The
  /// insert is feasibility-checked first: if the entry cannot fit even
  /// after evicting every strictly-lower-priority unpinned entry (plus the
  /// same-key entry being replaced), it is rejected with the cache
  /// untouched. Otherwise evicts coldest-first, tie-breaking equal
  /// priorities on the smaller (i,j) key so the victim sequence is
  /// deterministic. Pinned entries are never evicted; replacing a same-key
  /// entry that is pinned is rejected (another caller still holds its
  /// pointer). Returns true if cached.
  bool Put(std::uint32_t i, std::uint32_t j, partition::SubBlock block,
           std::uint64_t priority);

  /// Inserts a compressed entry: the undecoded frame plus the raw weights
  /// already in `payload.block` (edges stay in the frame). Capacity is
  /// charged at the stored size (frame + weights); `served_bytes` is the
  /// decoded-view size credited to bytes_saved on each hit. Falls back to
  /// a decoded Put when the payload carries no frame (raw datasets). Same
  /// feasibility and eviction rules as Put.
  bool PutFrame(std::uint32_t i, std::uint32_t j,
                partition::SubBlockPayload payload, std::uint64_t served_bytes,
                std::uint64_t priority);

  /// Re-scores an existing entry (no-op when absent).
  void UpdatePriority(std::uint32_t i, std::uint32_t j, std::uint64_t priority);

  /// Removes one entry (no-op when absent or pinned).
  void Erase(std::uint32_t i, std::uint32_t j);

  /// Drops every unpinned entry (between rounds when priorities are stale).
  void Clear();

  /// Visits every cached entry as fn(i, j, block) under the buffer lock.
  /// Compressed entries pass their weights-only block (edges undecoded).
  /// `fn` must not call back into the buffer (single non-recursive mutex).
  template <typename Fn>
  void ForEachEntry(Fn&& fn) const {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [key, entry] : entries_) {
      fn(static_cast<std::uint32_t>(key >> 32),
         static_cast<std::uint32_t>(key & 0xffffffffu), entry.block);
    }
  }

  /// Atomically re-scores every entry as priority = fn(i, j, block). One
  /// lock acquisition for the whole sweep — the FCIU round's post-first-half
  /// rescoring path (ForEachEntry + per-entry UpdatePriority would deadlock
  /// on the non-recursive mutex and interleave with concurrent Puts).
  /// Compressed entries keep their existing priority: their edges are
  /// undecoded, so an edge-inspecting callback has nothing to score.
  template <typename Fn>
  void Rescore(Fn&& fn) {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [key, entry] : entries_) {
      if (!entry.frame.empty()) continue;
      entry.priority = fn(static_cast<std::uint32_t>(key >> 32),
                          static_cast<std::uint32_t>(key & 0xffffffffu),
                          entry.block);
    }
  }

  /// Exact counter snapshot, taken under one lock acquisition so the
  /// fields are mutually consistent (per-run delta reporting in the
  /// engine needs an atomic view when the buffer is shared).
  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bytes_saved = 0;
    std::uint64_t disk_bytes_saved = 0;
    std::uint64_t evictions = 0;
    std::uint64_t rejected_puts = 0;
    std::uint64_t pinned_rejected_puts = 0;
    // Compressed-entry traffic (subsets of hits / accepted puts): hits
    // served as an undecoded frame, and frame entries inserted.
    std::uint64_t frame_hits = 0;
    std::uint64_t frame_puts = 0;
  };
  Counters counters() const;

  std::uint64_t hits() const { return counters().hits; }
  std::uint64_t misses() const { return counters().misses; }
  std::uint64_t bytes_saved() const { return counters().bytes_saved; }
  /// On-disk bytes a hit avoided re-reading (frame + weight files for
  /// compressed blocks; equals bytes_saved for raw datasets). Decoded
  /// entries differ from bytes_saved exactly by the compression savings;
  /// frame entries serve the on-disk shape directly.
  std::uint64_t disk_bytes_saved() const { return counters().disk_bytes_saved; }
  std::uint64_t evictions() const { return counters().evictions; }
  std::uint64_t rejected_puts() const { return counters().rejected_puts; }
  /// Puts refused only because the same-key entry was pinned (a subset of
  /// rejected_puts) — the shared-buffer contention diagnostic.
  std::uint64_t pinned_rejected_puts() const {
    return counters().pinned_rejected_puts;
  }
  std::uint64_t frame_hits() const { return counters().frame_hits; }
  std::uint64_t frame_puts() const { return counters().frame_puts; }

  /// Publishes the current counters as `buffer.*` gauges (snapshot
  /// semantics: safe to call repeatedly, last write wins).
  void PublishMetrics(obs::MetricsRegistry& metrics) const;

 private:
  struct Entry {
    partition::SubBlock block;        // decoded; weights-only when framed
    std::vector<std::uint8_t> frame;  // non-empty = compressed entry
    std::uint64_t stored_bytes = 0;   // capacity charge (frame + block)
    std::uint64_t served_bytes = 0;   // decoded-view bytes one hit saves
    std::uint64_t priority = 0;
    std::uint32_t pins = 0;
  };
  static std::uint64_t Key(std::uint32_t i, std::uint32_t j) noexcept {
    return (static_cast<std::uint64_t>(i) << 32) | j;
  }

  bool PutEntry(std::uint64_t key, Entry entry);
  void Unpin(std::uint64_t key);

  mutable std::mutex mutex_;
  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t bytes_saved_ = 0;
  std::uint64_t disk_bytes_saved_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t pinned_rejected_ = 0;
  std::uint64_t frame_hits_ = 0;
  std::uint64_t frame_puts_ = 0;
  std::unordered_map<std::uint64_t, Entry> entries_;
};

}  // namespace graphsd::core
