// Per-vertex state owned by an engine run.
//
// Layout: `num_program_arrays` program-defined arrays (e.g. PR-Delta keeps
// rank + residual), plus engine-managed contribution arrays (the BSP
// snapshots edges read from) and, for gather programs, two accumulator
// arrays used by FCIU's two-iterations-per-load round (see
// fciu_executor.hpp for the protocol).
//
// Persist/Load write the program arrays through the accounted Device; this
// is the |V|·N vertex-value I/O term of the paper's cost formulas.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/slot.hpp"
#include "graph/types.hpp"
#include "io/device.hpp"

namespace graphsd::core {

/// Which contribution snapshot an edge application reads.
/// kPrimary carries iteration t's sources; kSecondary carries the sealed
/// post-t values used for cross-iteration (t+1) computation.
enum class ContribSlot : std::uint8_t { kPrimary = 0, kSecondary = 1 };

/// Gather accumulators: kA collects iteration t, kB collects iteration t+1.
enum class AccumSlot : std::uint8_t { kA = 0, kB = 1 };

class VertexState {
 public:
  /// `gather` additionally allocates the two accumulator arrays.
  /// `contrib_width` sizes the contribution arrays at num_vertices * width
  /// slots (multi-source batched programs keep one lane per source; see
  /// Program::contrib_width()).
  VertexState(VertexId num_vertices, std::uint32_t num_program_arrays,
              bool gather, std::uint32_t contrib_width = 1);

  std::uint32_t contrib_width() const noexcept { return contrib_width_; }

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::uint32_t num_program_arrays() const noexcept {
    return static_cast<std::uint32_t>(program_arrays_.size());
  }

  /// Program-defined array `idx`.
  std::span<Slot> array(std::uint32_t idx) noexcept {
    return program_arrays_[idx];
  }
  std::span<const Slot> array(std::uint32_t idx) const noexcept {
    return program_arrays_[idx];
  }

  std::span<Slot> contrib(ContribSlot slot) noexcept {
    return contrib_[static_cast<std::uint8_t>(slot)];
  }
  std::span<const Slot> contrib(ContribSlot slot) const noexcept {
    return contrib_[static_cast<std::uint8_t>(slot)];
  }

  std::span<Slot> accum(AccumSlot slot) noexcept {
    return accum_[static_cast<std::uint8_t>(slot)];
  }
  std::span<const Slot> accum(AccumSlot slot) const noexcept {
    return accum_[static_cast<std::uint8_t>(slot)];
  }

  /// Bytes of one on-disk vertex record (N in the paper's Table 2).
  std::uint64_t BytesPerVertex() const noexcept {
    return num_program_arrays() * sizeof(Slot);
  }

  /// Writes the program arrays to `path` (accounted sequential write).
  Status Persist(io::Device& device, const std::string& path) const;

  /// Reads the program arrays back from `path` (accounted sequential read).
  Status Load(io::Device& device, const std::string& path);

 private:
  VertexId num_vertices_;
  std::uint32_t contrib_width_ = 1;
  std::vector<std::vector<Slot>> program_arrays_;
  std::vector<Slot> contrib_storage_[2];
  std::span<Slot> contrib_[2];
  std::vector<Slot> accum_storage_[2];
  std::span<Slot> accum_[2];
};

}  // namespace graphsd::core
