#include "core/fciu_executor.hpp"

#include "core/sharded_apply.hpp"
#include "util/clock.hpp"

namespace graphsd::core {

FciuExecutor::SubBlockStream::Unit FciuExecutor::FetchUnit(
    std::uint32_t i, std::uint32_t j, bool need_weights) const {
  const partition::GridDataset* dataset = ctx_.dataset;
  SubBlockBuffer* buffer = ctx_.buffer;
  // With parallel compute enabled, frame decode moves into the fetch
  // closure: it then runs on the prefetch loader thread (or inline in sync
  // mode), off the consumer's critical path. Cache-compressed mode keeps
  // the consumer-side decode — the consumer needs the undecoded frame for
  // its buffer offer.
  const bool decode_in_fetch =
      ctx_.compute_shards > 1 && dataset->compressed() && !ctx_.cache_compressed;
  SubBlockStream::Unit unit;
  unit.skip = [buffer, i, j] { return buffer->Contains(i, j); };
  unit.fetch = [dataset, i, j, need_weights, decode_in_fetch,
                trace = ctx_.trace,
                iteration = trace_iteration_](partition::SubBlockPayload& out) {
    {
      obs::TraceSpan span(trace, "edge-read", iteration);
      GRAPHSD_ASSIGN_OR_RETURN(out, dataset->FetchSubBlock(i, j, need_weights));
    }
    if (decode_in_fetch) {
      obs::TraceSpan span(trace, "decode", iteration);
      GRAPHSD_RETURN_IF_ERROR(dataset->DecodeSubBlock(i, j, out));
    }
    return Status::Ok();
  };
  return unit;
}

FciuExecutor::SubBlockStream FciuExecutor::MakeStream(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& plan,
    bool need_weights) const {
  std::vector<SubBlockStream::Unit> units;
  units.reserve(plan.size());
  for (const auto& [i, j] : plan) units.push_back(FetchUnit(i, j, need_weights));
  return SubBlockStream(ctx_.prefetch, std::move(units));
}

Result<FciuExecutor::FetchedBlock> FciuExecutor::Fetch(
    SubBlockStream& stream, std::uint32_t i, std::uint32_t j,
    bool need_weights, partition::SubBlock& local) {
  // Cooperative-cancellation poll point: every sub-block fetch (both round
  // halves, push and gather) funnels through here, so a tripped token stops
  // the round within one sub-block's worth of work. The stream destructor
  // drains any tickets already in flight.
  if (ctx_.cancel != nullptr) {
    GRAPHSD_RETURN_IF_ERROR(ctx_.cancel->Check());
  }
  SubBlockStream::Item item = stream.Take();
  if (SubBlockBuffer::Pin cached = ctx_.buffer->Get(i, j, need_weights);
      cached) {
    // With a private per-run buffer, blocks only ever enter it when they
    // themselves are consumed, so a block absent at issue time cannot be
    // resident at consume time — a fetched payload never shadows a cached
    // copy (no double read). Under a shared buffer another run may have
    // inserted the block between issue and consume; the fetched payload is
    // then simply dropped and the cached copy (pinned, so stable) wins.
    if (cached.compressed()) {
      // Compressed entry: copy the frame (and raw weights) out of the
      // pinned entry, then decode on this thread — decode-on-hit lands on
      // the compute floor exactly like a fresh fetch's decode would.
      partition::SubBlockPayload payload;
      payload.frame = cached.frame();
      payload.block.weights = cached->weights;
      payload.block.disk_bytes = cached->disk_bytes;
      cached.Release();
      obs::TraceSpan span(ctx_.trace, "decode", trace_iteration_);
      GRAPHSD_RETURN_IF_ERROR(ctx_.dataset->DecodeSubBlock(i, j, payload));
      local = std::move(payload.block);
      RecordSummary(i, j, local);
      FetchedBlock fetched;
      fetched.block = &local;
      fetched.resident = true;
      return fetched;
    }
    RecordSummary(i, j, *cached);
    FetchedBlock fetched;
    fetched.block = cached.get();
    fetched.pin = std::move(cached);
    return fetched;
  }
  if (item.fetched) {
    GRAPHSD_RETURN_IF_ERROR(item.status);
    FetchedBlock fetched;
    // Decode on the consuming thread — unless the fetch closure already
    // decoded it (parallel compute offloads decode to the loader stage; the
    // frame is then gone).
    if (ctx_.dataset->compressed() && !item.payload.frame.empty()) {
      // Secondary sub-blocks may be offered back as undecoded frames
      // (cache-compressed mode); keep a copy before decode releases it.
      if (ctx_.cache_compressed && i > j && !item.payload.frame.empty()) {
        fetched.frame_copy = item.payload.frame;
      }
      obs::TraceSpan span(ctx_.trace, "decode", trace_iteration_);
      GRAPHSD_RETURN_IF_ERROR(ctx_.dataset->DecodeSubBlock(i, j, item.payload));
    }
    local = std::move(item.payload.block);
    RecordSummary(i, j, local);
    fetched.block = &local;
    return fetched;
  }
  // Resident at issue time but evicted before consumption: fall back to a
  // synchronous load, exactly what the synchronous path would have done.
  obs::TraceSpan span(ctx_.trace, "edge-read", trace_iteration_);
  GRAPHSD_ASSIGN_OR_RETURN(local,
                           ctx_.dataset->LoadSubBlock(i, j, need_weights));
  RecordSummary(i, j, local);
  return FetchedBlock{&local, SubBlockBuffer::Pin()};
}

void FciuExecutor::RecordSummary(std::uint32_t i, std::uint32_t j,
                                 const partition::SubBlock& block) const {
  if (ctx_.summaries == nullptr) return;
  ctx_.summaries->RecordFromEdges(i, j, block.edges,
                                  ctx_.dataset->manifest().boundaries[i]);
}

Status FciuExecutor::RunPushRound(const PushProgram& program,
                                  VertexState& state, const Frontier& active,
                                  Frontier& out, Frontier& out_ni,
                                  bool two_iterations, RoundStat& stat,
                                  double* update_seconds) {
  const auto& dataset = *ctx_.dataset;
  const auto& manifest = dataset.manifest();
  trace_iteration_ = stat.first_iteration;
  const bool need_weights = program.needs_weights() && manifest.weighted;
  const std::uint32_t p = manifest.p;

  // Iteration-t contributions of the active frontier.
  {
    ScopedWallAccumulator acc(update_seconds);
    active.ForEachActive([&](std::size_t v) {
      program.MakeContribution(state, static_cast<VertexId>(v),
                               ContribSlot::kPrimary);
    });
  }

  // --- first half: iteration t over all sub-blocks, column-major ----------
  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan;
  for (std::uint32_t j = 0; j < p; ++j) {
    for (std::uint32_t i = 0; i < p; ++i) {
      if (manifest.EdgesIn(i, j) != 0) plan.emplace_back(i, j);
    }
  }
  SubBlockStream stream = MakeStream(plan, need_weights);
  for (std::uint32_t j = 0; j < p; ++j) {
    partition::SubBlock diagonal;  // (j, j) held until the column seals
    bool have_diagonal = false;

    for (std::uint32_t i = 0; i < p; ++i) {
      if (manifest.EdgesIn(i, j) == 0) continue;
      partition::SubBlock local;
      GRAPHSD_ASSIGN_OR_RETURN(FetchedBlock fetched,
                               Fetch(stream, i, j, need_weights, local));
      const partition::SubBlock* block = fetched.block;
      const bool from_buffer = fetched.from_buffer();

      // UserFunction pass (iteration t), guarded by the active frontier.
      std::atomic<std::uint64_t> provisional_priority{0};
      {
        obs::TraceSpan span(ctx_.trace, "compute", trace_iteration_);
        ScopedWallAccumulator acc(update_seconds);
        ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                        manifest.boundaries[j + 1],
                        [&](const Edge& edge, Weight w) {
                          if (!active.IsActive(edge.src)) return;
                          provisional_priority.fetch_add(
                              1, std::memory_order_relaxed);
                          if (program.Apply(state, edge.src, edge.dst, w,
                                            ContribSlot::kPrimary)) {
                            out.Activate(edge.dst);
                          }
                        });
      }

      if (two_iterations && i < j) {
        // CrossIterUpdate: interval i sealed when column i completed, so
        // these edges produce iteration t+1 values from the same copy.
        obs::TraceSpan span(ctx_.trace, "cross-iter-update", trace_iteration_);
        ScopedWallAccumulator acc(update_seconds);
        ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                        manifest.boundaries[j + 1],
                        [&](const Edge& edge, Weight w) {
                          if (!out.IsActive(edge.src)) return;
                          if (program.Apply(state, edge.src, edge.dst, w,
                                            ContribSlot::kSecondary)) {
                            out_ni.Activate(edge.dst);
                          }
                        });
      }

      if (i == j && two_iterations) {
        if (from_buffer) {
          diagonal = *block;  // copy; buffer retains its entry
        } else {
          diagonal = std::move(local);
        }
        have_diagonal = true;
      } else if (i > j && !from_buffer && !fetched.resident) {
        // Secondary sub-block: offer it to the priority buffer for the
        // second half of the round (and future rounds). In cache-compressed
        // mode the undecoded frame is offered instead of the decoded edges
        // — the same budget then holds ~codec-ratio more sub-blocks.
        const std::uint64_t priority =
            provisional_priority.load(std::memory_order_relaxed);
        if (!fetched.frame_copy.empty()) {
          const std::uint64_t served = local.SizeBytes();
          partition::SubBlockPayload entry;
          entry.frame = std::move(fetched.frame_copy);
          entry.block.weights = std::move(local.weights);
          entry.block.disk_bytes = local.disk_bytes;
          ctx_.buffer->PutFrame(i, j, std::move(entry), served, priority);
        } else {
          ctx_.buffer->Put(i, j, std::move(local), priority);
        }
      }
    }

    // Column j complete: interval j sealed for iteration t.
    if (two_iterations) {
      obs::TraceSpan span(ctx_.trace, "cross-iter-update", trace_iteration_);
      {
        ScopedWallAccumulator acc(update_seconds);
        out.ForEachActiveInRange(
            manifest.boundaries[j], manifest.boundaries[j + 1],
            [&](std::size_t v) {
              program.MakeContribution(state, static_cast<VertexId>(v),
                                       ContribSlot::kSecondary);
            });
      }
      if (have_diagonal) {
        ScopedWallAccumulator acc(update_seconds);
        ShardedDstApply(ctx_, diagonal, need_weights, manifest.boundaries[j],
                        manifest.boundaries[j + 1],
                        [&](const Edge& edge, Weight w) {
                          if (!out.IsActive(edge.src)) return;
                          if (program.Apply(state, edge.src, edge.dst, w,
                                            ContribSlot::kSecondary)) {
                            out_ni.Activate(edge.dst);
                          }
                        });
      }
    }
  }

  if (!two_iterations) {
    stat.model = RoundModel::kPlainFull;
    stat.iterations_covered = 1;
    return Status::Ok();
  }

  // Re-score buffer priorities now that `out` (the t+1 frontier) is final:
  // a cached secondary block is worth keeping in proportion to the edges it
  // will serve in the second half. One atomic sweep under the buffer lock.
  ctx_.buffer->Rescore([&](std::uint32_t, std::uint32_t,
                           const partition::SubBlock& block) {
    std::uint64_t priority = 0;
    for (const Edge& edge : block.edges) {
      if (out.IsActive(edge.src)) ++priority;
    }
    return priority;
  });

  // --- second half: iteration t+1 over the secondary sub-blocks (i > j) ---
  if (!out.Empty()) {
    // `out` is final, so the second-half sweep (and its row skips) is fully
    // known up front and can stream ahead of the applies.
    plan.clear();
    for (std::uint32_t i = 1; i < p; ++i) {
      if (out.CountInRange(manifest.boundaries[i],
                           manifest.boundaries[i + 1]) == 0) {
        continue;
      }
      for (std::uint32_t j = 0; j < i; ++j) {
        if (manifest.EdgesIn(i, j) != 0) plan.emplace_back(i, j);
      }
    }
    SubBlockStream second(MakeStream(plan, need_weights));
    for (std::uint32_t i = 1; i < p; ++i) {
      if (out.CountInRange(manifest.boundaries[i], manifest.boundaries[i + 1]) ==
          0) {
        continue;  // no sealed sources in this row — nothing to push
      }
      for (std::uint32_t j = 0; j < i; ++j) {
        if (manifest.EdgesIn(i, j) == 0) continue;
        partition::SubBlock local;
        GRAPHSD_ASSIGN_OR_RETURN(FetchedBlock fetched,
                                 Fetch(second, i, j, need_weights, local));
        const partition::SubBlock* block = fetched.block;
        obs::TraceSpan span(ctx_.trace, "cross-iter-update", trace_iteration_);
        ScopedWallAccumulator acc(update_seconds);
        ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                        manifest.boundaries[j + 1],
                        [&](const Edge& edge, Weight w) {
                          if (!out.IsActive(edge.src)) return;
                          if (program.Apply(state, edge.src, edge.dst, w,
                                            ContribSlot::kSecondary)) {
                            out_ni.Activate(edge.dst);
                          }
                        });
      }
    }
  }

  stat.model = RoundModel::kFciu;
  // The round only spans two BSP iterations when iteration t actually
  // produced a t+1 frontier; with `out` empty the second half was vacuous
  // and the round degenerates to a single iteration.
  stat.iterations_covered = out.Empty() ? 1 : 2;
  return Status::Ok();
}

Status FciuExecutor::RunGatherRound(const GatherProgram& program,
                                    VertexState& state, bool two_iterations,
                                    RoundStat& stat, double* update_seconds) {
  const auto& dataset = *ctx_.dataset;
  const auto& manifest = dataset.manifest();
  trace_iteration_ = stat.first_iteration;
  const bool need_weights = program.needs_weights() && manifest.weighted;
  const std::uint32_t p = manifest.p;
  const VertexId n = manifest.num_vertices;

  {
    ScopedWallAccumulator acc(update_seconds);
    for (VertexId v = 0; v < n; ++v) {
      program.MakeContribution(state, v, ContribSlot::kPrimary);
    }
    program.ResetAccum(state, AccumSlot::kA);
    if (two_iterations) program.ResetAccum(state, AccumSlot::kB);
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>> plan;
  for (std::uint32_t j = 0; j < p; ++j) {
    for (std::uint32_t i = 0; i < p; ++i) {
      if (manifest.EdgesIn(i, j) != 0) plan.emplace_back(i, j);
    }
  }
  SubBlockStream stream = MakeStream(plan, need_weights);
  for (std::uint32_t j = 0; j < p; ++j) {
    partition::SubBlock diagonal;
    bool have_diagonal = false;

    for (std::uint32_t i = 0; i < p; ++i) {
      if (manifest.EdgesIn(i, j) == 0) continue;
      partition::SubBlock local;
      GRAPHSD_ASSIGN_OR_RETURN(FetchedBlock fetched,
                               Fetch(stream, i, j, need_weights, local));
      const partition::SubBlock* block = fetched.block;
      const bool from_buffer = fetched.from_buffer();

      {
        obs::TraceSpan span(ctx_.trace, "compute", trace_iteration_);
        ScopedWallAccumulator acc(update_seconds);
        ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                        manifest.boundaries[j + 1],
                        [&](const Edge& edge, Weight w) {
                          program.Accumulate(state, edge.src, edge.dst, w,
                                             ContribSlot::kPrimary,
                                             AccumSlot::kA);
                        });
        if (two_iterations && i < j) {
          ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                          manifest.boundaries[j + 1],
                          [&](const Edge& edge, Weight w) {
                            program.Accumulate(state, edge.src, edge.dst, w,
                                               ContribSlot::kSecondary,
                                               AccumSlot::kB);
                          });
        }
      }

      if (i == j && two_iterations) {
        if (from_buffer) {
          diagonal = *block;
        } else {
          diagonal = std::move(local);
        }
        have_diagonal = true;
      } else if (i > j && !from_buffer && !fetched.resident) {
        // All edges are live in gather mode: priority = edge count.
        const std::uint64_t priority = local.edges.size();
        if (!fetched.frame_copy.empty()) {
          const std::uint64_t served = local.SizeBytes();
          partition::SubBlockPayload entry;
          entry.frame = std::move(fetched.frame_copy);
          entry.block.weights = std::move(local.weights);
          entry.block.disk_bytes = local.disk_bytes;
          ctx_.buffer->PutFrame(i, j, std::move(entry), served, priority);
        } else {
          ctx_.buffer->Put(i, j, std::move(local), priority);
        }
      }
    }

    {
      ScopedWallAccumulator acc(update_seconds);
      program.Finalize(state, manifest.boundaries[j], manifest.boundaries[j + 1],
                       AccumSlot::kA);
      if (two_iterations) {
        for (VertexId v = manifest.boundaries[j]; v < manifest.boundaries[j + 1];
             ++v) {
          program.MakeContribution(state, v, ContribSlot::kSecondary);
        }
        if (have_diagonal) {
          ShardedDstApply(ctx_, diagonal, need_weights, manifest.boundaries[j],
                          manifest.boundaries[j + 1],
                          [&](const Edge& edge, Weight w) {
                            program.Accumulate(state, edge.src, edge.dst, w,
                                               ContribSlot::kSecondary,
                                               AccumSlot::kB);
                          });
        }
      }
    }
  }

  if (!two_iterations) {
    stat.model = RoundModel::kPlainFull;
    stat.iterations_covered = 1;
    return Status::Ok();
  }

  plan.clear();
  for (std::uint32_t i = 1; i < p; ++i) {
    for (std::uint32_t j = 0; j < i; ++j) {
      if (manifest.EdgesIn(i, j) != 0) plan.emplace_back(i, j);
    }
  }
  SubBlockStream second(MakeStream(plan, need_weights));
  for (std::uint32_t i = 1; i < p; ++i) {
    for (std::uint32_t j = 0; j < i; ++j) {
      if (manifest.EdgesIn(i, j) == 0) continue;
      partition::SubBlock local;
      GRAPHSD_ASSIGN_OR_RETURN(FetchedBlock fetched,
                               Fetch(second, i, j, need_weights, local));
      const partition::SubBlock* block = fetched.block;
      obs::TraceSpan span(ctx_.trace, "cross-iter-update", trace_iteration_);
      ScopedWallAccumulator acc(update_seconds);
      ShardedDstApply(ctx_, *block, need_weights, manifest.boundaries[j],
                      manifest.boundaries[j + 1],
                      [&](const Edge& edge, Weight w) {
                        program.Accumulate(state, edge.src, edge.dst, w,
                                           ContribSlot::kSecondary,
                                           AccumSlot::kB);
                      });
    }
  }
  {
    ScopedWallAccumulator acc(update_seconds);
    program.Finalize(state, 0, n, AccumSlot::kB);
  }

  stat.model = RoundModel::kFciu;
  stat.iterations_covered = 2;
  return Status::Ok();
}

}  // namespace graphsd::core
