// Execution reports: the measurement record every engine returns.
// Figures 5–7 and 9–12 of the paper are produced from these fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/io_stats.hpp"

namespace graphsd::core {

/// Which update model executed a round.
enum class RoundModel : char {
  kSciu = 'S',       // selective cross-iteration update (1 iteration)
  kFciu = 'F',       // full cross-iteration update (2 iterations)
  kPlainFull = 'P',  // full I/O, no cross-iteration (1 iteration)
  kSemi = 'M',       // semi-external: RAM state + skip-summary streaming
  kSkipped = '-',    // empty-frontier iteration consumed without I/O
};

/// Per-round measurements (Figure 10's per-iteration series).
struct RoundStat {
  std::uint32_t first_iteration = 0;  // BSP iteration index the round starts
  std::uint32_t iterations_covered = 1;
  RoundModel model = RoundModel::kPlainFull;
  std::uint64_t active_vertices = 0;
  std::uint64_t active_edges = 0;      // scheduler estimate
  double io_seconds = 0;               // modeled
  double compute_seconds = 0;          // measured wall
  // Pipelined charge of the round: max(compute, io) when the prefetch
  // pipeline overlapped the two, compute + io otherwise.
  double overlapped_seconds = 0;
  double scheduler_seconds = 0;        // benefit-evaluation overhead
  double cost_on_demand = 0;           // scheduler estimate C_r
  double cost_full = 0;                // scheduler estimate C_s
  double cost_semi = 0;                // scheduler estimate C_m (0 = not costed)
  // Semi-external selective streaming: sub-blocks proven source-inactive by
  // their skip summary and elided before any edge I/O, and the on-disk
  // bytes those elisions avoided.
  std::uint64_t blocks_skipped = 0;
  std::uint64_t blocks_skipped_bytes = 0;
  // The cost-model inputs behind C_r, recorded so run reports can replay
  // the schedule decision: bytes the on-demand estimate would read
  // sequentially (S_seq) vs randomly (S_ran), and the request count.
  std::uint64_t seq_bytes = 0;         // S_seq
  std::uint64_t rand_bytes = 0;        // S_ran
  std::uint64_t random_requests = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
};

struct ExecutionReport {
  std::string engine;
  std::string algorithm;
  std::string dataset;

  std::uint32_t iterations = 0;  // logical BSP iterations executed
  std::uint32_t rounds = 0;      // loading rounds

  double compute_seconds = 0;    // measured wall (total)
  double update_seconds = 0;     // measured wall inside edge/vertex updates
  double io_seconds = 0;         // modeled I/O time
  double scheduler_seconds = 0;  // total benefit-evaluation overhead (Fig 11)

  io::IoStatsSnapshot io;        // traffic (Fig 7)

  std::uint64_t buffer_hits = 0;    // sub-blocks served from the buffer
  std::uint64_t buffer_misses = 0;  // sub-blocks (re)loaded from disk
  std::uint64_t buffer_bytes_saved = 0;
  // On-disk bytes buffer hits avoided re-reading (differs from
  // buffer_bytes_saved exactly by the compression ratio of cached frames).
  std::uint64_t buffer_disk_bytes_saved = 0;
  // Compressed-frame caching (DESIGN.md §14): hits served as an undecoded
  // frame (decoded on the consumer's thread) and frame entries inserted.
  std::uint64_t buffer_frame_hits = 0;
  std::uint64_t buffer_frame_puts = 0;

  // Semi-external rounds (DESIGN.md §14): totals of the per-round skip
  // counters — sub-blocks elided by their active-source summary before any
  // edge I/O, and the on-disk bytes those elisions avoided.
  std::uint32_t semi_rounds = 0;
  std::uint64_t blocks_skipped = 0;
  std::uint64_t blocks_skipped_bytes = 0;

  // Edge-payload compression (codec negotiated from the dataset manifest;
  // "none" = raw layout). The counters are this run's decode-side deltas:
  // frames decoded on the compute side, on-disk frame bytes in, raw edge
  // bytes out, and the wall time decode cost (already inside
  // compute_seconds — decode runs on the consuming thread).
  std::string codec = "none";
  std::uint64_t frames_decoded = 0;
  std::uint64_t compressed_bytes_read = 0;
  std::uint64_t decoded_bytes = 0;
  double decode_seconds = 0;

  // Rounds that fell back from the on-demand to the full-streaming model
  // after an index read failed (missing file or checksum mismatch).
  std::uint32_t degraded_rounds = 0;

  // Overlap-aware accounting: true when the run executed with the prefetch
  // pipeline and charges each round max(compute, io) instead of the sum.
  // Byte counts and results are identical either way — only the time
  // charging differs.
  bool overlap_io = false;
  double overlapped_seconds = 0;  // sum of per-round pipelined charges

  // Destination-range compute shards the run executed with
  // (EngineOptions::compute_threads resolved against the pool size).
  // Results are bit-identical at any value.
  std::uint64_t compute_shards = 1;

  // Wall time the sharded applies lost to executing more shards than the
  // machine has cores: Σ over parallel passes of (measured elapsed −
  // longest shard task). `compute_seconds − apply_serialization_seconds`
  // is therefore the compute wall a machine with >= compute_shards cores
  // would see; ~0 when the shards genuinely ran concurrently and exactly 0
  // for serial runs. Covers this execution only (not restored on resume).
  double apply_serialization_seconds = 0;

  // --- Run lifecycle (DESIGN.md §12) -------------------------------------
  // A cancelled run (Ctrl-C, deadline, external token) still returns a
  // report: partial results up to the last committed iteration boundary.
  bool cancelled = false;
  std::string cancel_reason;
  // Resumed from a checkpoint at `resume_iteration`; cumulative fields
  // (iterations, rounds, seconds, io) cover the whole logical run, while
  // per_round restarts at the resume point.
  bool resumed = false;
  std::uint32_t resume_iteration = 0;
  // Checkpoint overhead (wall time; checkpoint I/O bypasses the modeled
  // device on purpose, so it appears here and nowhere in `io`).
  std::uint32_t checkpoints_written = 0;
  std::uint64_t checkpoint_bytes = 0;
  double checkpoint_seconds = 0;

  std::vector<RoundStat> per_round;

  /// The serial charge: modeled I/O + measured compute, each paid in full.
  double SerialSeconds() const noexcept { return compute_seconds + io_seconds; }

  /// The headline number: per-round max(compute, io) under overlap-aware
  /// accounting, the serial sum otherwise.
  double TotalSeconds() const noexcept {
    return overlap_io ? overlapped_seconds : SerialSeconds();
  }

  /// "Other" time of the Figure 6 breakdown.
  double OtherSeconds() const noexcept {
    const double other = compute_seconds - update_seconds;
    return other > 0 ? other : 0;
  }

  /// Multi-line human-readable summary.
  std::string Summary() const;
};

}  // namespace graphsd::core
