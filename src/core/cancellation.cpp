#include "core/cancellation.hpp"

#include <csignal>
#include <cstdlib>

#include "util/status.hpp"

namespace graphsd::core {
namespace {

// Signal handlers can only touch lock-free globals, so the live scope's
// token is published through a plain atomic pointer.
std::atomic<CancellationToken*> g_signal_token{nullptr};

struct sigaction g_prev_sigint;
struct sigaction g_prev_sigterm;

void HandleSignal(int signum) {
  CancellationToken* token = g_signal_token.load(std::memory_order_acquire);
  if (token == nullptr) return;
  if (token->cancelled()) {
    // Second Ctrl-C: the user has waited long enough. 128+signum matches
    // shell convention for death-by-signal.
    std::_Exit(128 + signum);
  }
  token->Cancel(signum == SIGINT ? "interrupted (SIGINT)"
                                 : "terminated (SIGTERM)");
}

}  // namespace

SignalCancellationScope::SignalCancellationScope(CancellationToken* token) {
  CancellationToken* expected = nullptr;
  GRAPHSD_CHECK_MSG(
      g_signal_token.compare_exchange_strong(expected, token),
      "only one SignalCancellationScope may be live per process");
  struct sigaction action = {};
  action.sa_handler = &HandleSignal;
  sigemptyset(&action.sa_mask);
  // No SA_RESTART: blocking syscalls must return EINTR so in-flight I/O
  // reaches a poll point promptly; io::File retries EINTR transparently.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, &g_prev_sigint);
  sigaction(SIGTERM, &action, &g_prev_sigterm);
}

SignalCancellationScope::~SignalCancellationScope() {
  sigaction(SIGINT, &g_prev_sigint, nullptr);
  sigaction(SIGTERM, &g_prev_sigterm, nullptr);
  g_signal_token.store(nullptr, std::memory_order_release);
}

}  // namespace graphsd::core
