#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/clock.hpp"

namespace graphsd::core {

double InterpolateExpectedColumns(std::span<const std::uint64_t> anchors,
                                  std::span<const double> expected,
                                  std::uint64_t edges) {
  if (edges <= anchors.front()) return expected.front();
  if (edges >= anchors.back()) return expected.back();
  std::size_t hi = 1;
  while (anchors[hi] < edges) ++hi;
  if (anchors[hi] == edges) return expected[hi];
  const std::size_t lo = hi - 1;
  const double t = (std::log2(static_cast<double>(edges)) -
                    std::log2(static_cast<double>(anchors[lo]))) /
                   (std::log2(static_cast<double>(anchors[hi])) -
                    std::log2(static_cast<double>(anchors[lo])));
  return expected[lo] + t * (expected[hi] - expected[lo]);
}

SchedulerDecision StateAwareScheduler::Evaluate(
    const Frontier& active, std::uint64_t vertex_record_bytes,
    bool with_weights, bool fciu_round, double overlap_compute_seconds,
    const SemiCostInputs* semi) const {
  WallTimer timer;
  SchedulerDecision d;

  const auto& manifest = dataset_->manifest();
  const auto& degrees = dataset_->out_degrees();
  const bool compressed = manifest.compressed();
  const std::uint64_t weight_bytes_per_edge =
      with_weights && manifest.weighted ? kWeightBytes : 0;
  const std::uint64_t bytes_per_edge = kEdgeBytes + weight_bytes_per_edge;
  // Per-edge bytes a selective *ranged* read moves: compressed edge bytes
  // arrive as whole frames (charged separately below), so runs only carry
  // the raw weight file.
  const std::uint64_t ranged_bytes_per_edge =
      compressed ? weight_bytes_per_edge : bytes_per_edge;
  const std::uint64_t values_bytes =
      static_cast<std::uint64_t>(manifest.num_vertices) * vertex_record_bytes;

  // Non-empty sub-blocks per row: a selective pass touches (and loads the
  // index of) only those, so the estimate should too.
  std::vector<std::uint32_t> nonempty_cols(manifest.p, 0);
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      if (manifest.EdgesIn(i, j) != 0) ++nonempty_cols[i];
    }
  }

  // Expected request count for a run of E edges in row i: one request per
  // column the run actually has edges in. Modelled from the row's column
  // distribution: E[distinct cols] = sum_j 1 - (1 - p_ij)^E. Precomputed at
  // a few anchor sizes and interpolated by lookup so the per-run cost stays
  // O(1).
  constexpr std::uint64_t kAnchors[] = {1, 2, 4, 8, 16, 64, 256, 4096};
  constexpr std::size_t kNumAnchors = std::size(kAnchors);
  std::vector<double> expected_cols(manifest.p * kNumAnchors, 1.0);
  for (std::uint32_t i = 0; i < manifest.p; ++i) {
    std::uint64_t row_total = 0;
    for (std::uint32_t j = 0; j < manifest.p; ++j) {
      row_total += manifest.EdgesIn(i, j);
    }
    for (std::size_t a = 0; a < kNumAnchors; ++a) {
      double expected = 0.0;
      if (row_total > 0) {
        for (std::uint32_t j = 0; j < manifest.p; ++j) {
          const double p_ij = static_cast<double>(manifest.EdgesIn(i, j)) /
                              static_cast<double>(row_total);
          expected += 1.0 - std::pow(1.0 - p_ij,
                                     static_cast<double>(kAnchors[a]));
        }
      }
      expected_cols[i * kNumAnchors + a] = std::max(1.0, expected);
    }
  }
  auto requests_for_run = [&](std::uint32_t row, std::uint64_t edges) {
    const double expected = InterpolateExpectedColumns(
        kAnchors,
        std::span<const double>(expected_cols.data() + row * kNumAnchors,
                                kNumAnchors),
        edges);
    return std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(
               edges, static_cast<std::uint64_t>(expected + 0.5)));
  };

  // --- one pass over A: active edges, S_seq, S_ran, run count -------------
  // A run is a maximal set of active vertices whose edge lists are adjacent
  // on disk; inactive vertices with zero out-degree occupy no bytes and do
  // not break a run.
  std::uint64_t run_bytes = 0;
  std::uint64_t run_edges = 0;
  // A run may span interval boundaries, and each crossed row serves its
  // share of the run's edges from its own sub-blocks, so requests are
  // accumulated per (row, edges, vertices) segment rather than attributed
  // to a single row.
  struct RunSegment {
    std::uint32_t row;
    std::uint64_t edges;
    std::uint64_t vertices;
  };
  std::vector<RunSegment> run_segments;
  std::uint32_t cursor_row = 0;  // actives ascend, so the row is monotone
  std::uint64_t seeks = 0;
  std::uint64_t index_bytes = 0;
  // Rows holding at least one edge-bearing run segment: a compressed
  // selective pass fetches the whole frames of these rows' non-empty
  // sub-blocks.
  std::vector<char> rows_active(compressed ? manifest.p : 0, 0);
  VertexId prev_active = kInvalidVertex;
  bool gap_has_edges = false;

  // Prefix degrees between actives would be O(|V|); instead we track gaps
  // lazily: when we see a new active vertex, the gap [prev+1, v) breaks the
  // run iff any vertex in it has out-degree > 0. We bound the scan per gap
  // by early exit on the first edge-bearing vertex.
  auto close_run = [&] {
    if (run_edges == 0) {
      run_segments.clear();
      return;
    }
    ++d.random_requests;
    // A segment's edges are split across the columns of its row; it costs
    // at most one request per non-empty column, and never more requests
    // than it has edges. Each request is one ranged index read (the
    // segment's offset entries) plus one edge-range read.
    std::uint64_t requests = 0;
    for (const RunSegment& seg : run_segments) {
      if (seg.edges == 0) continue;  // zero-degree actives move no bytes
      const std::uint64_t seg_requests = requests_for_run(seg.row, seg.edges);
      requests += seg_requests;
      index_bytes += (seg.vertices + 1) * sizeof(std::uint32_t) * seg_requests;
      if (compressed) rows_active[seg.row] = 1;
    }
    seeks += 2 * requests;
    // Split seq/ran by the per-request transfer size; round the division up
    // so remainder bytes are not dropped from the split (a run with fewer
    // bytes than requests must classify as small random requests, not as
    // zero-byte ones).
    const std::uint64_t per_request = (run_bytes + requests - 1) / requests;
    if (per_request >= model_.random_request_bytes) {
      d.seq_bytes += run_bytes;
    } else {
      d.rand_bytes += run_bytes;
    }
    run_bytes = 0;
    run_edges = 0;
    run_segments.clear();
  };

  // Per-row active locals, collected only when the semi-external model is
  // being costed (its skip tests are per-row bitset probes).
  std::vector<std::vector<VertexId>> row_locals(semi != nullptr ? manifest.p
                                                                : 0);

  active.ForEachActive([&](std::size_t idx) {
    const auto v = static_cast<VertexId>(idx);
    ++d.active_vertices;
    const std::uint64_t deg = degrees[v];
    d.active_edges += deg;

    if (prev_active != kInvalidVertex) {
      gap_has_edges = false;
      for (VertexId u = prev_active + 1; u < v; ++u) {
        if (degrees[u] != 0) {
          gap_has_edges = true;
          break;
        }
      }
      if (gap_has_edges) close_run();
    }
    while (cursor_row + 1 < manifest.p &&
           v >= manifest.boundaries[cursor_row + 1]) {
      ++cursor_row;
    }
    if (semi != nullptr) {
      row_locals[cursor_row].push_back(v - manifest.boundaries[cursor_row]);
    }
    if (run_segments.empty() || run_segments.back().row != cursor_row) {
      run_segments.push_back({cursor_row, 0, 0});
    }
    run_segments.back().edges += deg;
    run_segments.back().vertices += 1;
    run_bytes += deg * ranged_bytes_per_edge;
    run_edges += deg;
    prev_active = v;
  });
  close_run();
  d.seeks = seeks;
  d.index_bytes = index_bytes;

  // --- compressed on-demand edge bytes -------------------------------------
  // On-disk frames of the non-empty sub-blocks in every row a run touched:
  // the CSR index addresses decoded offsets, so a selective pass fetches
  // those frames whole (sequential, offset 0) and decodes them on the
  // compute side.
  std::uint64_t frame_bytes_on_demand = 0;
  std::uint64_t decoded_bytes_on_demand = 0;
  if (compressed) {
    for (std::uint32_t i = 0; i < manifest.p; ++i) {
      if (!rows_active[i]) continue;
      for (std::uint32_t j = 0; j < manifest.p; ++j) {
        const std::uint64_t edges = manifest.EdgesIn(i, j);
        if (edges == 0) continue;
        frame_bytes_on_demand += manifest.EdgeFileBytes(i, j);
        decoded_bytes_on_demand += edges * kEdgeBytes;
      }
    }
  }

  // --- the paper's two cost formulas ---------------------------------------
  // Edge terms use on-disk bytes (frame files when compressed, raw edge
  // arrays otherwise); for raw datasets the arithmetic below is identical
  // to the original |E|·(M[+W]) formulas.
  if (fciu_round) {
    // FCIU reloads the secondary sub-blocks (i > j) and amortizes the round
    // over two BSP iterations.
    std::uint64_t secondary_edges = 0;
    std::uint64_t secondary_file_bytes = 0;
    for (std::uint32_t i = 1; i < manifest.p; ++i) {
      for (std::uint32_t j = 0; j < i; ++j) {
        secondary_edges += manifest.EdgesIn(i, j);
        secondary_file_bytes += manifest.EdgeFileBytes(i, j);
      }
    }
    const std::uint64_t round_read =
        manifest.TotalEdgeFileBytes() + secondary_file_bytes +
        (manifest.num_edges + secondary_edges) * weight_bytes_per_edge +
        values_bytes;
    d.cost_full = 0.5 * (model_.SeqReadSeconds(round_read) +
                         model_.SeqWriteSeconds(values_bytes));
    if (compressed) {
      d.decode_seconds_full = 0.5 * model_.DecodeSeconds(
          (manifest.num_edges + secondary_edges) * kEdgeBytes);
    }
  } else {
    d.cost_full =
        model_.SeqReadSeconds(manifest.TotalEdgeFileBytes() +
                              manifest.num_edges * weight_bytes_per_edge +
                              values_bytes) +
        model_.SeqWriteSeconds(values_bytes);
    if (compressed) {
      d.decode_seconds_full =
          model_.DecodeSeconds(manifest.num_edges * kEdgeBytes);
    }
  }

  // Random requests are charged seek+transfer; the per-column request
  // amplification was accumulated run by run in close_run. Compressed frame
  // fetches stream sequentially and are recorded in S_seq so the decision
  // log shows the bytes that actually move.
  d.seq_bytes += frame_bytes_on_demand;
  d.cost_on_demand = model_.RandReadSeconds(d.rand_bytes, seeks) +
                     model_.SeqReadSeconds(d.seq_bytes) +
                     model_.SeqReadSeconds(index_bytes + values_bytes) +
                     model_.SeqWriteSeconds(values_bytes);
  d.decode_seconds_on_demand = model_.DecodeSeconds(decoded_bytes_on_demand);

  // --- semi-external cost C_m (DESIGN.md §14) ------------------------------
  // One plain iteration: stream the on-disk bytes of every non-empty
  // sub-block that survives the skip tests, plus the index-probe bytes of
  // unknown summaries (the executor pays that probe to learn them). No
  // vertex-values terms at all — semi mode keeps the state RAM-resident.
  // Buffer-resident sub-blocks charge decode only (compressed datasets).
  double cost_semi_io = 0;
  if (semi != nullptr) {
    std::uint64_t semi_read_bytes = 0;
    std::uint64_t semi_probe_bytes = 0;
    std::uint64_t semi_decoded_bytes = 0;
    for (std::uint32_t i = 0; i < manifest.p; ++i) {
      const bool row_has_actives = !row_locals[i].empty();
      for (std::uint32_t j = 0; j < manifest.p; ++j) {
        const std::uint64_t edges = manifest.EdgesIn(i, j);
        if (edges == 0) continue;
        if (!row_has_actives ||
            (semi->summaries != nullptr &&
             semi->summaries->CanSkip(i, j, row_locals[i]))) {
          ++d.semi_skipped_blocks;
          d.semi_skipped_bytes +=
              manifest.EdgeFileBytes(i, j) + edges * weight_bytes_per_edge;
          continue;
        }
        if (semi->summaries != nullptr && !semi->summaries->Known(i, j) &&
            manifest.has_index) {
          semi_probe_bytes +=
              (static_cast<std::uint64_t>(manifest.IntervalSize(i)) + 1) *
              sizeof(std::uint32_t);
        }
        if (semi->buffer != nullptr && semi->buffer->Contains(i, j)) {
          if (compressed) semi_decoded_bytes += edges * kEdgeBytes;
          continue;
        }
        semi_read_bytes +=
            manifest.EdgeFileBytes(i, j) + edges * weight_bytes_per_edge;
        if (compressed) semi_decoded_bytes += edges * kEdgeBytes;
      }
    }
    cost_semi_io = model_.SeqReadSeconds(semi_read_bytes + semi_probe_bytes);
    d.decode_seconds_semi = model_.DecodeSeconds(semi_decoded_bytes);
  }

  // Decode runs on the compute side: serially it adds to the model's cost,
  // pipelined it raises the model's compute floor.
  d.serial_cost_on_demand = d.cost_on_demand + d.decode_seconds_on_demand;
  d.serial_cost_full = d.cost_full + d.decode_seconds_full;
  d.serial_cost_semi = cost_semi_io + d.decode_seconds_semi;
  d.cost_on_demand = d.serial_cost_on_demand;
  d.cost_full = d.serial_cost_full;
  d.cost_semi = d.serial_cost_semi;
  if (overlap_compute_seconds >= 0) {
    // Overlap-aware charging: the pipeline hides disk time behind the
    // round's compute, so each model costs its critical path. The compute
    // floor is common to both models; ties are broken on the raw costs so
    // for raw datasets the decision matches serial charging exactly (see
    // the header).
    d.overlapped = true;
    d.cost_on_demand = io::IoCostModel::OverlapSeconds(
        d.serial_cost_on_demand - d.decode_seconds_on_demand,
        overlap_compute_seconds + d.decode_seconds_on_demand);
    d.cost_full = io::IoCostModel::OverlapSeconds(
        d.serial_cost_full - d.decode_seconds_full,
        overlap_compute_seconds + d.decode_seconds_full);
    if (semi != nullptr) {
      d.cost_semi = io::IoCostModel::OverlapSeconds(
          cost_semi_io, overlap_compute_seconds + d.decode_seconds_semi);
    }
  }
  d.on_demand = d.cost_on_demand != d.cost_full
                    ? d.cost_on_demand < d.cost_full
                    : d.serial_cost_on_demand <= d.serial_cost_full;
  if (semi != nullptr) {
    // Three-way: the semi model must beat the incumbent STRICTLY (charged
    // first, serial tie-break) — on a tie the two-way winner stands, so the
    // paper's SCIU/FCIU schedule is never perturbed by an equal-cost third
    // option.
    const double winner_cost = d.on_demand ? d.cost_on_demand : d.cost_full;
    const double winner_serial =
        d.on_demand ? d.serial_cost_on_demand : d.serial_cost_full;
    d.semi = d.cost_semi != winner_cost ? d.cost_semi < winner_cost
                                        : d.serial_cost_semi < winner_serial;
  }
  d.eval_seconds = timer.Seconds();
  return d;
}

}  // namespace graphsd::core
