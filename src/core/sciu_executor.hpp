// Selective cross-iteration update — SCIU (paper §4.2, Algorithm 2).
//
// One BSP iteration under the on-demand I/O model:
//   1. Snapshot contributions of the active vertices (UserFunction inputs).
//   2. Sweep sub-blocks row by row; within each sub-block, use the source
//      index to read only the active vertices' edge ranges. Ranges of
//      consecutive active vertices coalesce into single requests (this is
//      where S_seq comes from). Apply each edge; activations go to `out`.
//   3. Cross-iteration step: vertices re-activated during this iteration
//      whose edges are resident (they were active, so their edges were just
//      loaded and retained) push their *new* values into iteration t+1
//      immediately (CrossIterUpdate), are removed from `out`, and the
//      vertices they activate go to `out_ni` (scheduled two iterations out).
//
// Retention is all-or-nothing per iteration: if the active edges exceed the
// memory budget, the edges are processed streaming and the cross-iteration
// step is skipped for that iteration.
// The whole sweep's read script — which index entries and which coalesced
// edge runs get read, in what order — depends only on the (const) active
// frontier and the offsets those reads return, never on applied values. It
// is therefore computed up front and executed pass-by-pass on the prefetch
// pipeline's loader thread, overlapping ranged reads with edge application.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/exec_context.hpp"
#include "core/frontier.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "io/prefetch.hpp"
#include "util/status.hpp"

namespace graphsd::core {

/// Edges one sub-block pass — (i, j) under the active frontier — reads.
/// `runs` lists the coalesced ranges as [begin, end) into `edges`, in read
/// order; the consumer applies them run by run, exactly as the synchronous
/// path did.
///
/// Compressed datasets cannot range-read the edge file (the CSR index
/// addresses decoded offsets, the file holds a GSDF frame), so the loader
/// leaves `edges` empty, keeps `runs` in decoded-block coordinates, reads
/// the weight ranges as usual (the weight file stays raw), and ships the
/// whole frame — unless the decoded block was buffer-resident at issue
/// time, in which case `frame` stays empty too. The consumer decodes,
/// copies the active runs into `edges`, and rebases `runs` in place.
struct SciuPassPayload {
  std::vector<Edge> edges;
  std::vector<Weight> weights;
  std::vector<std::pair<std::size_t, std::size_t>> runs;
  std::vector<std::uint8_t> frame;
};

class SciuExecutor {
 public:
  explicit SciuExecutor(const ExecContext& ctx) : ctx_(ctx) {}

  /// Runs one iteration. `cross_iteration=false` degrades to pure selective
  /// processing (the GraphSD-b1 / HUS-Graph behaviour).
  /// `update_seconds` accumulates wall time spent applying updates.
  Status RunIteration(const PushProgram& program, VertexState& state,
                      const Frontier& active, Frontier& out, Frontier& out_ni,
                      bool cross_iteration, RoundStat& stat,
                      double* update_seconds);

 private:
  /// Active vertices of one source interval, as ascending local ids, with
  /// nearby actives grouped so each group costs one index read per
  /// sub-block.
  struct IntervalActives {
    struct Group {
      std::size_t begin_pos;
      std::size_t end_pos;  // exclusive, into `locals`
    };
    std::vector<VertexId> locals;
    std::vector<Group> groups;
  };

  /// Ranged reads cannot verify checksums per request, so the first time a
  /// run touches sub-block (i, j) its payload files are CRC-verified in
  /// full. The verification reads use raw (unaccounted) I/O: they are not
  /// part of the paper's I/O economics.
  Status EnsureSubBlockVerified(std::uint32_t i, std::uint32_t j,
                                bool need_weights);

  /// Parallel-compute fast path: CRC-verifies every not-yet-verified pass
  /// of the sweep across the pool before the stream starts, so the loader's
  /// serialized FetchPass calls find `verified_` already set and spend no
  /// time hashing. Distinct (i, j) slots make the concurrent `verified_`
  /// writes race-free; the ParallelFor barrier publishes them to the loader.
  /// Returns the first failure in plan order (the same error the serialized
  /// path would have surfaced first). Byte-neutral: verification I/O is
  /// unaccounted.
  Status PreverifySubBlocks(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& coords,
      bool need_weights);

  /// Reads one pass: index offsets per group, then the coalesced edge runs,
  /// in exactly the synchronous order. Runs on the loader thread when
  /// prefetching (tasks are serialized, so `verified_` needs no lock),
  /// inline otherwise. `resident` tells a compressed pass the decoded block
  /// was cached at issue time, so the frame read is elided.
  Status FetchPass(std::uint32_t i, std::uint32_t j,
                   const IntervalActives& actives, bool need_weights,
                   bool resident, SciuPassPayload& out);

  /// Compressed-pass compute half, on the consumer thread: obtains the
  /// decoded block (decoding `payload.frame`, or through the buffer when
  /// the frame was elided — with a synchronous re-read if the entry was
  /// evicted between issue and consume), copies the active runs into
  /// `payload.edges` rebasing `runs`, and offers the decoded block to the
  /// buffer with priority = this pass's active edge count.
  Status MaterializeCompressedPass(std::uint32_t i, std::uint32_t j,
                                   SciuPassPayload& payload);

  ExecContext ctx_;
  std::vector<std::uint8_t> verified_;  // per sub-block, lazily sized p*p
  /// Iteration label for trace spans recorded by FetchPass. Set before the
  /// sweep's fetch units are planned and stable until the stream drains, so
  /// the loader thread reads it race-free.
  std::uint32_t trace_iteration_ = 0;
};

}  // namespace graphsd::core
