// Selective cross-iteration update — SCIU (paper §4.2, Algorithm 2).
//
// One BSP iteration under the on-demand I/O model:
//   1. Snapshot contributions of the active vertices (UserFunction inputs).
//   2. Sweep sub-blocks row by row; within each sub-block, use the source
//      index to read only the active vertices' edge ranges. Ranges of
//      consecutive active vertices coalesce into single requests (this is
//      where S_seq comes from). Apply each edge; activations go to `out`.
//   3. Cross-iteration step: vertices re-activated during this iteration
//      whose edges are resident (they were active, so their edges were just
//      loaded and retained) push their *new* values into iteration t+1
//      immediately (CrossIterUpdate), are removed from `out`, and the
//      vertices they activate go to `out_ni` (scheduled two iterations out).
//
// Retention is all-or-nothing per iteration: if the active edges exceed the
// memory budget, the edges are processed streaming and the cross-iteration
// step is skipped for that iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "core/exec_context.hpp"
#include "core/frontier.hpp"
#include "core/program.hpp"
#include "core/report.hpp"
#include "util/status.hpp"

namespace graphsd::core {

class SciuExecutor {
 public:
  explicit SciuExecutor(const ExecContext& ctx) : ctx_(ctx) {}

  /// Runs one iteration. `cross_iteration=false` degrades to pure selective
  /// processing (the GraphSD-b1 / HUS-Graph behaviour).
  /// `update_seconds` accumulates wall time spent applying updates.
  Status RunIteration(const PushProgram& program, VertexState& state,
                      const Frontier& active, Frontier& out, Frontier& out_ni,
                      bool cross_iteration, RoundStat& stat,
                      double* update_seconds);

 private:
  /// Ranged reads cannot verify checksums per request, so the first time a
  /// run touches sub-block (i, j) its payload files are CRC-verified in
  /// full. The verification reads use raw (unaccounted) I/O: they are not
  /// part of the paper's I/O economics.
  Status EnsureSubBlockVerified(std::uint32_t i, std::uint32_t j,
                                bool need_weights);

  ExecContext ctx_;
  std::vector<std::uint8_t> verified_;  // per sub-block, lazily sized p*p
};

}  // namespace graphsd::core
