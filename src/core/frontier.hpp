// Vertex frontier: the active-vertex sets of Algorithm 1 (V_active, Out,
// OutNI). A thin, intention-revealing wrapper over ConcurrentBitset.
#pragma once

#include <cstdint>

#include "graph/types.hpp"
#include "util/bitset.hpp"
#include "util/checked_cast.hpp"

namespace graphsd::core {

class Frontier {
 public:
  Frontier() = default;
  explicit Frontier(VertexId num_vertices) : bits_(num_vertices) {}

  void Resize(VertexId num_vertices) { bits_.Resize(num_vertices); }

  /// Marks `v` active; returns true iff it was not already active.
  /// Thread safe.
  bool Activate(VertexId v) noexcept { return bits_.TestAndSet(v); }

  /// Removes `v` from the set (SCIU Line 17). Thread safe.
  void Deactivate(VertexId v) noexcept { bits_.Clear(v); }

  bool IsActive(VertexId v) const noexcept { return bits_.Test(v); }

  /// Number of active vertices. Sequence with writers at BSP boundaries.
  std::uint64_t Count() const noexcept { return bits_.Count(); }
  std::uint64_t CountInRange(VertexId begin, VertexId end) const noexcept {
    return bits_.CountInRange(begin, end);
  }

  bool Empty() const noexcept { return bits_.None(); }

  void Clear() noexcept { bits_.ClearAll(); }
  void ActivateAll() noexcept { bits_.SetAll(); }

  /// Visits active vertices in ascending ID order.
  template <typename Fn>
  void ForEachActive(Fn&& fn) const {
    bits_.ForEachSet(std::forward<Fn>(fn));
  }

  /// Visits active vertices in [begin, end) in ascending order.
  template <typename Fn>
  void ForEachActiveInRange(VertexId begin, VertexId end, Fn&& fn) const {
    bits_.ForEachSetInRange(begin, end, std::forward<Fn>(fn));
  }

  void CopyFrom(const Frontier& other) noexcept { bits_.CopyFrom(other.bits_); }
  void Swap(Frontier& other) noexcept { bits_.Swap(other.bits_); }

  VertexId size() const noexcept { return CheckedCast<VertexId>(bits_.size()); }

 private:
  ConcurrentBitset bits_;
};

}  // namespace graphsd::core
