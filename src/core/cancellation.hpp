// Engine-facing run cancellation: the token type plus signal plumbing.
//
// The token itself lives in util/cancellation.hpp (the io layer polls it
// from the read queue and prefetch loader); this header adds the pieces
// only the driver needs:
//
//   * `SignalCancellationScope` — RAII SIGINT/SIGTERM installation that
//     trips a token instead of killing the process, so the engine can
//     write a final checkpoint and emit a partial run report.  A second
//     signal while cancellation is already pending force-exits (the
//     escape hatch when draining itself wedges).
//
// Poll points, in order of granularity (see DESIGN.md §12):
//   engine round loop → executor pass/sub-block loops → read-queue tasks.
#pragma once

#include "util/cancellation.hpp"

namespace graphsd::core {

using graphsd::CancellationToken;

/// Routes SIGINT/SIGTERM to `token->Cancel(...)` for the scope's lifetime;
/// restores the previous handlers on destruction.  At most one scope may
/// be live per process (enforced with GRAPHSD_CHECK) because signal
/// dispositions are process-global.  Handlers are installed without
/// SA_RESTART so blocking syscalls return EINTR promptly — io::File
/// absorbs those retries transparently.
class SignalCancellationScope {
 public:
  explicit SignalCancellationScope(CancellationToken* token);
  ~SignalCancellationScope();

  SignalCancellationScope(const SignalCancellationScope&) = delete;
  SignalCancellationScope& operator=(const SignalCancellationScope&) = delete;
};

}  // namespace graphsd::core
