#include "core/checkpoint.hpp"

#include <bit>
#include <cstring>
#include <filesystem>

#include "io/file.hpp"
#include "util/crc32c.hpp"
#include "util/str_format.hpp"

namespace graphsd::core {
namespace {

// ---------------------------------------------------------------------------
// Little-endian payload encoding.

void AppendU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void AppendDouble(std::vector<std::uint8_t>& out, double v) {
  AppendU64(out, std::bit_cast<std::uint64_t>(v));
}

void AppendBytes(std::vector<std::uint8_t>& out, const void* data,
                 std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  out.insert(out.end(), bytes, bytes + size);
}

/// Bounds-checked forward reader over the payload; every primitive read
/// fails with kCorruptData instead of running past the declared size.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  Status ReadU32(std::uint32_t& out) {
    GRAPHSD_RETURN_IF_ERROR(Need(4));
    out = 0;
    for (int i = 0; i < 4; ++i) {
      out |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return Status::Ok();
  }

  Status ReadU64(std::uint64_t& out) {
    GRAPHSD_RETURN_IF_ERROR(Need(8));
    out = 0;
    for (int i = 0; i < 8; ++i) {
      out |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return Status::Ok();
  }

  Status ReadDouble(double& out) {
    std::uint64_t bits = 0;
    GRAPHSD_RETURN_IF_ERROR(ReadU64(bits));
    out = std::bit_cast<double>(bits);
    return Status::Ok();
  }

  Status ReadU8(std::uint8_t& out) {
    GRAPHSD_RETURN_IF_ERROR(Need(1));
    out = data_[pos_++];
    return Status::Ok();
  }

  Status ReadBytes(void* out, std::size_t size) {
    GRAPHSD_RETURN_IF_ERROR(Need(size));
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return Status::Ok();
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  Status Need(std::size_t size) const {
    if (data_.size() - pos_ < size) {
      return CorruptDataError("checkpoint payload truncated");
    }
    return Status::Ok();
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void AppendIdList(std::vector<std::uint8_t>& out,
                  const std::vector<VertexId>& ids) {
  AppendU64(out, ids.size());
  static_assert(sizeof(VertexId) == 4);
  AppendBytes(out, ids.data(), ids.size() * sizeof(VertexId));
}

Status ReadIdList(Reader& reader, VertexId num_vertices,
                  std::vector<VertexId>& out) {
  std::uint64_t count = 0;
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(count));
  if (count > num_vertices) {
    return CorruptDataError("checkpoint frontier larger than vertex count");
  }
  out.resize(count);
  GRAPHSD_RETURN_IF_ERROR(
      reader.ReadBytes(out.data(), count * sizeof(VertexId)));
  VertexId prev = 0;
  for (std::size_t k = 0; k < out.size(); ++k) {
    if (out[k] >= num_vertices || (k > 0 && out[k] <= prev)) {
      return CorruptDataError("checkpoint frontier ids not ascending");
    }
    prev = out[k];
  }
  return Status::Ok();
}

}  // namespace

std::uint32_t DatasetFingerprint(const partition::GridManifest& manifest) {
  const std::string text = manifest.Serialize();
  return Crc32c(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

std::vector<std::uint8_t> EncodeCheckpoint(const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> payload;
  // Rough reservation: arrays dominate.
  std::size_t reserve = 256;
  for (const auto& array : checkpoint.arrays) {
    reserve += array.size() * sizeof(Slot);
  }
  reserve += (checkpoint.active.size() + checkpoint.preact.size()) *
             sizeof(VertexId);
  payload.reserve(reserve);

  AppendU32(payload, checkpoint.fingerprint);
  AppendU32(payload, static_cast<std::uint32_t>(checkpoint.algorithm.size()));
  AppendBytes(payload, checkpoint.algorithm.data(),
              checkpoint.algorithm.size());
  payload.push_back(checkpoint.gather ? 1 : 0);
  AppendU32(payload, checkpoint.iteration);
  AppendU32(payload, checkpoint.num_vertices);

  AppendU32(payload, static_cast<std::uint32_t>(checkpoint.arrays.size()));
  for (const auto& array : checkpoint.arrays) {
    AppendBytes(payload, array.data(), array.size() * sizeof(Slot));
  }

  AppendIdList(payload, checkpoint.active);
  AppendIdList(payload, checkpoint.preact);

  AppendU32(payload, checkpoint.rounds);
  AppendU32(payload, checkpoint.degraded_rounds);
  AppendDouble(payload, checkpoint.compute_seconds);
  AppendDouble(payload, checkpoint.update_seconds);
  AppendDouble(payload, checkpoint.io_seconds);
  AppendDouble(payload, checkpoint.scheduler_seconds);
  AppendDouble(payload, checkpoint.overlapped_seconds);
  AppendDouble(payload, checkpoint.decode_seconds);

  const io::IoStatsSnapshot& io = checkpoint.io;
  AppendU64(payload, io.seq_read_bytes);
  AppendU64(payload, io.seq_write_bytes);
  AppendU64(payload, io.rand_read_bytes);
  AppendU64(payload, io.rand_write_bytes);
  AppendU64(payload, io.seq_read_ops);
  AppendU64(payload, io.seq_write_ops);
  AppendU64(payload, io.rand_read_ops);
  AppendU64(payload, io.rand_write_ops);
  AppendU64(payload, io.retries);
  AppendU64(payload, io.checksum_failures);
  AppendU64(payload, io.eintr_absorbed);

  AppendU64(payload, checkpoint.buffer_hits);
  AppendU64(payload, checkpoint.buffer_misses);
  AppendU64(payload, checkpoint.buffer_bytes_saved);
  AppendU64(payload, checkpoint.buffer_disk_bytes_saved);
  AppendU64(payload, checkpoint.frames_decoded);
  AppendU64(payload, checkpoint.compressed_bytes_read);
  AppendU64(payload, checkpoint.decoded_bytes);

  AppendU32(payload, checkpoint.checkpoints_written);
  AppendU64(payload, checkpoint.checkpoint_bytes);
  AppendDouble(payload, checkpoint.checkpoint_seconds);

  std::vector<std::uint8_t> frame;
  frame.reserve(kCheckpointHeaderBytes + payload.size());
  AppendBytes(frame, kCheckpointMagic, sizeof(kCheckpointMagic));
  AppendU32(frame, kCheckpointFormatVersion);
  AppendU64(frame, payload.size());
  AppendU32(frame, Crc32c(std::span<const std::uint8_t>(payload)));
  while (frame.size() < kCheckpointHeaderBytes) frame.push_back(0);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

Result<Checkpoint> DecodeCheckpoint(std::span<const std::uint8_t> frame) {
  if (frame.size() < kCheckpointHeaderBytes) {
    return CorruptDataError("checkpoint shorter than its header");
  }
  if (std::memcmp(frame.data(), kCheckpointMagic, sizeof(kCheckpointMagic)) !=
      0) {
    return CorruptDataError("checkpoint magic mismatch");
  }
  Reader header(frame.subspan(sizeof(kCheckpointMagic)));
  std::uint32_t version = 0;
  std::uint64_t payload_bytes = 0;
  std::uint32_t payload_crc = 0;
  GRAPHSD_RETURN_IF_ERROR(header.ReadU32(version));
  GRAPHSD_RETURN_IF_ERROR(header.ReadU64(payload_bytes));
  GRAPHSD_RETURN_IF_ERROR(header.ReadU32(payload_crc));
  if (version != kCheckpointFormatVersion) {
    return UnimplementedError(
        StrPrintf("checkpoint format version %u (this build reads %u)",
                  version, kCheckpointFormatVersion));
  }
  if (frame.size() - kCheckpointHeaderBytes != payload_bytes) {
    return CorruptDataError(StrPrintf(
        "checkpoint payload size mismatch: header declares %llu, file has "
        "%llu",
        static_cast<unsigned long long>(payload_bytes),
        static_cast<unsigned long long>(frame.size() -
                                        kCheckpointHeaderBytes)));
  }
  const auto payload = frame.subspan(kCheckpointHeaderBytes);
  if (Crc32c(payload) != payload_crc) {
    return CorruptDataError("checkpoint payload CRC mismatch");
  }

  Checkpoint checkpoint;
  Reader reader(payload);
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(checkpoint.fingerprint));
  std::uint32_t name_len = 0;
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(name_len));
  if (name_len > reader.remaining()) {
    return CorruptDataError("checkpoint algorithm name truncated");
  }
  checkpoint.algorithm.resize(name_len);
  GRAPHSD_RETURN_IF_ERROR(
      reader.ReadBytes(checkpoint.algorithm.data(), name_len));
  std::uint8_t gather = 0;
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU8(gather));
  checkpoint.gather = gather != 0;
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(checkpoint.iteration));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(checkpoint.num_vertices));

  std::uint32_t num_arrays = 0;
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(num_arrays));
  const std::uint64_t array_bytes =
      static_cast<std::uint64_t>(checkpoint.num_vertices) * sizeof(Slot);
  if (num_arrays > 64 ||
      static_cast<std::uint64_t>(num_arrays) * array_bytes >
          reader.remaining()) {
    return CorruptDataError("checkpoint array section truncated");
  }
  checkpoint.arrays.resize(num_arrays);
  for (auto& array : checkpoint.arrays) {
    array.resize(checkpoint.num_vertices);
    GRAPHSD_RETURN_IF_ERROR(reader.ReadBytes(array.data(), array_bytes));
  }

  GRAPHSD_RETURN_IF_ERROR(
      ReadIdList(reader, checkpoint.num_vertices, checkpoint.active));
  GRAPHSD_RETURN_IF_ERROR(
      ReadIdList(reader, checkpoint.num_vertices, checkpoint.preact));

  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(checkpoint.rounds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(checkpoint.degraded_rounds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.compute_seconds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.update_seconds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.io_seconds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.scheduler_seconds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.overlapped_seconds));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.decode_seconds));

  io::IoStatsSnapshot& io = checkpoint.io;
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.seq_read_bytes));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.seq_write_bytes));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.rand_read_bytes));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.rand_write_bytes));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.seq_read_ops));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.seq_write_ops));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.rand_read_ops));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.rand_write_ops));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.retries));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.checksum_failures));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(io.eintr_absorbed));

  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.buffer_hits));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.buffer_misses));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.buffer_bytes_saved));
  GRAPHSD_RETURN_IF_ERROR(
      reader.ReadU64(checkpoint.buffer_disk_bytes_saved));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.frames_decoded));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.compressed_bytes_read));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.decoded_bytes));

  GRAPHSD_RETURN_IF_ERROR(reader.ReadU32(checkpoint.checkpoints_written));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadU64(checkpoint.checkpoint_bytes));
  GRAPHSD_RETURN_IF_ERROR(reader.ReadDouble(checkpoint.checkpoint_seconds));

  if (reader.remaining() != 0) {
    return CorruptDataError("checkpoint payload has trailing bytes");
  }
  return checkpoint;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {}

std::string CheckpointStore::SlotPath(int slot) const {
  return dir_ + "/checkpoint." + std::to_string(slot) + ".gsck";
}

bool CheckpointStore::AnySlotExists() const {
  return io::PathExists(SlotPath(0)) || io::PathExists(SlotPath(1));
}

Result<Checkpoint> CheckpointStore::TryLoadSlot(int slot) const {
  GRAPHSD_ASSIGN_OR_RETURN(std::string contents,
                           io::ReadFileToString(SlotPath(slot)));
  return DecodeCheckpoint(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(contents.data()),
      contents.size()));
}

int CheckpointStore::PickWriteSlot() const {
  // Overwrite the slot NOT holding the latest valid checkpoint: a corrupt
  // or missing slot is always fair game; between two valid slots the older
  // one goes.
  std::uint64_t iteration[2];
  bool valid[2];
  for (int slot = 0; slot < 2; ++slot) {
    auto loaded = TryLoadSlot(slot);
    valid[slot] = loaded.ok();
    iteration[slot] = loaded.ok() ? loaded.value().iteration : 0;
  }
  if (!valid[0]) return 0;
  if (!valid[1]) return 1;
  return iteration[0] <= iteration[1] ? 0 : 1;
}

Status CheckpointStore::Write(const Checkpoint& checkpoint,
                              std::uint64_t* frame_bytes) {
  const std::vector<std::uint8_t> frame = EncodeCheckpoint(checkpoint);
  GRAPHSD_RETURN_IF_ERROR(WriteFrame(std::span<const std::uint8_t>(frame)));
  if (frame_bytes != nullptr) *frame_bytes = frame.size();
  return Status::Ok();
}

Status CheckpointStore::WriteFrame(std::span<const std::uint8_t> frame) {
  GRAPHSD_RETURN_IF_ERROR(io::MakeDirectories(dir_));
  if (write_slot_ < 0) write_slot_ = PickWriteSlot();
  // sync_dir = false: losing the rename in a crash just resurfaces the
  // previous slot contents, which LoadLatest handles by design (the same
  // fallback that covers a torn frame). The file-content fdatasync before
  // the rename is the one barrier checkpoints genuinely need — without it
  // a crash could tear BOTH slots over time.
  GRAPHSD_RETURN_IF_ERROR(io::WriteFileAtomic(SlotPath(write_slot_), frame,
                                              /*sync_dir=*/false));
  write_slot_ = 1 - write_slot_;
  return Status::Ok();
}

Result<Checkpoint> CheckpointStore::LoadLatest() {
  if (!AnySlotExists()) {
    return NotFoundError(
        StrPrintf("no checkpoint in %s", dir_.c_str()));
  }
  Result<Checkpoint> best =
      CorruptDataError(StrPrintf("no valid checkpoint slot in %s (both "
                                 "slots missing, torn or corrupt)",
                                 dir_.c_str()));
  for (int slot = 0; slot < 2; ++slot) {
    auto loaded = TryLoadSlot(slot);
    if (!loaded.ok()) continue;
    if (!best.ok() || loaded.value().iteration > best.value().iteration) {
      best = std::move(loaded);
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// AsyncCheckpointWriter

AsyncCheckpointWriter::AsyncCheckpointWriter(CheckpointStore* store)
    : store_(store) {}

AsyncCheckpointWriter::~AsyncCheckpointWriter() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

Result<std::uint64_t> AsyncCheckpointWriter::Submit(
    const Checkpoint& checkpoint) {
  std::vector<std::uint8_t> frame = EncodeCheckpoint(checkpoint);
  const std::uint64_t size = frame.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_.ok()) return error_;
    if (has_pending_) ++dropped_;  // superseded before it hit disk
    pending_ = std::move(frame);
    has_pending_ = true;
    if (!thread_.joinable()) {
      thread_ = std::thread(&AsyncCheckpointWriter::Loop, this);
    }
  }
  wake_.notify_one();
  return size;
}

Status AsyncCheckpointWriter::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return !has_pending_ && !writing_; });
  return error_;
}

std::uint64_t AsyncCheckpointWriter::frames_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t AsyncCheckpointWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_written_;
}

void AsyncCheckpointWriter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    wake_.wait(lock, [this] { return has_pending_ || stop_; });
    if (!has_pending_) break;  // stop requested, queue drained
    std::vector<std::uint8_t> frame = std::move(pending_);
    pending_.clear();
    has_pending_ = false;
    writing_ = true;
    lock.unlock();
    const Status status =
        store_->WriteFrame(std::span<const std::uint8_t>(frame));
    lock.lock();
    writing_ = false;
    if (status.ok()) {
      bytes_written_ += frame.size();
    } else if (error_.ok()) {
      error_ = status;
    }
    if (!has_pending_) idle_.notify_all();
  }
}

}  // namespace graphsd::core
