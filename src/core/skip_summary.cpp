#include "core/skip_summary.hpp"

namespace graphsd::core {

SkipSummaryStore::SkipSummaryStore(const partition::GridManifest& manifest)
    : p_(manifest.p) {
  interval_sizes_.reserve(p_);
  for (std::uint32_t i = 0; i < p_; ++i) {
    interval_sizes_.push_back(manifest.IntervalSize(i));
  }
  summaries_.resize(static_cast<std::size_t>(p_) * p_);
  for (auto& cell : summaries_) cell = std::make_unique<Summary>();
}

bool SkipSummaryStore::Known(std::uint32_t i, std::uint32_t j) const {
  return At(i, j).known.load(std::memory_order_acquire);
}

void SkipSummaryStore::RecordFromEdges(std::uint32_t i, std::uint32_t j,
                                       std::span<const Edge> edges,
                                       VertexId interval_first) {
  Summary& summary = At(i, j);
  if (summary.known.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(summary.write_mutex);
  if (summary.known.load(std::memory_order_relaxed)) return;
  summary.words.assign((interval_sizes_[i] + 63) / 64, 0);
  for (const Edge& edge : edges) {
    const VertexId local = edge.src - interval_first;
    summary.words[local >> 6] |= std::uint64_t{1} << (local & 63);
  }
  // The words are complete; the release pairs with the acquire in readers,
  // so no reader ever sees a partially-built summary.
  summary.known.store(true, std::memory_order_release);
}

void SkipSummaryStore::RecordFromOffsets(std::uint32_t i, std::uint32_t j,
                                         std::span<const std::uint32_t> offsets) {
  Summary& summary = At(i, j);
  if (summary.known.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(summary.write_mutex);
  if (summary.known.load(std::memory_order_relaxed)) return;
  const VertexId n = interval_sizes_[i];
  summary.words.assign((n + 63) / 64, 0);
  for (VertexId v = 0; v < n && v + 1 < offsets.size(); ++v) {
    if (offsets[v + 1] > offsets[v]) {
      summary.words[v >> 6] |= std::uint64_t{1} << (v & 63);
    }
  }
  summary.known.store(true, std::memory_order_release);
}

bool SkipSummaryStore::CanSkip(std::uint32_t i, std::uint32_t j,
                               std::span<const VertexId> active_locals) const {
  const Summary& summary = At(i, j);
  if (!summary.known.load(std::memory_order_acquire)) return false;
  for (const VertexId local : active_locals) {
    if (summary.words[local >> 6] & (std::uint64_t{1} << (local & 63))) {
      return false;  // an active source has edges here: must load
    }
  }
  return true;
}

std::size_t SkipSummaryStore::known_count() const {
  std::size_t known = 0;
  for (const auto& cell : summaries_) {
    if (cell->known.load(std::memory_order_acquire)) ++known;
  }
  return known;
}

}  // namespace graphsd::core
