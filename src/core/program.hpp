// GraphSD programming model (paper §4.2).
//
// A user algorithm implements one of two program kinds:
//
//   * PushProgram — frontier-driven algorithms with a commutative, monotone
//     combine (CC, SSSP, BFS) or a commutative sum over consumable
//     contributions (PageRank-Delta). `MakeContribution(v)` snapshots (and
//     possibly consumes) v's outgoing contribution for one BSP iteration;
//     `Apply(e)` is the paper's UserFunction when reading the kPrimary
//     snapshot and its CrossIterUpdate when reading the kSecondary (sealed
//     post-iteration) snapshot.
//
//   * GatherProgram — dense algorithms that re-accumulate every vertex each
//     iteration (PageRank). Contributions accumulate into an AccumSlot;
//     kA collects iteration t and kB iteration t+1 within one FCIU round.
//
// All combine operations must be commutative and associative: that is the
// property that makes both intra-interval parallelism and cross-iteration
// value computation exact under BSP semantics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/frontier.hpp"
#include "core/vertex_state.hpp"
#include "graph/types.hpp"

namespace graphsd::core {

enum class ProgramKind { kPush, kGather };

class Program {
 public:
  virtual ~Program() = default;

  /// Algorithm name for reports ("pagerank", "sssp", ...).
  virtual std::string name() const = 0;

  virtual ProgramKind kind() const = 0;

  /// Whether edge weights must be streamed (SSSP). Unweighted algorithms
  /// skip the weight files entirely — the M vs M+W distinction of Table 2.
  virtual bool needs_weights() const { return false; }

  /// How many per-vertex arrays the program keeps (PR-Delta: rank+residual).
  virtual std::uint32_t num_value_arrays() const = 0;

  /// Slots per vertex in the engine-managed contribution arrays. Single-
  /// source programs use 1 (the default); multi-source batched programs
  /// (the `graphsd serve` query coalescer) use one lane per source, laid
  /// out lane-major as contrib[v * width + lane].
  virtual std::uint32_t contrib_width() const { return 1; }

  /// Supplies dataset context before Init. Default keeps the degree vector
  /// (PageRank-family needs out-degrees to split contributions).
  virtual void Bind(const std::vector<std::uint32_t>& out_degrees) {
    out_degrees_ = &out_degrees;
  }

  /// Initializes vertex values and the initial frontier.
  /// Gather programs may ignore `initial` (they run all-active).
  virtual void Init(VertexState& state, Frontier& initial) = 0;

  /// Iteration budget (PageRank: the configured round count; frontier
  /// algorithms: unbounded, they stop when the frontier drains).
  virtual std::uint32_t max_iterations() const { return UINT32_MAX; }

  /// The result value of vertex `v` as a double (tests, examples, reports).
  virtual double ValueOf(const VertexState& state, VertexId v) const = 0;

 protected:
  const std::vector<std::uint32_t>* out_degrees_ = nullptr;
};

class PushProgram : public Program {
 public:
  ProgramKind kind() const final { return ProgramKind::kPush; }

  /// Snapshots v's outgoing contribution into state.contrib(slot)[v].
  /// May consume internal state (PR-Delta zeroes the residual). The engine
  /// calls this exactly once per (vertex, iteration in which it is active).
  virtual void MakeContribution(VertexState& state, VertexId v,
                                ContribSlot slot) const = 0;

  /// Applies one edge using the source contribution in `slot`. Must be
  /// thread safe (atomic combine on dst). Returns true iff dst must be
  /// (re)activated for the following iteration.
  virtual bool Apply(VertexState& state, VertexId src, VertexId dst, Weight w,
                     ContribSlot slot) const = 0;
};

class GatherProgram : public Program {
 public:
  ProgramKind kind() const final { return ProgramKind::kGather; }

  /// Snapshots v's contribution (from its current value) into
  /// state.contrib(slot)[v].
  virtual void MakeContribution(VertexState& state, VertexId v,
                                ContribSlot slot) const = 0;

  /// Resets accumulator `a` to the iteration base value for all vertices.
  virtual void ResetAccum(VertexState& state, AccumSlot a) const = 0;

  /// accum(a)[dst] += contribution(c)[src]; must be thread safe.
  virtual void Accumulate(VertexState& state, VertexId src, VertexId dst,
                          Weight w, ContribSlot c, AccumSlot a) const = 0;

  /// Commits accum(a) into the value array for vertices [begin, end).
  virtual void Finalize(VertexState& state, VertexId begin, VertexId end,
                        AccumSlot a) const = 0;
};

}  // namespace graphsd::core
