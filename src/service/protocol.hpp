// Wire protocol of the query service: newline-delimited JSON over a
// unix-domain socket.
//
// Requests are single-line JSON objects:
//   {"id":1,"op":"run","dataset":"/data/tw","algo":"bfs","root":42,
//    "deadline_seconds":5,"values":true,"vertices":[0,1,2]}
// Ops: ping | info | verify | stats | run | shutdown. `run` executes an
// algorithm (pr | prd | cc | bfs | sssp | widest_path | ppr) and returns
// the run report; single-source ops on the same dataset may be coalesced
// into one multi-source batched execution (see batch_planner.hpp).
//
// Responses are single-line JSON objects carrying the request id, an
// ok/error envelope, and op-specific payload. Per-vertex values travel as
// C99 hex-float strings ("0x1.8p+1"): exact bit round-trip, which is what
// lets the service differential test demand bit-identical results.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.hpp"
#include "util/status.hpp"

namespace graphsd::service {

inline constexpr std::uint32_t kProtocolVersion = 1;

struct QueryRequest {
  std::uint64_t id = 0;
  std::string op;       // ping | info | verify | stats | run | shutdown
  std::string dataset;  // dataset directory (info/verify/run)
  std::string algo;     // run: pr | prd | cc | bfs | sssp | widest_path | ppr
  VertexId root = 0;
  /// Iteration cap; 0 = the algorithm's default budget.
  std::uint32_t iterations = 0;
  double epsilon = 1e-10;  // prd / ppr threshold
  /// Per-request deadline; 0 = none (the admission controller may still
  /// impose the service-wide maximum).
  double deadline_seconds = 0;
  /// Return per-vertex values (all vertices when `vertices` is empty).
  bool values = false;
  std::vector<VertexId> vertices;
};

/// Parses one request line. Unknown ops or malformed JSON yield
/// kInvalidArgument; the caller still gets the id when one was readable so
/// the error response can be correlated.
Result<QueryRequest> ParseRequest(std::string_view line);

/// `{"id":N,"ok":false,"error":{"code":"...","message":"..."}}`.
std::string BuildErrorResponse(std::uint64_t id, const Status& status);

/// `{"id":N,"ok":true,"op":"...", ...extra fields caller appends}` — the
/// trivial acks (ping/shutdown) that carry no payload.
std::string BuildAckResponse(std::uint64_t id, std::string_view op);

/// Bit-exact double <-> string round-trip for response values.
std::string HexDouble(double value);
Result<double> ParseHexDouble(const std::string& text);

}  // namespace graphsd::service
