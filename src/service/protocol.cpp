#include "service/protocol.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/json_writer.hpp"
#include "service/json.hpp"

namespace graphsd::service {

namespace {

bool KnownOp(const std::string& op) {
  return op == "ping" || op == "info" || op == "verify" || op == "stats" ||
         op == "run" || op == "shutdown";
}

bool KnownAlgo(const std::string& algo) {
  return algo == "pr" || algo == "prd" || algo == "cc" || algo == "bfs" ||
         algo == "sssp" || algo == "widest_path" || algo == "ppr";
}

}  // namespace

Result<QueryRequest> ParseRequest(std::string_view line) {
  GRAPHSD_ASSIGN_OR_RETURN(JsonValue doc, ParseJson(line));
  if (!doc.is_object()) {
    return InvalidArgumentError("request must be a JSON object");
  }
  QueryRequest req;
  req.id = doc.GetUint("id", 0);
  req.op = doc.GetString("op");
  if (!KnownOp(req.op)) {
    return InvalidArgumentError("unknown op '" + req.op + "'");
  }
  req.dataset = doc.GetString("dataset");
  req.algo = doc.GetString("algo");
  req.root = static_cast<VertexId>(doc.GetUint("root", 0));
  req.iterations = static_cast<std::uint32_t>(doc.GetUint("iterations", 0));
  req.epsilon = doc.GetNumber("epsilon", 1e-10);
  req.deadline_seconds = doc.GetNumber("deadline_seconds", 0);
  req.values = doc.GetBool("values", false);
  if (const JsonValue* verts = doc.Find("vertices");
      verts != nullptr && verts->is_array()) {
    for (const JsonValue& v : verts->elements()) {
      if (!v.is_number()) {
        return InvalidArgumentError("'vertices' entries must be numbers");
      }
      req.vertices.push_back(static_cast<VertexId>(v.number()));
    }
  }
  if (req.op == "run") {
    if (req.dataset.empty()) {
      return InvalidArgumentError("run requires 'dataset'");
    }
    if (!KnownAlgo(req.algo)) {
      return InvalidArgumentError("run: unknown algo '" + req.algo + "'");
    }
    if (!(req.epsilon > 0) || !std::isfinite(req.epsilon)) {
      return InvalidArgumentError("run: epsilon must be finite and > 0");
    }
    if (req.deadline_seconds < 0 || !std::isfinite(req.deadline_seconds)) {
      return InvalidArgumentError("run: bad deadline_seconds");
    }
  }
  if ((req.op == "info" || req.op == "verify") && req.dataset.empty()) {
    return InvalidArgumentError(req.op + " requires 'dataset'");
  }
  return req;
}

std::string BuildErrorResponse(std::uint64_t id, const Status& status) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Field("id", id);
  json.Field("ok", false);
  json.Key("error");
  json.BeginObject();
  json.Field("code", StatusCodeName(status.code()));
  json.Field("message", status.message());
  json.EndObject();
  json.EndObject();
  return json.Finish();
}

std::string BuildAckResponse(std::uint64_t id, std::string_view op) {
  obs::JsonWriter json;
  json.BeginObject();
  json.Field("id", id);
  json.Field("ok", true);
  json.Field("op", op);
  json.Field("protocol", kProtocolVersion);
  json.EndObject();
  return json.Finish();
}

std::string HexDouble(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", value);
  return buf;
}

Result<double> ParseHexDouble(const std::string& text) {
  if (text.empty()) return InvalidArgumentError("empty hex-float");
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    return InvalidArgumentError("malformed hex-float '" + text + "'");
  }
  return value;
}

}  // namespace graphsd::service
