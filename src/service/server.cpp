#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "algos/connected_components.hpp"
#include "algos/multi_source.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "core/engine.hpp"
#include "io/file.hpp"
#include "obs/json_writer.hpp"
#include "obs/run_report.hpp"
#include "partition/dataset_verify.hpp"
#include "service/batch_planner.hpp"

namespace graphsd::service {

namespace {

constexpr int kPollMillis = 100;
constexpr std::size_t kMaxLineBytes = 1 << 20;

/// Default PageRank round count when the request does not specify one
/// (matches the `graphsd run` CLI default).
constexpr std::uint32_t kDefaultPrIterations = 10;

Status SendAll(int fd, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send", errno);
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

QueryServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

QueryServer::QueryServer(ServerOptions options)
    : options_(std::move(options)), admission_(options_.limits) {
  if (options_.external_cancel != nullptr) {
    shutdown_.set_parent(options_.external_cancel);
  }
  if (options_.scratch_dir.empty()) {
    options_.scratch_dir = options_.socket_path + ".scratch";
  }
  options_.registry.cancel = &shutdown_;
  registry_ = std::make_unique<DatasetRegistry>(options_.registry);
}

QueryServer::~QueryServer() {
  Shutdown();
  Wait();
}

Status QueryServer::Start() {
  GRAPHSD_CHECK(!started_);
  if (options_.socket_path.empty()) {
    return InvalidArgumentError("serve: socket path must not be empty");
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("serve: socket path too long: " +
                                options_.socket_path);
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  GRAPHSD_RETURN_IF_ERROR(io::MakeDirectories(options_.scratch_dir));

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return ErrnoError("socket", errno);
  ::unlink(options_.socket_path.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const Status s = ErrnoError("bind " + options_.socket_path, errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, 64) < 0) {
    const Status s = ErrnoError("listen", errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const std::size_t workers = std::max<std::size_t>(1, options_.workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void QueryServer::Wait() {
  if (!started_) return;
  // Producers first: once the accept loop and every connection reader have
  // exited, the queue can only shrink — then workers drain it and stop.
  // This ordering is what guarantees shutdown delivers a response for every
  // request a client managed to submit.
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connection_threads_);
  }
  for (std::thread& t : connections) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    producers_done_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(options_.socket_path.c_str());
    (void)io::RemoveTree(options_.scratch_dir);
  }
}

Status QueryServer::Serve() {
  GRAPHSD_RETURN_IF_ERROR(Start());
  Wait();
  return Status::Ok();
}

void QueryServer::Shutdown() {
  shutdown_.Cancel("service shutdown");
  queue_cv_.notify_all();
}

ServiceStats QueryServer::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  {
    std::lock_guard<std::mutex> lock(
        const_cast<std::mutex&>(queue_mutex_));
    out.queue_depth = queue_.size();
  }
  out.admission_rejections = admission_.rejected();
  out.datasets = registry_->size();
  return out;
}

void QueryServer::CountError() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.errors;
}

void QueryServer::Respond(const std::shared_ptr<Connection>& connection,
                          const std::string& line) {
  std::lock_guard<std::mutex> lock(connection->write_mutex);
  // A vanished client is not a server error: drop the response.
  (void)SendAll(connection->fd, line + "\n");
}

void QueryServer::AcceptLoop() {
  while (!shutdown_.cancelled()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready <= 0) continue;  // timeout / EINTR: re-check the token
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back(
        [this, connection] { ConnectionLoop(connection); });
  }
  // Shutdown drain: `connect()` succeeds against the listen backlog before
  // this loop ever sees the connection, so a client may already have
  // submitted a request on a never-accepted socket. Accept whatever is
  // pending so those requests still get a response — each reader's own
  // shutdown drain handles the rest.
  for (;;) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) break;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;
    auto connection = std::make_shared<Connection>();
    connection->fd = fd;
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connection_threads_.emplace_back(
        [this, connection] { ConnectionLoop(connection); });
  }
}

void QueryServer::ConnectionLoop(std::shared_ptr<Connection> connection) {
  std::string buffer;
  char chunk[16384];
  bool overflow = false;
  const auto dispatch_lines = [&] {
    std::size_t start = 0;
    for (;;) {
      const std::size_t eol = buffer.find('\n', start);
      if (eol == std::string::npos) break;
      std::string line = buffer.substr(start, eol - start);
      start = eol + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!line.empty()) HandleLine(connection, line);
    }
    buffer.erase(0, start);
    if (buffer.size() > kMaxLineBytes) {
      Respond(connection,
              BuildErrorResponse(
                  0, InvalidArgumentError("request line exceeds 1 MiB")));
      overflow = true;
    }
  };

  while (!shutdown_.cancelled() && !overflow) {
    pollfd pfd{connection->fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kPollMillis);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const ssize_t n = ::recv(connection->fd, chunk, sizeof(chunk), 0);
    if (n == 0) return;  // EOF
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    dispatch_lines();
  }

  // Shutdown drain: on unix sockets a client's completed send() is already
  // in our receive buffer, so requests submitted before the shutdown
  // tripped are still dispatched (they run against the tripped token and
  // get cancelled partial reports). Bytes arriving later are dropped — the
  // client sees EOF.
  if (shutdown_.cancelled() && !overflow) {
    for (;;) {
      const ssize_t n =
          ::recv(connection->fd, chunk, sizeof(chunk), MSG_DONTWAIT);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
    }
    dispatch_lines();
  }
}

void QueryServer::HandleLine(const std::shared_ptr<Connection>& connection,
                             const std::string& line) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.requests;
  }
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.requests").Add();
  }

  auto parsed = ParseRequest(line);
  if (!parsed.ok()) {
    CountError();
    Respond(connection, BuildErrorResponse(0, parsed.status()));
    return;
  }
  QueryRequest request = std::move(parsed).value();

  if (request.op == "ping") {
    Respond(connection, BuildAckResponse(request.id, "ping"));
    return;
  }
  if (request.op == "shutdown") {
    Respond(connection, BuildAckResponse(request.id, "shutdown"));
    Shutdown();
    return;
  }
  if (request.op == "stats") {
    const ServiceStats s = stats();
    const core::SubBlockBuffer::Counters buf =
        registry_->TotalBufferCounters();
    obs::JsonWriter json;
    json.BeginObject();
    json.Field("id", request.id);
    json.Field("ok", true);
    json.Field("op", "stats");
    json.Key("service");
    json.BeginObject();
    json.Field("requests", s.requests);
    json.Field("runs", s.runs);
    json.Field("run_requests", s.run_requests);
    json.Field("batches", s.batches);
    json.Field("batched_requests", s.batched_requests);
    json.Field("deduped", s.deduped);
    json.Field("cancelled_runs", s.cancelled_runs);
    json.Field("admission_rejections", s.admission_rejections);
    json.Field("errors", s.errors);
    json.Field("queue_depth", static_cast<std::uint64_t>(s.queue_depth));
    json.Field("datasets", static_cast<std::uint64_t>(s.datasets));
    json.EndObject();
    json.Key("buffer");
    json.BeginObject();
    json.Field("hits", buf.hits);
    json.Field("misses", buf.misses);
    const std::uint64_t lookups = buf.hits + buf.misses;
    json.Field("hit_rate", lookups == 0 ? 0.0
                                        : static_cast<double>(buf.hits) /
                                              static_cast<double>(lookups));
    json.Field("bytes_saved", buf.bytes_saved);
    json.Field("disk_bytes_saved", buf.disk_bytes_saved);
    json.Field("evictions", buf.evictions);
    json.Field("pinned_rejected_puts", buf.pinned_rejected_puts);
    json.EndObject();
    json.EndObject();
    Respond(connection, json.Finish());
    return;
  }
  if (request.op == "verify") {
    auto verify = partition::VerifyDataset(request.dataset);
    if (!verify.ok()) {
      CountError();
      Respond(connection, BuildErrorResponse(request.id, verify.status()));
      return;
    }
    obs::JsonWriter json;
    json.BeginObject();
    json.Field("id", request.id);
    json.Field("ok", true);
    json.Field("op", "verify");
    json.Field("dataset", request.dataset);
    json.Field("verified", verify->ok());
    json.Field("files_checked", verify->files_checked);
    json.Field("frames_checked", verify->frames_checked);
    json.Field("summary", verify->Summary());
    json.EndObject();
    Respond(connection, json.Finish());
    return;
  }
  if (request.op == "info") {
    auto entry = registry_->GetOrOpen(request.dataset);
    if (!entry.ok()) {
      CountError();
      Respond(connection, BuildErrorResponse(request.id, entry.status()));
      return;
    }
    const partition::GridManifest& m = (*entry)->dataset->manifest();
    obs::JsonWriter json;
    json.BeginObject();
    json.Field("id", request.id);
    json.Field("ok", true);
    json.Field("op", "info");
    json.Field("dataset", request.dataset);
    json.Field("name", m.name);
    json.Field("vertices", static_cast<std::uint64_t>(m.num_vertices));
    json.Field("edges", m.num_edges);
    json.Field("weighted", m.weighted);
    json.Field("intervals", m.p);
    json.Field("codec", m.codec);
    json.EndObject();
    Respond(connection, json.Finish());
    return;
  }
  GRAPHSD_CHECK(request.op == "run");
  HandleRun(connection, std::move(request));
}

void QueryServer::HandleRun(const std::shared_ptr<Connection>& connection,
                            QueryRequest request) {
  auto entry_or = registry_->GetOrOpen(request.dataset);
  if (!entry_or.ok()) {
    CountError();
    Respond(connection, BuildErrorResponse(request.id, entry_or.status()));
    return;
  }
  DatasetEntry* entry = *entry_or;
  const VertexId n = entry->dataset->num_vertices();

  // Validate everything a GRAPHSD_CHECK would otherwise abort the daemon
  // on: roots and requested value vertices must exist, weighted algorithms
  // need a weighted dataset.
  if (request.root >= n) {
    CountError();
    Respond(connection,
            BuildErrorResponse(
                request.id,
                InvalidArgumentError("root " + std::to_string(request.root) +
                                     " out of range (dataset has " +
                                     std::to_string(n) + " vertices)")));
    return;
  }
  for (const VertexId v : request.vertices) {
    if (v >= n) {
      CountError();
      Respond(connection,
              BuildErrorResponse(request.id,
                                 InvalidArgumentError(
                                     "requested value vertex " +
                                     std::to_string(v) + " out of range")));
      return;
    }
  }
  if ((request.algo == "sssp" || request.algo == "widest_path") &&
      !entry->dataset->weighted()) {
    CountError();
    Respond(connection,
            BuildErrorResponse(
                request.id,
                FailedPreconditionError("algo '" + request.algo +
                                        "' needs a weighted dataset")));
    return;
  }

  if (Status admitted = admission_.Admit(request, n); !admitted.ok()) {
    if (options_.metrics != nullptr) {
      options_.metrics->GetCounter("service.admission_rejections").Add();
    }
    Respond(connection, BuildErrorResponse(request.id, admitted));
    return;
  }
  const std::uint64_t reserved = EstimateStateBytes(request, n, 1);

  PendingRun pending;
  pending.request = std::move(request);
  pending.connection = connection;
  pending.entry = entry;
  pending.reserved_bytes = reserved;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue_.push_back(std::move(pending));
    if (options_.metrics != nullptr) {
      options_.metrics->GetGauge("service.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_one();
}

void QueryServer::WorkerLoop() {
  using namespace std::chrono;
  for (;;) {
    std::unique_lock<std::mutex> lock(queue_mutex_);
    queue_cv_.wait_for(lock, milliseconds(50), [this] {
      return !queue_.empty() || producers_done_;
    });
    if (queue_.empty()) {
      // Exit only once nothing can enqueue anymore (Wait() has joined the
      // accept loop and every reader): guarantees every submitted request
      // is executed and answered, even mid-shutdown.
      if (producers_done_) return;
      continue;
    }
    PendingRun leader = std::move(queue_.front());
    queue_.pop_front();

    std::vector<PendingRun> members;
    if (options_.enable_batching && options_.max_batch > 1 &&
        IsBatchableRequest(leader.request)) {
      if (options_.batch_linger_ms > 0 && !shutdown_.cancelled()) {
        // Give contemporaries a beat to arrive; batch width is the whole
        // point of the coalescer. The queue lock is released while
        // lingering, so arrivals can actually enqueue.
        queue_cv_.wait_for(
            lock, duration<double, std::milli>(options_.batch_linger_ms));
      }
      std::vector<QueryRequest> snapshot;
      snapshot.reserve(queue_.size());
      for (const PendingRun& p : queue_) snapshot.push_back(p.request);
      const BatchPlan plan =
          PlanBatch(leader.request, snapshot, options_.max_batch);
      // Erase members back-to-front so earlier indices stay valid.
      members.reserve(plan.member_indices.size());
      for (auto it = plan.member_indices.rbegin();
           it != plan.member_indices.rend(); ++it) {
        members.push_back(std::move(queue_[*it]));
        queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(*it));
      }
      std::reverse(members.begin(), members.end());
    }
    if (options_.metrics != nullptr) {
      options_.metrics->GetGauge("service.queue_depth")
          .Set(static_cast<double>(queue_.size()));
    }
    lock.unlock();
    ExecuteBatch(std::move(leader), std::move(members));
  }
}

void QueryServer::ExecuteBatch(PendingRun leader,
                               std::vector<PendingRun> members) {
  DatasetEntry* entry = leader.entry;
  std::vector<QueryRequest> member_requests;
  member_requests.reserve(members.size());
  for (const PendingRun& m : members) member_requests.push_back(m.request);
  const BatchPlan plan = PlanBatch(leader.request, member_requests,
                                   options_.max_batch);
  GRAPHSD_CHECK(plan.member_indices.size() == members.size());

  // Build the program: batched multi-source for the single-source
  // algorithms (a batch of one is just one lane), solo programs otherwise.
  std::unique_ptr<core::Program> program;
  algos::MultiSourceProgram* multi = nullptr;
  const QueryRequest& req = leader.request;
  if (IsBatchableRequest(req)) {
    auto ms = algos::MakeMultiSourceProgram(req.algo, plan.roots, req.epsilon);
    GRAPHSD_CHECK(ms != nullptr);
    multi = ms.get();
    program = std::move(ms);
  } else if (req.algo == "pr") {
    program = std::make_unique<algos::PageRank>(
        req.iterations != 0 ? req.iterations : kDefaultPrIterations);
  } else if (req.algo == "prd") {
    program = std::make_unique<algos::PageRankDelta>(req.epsilon);
  } else {
    GRAPHSD_CHECK(req.algo == "cc");
    program = std::make_unique<algos::ConnectedComponents>();
  }

  core::EngineOptions options;
  options.num_threads = options_.engine_threads;
  options.prefetch_depth = options_.registry.prefetch_depth;
  options.buffer_capacity_bytes = options_.registry.buffer_capacity_bytes;
  if (options_.share_buffer) {
    options.shared_buffer = entry->buffer.get();
    options.shared_prefetch = entry->prefetch.get();
    // Summaries are dataset-static, so sharing them is always safe; they
    // only pay off in semi-external rounds but recording them is cheap.
    options.shared_summaries = entry->summaries.get();
  }
  options.cache_compressed = options_.registry.cache_compressed;
  options.max_iterations = admission_.EffectiveIterationCap(req);
  options.deadline_seconds = admission_.EffectiveDeadline(req);
  options.cancel = &shutdown_;
  const std::uint64_t run_id =
      entry->run_seq.fetch_add(1, std::memory_order_relaxed);
  options.scratch_dir =
      options_.scratch_dir + "/run" + std::to_string(run_id);

  Status scratch = io::MakeDirectories(options.scratch_dir);
  Result<core::ExecutionReport> report = InternalError("not run");
  core::GraphSDEngine engine(*entry->dataset, options);
  if (scratch.ok()) {
    report = engine.Run(*program);
  } else {
    report = scratch;
  }
  (void)io::RemoveTree(options.scratch_dir);

  const auto respond_one = [&](const PendingRun& run, std::uint32_t lane) {
    if (!report.ok()) {
      CountError();
      Respond(run.connection,
              BuildErrorResponse(run.request.id, report.status()));
      return;
    }
    const core::ExecutionReport& r = *report;
    obs::JsonWriter json;
    json.BeginObject();
    json.Field("id", run.request.id);
    json.Field("ok", true);
    json.Field("op", "run");
    json.Field("algo", run.request.algo);
    json.Field("dataset", run.request.dataset);
    json.Field("root", static_cast<std::uint64_t>(run.request.root));
    json.Field("cancelled", r.cancelled);
    if (r.cancelled) json.Field("cancel_reason", r.cancel_reason);
    // Per-query exit-130 semantics: what the equivalent interrupted
    // `graphsd run` would have exited with.
    json.Field("exit_code",
               static_cast<std::uint64_t>(r.cancelled ? 130 : 0));
    json.Field("batched", plan.width() > 1);
    json.Field("batch_width", plan.width());
    json.Field("lane", lane);
    json.Key("report");
    json.RawValue(obs::ToRunReportJson(
        r, entry->device->options().cost_model, nullptr));
    if (run.request.values && engine.state() != nullptr) {
      const core::VertexState& state = *engine.state();
      std::vector<VertexId> ids = run.request.vertices;
      if (ids.empty()) {
        ids.resize(state.num_vertices());
        for (VertexId v = 0; v < state.num_vertices(); ++v) ids[v] = v;
      }
      json.Key("value_vertices");
      json.BeginArray();
      for (const VertexId v : ids) json.Uint(v);
      json.EndArray();
      json.Key("values");
      json.BeginArray();
      for (const VertexId v : ids) {
        const double value = multi != nullptr
                                 ? multi->LaneValueOf(state, lane, v)
                                 : program->ValueOf(state, v);
        json.String(HexDouble(value));
      }
      json.EndArray();
    }
    json.EndObject();
    Respond(run.connection, json.Finish());
  };

  // Stats before responses: a client that has its answer must be able to
  // observe the run in `stats` (the bench reads stats right after the last
  // response arrives).
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.runs;
    stats_.run_requests += 1 + members.size();
    stats_.deduped += plan.deduped;
    if (plan.width() > 1 || !members.empty()) {
      ++stats_.batches;
      stats_.batched_requests += 1 + members.size();
    }
    if (report.ok() && report->cancelled) ++stats_.cancelled_runs;
  }

  respond_one(leader, 0);
  for (std::size_t i = 0; i < members.size(); ++i) {
    respond_one(members[i], plan.lanes[i + 1]);
  }

  admission_.Release(leader.reserved_bytes);
  for (const PendingRun& m : members) admission_.Release(m.reserved_bytes);
  if (options_.metrics != nullptr) {
    options_.metrics->GetCounter("service.runs").Add();
    options_.metrics->GetCounter("service.run_requests")
        .Add(1 + members.size());
    if (plan.deduped > 0) {
      options_.metrics->GetCounter("service.deduped").Add(plan.deduped);
    }
    options_.metrics->GetHistogram("service.batch_width")
        .Record(plan.width());
    if (report.ok() && report->cancelled) {
      options_.metrics->GetCounter("service.cancelled_runs").Add();
    }
  }
}

}  // namespace graphsd::service
