// DatasetRegistry: the daemon's table of opened datasets.
//
// One entry per dataset directory, created on first use and kept for the
// daemon's lifetime: the manifest is parsed once, the frames are verified
// once (optional), and the entry owns the resources every query on that
// dataset shares —
//   * the accounted Device (thread-safe counters; see io/device.hpp),
//   * one pinned-aware SubBlockBuffer, so a sub-block loaded for one query
//     serves every concurrent and subsequent query (the service's shared
//     buffer tier),
//   * one PrefetchPipeline, so all queries' reads funnel through a single
//     loader thread — the modeled device is one serial disk, and a single
//     submission order keeps its accounting meaningful under concurrency.
//
// Entries are heap-allocated and never destroyed before shutdown, so
// pointers handed to workers stay valid without further locking.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/skip_summary.hpp"
#include "core/sub_block_buffer.hpp"
#include "io/device.hpp"
#include "io/prefetch.hpp"
#include "partition/grid_dataset.hpp"
#include "util/cancellation.hpp"

namespace graphsd::service {

struct RegistryOptions {
  /// Device kind every entry opens: "posix" | "scaled-hdd" | "sim:hdd" |
  /// "sim:ssd" | "real:ssd" (see io::MakeDeviceForKind).
  std::string device = "posix";
  /// Shared buffer capacity per dataset; 0 = 5 % of the edge payload (the
  /// engine's default budget).
  std::uint64_t buffer_capacity_bytes = 0;
  /// Shared loader look-ahead; 0 disables prefetching (synchronous reads).
  std::size_t prefetch_depth = 1;
  /// Run a full frame verification (CRC walk of every sub-block) on first
  /// open; a corrupt dataset is refused once instead of failing queries
  /// midway, and the verdict is cached with the entry.
  bool verify_on_open = true;
  /// Cancellation for the shared pipelines (the daemon's shutdown token).
  const CancellationToken* cancel = nullptr;
  /// Cache compressed sub-blocks as raw GSDF frames in the shared buffer
  /// (decode-on-hit); only meaningful for compressed datasets, a no-op
  /// otherwise. See DESIGN.md §14.
  bool cache_compressed = false;
};

struct DatasetEntry {
  std::string dir;
  std::unique_ptr<io::Device> device;
  std::unique_ptr<partition::GridDataset> dataset;
  std::unique_ptr<core::SubBlockBuffer> buffer;
  std::unique_ptr<io::PrefetchPipeline> prefetch;
  /// Dataset-static active-source skip summaries, learned once by any query
  /// and consulted by every later one (semi-external mode; DESIGN.md §14).
  std::unique_ptr<core::SkipSummaryStore> summaries;
  /// Monotone per-run sequence for scratch-directory names (each engine run
  /// needs a private values file; see QueryServer).
  std::atomic<std::uint64_t> run_seq{0};
};

class DatasetRegistry {
 public:
  explicit DatasetRegistry(RegistryOptions options);

  /// Returns the entry for `dir`, opening (and optionally verifying) it on
  /// first use. Thread-safe; the returned pointer stays valid until the
  /// registry is destroyed. Concurrent first opens of the same directory
  /// serialize on the registry mutex.
  Result<DatasetEntry*> GetOrOpen(const std::string& dir);

  /// Number of opened datasets.
  std::size_t size() const;

  /// Sums the shared-buffer counters over every entry (service-level stats).
  core::SubBlockBuffer::Counters TotalBufferCounters() const;

  const RegistryOptions& options() const noexcept { return options_; }

 private:
  RegistryOptions options_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<DatasetEntry>> entries_;
};

}  // namespace graphsd::service
