// QueryServer: the resident `graphsd serve` daemon.
//
// Architecture (DESIGN.md §13):
//
//   accept loop ──► connection reader threads ──► request queue ──► workers
//                        │  (parse, validate,        (admission-       │
//                        │   inline ops)              gated runs)      │
//                        ◄───────────── responses ◄────────────────────┘
//
// One reader thread per connection parses newline-delimited JSON requests.
// Cheap ops (ping/info/stats/verify/shutdown) execute inline on the reader;
// `run` requests pass the admission controller and join the shared request
// queue. Worker threads dequeue a leader, linger briefly for compatible
// arrivals, coalesce them into one multi-source batched engine run
// (batch_planner.hpp), and write each member its own response. All engine
// runs on one dataset share that dataset's SubBlockBuffer and
// PrefetchPipeline through the DatasetRegistry (pin-on-use keeps one run's
// working set safe from another's evictions).
//
// Shutdown (the `shutdown` op, or an external SIGTERM token): the daemon
// stops accepting work, queued runs execute against the tripped token —
// the engine returns immediately with a cancelled partial report, which is
// delivered to the client with exit-130 semantics — and Wait() returns
// once every thread has drained. A second signal force-exits via
// SignalCancellationScope, not this class.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "service/admission.hpp"
#include "service/dataset_registry.hpp"
#include "service/protocol.hpp"
#include "util/cancellation.hpp"

namespace graphsd::service {

struct ServerOptions {
  /// Unix-domain socket path. A stale socket file is replaced at Start().
  std::string socket_path;
  /// Dataset-tier options (device kind, buffer capacity, prefetch depth,
  /// verify-on-open). The registry's cancel token is installed by the
  /// server.
  RegistryOptions registry;
  AdmissionLimits limits;
  /// Engine-run worker threads (concurrent runs; each run additionally
  /// parallelizes internally per `engine_threads`).
  std::size_t workers = 2;
  /// Worker threads inside each engine run (0 = hardware concurrency).
  std::size_t engine_threads = 0;
  /// Share each dataset's SubBlockBuffer + PrefetchPipeline across runs.
  /// Off = every run builds the same private tier a one-shot CLI run would.
  bool share_buffer = true;
  /// Coalesce compatible queued single-source requests into one
  /// multi-source batched run.
  bool enable_batching = true;
  /// Maximum value lanes per batched run.
  std::uint32_t max_batch = 8;
  /// How long a worker lingers for additional batch members after
  /// dequeuing a batchable leader (0 = take only what is already queued).
  double batch_linger_ms = 2.0;
  /// Root for per-run scratch directories (vertex-value files). Empty =
  /// `<socket_path>.scratch`. Created at Start(), removed at Wait().
  std::string scratch_dir;
  /// Optional service metrics sink (service.* instruments; non-owning).
  obs::MetricsRegistry* metrics = nullptr;
  /// External cancellation (the signal token). Chained under the server's
  /// own shutdown token: tripping it drains and stops the daemon.
  const CancellationToken* external_cancel = nullptr;
};

/// Snapshot of the service counters (also served by the `stats` op).
struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t runs = 0;              // engine executions (batches count 1)
  std::uint64_t run_requests = 0;      // `run` requests answered
  std::uint64_t batches = 0;           // runs with width > 1
  std::uint64_t batched_requests = 0;  // run requests served by those
  std::uint64_t deduped = 0;           // requests that shared a lane
  std::uint64_t cancelled_runs = 0;
  std::uint64_t admission_rejections = 0;
  std::uint64_t errors = 0;
  std::size_t queue_depth = 0;
  std::size_t datasets = 0;
};

class QueryServer {
 public:
  explicit QueryServer(ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds the socket and starts the accept loop + workers.
  Status Start();

  /// Blocks until the daemon has shut down and every thread is joined.
  void Wait();

  /// Start() + Wait().
  Status Serve();

  /// Trips the shutdown token (idempotent; also triggered by the
  /// `shutdown` op and the external token).
  void Shutdown();

  ServiceStats stats() const;
  DatasetRegistry& registry() noexcept { return *registry_; }
  const std::string& socket_path() const noexcept {
    return options_.socket_path;
  }

 private:
  /// Closed by the last owner: the reader thread exits on EOF/shutdown, but
  /// a worker may still hold a PendingRun's reference and must be able to
  /// deliver its response on the open fd.
  struct Connection {
    int fd = -1;
    std::mutex write_mutex;
    ~Connection();
  };

  struct PendingRun {
    QueryRequest request;
    std::shared_ptr<Connection> connection;
    DatasetEntry* entry = nullptr;
    std::uint64_t reserved_bytes = 0;
  };

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Connection> connection);
  void WorkerLoop();

  void HandleLine(const std::shared_ptr<Connection>& connection,
                  const std::string& line);
  void HandleRun(const std::shared_ptr<Connection>& connection,
                 QueryRequest request);
  /// Executes one engine run for the leader + members and responds to each.
  void ExecuteBatch(PendingRun leader, std::vector<PendingRun> members);

  void Respond(const std::shared_ptr<Connection>& connection,
               const std::string& line);
  void CountError();

  ServerOptions options_;
  CancellationToken shutdown_;
  std::unique_ptr<DatasetRegistry> registry_;
  AdmissionController admission_;

  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connection_threads_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingRun> queue_;
  /// Set by Wait() once the accept loop and every connection reader have
  /// exited: nothing can enqueue anymore, so workers may drain and stop.
  /// Guarded by queue_mutex_.
  bool producers_done_ = false;

  mutable std::mutex stats_mutex_;
  ServiceStats stats_;
  bool started_ = false;
};

}  // namespace graphsd::service
