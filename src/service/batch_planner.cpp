#include "service/batch_planner.hpp"

#include <algorithm>

namespace graphsd::service {

bool IsBatchableRequest(const QueryRequest& request) {
  return request.op == "run" &&
         (request.algo == "bfs" || request.algo == "sssp" ||
          request.algo == "widest_path" || request.algo == "ppr");
}

bool Compatible(const QueryRequest& a, const QueryRequest& b) {
  return IsBatchableRequest(a) && IsBatchableRequest(b) &&
         a.dataset == b.dataset && a.algo == b.algo &&
         a.epsilon == b.epsilon && a.iterations == b.iterations &&
         a.deadline_seconds == b.deadline_seconds;
}

BatchPlan PlanBatch(const QueryRequest& leader,
                    std::span<const QueryRequest> queued,
                    std::uint32_t max_lanes) {
  BatchPlan plan;
  plan.roots.push_back(leader.root);
  plan.lanes.push_back(0);
  if (!IsBatchableRequest(leader) || max_lanes <= 1) return plan;

  for (std::size_t i = 0; i < queued.size(); ++i) {
    const QueryRequest& candidate = queued[i];
    if (!Compatible(leader, candidate)) continue;
    const auto it =
        std::find(plan.roots.begin(), plan.roots.end(), candidate.root);
    if (it != plan.roots.end()) {
      // Identical request: share the existing lane, no extra width.
      plan.member_indices.push_back(i);
      plan.lanes.push_back(
          static_cast<std::uint32_t>(it - plan.roots.begin()));
      ++plan.deduped;
      continue;
    }
    if (plan.width() >= max_lanes) continue;
    plan.member_indices.push_back(i);
    plan.lanes.push_back(plan.width());
    plan.roots.push_back(candidate.root);
  }
  return plan;
}

}  // namespace graphsd::service
