// Thin blocking client for the query service: connects to the daemon's
// unix-domain socket, sends newline-delimited JSON request lines, and reads
// newline-delimited responses. Used by `graphsd query`, the service tests,
// and the bench harness; it does no JSON interpretation of its own beyond
// what callers ask ParseJson for.
#pragma once

#include <string>

#include "util/status.hpp"

namespace graphsd::service {

class ServiceClient {
 public:
  ServiceClient() = default;
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Connects to the daemon at `socket_path`.
  Status Connect(const std::string& socket_path);

  /// True after a successful Connect() (until Close()).
  bool connected() const noexcept { return fd_ >= 0; }

  void Close();

  /// Sends one request line (the trailing newline is appended here).
  Status SendLine(const std::string& line);

  /// Blocks until one full response line arrives (newline stripped).
  /// `timeout_seconds` <= 0 waits indefinitely; expiry yields an IoError.
  Result<std::string> RecvLine(double timeout_seconds = 0);

  /// SendLine + RecvLine. Correct only for single-response requests on a
  /// connection with no other requests in flight.
  Result<std::string> RoundTrip(const std::string& line,
                                double timeout_seconds = 0);

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received past the last returned line
};

}  // namespace graphsd::service
