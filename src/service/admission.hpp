// Admission control: the service's per-request budget gate.
//
// Every `run` request passes through Admit() before it may queue. The
// controller enforces
//   * a queue-depth cap (backpressure: reject instead of buffering
//     unboundedly),
//   * a per-request vertex-state memory estimate against an in-flight
//     total (the dominating resident cost of a run is its |V|-sized value
//     + contribution arrays; a batch widens those arrays, so lanes are
//     charged at plan time too),
//   * an iteration cap and a deadline cap (a request may ask for less than
//     the service maximum, never more; requests with no deadline inherit
//     the service default so no query can wedge a worker forever).
// Rejections are kResourceExhausted (load) or kInvalidArgument (budget
// violations a retry will not fix), mapped onto the wire error envelope.
#pragma once

#include <cstdint>
#include <mutex>

#include "service/protocol.hpp"
#include "util/status.hpp"

namespace graphsd::service {

struct AdmissionLimits {
  /// Maximum queued-but-not-finished run requests.
  std::size_t max_queue = 64;
  /// Per-request cap on the estimated vertex-state bytes.
  std::uint64_t max_request_state_bytes = 1ull << 31;
  /// Cap on the sum of admitted requests' state estimates.
  std::uint64_t max_total_state_bytes = 1ull << 32;
  /// Hard per-request iteration cap (also applied as the engine's
  /// max_iterations when the request asks for nothing tighter).
  std::uint32_t max_iterations = 10000;
  /// Maximum — and, for requests that specify none, default — deadline.
  /// 0 disables deadline enforcement entirely.
  double max_deadline_seconds = 300;
};

/// Estimated resident bytes of one run's vertex state: the program arrays
/// plus the two engine contribution arrays, `lanes` wide.
std::uint64_t EstimateStateBytes(const QueryRequest& request,
                                 std::uint64_t num_vertices,
                                 std::uint32_t lanes);

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits) : limits_(limits) {}

  /// Gates one run request of known dataset size. On success the request's
  /// budget is reserved; the caller must Release() the same estimate when
  /// the run finishes (or fails). On rejection nothing is reserved.
  Status Admit(const QueryRequest& request, std::uint64_t num_vertices);

  void Release(std::uint64_t state_bytes);

  /// The deadline the engine should enforce for `request`: its own ask,
  /// clamped to the service maximum (or the maximum itself when the
  /// request specified none).
  double EffectiveDeadline(const QueryRequest& request) const;

  /// The engine iteration cap for `request`.
  std::uint32_t EffectiveIterationCap(const QueryRequest& request) const;

  std::size_t in_flight() const;
  std::uint64_t reserved_bytes() const;
  std::uint64_t rejected() const;

  const AdmissionLimits& limits() const noexcept { return limits_; }

 private:
  AdmissionLimits limits_;
  mutable std::mutex mutex_;
  std::size_t in_flight_ = 0;
  std::uint64_t reserved_bytes_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace graphsd::service
