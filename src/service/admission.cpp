#include "service/admission.hpp"

#include <algorithm>
#include <string>

namespace graphsd::service {

namespace {

/// Program arrays per lane for each algorithm (rank+residual pairs count 2).
std::uint32_t ArraysPerLane(const std::string& algo) {
  if (algo == "prd" || algo == "ppr") return 2;
  return 1;
}

}  // namespace

std::uint64_t EstimateStateBytes(const QueryRequest& request,
                                 std::uint64_t num_vertices,
                                 std::uint32_t lanes) {
  const std::uint64_t width = std::max<std::uint32_t>(lanes, 1);
  // Program arrays (per lane) + the two engine contribution snapshots
  // (lane-major, also per lane), 8 bytes per slot.
  const std::uint64_t slots_per_vertex =
      width * (ArraysPerLane(request.algo) + 2);
  return num_vertices * slots_per_vertex * 8;
}

Status AdmissionController::Admit(const QueryRequest& request,
                                  std::uint64_t num_vertices) {
  const std::uint64_t estimate = EstimateStateBytes(request, num_vertices, 1);
  std::lock_guard<std::mutex> lock(mutex_);
  if (request.iterations > limits_.max_iterations) {
    ++rejected_;
    return InvalidArgumentError(
        "iterations " + std::to_string(request.iterations) +
        " exceeds the service cap " + std::to_string(limits_.max_iterations));
  }
  if (limits_.max_deadline_seconds > 0 &&
      request.deadline_seconds > limits_.max_deadline_seconds) {
    ++rejected_;
    return InvalidArgumentError(
        "deadline_seconds exceeds the service cap " +
        std::to_string(limits_.max_deadline_seconds));
  }
  if (estimate > limits_.max_request_state_bytes) {
    ++rejected_;
    return InvalidArgumentError(
        "estimated vertex state " + std::to_string(estimate) +
        " bytes exceeds the per-request cap " +
        std::to_string(limits_.max_request_state_bytes));
  }
  if (in_flight_ >= limits_.max_queue) {
    ++rejected_;
    return ResourceExhaustedError(
        "queue full (" + std::to_string(limits_.max_queue) + " in flight)");
  }
  if (reserved_bytes_ + estimate > limits_.max_total_state_bytes) {
    ++rejected_;
    return ResourceExhaustedError(
        "admitting would exceed the service memory budget (" +
        std::to_string(reserved_bytes_) + " + " + std::to_string(estimate) +
        " > " + std::to_string(limits_.max_total_state_bytes) + " bytes)");
  }
  ++in_flight_;
  reserved_bytes_ += estimate;
  return Status::Ok();
}

void AdmissionController::Release(std::uint64_t state_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  GRAPHSD_CHECK(in_flight_ > 0);
  GRAPHSD_CHECK(reserved_bytes_ >= state_bytes);
  --in_flight_;
  reserved_bytes_ -= state_bytes;
}

double AdmissionController::EffectiveDeadline(
    const QueryRequest& request) const {
  if (limits_.max_deadline_seconds <= 0) return request.deadline_seconds;
  if (request.deadline_seconds <= 0) return limits_.max_deadline_seconds;
  return std::min(request.deadline_seconds, limits_.max_deadline_seconds);
}

std::uint32_t AdmissionController::EffectiveIterationCap(
    const QueryRequest& request) const {
  if (request.iterations == 0) return limits_.max_iterations;
  return std::min(request.iterations, limits_.max_iterations);
}

std::size_t AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

std::uint64_t AdmissionController::reserved_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return reserved_bytes_;
}

std::uint64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return rejected_;
}

}  // namespace graphsd::service
