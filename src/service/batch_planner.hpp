// Batch planning: which queued queries may share one engine run.
//
// A worker that dequeues a single-source request scans the rest of the
// queue for compatible requests and coalesces them into one multi-source
// batched program (algos/multi_source.hpp): each distinct root gets a value
// lane, identical roots share one (dedup), and a single edge pass feeds
// every lane. Compatibility is strict equality of everything that shapes
// the execution — dataset, algorithm, epsilon, iteration cap, deadline —
// so a batch member's response is indistinguishable from what its solo run
// would have produced (bit-identical for the monotone algorithms; within
// the sum-threshold tolerance for PPR, see DESIGN.md §13).
//
// Pure functions over request lists: no locking, no I/O — unit-testable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "service/protocol.hpp"

namespace graphsd::service {

/// True when `request` names an algorithm the coalescer can batch
/// (single-source push programs with a multi-source counterpart).
bool IsBatchableRequest(const QueryRequest& request);

/// True when `a` and `b` may execute as lanes of one batched run.
bool Compatible(const QueryRequest& a, const QueryRequest& b);

struct BatchPlan {
  /// Queue positions (into the `queued` span) joining the leader's run.
  std::vector<std::size_t> member_indices;
  /// Distinct roots in lane order; lane 0 is the leader's root.
  std::vector<VertexId> roots;
  /// Lane of the leader, then of each member, in member_indices order.
  std::vector<std::uint32_t> lanes;
  /// Requests that shared a lane with an earlier identical request.
  std::uint32_t deduped = 0;

  std::uint32_t width() const noexcept {
    return static_cast<std::uint32_t>(roots.size());
  }
};

/// Plans a batch led by `leader` over the currently queued requests. At
/// most `max_lanes` distinct roots join (identical roots dedup for free and
/// do not consume extra lanes). A non-batchable leader yields a solo plan
/// (one lane, no members).
BatchPlan PlanBatch(const QueryRequest& leader,
                    std::span<const QueryRequest> queued,
                    std::uint32_t max_lanes);

}  // namespace graphsd::service
