// Minimal recursive-descent JSON parser for the query-service protocol.
//
// The repo's obs::JsonWriter produces JSON; the service is the first
// component that must also *consume* it (newline-delimited request lines
// from `graphsd query`). This parser covers RFC 8259 minus two conveniences
// we do not need on the wire: surrogate-pair \u escapes decode to '?', and
// numbers are kept as doubles (the protocol's integers — ids, roots,
// iteration caps — all fit a double's 53-bit mantissa).
//
// Depth is bounded and inputs are size-checked up front, so a hostile
// client can neither stack-overflow the daemon nor balloon its memory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace graphsd::service {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }

  bool bool_value() const noexcept { return bool_; }
  double number() const noexcept { return number_; }
  const std::string& string_value() const noexcept { return string_; }
  const std::vector<JsonValue>& elements() const noexcept { return elements_; }
  const std::vector<std::pair<std::string, JsonValue>>& members()
      const noexcept {
    return members_;
  }

  /// Member lookup on an object; null on a non-object or a missing key.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member accessors with defaults (missing or wrong-typed members
  /// yield the default — the protocol treats both as "not supplied").
  std::string GetString(std::string_view key,
                        const std::string& fallback = "") const;
  double GetNumber(std::string_view key, double fallback = 0) const;
  std::uint64_t GetUint(std::string_view key, std::uint64_t fallback = 0) const;
  bool GetBool(std::string_view key, bool fallback = false) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> elements_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Inputs over `max_bytes` or nested deeper than 32
/// levels are rejected with kInvalidArgument.
Result<JsonValue> ParseJson(std::string_view text,
                            std::size_t max_bytes = 1 << 20);

}  // namespace graphsd::service
