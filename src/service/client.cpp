#include "service/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace graphsd::service {

ServiceClient::~ServiceClient() { Close(); }

void ServiceClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status ServiceClient::Connect(const std::string& socket_path) {
  Close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return InvalidArgumentError("bad socket path: " + socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return ErrnoError("socket", errno);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const Status s = ErrnoError("connect " + socket_path, errno);
    Close();
    return s;
  }
  return Status::Ok();
}

Status ServiceClient::SendLine(const std::string& line) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  const std::string framed = line + "\n";
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("send", errno);
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<std::string> ServiceClient::RecvLine(double timeout_seconds) {
  if (fd_ < 0) return FailedPreconditionError("client not connected");
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(timeout_seconds));
  char chunk[16384];
  for (;;) {
    const std::size_t eol = buffer_.find('\n');
    if (eol != std::string::npos) {
      std::string line = buffer_.substr(0, eol);
      buffer_.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    int wait_ms = -1;
    if (timeout_seconds > 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) {
        return IoError("timed out waiting for a service response");
      }
      wait_ms = static_cast<int>(std::min<long long>(left.count(), 60'000));
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("poll", errno);
    }
    if (ready == 0) continue;  // re-check the deadline
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) return IoError("service closed the connection");
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("recv", errno);
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

Result<std::string> ServiceClient::RoundTrip(const std::string& line,
                                             double timeout_seconds) {
  GRAPHSD_RETURN_IF_ERROR(SendLine(line));
  return RecvLine(timeout_seconds);
}

}  // namespace graphsd::service
