#include "service/dataset_registry.hpp"

#include <algorithm>

#include "partition/dataset_verify.hpp"

namespace graphsd::service {

DatasetRegistry::DatasetRegistry(RegistryOptions options)
    : options_(std::move(options)) {}

Result<DatasetEntry*> DatasetRegistry::GetOrOpen(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(dir);
  if (it != entries_.end()) return it->second.get();

  if (options_.verify_on_open) {
    GRAPHSD_ASSIGN_OR_RETURN(partition::DatasetVerifyReport verify,
                             partition::VerifyDataset(dir));
    if (!verify.ok()) {
      return CorruptDataError("dataset " + dir +
                              " failed verification: " + verify.Summary());
    }
  }

  auto entry = std::make_unique<DatasetEntry>();
  entry->dir = dir;
  GRAPHSD_ASSIGN_OR_RETURN(entry->device,
                           io::MakeDeviceForKind(options_.device));
  GRAPHSD_ASSIGN_OR_RETURN(partition::GridDataset opened,
                           partition::GridDataset::Open(*entry->device, dir));
  entry->dataset =
      std::make_unique<partition::GridDataset>(std::move(opened));

  // One shared buffer + loader per dataset. Capacity defaults to the
  // engine's own 5 % budget so shared and private runs see the same tier
  // size; the pipeline carries the daemon's shutdown token, not any single
  // run's (a run's own deadline still stops it at fetch boundaries).
  const std::uint64_t capacity =
      options_.buffer_capacity_bytes != 0
          ? options_.buffer_capacity_bytes
          : std::max<std::uint64_t>(
                1, entry->dataset->manifest().TotalEdgeBytes() / 20);
  entry->buffer = std::make_unique<core::SubBlockBuffer>(capacity);
  entry->prefetch =
      std::make_unique<io::PrefetchPipeline>(options_.prefetch_depth);
  entry->prefetch->set_cancellation(options_.cancel);
  // Skip summaries are dataset-static, so one store serves every query on
  // the entry: the first run to touch a sub-block publishes its summary and
  // all later runs skip I/O against it (DESIGN.md §14).
  entry->summaries = std::make_unique<core::SkipSummaryStore>(
      entry->dataset->manifest());

  DatasetEntry* raw = entry.get();
  entries_.emplace(dir, std::move(entry));
  return raw;
}

std::size_t DatasetRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

core::SubBlockBuffer::Counters DatasetRegistry::TotalBufferCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  core::SubBlockBuffer::Counters total;
  for (const auto& [dir, entry] : entries_) {
    const core::SubBlockBuffer::Counters c = entry->buffer->counters();
    total.hits += c.hits;
    total.misses += c.misses;
    total.bytes_saved += c.bytes_saved;
    total.disk_bytes_saved += c.disk_bytes_saved;
    total.evictions += c.evictions;
    total.rejected_puts += c.rejected_puts;
    total.pinned_rejected_puts += c.pinned_rejected_puts;
    total.frame_hits += c.frame_hits;
    total.frame_puts += c.frame_puts;
  }
  return total;
}

}  // namespace graphsd::service
