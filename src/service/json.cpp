#include "service/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace graphsd::service {

namespace {
constexpr int kMaxDepth = 32;
}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value() : fallback;
}

double JsonValue::GetNumber(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::uint64_t JsonValue::GetUint(std::string_view key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->is_number()) return fallback;
  const double n = v->number();
  if (!(n >= 0) || n != std::floor(n) || n > 9.007199254740992e15) {
    return fallback;
  }
  return static_cast<std::uint64_t>(n);
}

bool JsonValue::GetBool(std::string_view key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->bool_value() : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    GRAPHSD_RETURN_IF_ERROR(ParseValue(value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Error("expected '" + std::string(literal) + "'");
    }
    pos_ += literal.size();
    return Status::Ok();
  }

  Status ParseValue(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out.kind_ = JsonValue::Kind::kString;
        return ParseString(out.string_);
      case 't':
        GRAPHSD_RETURN_IF_ERROR(Expect("true"));
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = true;
        return Status::Ok();
      case 'f':
        GRAPHSD_RETURN_IF_ERROR(Expect("false"));
        out.kind_ = JsonValue::Kind::kBool;
        out.bool_ = false;
        return Status::Ok();
      case 'n':
        GRAPHSD_RETURN_IF_ERROR(Expect("null"));
        out.kind_ = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue& out, int depth) {
    ++pos_;  // '{'
    out.kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      GRAPHSD_RETURN_IF_ERROR(ParseString(key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      GRAPHSD_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue& out, int depth) {
    ++pos_;  // '['
    out.kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      GRAPHSD_RETURN_IF_ERROR(ParseValue(value, depth + 1));
      out.elements_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string& out) {
    ++pos_;  // '"'
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point; surrogate halves degrade to
          // '?' (the protocol never emits them).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            out += '?';
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue& out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Error("expected value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("malformed number");
    out.kind_ = JsonValue::Kind::kNumber;
    out.number_ = value;
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> ParseJson(std::string_view text, std::size_t max_bytes) {
  if (text.size() > max_bytes) {
    return InvalidArgumentError("json: input exceeds " +
                                std::to_string(max_bytes) + " bytes");
  }
  return JsonParser(text).Parse();
}

}  // namespace graphsd::service
