// CRC32C (Castagnoli) checksums for end-to-end on-disk integrity.
//
// Every payload file of a grid dataset (sub-block edges/weights/index,
// degrees) is checksummed at build time and verified on load, so bit rot or
// torn writes surface as `kCorruptData` instead of silent wrong answers.
// Software table-driven implementation: portable, ~1 GB/s, no intrinsics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace graphsd {

/// Extends a running CRC32C with `data`. Start from `crc = 0`; the result of
/// one call feeds the next, so large files can be checksummed in chunks:
///   crc = Crc32c(Crc32c(0, a), b)  ==  Crc32c(0, ab)
std::uint32_t Crc32c(std::uint32_t crc, const void* data,
                     std::size_t size) noexcept;

/// One-shot CRC32C of a byte span.
inline std::uint32_t Crc32c(std::span<const std::uint8_t> data) noexcept {
  return Crc32c(0, data.data(), data.size());
}

}  // namespace graphsd
