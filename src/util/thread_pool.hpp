// A small fixed-size thread pool with a blocking `ParallelFor`.
//
// GraphSD parallelizes edge application *within* a destination interval;
// combines are commutative atomics, so chunk scheduling order never changes
// results. The pool is created once per engine run and reused across
// iterations (no per-iteration thread churn). The prefetch pipeline
// (io/prefetch.hpp) runs its loader on a dedicated single-worker pool.
//
// A task that throws does not kill the worker: the first exception is
// captured and rethrown to the next caller of Wait(). Later exceptions from
// the same batch are dropped — one failure is enough to fail the wait,
// matching Status-style first-error-wins propagation. ParallelFor is
// batch-scoped: it waits only on the chunks it submitted and rethrows only
// their first exception, so it neither drains unrelated Submit() tasks nor
// exchanges exceptions with them.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace graphsd {

class ThreadPool {
 public:
  /// Creates a pool of `num_threads` workers. `num_threads == 0` means
  /// hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Joins all workers. Pending tasks are drained first. An unconsumed
  /// task exception is swallowed (destructors must not throw).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Blocks until all previously submitted tasks have completed. If any
  /// task threw since the last Wait(), rethrows the first such exception
  /// (after all tasks have drained, so no task is left running).
  void Wait();

  /// Splits [begin, end) into chunks of at most `grain` items and runs
  /// `fn(chunk_begin, chunk_end)` across the pool. Blocks until this call's
  /// chunks are done (concurrently submitted unrelated tasks may still be
  /// running). With a single worker (or a tiny range) runs inline — zero
  /// overhead. Rethrows the first exception thrown by any of its own
  /// chunks; exceptions from unrelated Submit() tasks stay with Wait().
  /// Safe to call from inside a pool task (nested parallelism): the waiting
  /// caller claims and executes its own batch's chunks inline, so it never
  /// deadlocks behind workers that are themselves blocked in ParallelFor.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
  std::exception_ptr first_exception_;
};

}  // namespace graphsd
