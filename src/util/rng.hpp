// Deterministic, fast pseudo-random number generation for graph synthesis.
//
// All generators in GraphSD are seeded explicitly so every dataset, test and
// benchmark is bit-reproducible across runs and machines.
#pragma once

#include <cstdint>

namespace graphsd {

/// SplitMix64 — used to seed Xoshiro and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 random bits.
  std::uint64_t Next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the workhorse generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  /// Next 64 random bits.
  std::uint64_t Next() noexcept;

  /// Uniform double in [0, 1).
  double NextDouble() noexcept {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound) noexcept;

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) noexcept {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace graphsd
