// printf-style formatting into std::string with no truncation: sizes the
// output with a measuring vsnprintf pass, then writes. Replaces the
// fixed-buffer snprintf idiom in report/cost-model ToString paths, where a
// long dataset or engine name used to truncate silently.
#pragma once

#include <string>

namespace graphsd {

/// Returns the fully formatted string regardless of length.
std::string StrPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Appends the formatted string to `*out`.
void StrAppendf(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace graphsd
