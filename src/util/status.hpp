// Lightweight status/error handling for GraphSD.
//
// GraphSD uses two error channels, following the C++ Core Guidelines split
// between recoverable and programming errors:
//   * `Status` / `Result<T>` for recoverable runtime failures (I/O errors,
//     malformed input files, resource exhaustion) that callers may handle.
//   * `GRAPHSD_CHECK` for invariant violations (bugs) that abort with a
//     diagnostic; these are never meant to be caught.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace graphsd {

/// Error category for `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kIoError,
  kCorruptData,
  kUnimplemented,
  kInternal,
  kFailedPrecondition,
  kCancelled,
};

/// Human-readable name of a status code (e.g. "IoError").
std::string_view StatusCodeName(StatusCode code) noexcept;

/// A success-or-error value. Cheap to move; success carries no allocation.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  /// Constructs an error status with a message. `code` must not be kOk.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// Renders "Ok" or "<Code>: <message>".
  std::string ToString() const;

  /// Prefixes additional context onto an error message; no-op when ok.
  Status WithContext(std::string_view context) const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Convenience factory helpers mirroring absl-style constructors.
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status OutOfRangeError(std::string message);
Status ResourceExhaustedError(std::string message);
Status IoError(std::string message);
Status CorruptDataError(std::string message);
Status UnimplementedError(std::string message);
Status InternalError(std::string message);
Status FailedPreconditionError(std::string message);
Status CancelledError(std::string message);

/// Builds an IoError from the current `errno` with context.
Status ErrnoError(std::string_view context, int errno_value);

/// A value-or-status result. On success holds `T`; on failure holds the
/// error `Status`. Accessing `value()` on an error aborts (it is a bug).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Result<T> constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::get<T>(std::move(data_));
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result<T>::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

}  // namespace graphsd

/// Aborts with a diagnostic when `expr` is false. For invariants, not I/O.
#define GRAPHSD_CHECK(expr)                                              \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::graphsd::internal::CheckFailed(__FILE__, __LINE__, #expr, "");   \
    }                                                                    \
  } while (0)

/// Like GRAPHSD_CHECK but with a formatted context message.
#define GRAPHSD_CHECK_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::graphsd::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                    \
  } while (0)

/// Propagates an error status out of the enclosing function.
#define GRAPHSD_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::graphsd::Status status_ = (expr);          \
    if (!status_.ok()) return status_;           \
  } while (0)

#define GRAPHSD_INTERNAL_CONCAT2(a, b) a##b
#define GRAPHSD_INTERNAL_CONCAT(a, b) GRAPHSD_INTERNAL_CONCAT2(a, b)

/// Assigns the value of a Result<T> expression or propagates its error.
#define GRAPHSD_ASSIGN_OR_RETURN(lhs, expr)                           \
  GRAPHSD_INTERNAL_ASSIGN_OR_RETURN(                                  \
      GRAPHSD_INTERNAL_CONCAT(graphsd_result_, __LINE__), lhs, expr)

#define GRAPHSD_INTERNAL_ASSIGN_OR_RETURN(tmp, lhs, expr) \
  auto tmp = (expr);                                      \
  if (!tmp.ok()) {                                        \
    return tmp.status();                                  \
  }                                                       \
  lhs = std::move(tmp).value()
