// Minimal leveled logger. Single global sink (stderr by default); thread
// safe; printf-style formatting kept out of hot paths (logging below the
// configured level costs one branch).
#pragma once

#include <cstdarg>
#include <string_view>

namespace graphsd {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level. Messages below it are dropped.
void SetLogLevel(LogLevel level) noexcept;

/// Current global minimum level.
LogLevel GetLogLevel() noexcept;

/// Emits one formatted log line (printf semantics) at `level`.
void LogF(LogLevel level, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace graphsd

#define GRAPHSD_LOG_DEBUG(...) \
  ::graphsd::LogF(::graphsd::LogLevel::kDebug, __VA_ARGS__)
#define GRAPHSD_LOG_INFO(...) \
  ::graphsd::LogF(::graphsd::LogLevel::kInfo, __VA_ARGS__)
#define GRAPHSD_LOG_WARN(...) \
  ::graphsd::LogF(::graphsd::LogLevel::kWarning, __VA_ARGS__)
#define GRAPHSD_LOG_ERROR(...) \
  ::graphsd::LogF(::graphsd::LogLevel::kError, __VA_ARGS__)
