// Cooperative cancellation primitive.
//
// A `CancellationToken` is a tiny, lock-free tripwire shared between the
// party requesting a stop (signal handler, deadline watchdog, query
// service) and the code doing the work (engine round loop, executor pass
// loops, the prefetch loader).  Work never stops mid-write: each consumer
// polls `cancelled()` at its own safe points and unwinds with
// `StatusCode::kCancelled`, so the run always lands on a committed
// iteration boundary.
//
// The token lives in util — below the io layer — because `ReadQueue` and
// `PrefetchPipeline` poll it to drain in-flight I/O promptly.  The
// engine-facing surface (signal installation, deadline plumbing) is
// re-exported from core/cancellation.hpp.
//
// Every mutation is a relaxed/release atomic store on purpose: `Cancel`
// must be callable from a POSIX signal handler, so it may not allocate,
// lock, or touch errno.  Reasons are therefore `const char*` pointers to
// string literals (or other storage outliving the token), not owned
// strings.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.hpp"

namespace graphsd {

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token. Async-signal-safe: `reason` must point to storage
  /// that outlives the token (a string literal in practice). The first
  /// reason wins; later calls keep the original.
  void Cancel(const char* reason = "cancelled") noexcept {
    const char* expected = nullptr;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_release,
                                    std::memory_order_relaxed);
    cancelled_.store(true, std::memory_order_release);
  }

  /// Arms a deadline `seconds` from now; the token reads as cancelled once
  /// the deadline passes. A non-positive value disarms.
  void SetDeadline(double seconds) noexcept {
    if (seconds <= 0) {
      deadline_ns_.store(0, std::memory_order_release);
      return;
    }
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const std::int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    deadline_ns_.store(
        now_ns + static_cast<std::int64_t>(seconds * 1e9),
        std::memory_order_release);
  }

  /// Chains this token under `parent`: this token reads as cancelled when
  /// the parent is. Not thread-safe against concurrent polls; set up
  /// before the run starts.
  void set_parent(const CancellationToken* parent) noexcept {
    parent_ = parent;
  }

  bool cancelled() const noexcept {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
          deadline) {
        return true;
      }
    }
    return parent_ != nullptr && parent_->cancelled();
  }

  /// Why the token tripped ("cancelled", "SIGINT", "deadline exceeded", …).
  const char* reason() const noexcept {
    if (const char* r = reason_.load(std::memory_order_acquire); r != nullptr) {
      return r;
    }
    const std::int64_t deadline = deadline_ns_.load(std::memory_order_acquire);
    if (deadline != 0) {
      const auto now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
          deadline) {
        return "deadline exceeded";
      }
    }
    if (parent_ != nullptr && parent_->cancelled()) return parent_->reason();
    return "cancelled";
  }

  /// Ok while live; CancelledError(reason) once tripped. The poll-point
  /// idiom: `GRAPHSD_RETURN_IF_ERROR(cancel.Check());`
  Status Check() const {
    if (!cancelled()) return Status::Ok();
    return CancelledError(reason());
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<const char*> reason_{nullptr};
  std::atomic<std::int64_t> deadline_ns_{0};
  const CancellationToken* parent_ = nullptr;
};

}  // namespace graphsd
