// Small statistics helpers shared by the profiler, benches and reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <cstdint>
#include <string>
#include <vector>

namespace graphsd {

/// Online mean/min/max/stddev accumulator (Welford).
class RunningStat {
 public:
  /// Adds one observation.
  void Add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  double min() const noexcept { return n_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return n_ == 0 ? 0.0 : max_; }

  /// Sample variance (n-1 denominator); zero with fewer than two samples.
  double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  double stddev() const noexcept { return std::sqrt(variance()); }

  /// Resets to the empty state.
  void Reset() noexcept { *this = RunningStat(); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Power-of-two bucketed histogram for sizes/latencies.
class Log2Histogram {
 public:
  /// Records a value (values of 0 land in bucket 0).
  void Add(std::uint64_t value) noexcept;

  /// Number of recorded values.
  std::uint64_t TotalCount() const noexcept;

  /// Bucket index for a value: floor(log2(value)) + 1, 0 for value==0.
  static std::size_t BucketFor(std::uint64_t value) noexcept;

  /// Inclusive lower bound of bucket `b`.
  static std::uint64_t BucketLow(std::size_t b) noexcept;

  /// Multi-line rendering ("[4096, 8192): 17").
  std::string ToString() const;

  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_;
};

/// Formats a byte count as a human-readable string ("1.5 GiB").
std::string FormatBytes(std::uint64_t bytes);

/// Formats seconds adaptively ("3.42 s", "17.1 ms").
std::string FormatSeconds(double seconds);

}  // namespace graphsd
