// Checked integral narrowing for size/ID boundaries.
//
// GraphSD's on-disk formats use 32-bit vertex ids while in-memory containers
// report std::size_t; the conversion sites (Frontier::size, CLI argument
// parsing, builder vertex counts) used unchecked static_casts that would
// silently wrap past 2^32 vertices. CheckedCast aborts with a diagnostic
// instead — out-of-range here is always a programming or input-validation
// bug, never a recoverable condition.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

#include "util/status.hpp"

namespace graphsd {

/// True when `value` converts to `To` and back without changing value or
/// sign (for call sites that want to degrade instead of abort).
template <typename To, typename From>
constexpr bool FitsIn(From value) noexcept {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>,
                "FitsIn is for integral conversions only");
  if constexpr (std::is_signed_v<From> && std::is_unsigned_v<To>) {
    if (value < From{}) return false;
  }
  if constexpr (std::is_unsigned_v<From> && std::is_signed_v<To>) {
    // A modular round-trip can be the identity even when the cast flips the
    // sign (UINT64_MAX -> int64_t{-1} -> UINT64_MAX), so compare against
    // To's maximum directly; both sides are non-negative.
    return static_cast<std::uintmax_t>(value) <=
           static_cast<std::uintmax_t>(std::numeric_limits<To>::max());
  }
  return static_cast<From>(static_cast<To>(value)) == value;
}

/// static_cast<To>(value) that aborts if the value does not round-trip.
template <typename To, typename From>
constexpr To CheckedCast(From value) noexcept {
  GRAPHSD_CHECK_MSG(FitsIn<To>(value), "integral narrowing out of range");
  return static_cast<To>(value);
}

}  // namespace graphsd
