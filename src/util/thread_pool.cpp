#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/status.hpp"

namespace graphsd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GRAPHSD_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr pending = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(pending);
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  if (workers_.size() <= 1 || total <= grain) {
    fn(begin, end);
    return;
  }
  // Completion and exception delivery are scoped to this call's chunks via
  // a per-call batch: waiting on the pool-wide Wait() here would drain
  // unrelated previously-submitted tasks and could steal (or receive) their
  // first-exception slot. The batch is a chunk-claiming latch: helpers and
  // the *caller itself* pull chunks from a shared cursor, so a ParallelFor
  // issued from inside a pool task cannot deadlock behind workers that are
  // themselves blocked in ParallelFor — the caller simply runs the chunks
  // queued helpers never reached.
  struct Batch {
    const std::function<void(std::size_t, std::size_t)>* fn;
    std::size_t begin;
    std::size_t end;
    std::size_t grain;
    std::size_t num_chunks;
    std::atomic<std::size_t> next;
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr first_exception;
  };
  // `(total - 1) / grain + 1` never overflows, unlike the textbook
  // `(total + grain - 1) / grain` (total is >= 1 here).
  const std::size_t num_chunks = (total - 1) / grain + 1;
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->begin = begin;
  batch->end = end;
  batch->grain = grain;
  batch->num_chunks = num_chunks;
  batch->next.store(0, std::memory_order_relaxed);
  batch->remaining = num_chunks;

  // Dereferencing `*b.fn` is safe exactly when a claim succeeds: an
  // unfinished chunk keeps `remaining` above zero, which keeps the caller
  // (and the caller-owned `fn`) alive. A helper that wakes after the cursor
  // is exhausted touches only the shared_ptr-owned batch.
  //
  // The cursor claims chunk *indices*, not offsets: an offset cursor
  // advanced by `grain` past a range ending near SIZE_MAX wraps around and
  // re-claims (and re-executes) chunks. Index arithmetic stays in range:
  // `idx * grain <= total - 1`, so `begin + idx * grain < end`, and the
  // chunk end is formed by comparing the remaining span against the grain
  // instead of computing `chunk + grain` (which can also wrap).
  const auto run_chunks = [](Batch& b) {
    for (;;) {
      const std::size_t idx = b.next.fetch_add(1, std::memory_order_relaxed);
      if (idx >= b.num_chunks) return;
      const std::size_t chunk = b.begin + idx * b.grain;
      const std::size_t chunk_end =
          b.end - chunk > b.grain ? chunk + b.grain : b.end;
      std::exception_ptr thrown;
      try {
        (*b.fn)(chunk, chunk_end);
      } catch (...) {
        thrown = std::current_exception();
      }
      // Record and notify under the lock: once the waiter observes
      // remaining == 0 and reacquires the mutex it may rethrow and return,
      // so the notifier must be done with the exception slot by the time
      // the lock releases.
      std::lock_guard<std::mutex> lock(b.mutex);
      if (thrown != nullptr && b.first_exception == nullptr) {
        b.first_exception = thrown;
      }
      if (--b.remaining == 0) b.done.notify_all();
    }
  };

  // The caller counts as one runner; extra helpers beyond the chunk count
  // would only wake, find the cursor exhausted and exit.
  const std::size_t helpers = std::min(workers_.size(), num_chunks - 1);
  for (std::size_t t = 0; t < helpers; ++t) {
    Submit([batch, run_chunks] { run_chunks(*batch); });
  }
  run_chunks(*batch);
  std::unique_lock<std::mutex> lock(batch->mutex);
  batch->done.wait(lock, [&batch] { return batch->remaining == 0; });
  if (batch->first_exception != nullptr) {
    std::rethrow_exception(batch->first_exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = thrown;
      }
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace graphsd
