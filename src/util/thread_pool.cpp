#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "util/status.hpp"

namespace graphsd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    GRAPHSD_CHECK(!shutting_down_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (first_exception_ != nullptr) {
    std::exception_ptr pending = std::exchange(first_exception_, nullptr);
    lock.unlock();
    std::rethrow_exception(pending);
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<std::size_t>(1, grain);
  const std::size_t total = end - begin;
  if (workers_.size() <= 1 || total <= grain) {
    fn(begin, end);
    return;
  }
  // Completion and exception delivery are scoped to this call's chunks via
  // a per-call latch: waiting on the pool-wide Wait() here would drain
  // unrelated previously-submitted tasks and could steal (or receive) their
  // first-exception slot.
  struct Batch {
    std::mutex mutex;
    std::condition_variable done;
    std::size_t remaining;
    std::exception_ptr first_exception;
  };
  Batch batch;
  batch.remaining = (total + grain - 1) / grain;
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t chunk_end = std::min(end, chunk + grain);
    Submit([&fn, &batch, chunk, chunk_end] {
      std::exception_ptr thrown;
      try {
        fn(chunk, chunk_end);
      } catch (...) {
        thrown = std::current_exception();
      }
      // Notify under the lock: once the waiter observes remaining == 0 and
      // reacquires the mutex, `batch` may leave scope, so the notifier must
      // be done with it by the time the lock releases.
      std::lock_guard<std::mutex> lock(batch.mutex);
      if (thrown != nullptr && batch.first_exception == nullptr) {
        batch.first_exception = thrown;
      }
      if (--batch.remaining == 0) batch.done.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(batch.mutex);
  batch.done.wait(lock, [&batch] { return batch.remaining == 0; });
  if (batch.first_exception != nullptr) {
    std::rethrow_exception(batch.first_exception);
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (thrown != nullptr && first_exception_ == nullptr) {
        first_exception_ = thrown;
      }
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace graphsd
