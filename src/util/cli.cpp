#include "util/cli.hpp"

#include <cstdlib>

namespace graphsd {

void CliFlags::Define(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  flags_[name] = Flag{default_value, default_value, help};
}

Status CliFlags::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return InvalidArgumentError("unknown flag --" + name);
      }
      // Boolean-style flag if the next token is absent or another flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
      it->second.value = value;
      continue;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + name);
    }
    it->second.value = value;
  }
  return Status::Ok();
}

std::string CliFlags::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  GRAPHSD_CHECK_MSG(it != flags_.end(), "undefined flag: " + name);
  return it->second.value;
}

std::int64_t CliFlags::GetInt(const std::string& name) const {
  return std::strtoll(GetString(name).c_str(), nullptr, 10);
}

double CliFlags::GetDouble(const std::string& name) const {
  return std::strtod(GetString(name).c_str(), nullptr);
}

bool CliFlags::GetBool(const std::string& name) const {
  const std::string v = GetString(name);
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

std::string CliFlags::Help(const std::string& program) const {
  std::string out = "Usage: " + program + " [flags]\n";
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name + " (default: " + flag.default_value + ")\n      " +
           flag.help + "\n";
  }
  return out;
}

}  // namespace graphsd
