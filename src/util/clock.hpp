// Wall-clock timing plus a virtual clock used to charge modeled I/O time.
//
// GraphSD separates *measured* time (compute, on this machine) from
// *modeled* time (disk I/O, charged by io::IoCostModel). A `VirtualClock`
// accumulates modeled seconds; an `ExecutionReport` sums both. This is what
// lets the benchmarks reproduce the paper's HDD-era cost ratios on arbitrary
// hardware (see DESIGN.md §5.1).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace graphsd {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { Restart(); }

  /// Resets the start point to now.
  void Restart() noexcept { start_ = Now(); }

  /// Seconds elapsed since construction or last Restart().
  double Seconds() const noexcept {
    return std::chrono::duration<double>(Now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const noexcept { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  static Clock::time_point Now() noexcept { return Clock::now(); }
  Clock::time_point start_;
};

/// CPU seconds consumed by the calling thread so far
/// (CLOCK_THREAD_CPUTIME_ID). Unlike wall time this is immune to
/// preemption: a time-sliced thread accrues only the time it actually ran,
/// so a task's CPU delta is its machine-independent cost — equal to its
/// wall time when it had a core to itself. Returns 0 if the clock is
/// unavailable.
double ThreadCpuSeconds() noexcept;

/// Thread-safe accumulator of modeled (virtual) seconds.
///
/// Stored as integer nanoseconds so concurrent `Add` calls are exact and
/// associative regardless of interleaving.
class VirtualClock {
 public:
  /// Adds `seconds` of modeled time. Negative additions are a bug.
  void Add(double seconds) noexcept;

  /// Total accumulated modeled seconds.
  double Seconds() const noexcept {
    return static_cast<double>(nanos_.load(std::memory_order_relaxed)) * 1e-9;
  }

  /// Resets to zero.
  void Reset() noexcept { nanos_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> nanos_{0};
};

/// RAII accumulator: adds the elapsed wall time of its scope to `*sink`.
class ScopedWallAccumulator {
 public:
  explicit ScopedWallAccumulator(double* sink) noexcept : sink_(sink) {}
  ~ScopedWallAccumulator() { *sink_ += timer_.Seconds(); }

  ScopedWallAccumulator(const ScopedWallAccumulator&) = delete;
  ScopedWallAccumulator& operator=(const ScopedWallAccumulator&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace graphsd
