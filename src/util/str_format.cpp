#include "util/str_format.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/status.hpp"

namespace graphsd {
namespace {

void VAppendf(std::string* out, const char* format, std::va_list args) {
  std::va_list measure;
  va_copy(measure, args);
  const int needed = std::vsnprintf(nullptr, 0, format, measure);
  va_end(measure);
  GRAPHSD_CHECK(needed >= 0);  // encoding error in the format string
  const std::size_t base = out->size();
  out->resize(base + static_cast<std::size_t>(needed) + 1);
  std::vsnprintf(out->data() + base, static_cast<std::size_t>(needed) + 1,
                 format, args);
  out->resize(base + static_cast<std::size_t>(needed));
}

}  // namespace

std::string StrPrintf(const char* format, ...) {
  std::string out;
  std::va_list args;
  va_start(args, format);
  VAppendf(&out, format, args);
  va_end(args);
  return out;
}

void StrAppendf(std::string* out, const char* format, ...) {
  std::va_list args;
  va_start(args, format);
  VAppendf(out, format, args);
  va_end(args);
}

}  // namespace graphsd
