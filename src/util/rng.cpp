#include "util/rng.hpp"

namespace graphsd {

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 seeder(seed);
  for (auto& s : s_) s = seeder.Next();
}

std::uint64_t Xoshiro256::Next() noexcept {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Xoshiro256::NextBounded(std::uint64_t bound) noexcept {
  // Lemire's multiply-shift rejection method: unbiased and fast.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace graphsd
