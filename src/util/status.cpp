#include "util/status.hpp"

#include <cerrno>
#include <cstring>

namespace graphsd {

std::string_view StatusCodeName(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kCorruptData: return "CorruptData";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kCancelled: return "Cancelled";
  }
  return "UnknownCode";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string message(context);
  message += ": ";
  message += message_;
  return Status(code_, std::move(message));
}

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
Status IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}
Status CorruptDataError(std::string message) {
  return Status(StatusCode::kCorruptData, std::move(message));
}
Status UnimplementedError(std::string message) {
  return Status(StatusCode::kUnimplemented, std::move(message));
}
Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
Status CancelledError(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

Status ErrnoError(std::string_view context, int errno_value) {
  std::string message(context);
  message += ": ";
  message += std::strerror(errno_value);
  // Map the errno values callers branch on (retry policy, scheduler
  // degradation) onto distinct codes; everything else is a generic,
  // potentially transient, I/O error.
  StatusCode code = StatusCode::kIoError;
  switch (errno_value) {
    case ENOENT: code = StatusCode::kNotFound; break;
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      code = StatusCode::kResourceExhausted;
      break;
    default: break;
  }
  return Status(code, std::move(message));
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "GRAPHSD_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace graphsd
