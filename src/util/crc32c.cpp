#include "util/crc32c.hpp"

#include <array>

namespace graphsd {
namespace {

// Reflected Castagnoli polynomial (iSCSI / ext4 / RFC 3720).
constexpr std::uint32_t kPoly = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

std::uint32_t Crc32c(std::uint32_t crc, const void* data,
                     std::size_t size) noexcept {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  crc = ~crc;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace graphsd
