// Page-aligned byte buffer for direct I/O.
//
// O_DIRECT requires the user buffer, file offset, and transfer size to be
// aligned to the logical block size. `AlignedBuffer` owns memory aligned to
// `kDirectIoAlignment` (4 KiB, a safe superset of common block sizes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <span>
#include <utility>

#include "util/status.hpp"

namespace graphsd {

/// Alignment that satisfies O_DIRECT on all common Linux block devices.
inline constexpr std::size_t kDirectIoAlignment = 4096;

/// Rounds `n` up to a multiple of `alignment` (a power of two).
constexpr std::size_t AlignUp(std::size_t n, std::size_t alignment) noexcept {
  return (n + alignment - 1) & ~(alignment - 1);
}

/// Rounds `n` down to a multiple of `alignment` (a power of two).
constexpr std::size_t AlignDown(std::size_t n, std::size_t alignment) noexcept {
  return n & ~(alignment - 1);
}

/// Owning, movable, page-aligned byte buffer.
class AlignedBuffer {
 public:
  AlignedBuffer() noexcept = default;

  /// Allocates `size` bytes aligned to `alignment`. Size is rounded up to a
  /// full alignment multiple so the buffer is always usable for direct I/O.
  explicit AlignedBuffer(std::size_t size,
                         std::size_t alignment = kDirectIoAlignment) {
    Allocate(size, alignment);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  /// Ensures capacity for `size` bytes, reallocating if needed. Contents are
  /// not preserved on reallocation.
  void Reserve(std::size_t size,
               std::size_t alignment = kDirectIoAlignment) {
    if (size > capacity_) {
      Free();
      Allocate(size, alignment);
    }
    size_ = size;
  }

  std::uint8_t* data() noexcept { return data_; }
  const std::uint8_t* data() const noexcept { return data_; }

  /// Logical size (what the caller asked for, not the rounded capacity).
  std::size_t size() const noexcept { return size_; }

  /// Allocated capacity, a multiple of the alignment.
  std::size_t capacity() const noexcept { return capacity_; }

  bool empty() const noexcept { return size_ == 0; }

  std::span<std::uint8_t> span() noexcept { return {data_, size_}; }
  std::span<const std::uint8_t> span() const noexcept { return {data_, size_}; }

 private:
  void Allocate(std::size_t size, std::size_t alignment) {
    const std::size_t rounded = AlignUp(size == 0 ? alignment : size, alignment);
    void* p = std::aligned_alloc(alignment, rounded);
    if (p == nullptr) throw std::bad_alloc();
    data_ = static_cast<std::uint8_t*>(p);
    size_ = size;
    capacity_ = rounded;
  }

  void Free() noexcept {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace graphsd
