// Fixed-size concurrent bitset used for vertex frontiers and active masks.
//
// Bits are stored in 64-bit words; `Set`/`TestAndSet` use relaxed atomic RMW
// so multiple worker threads can mark vertices active concurrently. Counting
// and iteration are not linearizable with concurrent writers — callers
// sequence them at BSP iteration boundaries, which is exactly how frontiers
// are used.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace graphsd {

class ConcurrentBitset {
 public:
  ConcurrentBitset() = default;

  /// Creates a bitset of `size` bits, all clear.
  explicit ConcurrentBitset(std::size_t size) { Resize(size); }

  /// Resizes to `size` bits and clears everything.
  void Resize(std::size_t size);

  /// Number of bits.
  std::size_t size() const noexcept { return size_; }

  /// Sets bit `i` (relaxed atomic OR). Thread safe.
  void Set(std::size_t i) noexcept;

  /// Clears bit `i`. Thread safe.
  void Clear(std::size_t i) noexcept;

  /// Atomically sets bit `i`; returns true iff the bit was previously clear.
  /// The workhorse of frontier deduplication.
  bool TestAndSet(std::size_t i) noexcept;

  /// Reads bit `i`.
  bool Test(std::size_t i) const noexcept;

  /// Clears all bits. Not thread safe with concurrent writers.
  void ClearAll() noexcept;

  /// Sets all bits (the "everything active" frontier). Not thread safe.
  void SetAll() noexcept;

  /// Population count. Not linearizable with concurrent writers.
  std::size_t Count() const noexcept;

  /// True iff no bit is set.
  bool None() const noexcept { return Count() == 0; }

  /// Calls `fn(i)` for every set bit in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w].load(std::memory_order_relaxed);
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        const std::size_t index = w * 64 + static_cast<std::size_t>(bit);
        if (index >= size_) return;
        fn(index);
        word &= word - 1;
      }
    }
  }

  /// Calls `fn(i)` for every set bit in [begin, end).
  template <typename Fn>
  void ForEachSetInRange(std::size_t begin, std::size_t end, Fn&& fn) const {
    if (begin >= end || begin >= size_) return;
    if (end > size_) end = size_;
    const std::size_t first_word = begin / 64;
    const std::size_t last_word = (end - 1) / 64;
    for (std::size_t w = first_word; w <= last_word; ++w) {
      std::uint64_t word = words_[w].load(std::memory_order_relaxed);
      if (w == first_word) word &= ~0ULL << (begin % 64);
      if (w == last_word && (end % 64) != 0) word &= (1ULL << (end % 64)) - 1;
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

  /// Count of set bits in [begin, end).
  std::size_t CountInRange(std::size_t begin, std::size_t end) const noexcept;

  /// Copies another bitset's contents (sizes must match).
  void CopyFrom(const ConcurrentBitset& other) noexcept;

  /// Swaps contents with another bitset.
  void Swap(ConcurrentBitset& other) noexcept;

 private:
  std::size_t size_ = 0;
  std::vector<std::atomic<std::uint64_t>> words_;
};

}  // namespace graphsd
