// Tiny command-line flag parser used by the examples and benches.
//
// Supports `--name=value`, `--name value` and boolean `--name` forms.
// Unknown flags are an error so typos surface immediately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace graphsd {

class CliFlags {
 public:
  /// Declares a flag with a default value and help text.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Parses argv. Returns an error on unknown or malformed flags.
  Status Parse(int argc, const char* const* argv);

  /// Accessors; the flag must have been defined.
  std::string GetString(const std::string& name) const;
  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Renders a usage/help string listing every defined flag.
  std::string Help(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace graphsd
