#include "util/clock.hpp"

#include <ctime>

#include "util/status.hpp"

namespace graphsd {

double ThreadCpuSeconds() noexcept {
#ifdef CLOCK_THREAD_CPUTIME_ID
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
#else
  return 0;
#endif
}

void VirtualClock::Add(double seconds) noexcept {
  if (seconds <= 0) return;  // zero-cost events are fine; never subtract
  const auto nanos = static_cast<std::int64_t>(seconds * 1e9);
  nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

}  // namespace graphsd
