#include "util/clock.hpp"

#include "util/status.hpp"

namespace graphsd {

void VirtualClock::Add(double seconds) noexcept {
  if (seconds <= 0) return;  // zero-cost events are fine; never subtract
  const auto nanos = static_cast<std::int64_t>(seconds * 1e9);
  nanos_.fetch_add(nanos, std::memory_order_relaxed);
}

}  // namespace graphsd
