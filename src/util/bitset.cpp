#include "util/bitset.hpp"

#include "util/status.hpp"

namespace graphsd {

void ConcurrentBitset::Resize(std::size_t size) {
  size_ = size;
  const std::size_t words = (size + 63) / 64;
  // std::atomic is not movable; rebuild the vector.
  words_ = std::vector<std::atomic<std::uint64_t>>(words);
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void ConcurrentBitset::Set(std::size_t i) noexcept {
  words_[i / 64].fetch_or(1ULL << (i % 64), std::memory_order_relaxed);
}

void ConcurrentBitset::Clear(std::size_t i) noexcept {
  words_[i / 64].fetch_and(~(1ULL << (i % 64)), std::memory_order_relaxed);
}

bool ConcurrentBitset::TestAndSet(std::size_t i) noexcept {
  const std::uint64_t mask = 1ULL << (i % 64);
  const std::uint64_t old =
      words_[i / 64].fetch_or(mask, std::memory_order_relaxed);
  return (old & mask) == 0;
}

bool ConcurrentBitset::Test(std::size_t i) const noexcept {
  return (words_[i / 64].load(std::memory_order_relaxed) >> (i % 64)) & 1ULL;
}

void ConcurrentBitset::ClearAll() noexcept {
  for (auto& w : words_) w.store(0, std::memory_order_relaxed);
}

void ConcurrentBitset::SetAll() noexcept {
  for (auto& w : words_) w.store(~0ULL, std::memory_order_relaxed);
  // Mask out the bits beyond size_ in the final word so Count() is exact.
  if (size_ % 64 != 0 && !words_.empty()) {
    words_.back().store((1ULL << (size_ % 64)) - 1, std::memory_order_relaxed);
  }
}

std::size_t ConcurrentBitset::Count() const noexcept {
  std::size_t total = 0;
  for (const auto& w : words_) {
    total += static_cast<std::size_t>(
        __builtin_popcountll(w.load(std::memory_order_relaxed)));
  }
  return total;
}

std::size_t ConcurrentBitset::CountInRange(std::size_t begin,
                                           std::size_t end) const noexcept {
  std::size_t total = 0;
  ForEachSetInRange(begin, end, [&](std::size_t) { ++total; });
  return total;
}

void ConcurrentBitset::CopyFrom(const ConcurrentBitset& other) noexcept {
  GRAPHSD_CHECK(size_ == other.size_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w].store(other.words_[w].load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  }
}

void ConcurrentBitset::Swap(ConcurrentBitset& other) noexcept {
  std::swap(size_, other.size_);
  words_.swap(other.words_);
}

}  // namespace graphsd
