#include "util/stats.hpp"

#include <cstdio>

namespace graphsd {

void Log2Histogram::Add(std::uint64_t value) noexcept {
  const std::size_t b = BucketFor(value);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
}

std::uint64_t Log2Histogram::TotalCount() const noexcept {
  std::uint64_t total = 0;
  for (auto c : buckets_) total += c;
  return total;
}

std::size_t Log2Histogram::BucketFor(std::uint64_t value) noexcept {
  if (value == 0) return 0;
  return static_cast<std::size_t>(64 - __builtin_clzll(value));
}

std::uint64_t Log2Histogram::BucketLow(std::size_t b) noexcept {
  return b == 0 ? 0 : 1ULL << (b - 1);
}

std::string Log2Histogram::ToString() const {
  std::string out;
  char line[128];
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;
    std::snprintf(line, sizeof(line), "[%llu, %llu): %llu\n",
                  static_cast<unsigned long long>(BucketLow(b)),
                  static_cast<unsigned long long>(BucketLow(b + 1)),
                  static_cast<unsigned long long>(buckets_[b]));
    out += line;
  }
  return out;
}

std::string FormatBytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1024.0 && unit + 1 < std::size(kUnits)) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatSeconds(double seconds) {
  char buf[64];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace graphsd
