#include "util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <ctime>
#include <mutex>

namespace graphsd {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_sink_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
    case LogLevel::kOff: return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) noexcept {
  g_level.store(level, std::memory_order_relaxed);
}

LogLevel GetLogLevel() noexcept {
  return g_level.load(std::memory_order_relaxed);
}

void LogF(LogLevel level, const char* format, ...) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  char body[1024];
  va_list args;
  va_start(args, format);
  std::vsnprintf(body, sizeof(body), format, args);
  va_end(args);

  std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::fprintf(stderr, "[graphsd %s] %s\n", LevelTag(level), body);
}

}  // namespace graphsd
