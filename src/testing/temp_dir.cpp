#include "testing/temp_dir.hpp"

#include <stdlib.h>
#include <unistd.h>

#include <cerrno>
#include <filesystem>
#include <vector>

namespace graphsd::testing {

Result<ScratchDir> ScratchDir::Create(const std::string& base) {
  std::vector<char> tmpl(base.begin(), base.end());
  const char kSuffix[] = "XXXXXX";
  tmpl.insert(tmpl.end(), kSuffix, kSuffix + sizeof(kSuffix));
  if (mkdtemp(tmpl.data()) == nullptr) {
    return ErrnoError("mkdtemp " + base, errno);
  }
  ScratchDir dir;
  dir.path_.assign(tmpl.data());
  return dir;
}

void ScratchDir::Remove() {
  if (path_.empty()) return;
  std::error_code ec;  // best effort; nothing useful to do on failure
  std::filesystem::remove_all(path_, ec);
  path_.clear();
}

}  // namespace graphsd::testing
