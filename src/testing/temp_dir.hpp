// Owned scratch directory for differential-test runs.
//
// The difftest harness builds many small datasets per sweep; each lives in
// a subdirectory of one mkdtemp-owned root that is removed when the sweep
// finishes (CLI runs and ctest runs alike must not leak /tmp entries).
#pragma once

#include <string>

#include "util/status.hpp"

namespace graphsd::testing {

class ScratchDir {
 public:
  /// Creates `<base>XXXXXX` via mkdtemp. `base` defaults to a /tmp prefix.
  static Result<ScratchDir> Create(
      const std::string& base = "/tmp/graphsd_difftest_");

  ScratchDir(ScratchDir&& other) noexcept { *this = std::move(other); }
  ScratchDir& operator=(ScratchDir&& other) noexcept {
    Remove();
    path_ = std::move(other.path_);
    other.path_.clear();
    return *this;
  }
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;
  ~ScratchDir() { Remove(); }

  const std::string& path() const noexcept { return path_; }

  /// Releases ownership: the directory is kept on disk.
  std::string Release() {
    std::string p = std::move(path_);
    path_.clear();
    return p;
  }

 private:
  ScratchDir() = default;
  void Remove();

  std::string path_;
};

}  // namespace graphsd::testing
