// Registry of every engine algorithm for the differential harness.
//
// Each algorithm carries its comparison class (DESIGN.md §11), which
// defines how strictly engine results must match the oracle under a given
// configuration:
//
//   kMonotone       — idempotent min/max combine (BFS, CC, SSSP, widest
//                     path). Values are bitwise-identical to the oracle
//                     under *every* configuration; iteration counts equal
//                     the oracle's with cross-iteration off and fall in
//                     [1, 2·oracle + 1] with it on (a cross apply can
//                     steal a wave-t activation, delaying a push one wave;
//                     column-end sealing can chain values through
//                     ascending intervals, finishing early).
//   kSumThreshold   — consumable-sum programs with an activation threshold
//                     (PR-Delta, PPR). Bitwise + iteration-equal at one
//                     thread with cross-iteration off; fixpoint-equal
//                     within float tolerance otherwise.
//   kFixedIteration — budget-driven gather programs (PageRank). Iteration
//                     counts always equal the budget; values bitwise at one
//                     thread, tolerance at N.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "core/program.hpp"
#include "util/status.hpp"

namespace graphsd::testing {

enum class AlgoClass { kMonotone, kSumThreshold, kFixedIteration };

struct AlgoSpec {
  const char* name;
  bool needs_root;
  bool needs_weights;
  bool push;  // PushProgram (frontier-driven) vs GatherProgram
  AlgoClass cls;
};

/// Every algorithm the harness sweeps, in a stable order.
std::span<const AlgoSpec> RegisteredAlgos();

/// Spec for `name`; kNotFound for unknown algorithms.
Result<AlgoSpec> AlgoSpecFor(const std::string& name);

/// Constructs the named program. `root` is ignored by rootless algorithms.
Result<std::unique_ptr<core::Program>> MakeProgram(const std::string& name,
                                                   VertexId root);

}  // namespace graphsd::testing
