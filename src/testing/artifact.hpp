// Self-contained repro artifacts for differential-test divergences.
//
// When the sweep finds a divergence it minimizes the failing case and
// writes everything needed to re-execute it — the (minimized) graph, the
// engine configuration, the algorithm, and any injected fault — to one
// human-readable text file. `graphsd difftest --replay <file>` re-runs the
// trial deterministically and reports the first diverging vertex.
//
// Format (line-oriented, '#' comments ignored):
//
//   graphsd-difftest-repro v1
//   seed <u64>                 # originating sweep seed (provenance only)
//   family <string>            # graph family tag (provenance only)
//   invariant <string>         # which invariant failed (provenance only)
//   algo <name>
//   root <vertex>
//   codec none|varint-delta
//   p <u32>
//   model auto|on_demand|full
//   cross_iteration 0|1
//   prefetch_depth <u32>
//   threads <u32>
//   compute_threads <u32>      # destination shards; absent in old files (= 1)
//   fault none|drop_max_edge
//   vertices <u32>
//   edges <u64>
//   weighted 0|1
//   e <src> <dst> [<weight>]   # weight in C hex-float (%a) — exact
//   end
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.hpp"
#include "util/status.hpp"

namespace graphsd::testing {

/// Fault deliberately injected into the engine-side program, used to prove
/// the harness catches real divergences (and to replay that proof).
enum class EngineFault : std::uint8_t {
  kNone,
  /// Drop Apply for the lexicographically largest (src, dst) edge.
  kDropMaxEdge,
};

struct ReproArtifact {
  std::uint64_t seed = 0;
  std::string family;
  std::string invariant;
  std::string algo;
  VertexId root = 0;
  std::string codec = "none";
  std::uint32_t p = 1;
  std::string model = "auto";  // auto | on_demand | full
  bool cross_iteration = false;
  std::uint32_t prefetch_depth = 0;
  std::uint32_t threads = 1;
  std::uint32_t compute_threads = 1;
  EngineFault fault = EngineFault::kNone;
  EdgeList graph{0};
};

/// Serializes `artifact` to `path` (overwrites).
Status WriteArtifact(const ReproArtifact& artifact, const std::string& path);

/// Parses an artifact file; kInvalidArgument on any malformed line.
Result<ReproArtifact> ReadArtifact(const std::string& path);

const char* FaultName(EngineFault fault);

}  // namespace graphsd::testing
