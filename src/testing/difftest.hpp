// Differential test harness: real engine vs in-memory BSP oracle.
//
// A *trial* runs one algorithm over one built grid dataset under one engine
// configuration and checks the DESIGN.md §11 invariants against
// RunReferenceBsp:
//
//   * value equality     — bitwise (monotone algorithms always; others at
//                          one thread with cross-iteration off) or within
//                          rel 1e-9 / abs 1e-12 tolerance;
//   * iteration counts   — equal to the oracle (monotone with
//                          cross-iteration off, fixed-budget gather always;
//                          sum-threshold at one thread with cross off), or
//                          within [1, 2·oracle + 1] (monotone with
//                          cross-iteration on: pre-execution can both
//                          accelerate and delay wave counts — see
//                          program_factory.hpp);
//   * frontier equality  — the frontier set entering every BSP iteration,
//                          whenever the engine is plain-BSP-faithful
//                          (cross-iteration off and the class makes the
//                          activation set deterministic).
//
// A *sweep* generates seeded graph cases, builds each across raw and
// varint-delta datasets with varying P, and runs every registered
// algorithm through forced-SCIU / forced-FCIU / scheduler-auto
// configurations with rotating prefetch depth, thread count, compute
// shard count and cross-iteration setting. The first divergence is minimized (ddmin over
// edges, then vertex-range shrink) and persisted as a replayable artifact.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "io/device.hpp"
#include "partition/grid_dataset.hpp"
#include "testing/artifact.hpp"
#include "util/status.hpp"

namespace graphsd::testing {

/// One engine configuration to check against the oracle.
struct TrialConfig {
  std::string algo;
  /// Per-round I/O model: "auto" (scheduler decides), "on_demand"
  /// (SCIU-forced), "full" (FCIU-forced), "semi" (semi-external-forced:
  /// RAM-resident state + skip summaries; follows cross=false invariant
  /// semantics because semi rounds are always one plain BSP iteration).
  std::string model = "auto";
  bool cross_iteration = false;
  std::uint32_t prefetch_depth = 0;
  std::uint32_t threads = 1;
  /// Destination-interval compute shards (EngineOptions::compute_threads,
  /// core/sharded_apply.hpp). Sharding preserves the serial per-destination
  /// application order, so this axis must never relax an invariant — any
  /// value must reproduce the shards=1 trial bitwise.
  std::uint32_t compute_threads = 1;
  /// Deliberate engine-side fault (push algorithms only) for harness
  /// self-tests.
  EngineFault fault = EngineFault::kNone;
};

/// First point where engine and oracle disagree.
struct Divergence {
  /// "value" | "iterations" | "frontier" | "status".
  std::string invariant;
  VertexId vertex = 0;
  std::uint32_t iteration = 0;
  double oracle_value = 0.0;
  double engine_value = 0.0;
  std::uint32_t oracle_iterations = 0;
  std::uint32_t engine_iterations = 0;
  std::string detail;
};

std::string DescribeDivergence(const Divergence& d);

/// A grid dataset (plus its owning device) built for one graph case.
struct BuiltDataset {
  std::unique_ptr<io::Device> device;
  std::unique_ptr<partition::GridDataset> dataset;
  std::string codec;
  std::uint32_t p = 0;  // effective P from the manifest (builder may clamp)
};

/// Builds `graph` into `dir` with the given codec and interval count.
Result<BuiltDataset> BuildCaseDataset(const EdgeList& graph,
                                      const std::string& codec,
                                      std::uint32_t p, const std::string& dir);

/// Runs one trial. Returns nullopt when every invariant holds, the first
/// divergence otherwise. A hard error means the trial could not execute at
/// all (bad algo name, dataset I/O failure) — engine-run failures on valid
/// input surface as a "status" divergence, not an error.
Result<std::optional<Divergence>> RunTrial(const EdgeList& graph,
                                           VertexId root,
                                           const partition::GridDataset& dataset,
                                           const TrialConfig& config);

struct SweepOptions {
  std::uint64_t seed0 = 1;
  std::uint32_t num_seeds = 8;
  /// Where minimized repro artifacts are written; empty disables artifacts.
  std::string artifact_dir;
  bool stop_on_divergence = true;
  /// Injected into every push-algorithm trial (harness self-test).
  EngineFault fault = EngineFault::kNone;
  /// Optional per-seed progress sink.
  std::function<void(const std::string&)> progress;
  /// Trial budget for artifact minimization.
  std::uint32_t minimize_budget = 40;
};

struct SweepSummary {
  std::uint64_t combos_run = 0;
  std::uint64_t graphs = 0;
  std::uint64_t datasets_built = 0;
  std::vector<Divergence> divergences;
  std::vector<std::string> artifact_paths;
};

/// Runs the randomized sweep. Divergences are collected in the summary;
/// the return status is only non-OK when the harness itself fails.
Result<SweepSummary> RunSweep(const SweepOptions& options);

// --- Kill-and-resume axis (DESIGN.md §12) --------------------------------
//
// Crash-safety counterpart of the oracle sweep: instead of comparing the
// engine against the BSP oracle, a kill-resume trial compares the engine
// against *itself* — an uninterrupted run vs a run that is cooperatively
// killed (checkpointing every iteration), optionally has its newest
// checkpoint slot damaged, and then resumes from disk. All runs execute at
// one thread with overlap-aware accounting off, so both segments are
// bit-deterministic and the final values must match the uninterrupted run
// bitwise for every algorithm class.

struct KillResumeConfig {
  std::string algo;
  /// "on_demand" | "full" | "semi" | "auto". "auto" stays deterministic here
  /// because overlap accounting is off: the scheduler then sees only modeled
  /// costs.
  std::string model = "on_demand";
  bool cross_iteration = false;
  std::uint32_t prefetch_depth = 0;
  /// Where to kill, >= 1. Push algorithms kill at this committed iteration
  /// boundary (the frontier probe trips the token); gather algorithms — and
  /// push with `midround_kill` — trip the token from inside the program at
  /// a call count derived from this knob, exercising the mid-round
  /// rollback-to-boundary path.
  std::uint32_t kill_iteration = 1;
  /// Push only: kill mid-round via an Apply-counting wrapper instead of at
  /// the iteration boundary.
  bool midround_kill = false;
  /// Damage the newest checkpoint slot before resuming: 0 = intact,
  /// 1 = single bit flip, 2 = truncation. Applied only when both slots
  /// decode valid, so the older slot always remains as the fallback.
  int corrupt_newest = 0;
};

/// Runs one kill-resume trial under `scratch_dir` (which receives the
/// checkpoint directory). Returns nullopt when the resumed run reproduces
/// the uninterrupted run bitwise; the first divergence otherwise.
Result<std::optional<Divergence>> RunKillResumeTrial(
    const EdgeList& graph, VertexId root,
    const partition::GridDataset& dataset, const std::string& scratch_dir,
    const KillResumeConfig& config);

struct KillResumeSweepOptions {
  std::uint64_t seed0 = 1;
  std::uint32_t num_seeds = 3;
  bool stop_on_divergence = true;
  /// Optional per-seed progress sink.
  std::function<void(const std::string&)> progress;
};

/// Randomized kill/resume sweep: every registered algorithm x raw and
/// varint-delta datasets x all four I/O models, with kill point, kill
/// style, cross-iteration, prefetch depth and slot corruption rotating
/// across combos. Three seeds already cover 126 combos.
Result<SweepSummary> RunKillResumeSweep(const KillResumeSweepOptions& options);

/// Shrinks `artifact`'s graph in place (edge ddmin, then vertex-range
/// shrink) while its divergence persists. Uses at most `budget`
/// build-and-run trials under `scratch_dir`.
Status MinimizeArtifact(ReproArtifact& artifact, const std::string& scratch_dir,
                        std::uint32_t budget = 40);

/// Re-executes an artifact's trial deterministically. Returns the
/// reproduced divergence, or nullopt when the artifact no longer diverges
/// (e.g. the bug has been fixed).
Result<std::optional<Divergence>> ReplayArtifact(const ReproArtifact& artifact,
                                                 const std::string& scratch_dir);

}  // namespace graphsd::testing
