// Seeded random graph generation for the differential harness.
//
// Every case is derived deterministically from a single 64-bit seed: the
// family, the size, the weights, the root, and any pathological mutations
// (self-loops, duplicate edges, isolated high-id tails, disconnection) all
// come from one SplitMix64 stream, so a seed alone reproduces the graph
// bit-for-bit on any machine.
#pragma once

#include <cstdint>
#include <string>

#include "graph/edge_list.hpp"

namespace graphsd::testing {

struct GraphCase {
  /// Human-readable family tag recorded in repro artifacts
  /// (e.g. "power_law+self_loops+dup_edges").
  std::string family;
  EdgeList list;
  /// Root for rooted algorithms; always a valid vertex id.
  VertexId root = 0;
};

/// Deterministically generates the graph case for `seed`. Sizes are kept
/// small (≤ ~160 vertices, ≤ ~1000 edges) so a full oracle-vs-engine sweep
/// over one case takes milliseconds.
GraphCase GenerateGraphCase(std::uint64_t seed);

}  // namespace graphsd::testing
