#include "testing/reference_engine.hpp"

#include <algorithm>
#include <utility>

#include "core/frontier.hpp"
#include "core/vertex_state.hpp"

namespace graphsd::testing {
namespace {

using core::AccumSlot;
using core::ContribSlot;
using core::Frontier;
using core::GatherProgram;
using core::Program;
using core::ProgramKind;
using core::PushProgram;
using core::VertexState;

std::vector<VertexId> FrontierIds(const Frontier& frontier) {
  std::vector<VertexId> ids;
  frontier.ForEachActive(
      [&](std::size_t v) { ids.push_back(static_cast<VertexId>(v)); });
  return ids;
}

Result<ReferenceResult> RunPush(PushProgram& program, const EdgeList& graph,
                                VertexState& state,
                                const ReferenceOptions& options) {
  const VertexId n = graph.num_vertices();
  const auto& edges = graph.edges();
  const auto& weights = graph.weights();
  // Mirror the engine: weights are streamed only when the program asks for
  // them on a weighted dataset; everything else applies with weight 1.
  const bool weighted = graph.weighted() && program.needs_weights();

  ReferenceResult result;
  Frontier frontier(n);
  Frontier next(n);
  program.Init(state, frontier);
  if (options.record_frontiers) result.frontiers.push_back(FrontierIds(frontier));

  const std::uint32_t budget =
      std::min(program.max_iterations(), options.max_iterations);
  while (!frontier.Empty()) {
    if (result.iterations >= budget) {
      if (result.iterations >= options.max_iterations) {
        return InternalError("reference BSP did not converge within " +
                             std::to_string(options.max_iterations) +
                             " iterations (algorithm: " + program.name() +
                             ")");
      }
      break;  // the program's own iteration budget ended the run
    }
    frontier.ForEachActive([&](std::size_t v) {
      program.MakeContribution(state, static_cast<VertexId>(v),
                               ContribSlot::kPrimary);
    });
    next.Clear();
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const Edge& e = edges[k];
      if (!frontier.IsActive(e.src)) continue;
      const Weight w = weighted ? weights[k] : Weight{1};
      if (program.Apply(state, e.src, e.dst, w, ContribSlot::kPrimary)) {
        next.Activate(e.dst);
      }
    }
    frontier.Swap(next);
    ++result.iterations;
    if (options.record_frontiers) {
      result.frontiers.push_back(FrontierIds(frontier));
    }
  }
  return result;
}

Result<ReferenceResult> RunGather(GatherProgram& program,
                                  const EdgeList& graph, VertexState& state,
                                  const ReferenceOptions& options) {
  const VertexId n = graph.num_vertices();
  const auto& edges = graph.edges();
  const auto& weights = graph.weights();
  const bool weighted = graph.weighted() && program.needs_weights();

  ReferenceResult result;
  Frontier unused(n);
  program.Init(state, unused);

  const std::uint32_t budget =
      std::min(program.max_iterations(), options.max_iterations);
  while (result.iterations < budget) {
    for (VertexId v = 0; v < n; ++v) {
      program.MakeContribution(state, v, ContribSlot::kPrimary);
    }
    program.ResetAccum(state, AccumSlot::kA);
    for (std::size_t k = 0; k < edges.size(); ++k) {
      const Edge& e = edges[k];
      const Weight w = weighted ? weights[k] : Weight{1};
      program.Accumulate(state, e.src, e.dst, w, ContribSlot::kPrimary,
                         AccumSlot::kA);
    }
    program.Finalize(state, 0, n, AccumSlot::kA);
    ++result.iterations;
  }
  return result;
}

}  // namespace

Result<ReferenceResult> RunReferenceBsp(Program& program,
                                        const EdgeList& graph,
                                        const ReferenceOptions& options) {
  GRAPHSD_RETURN_IF_ERROR(graph.Validate());

  // The oracle's apply order is the sub-block sort order: (src, dst)
  // lexicographic, weights carried along.
  EdgeList sorted = graph;
  sorted.SortBySource();

  const std::vector<std::uint32_t> degrees = sorted.OutDegrees();
  program.Bind(degrees);
  VertexState state(sorted.num_vertices(), program.num_value_arrays(),
                    program.kind() == ProgramKind::kGather);

  Result<ReferenceResult> result =
      program.kind() == ProgramKind::kPush
          ? RunPush(static_cast<PushProgram&>(program), sorted, state, options)
          : RunGather(static_cast<GatherProgram&>(program), sorted, state,
                      options);
  GRAPHSD_RETURN_IF_ERROR(result.status());
  result->values.resize(sorted.num_vertices());
  for (VertexId v = 0; v < sorted.num_vertices(); ++v) {
    result->values[v] = program.ValueOf(state, v);
  }
  return result;
}

}  // namespace graphsd::testing
