#include "testing/artifact.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

namespace graphsd::testing {
namespace {

Status Malformed(const std::string& path, std::size_t line_no,
                 const std::string& why) {
  return InvalidArgumentError("repro artifact " + path + " line " +
                              std::to_string(line_no) + ": " + why);
}

}  // namespace

const char* FaultName(EngineFault fault) {
  return fault == EngineFault::kDropMaxEdge ? "drop_max_edge" : "none";
}

Status WriteArtifact(const ReproArtifact& a, const std::string& path) {
  std::ostringstream out;
  out << "graphsd-difftest-repro v1\n";
  out << "seed " << a.seed << "\n";
  out << "family " << (a.family.empty() ? "unknown" : a.family) << "\n";
  out << "invariant " << (a.invariant.empty() ? "unknown" : a.invariant)
      << "\n";
  out << "algo " << a.algo << "\n";
  out << "root " << a.root << "\n";
  out << "codec " << a.codec << "\n";
  out << "p " << a.p << "\n";
  out << "model " << a.model << "\n";
  out << "cross_iteration " << (a.cross_iteration ? 1 : 0) << "\n";
  out << "prefetch_depth " << a.prefetch_depth << "\n";
  out << "threads " << a.threads << "\n";
  out << "compute_threads " << a.compute_threads << "\n";
  out << "fault " << FaultName(a.fault) << "\n";
  out << "vertices " << a.graph.num_vertices() << "\n";
  out << "edges " << a.graph.num_edges() << "\n";
  out << "weighted " << (a.graph.weighted() ? 1 : 0) << "\n";
  const auto& edges = a.graph.edges();
  const auto& weights = a.graph.weights();
  char buf[64];
  for (std::size_t k = 0; k < edges.size(); ++k) {
    out << "e " << edges[k].src << " " << edges[k].dst;
    if (a.graph.weighted()) {
      // %a round-trips the float exactly through strtof.
      std::snprintf(buf, sizeof buf, " %a", static_cast<double>(weights[k]));
      out << buf;
    }
    out << "\n";
  }
  out << "end\n";

  std::ofstream file(path, std::ios::trunc);
  if (!file) return InternalError("cannot open " + path + " for writing");
  file << out.str();
  file.flush();
  if (!file) return InternalError("short write to " + path);
  return Status::Ok();
}

Result<ReproArtifact> ReadArtifact(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open repro artifact " + path);

  ReproArtifact a;
  std::uint32_t vertices = 0;
  std::uint64_t edge_count = 0;
  bool weighted = false;
  bool saw_header = false;
  bool saw_end = false;
  std::vector<Edge> edges;
  std::vector<Weight> weights;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (!saw_header) {
      if (line != "graphsd-difftest-repro v1") {
        return Malformed(path, line_no, "bad header: " + line);
      }
      saw_header = true;
      continue;
    }
    std::istringstream in(line);
    std::string key;
    in >> key;
    if (key == "end") {
      saw_end = true;
      break;
    }
    if (key == "e") {
      Edge e{};
      in >> e.src >> e.dst;
      if (!in) return Malformed(path, line_no, "bad edge line");
      if (weighted) {
        std::string tok;
        in >> tok;
        if (tok.empty()) return Malformed(path, line_no, "missing weight");
        char* endp = nullptr;
        const float w = std::strtof(tok.c_str(), &endp);
        if (endp == tok.c_str() || *endp != '\0') {
          return Malformed(path, line_no, "bad weight: " + tok);
        }
        weights.push_back(w);
      }
      edges.push_back(e);
      continue;
    }
    std::string value;
    in >> value;
    if (!in) return Malformed(path, line_no, "missing value for key " + key);
    if (key == "seed") {
      a.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "family") {
      a.family = value;
    } else if (key == "invariant") {
      a.invariant = value;
    } else if (key == "algo") {
      a.algo = value;
    } else if (key == "root") {
      a.root = static_cast<VertexId>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "codec") {
      a.codec = value;
    } else if (key == "p") {
      a.p = static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "model") {
      if (value != "auto" && value != "on_demand" && value != "full") {
        return Malformed(path, line_no, "bad model: " + value);
      }
      a.model = value;
    } else if (key == "cross_iteration") {
      a.cross_iteration = value == "1";
    } else if (key == "prefetch_depth") {
      a.prefetch_depth =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "threads") {
      a.threads =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "compute_threads") {
      a.compute_threads =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "fault") {
      if (value == "none") {
        a.fault = EngineFault::kNone;
      } else if (value == "drop_max_edge") {
        a.fault = EngineFault::kDropMaxEdge;
      } else {
        return Malformed(path, line_no, "bad fault: " + value);
      }
    } else if (key == "vertices") {
      vertices =
          static_cast<std::uint32_t>(std::strtoul(value.c_str(), nullptr, 10));
    } else if (key == "edges") {
      edge_count = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "weighted") {
      weighted = value == "1";
    } else {
      return Malformed(path, line_no, "unknown key: " + key);
    }
  }
  if (!saw_header) return Malformed(path, line_no, "missing header");
  if (!saw_end) return Malformed(path, line_no, "missing 'end' terminator");
  if (edges.size() != edge_count) {
    return Malformed(path, line_no,
                     "edge count mismatch: declared " +
                         std::to_string(edge_count) + ", found " +
                         std::to_string(edges.size()));
  }
  if (a.threads == 0) return Malformed(path, line_no, "threads must be >= 1");
  if (a.compute_threads == 0) {
    return Malformed(path, line_no, "compute_threads must be >= 1");
  }
  if (a.p == 0) return Malformed(path, line_no, "p must be >= 1");

  a.graph = EdgeList(vertices);
  for (std::size_t k = 0; k < edges.size(); ++k) {
    if (weighted) {
      a.graph.AddEdge(edges[k].src, edges[k].dst, weights[k]);
    } else {
      a.graph.AddEdge(edges[k].src, edges[k].dst);
    }
  }
  GRAPHSD_RETURN_IF_ERROR(a.graph.Validate());
  if (a.root >= a.graph.num_vertices()) {
    return Malformed(path, line_no, "root out of range");
  }
  return a;
}

}  // namespace graphsd::testing
