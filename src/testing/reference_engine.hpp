// In-memory reference engine: textbook BSP, the difftest oracle.
//
// Executes a core::Program directly over a (src, dst)-sorted edge list —
// single threaded, fully in memory, no grid, no scheduler, no
// cross-iteration updates, no I/O. One BSP iteration snapshots every active
// vertex's contribution, applies every edge whose source is active in
// ascending (src, dst) order, and swaps in the set of newly-activated
// destinations as the next frontier.
//
// Because the real engine's column-major grid traversal delivers each
// destination its contributions in ascending source order (and its
// single-thread reduction order is therefore identical to this loop), the
// oracle's final values are *bitwise* comparable for every algorithm at
// num_threads = 1 with cross-iteration off, and for monotone/idempotent
// algorithms (BFS, CC, SSSP, widest path) under every configuration. The
// invariant classes are spelled out in DESIGN.md §11.
#pragma once

#include <cstdint>
#include <vector>

#include "core/program.hpp"
#include "graph/edge_list.hpp"
#include "util/status.hpp"

namespace graphsd::testing {

struct ReferenceOptions {
  /// Safety net: an algorithm that fails to converge within this many BSP
  /// iterations yields kDeadlineExceeded-like failure instead of spinning.
  std::uint32_t max_iterations = 1u << 20;
  /// Record the frontier entering every iteration (index 0 = the initial
  /// frontier, index k = the frontier entering iteration k). The final
  /// recorded entry is the empty frontier that ended the run.
  bool record_frontiers = true;
};

struct ReferenceResult {
  /// BSP iterations executed until the frontier drained (or the program's
  /// own iteration budget, for gather programs).
  std::uint32_t iterations = 0;
  /// Program::ValueOf for every vertex after convergence.
  std::vector<double> values;
  /// Frontier entering iteration k, ascending vertex ids (push programs
  /// only; empty for gather programs and when record_frontiers is off).
  std::vector<std::vector<VertexId>> frontiers;
};

/// Runs `program` to convergence over `graph` under plain BSP semantics.
/// The graph does not need to be pre-sorted; a sorted copy is taken.
Result<ReferenceResult> RunReferenceBsp(core::Program& program,
                                        const EdgeList& graph,
                                        const ReferenceOptions& options = {});

}  // namespace graphsd::testing
