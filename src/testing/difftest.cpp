#include "testing/difftest.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <span>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <utility>

#include "core/checkpoint.hpp"
#include "core/engine.hpp"
#include "io/file.hpp"
#include "partition/grid_builder.hpp"
#include "testing/graph_cases.hpp"
#include "testing/program_factory.hpp"
#include "testing/reference_engine.hpp"
#include "testing/temp_dir.hpp"
#include "util/rng.hpp"

namespace graphsd::testing {
namespace {

using core::ContribSlot;
using core::EngineOptions;
using core::Frontier;
using core::GraphSDEngine;
using core::Program;
using core::PushProgram;
using core::RoundModelChoice;
using core::VertexState;

// Fixed-iteration gather (PageRank at N threads): only floating-point
// reassociation separates engine from oracle — tight tolerance.
constexpr double kRelTol = 1e-9;
constexpr double kAbsTol = 1e-12;
// Sum-threshold push (PR-Delta, PPR) in non-bitwise configs: execution
// order decides *which* sub-epsilon residuals are abandoned unpushed, so
// final values differ by up to ~n·ε/(1-d) ≈ 1e-6 at the harness's graph
// sizes; a real bug (lost edge, bad accumulate) shifts values by orders of
// magnitude more.
constexpr double kRelTolThreshold = 1e-6;
constexpr double kAbsTolThreshold = 2e-6;

// Engine-side fault injector: suppresses Apply for every copy of the
// lexicographically largest (src, dst) pair. Defined over edge *values*
// (not positions) so the dropped set is identical no matter how the grid
// reorders edges — the oracle, which runs the unwrapped program, then
// disagrees deterministically.
class DropEdgePushProgram final : public PushProgram {
 public:
  DropEdgePushProgram(std::unique_ptr<PushProgram> inner, Edge target)
      : inner_(std::move(inner)), target_(target) {}

  std::string name() const override { return inner_->name(); }
  bool needs_weights() const override { return inner_->needs_weights(); }
  std::uint32_t num_value_arrays() const override {
    return inner_->num_value_arrays();
  }
  void Bind(const std::vector<std::uint32_t>& out_degrees) override {
    inner_->Bind(out_degrees);
  }
  void Init(VertexState& state, Frontier& initial) override {
    inner_->Init(state, initial);
  }
  std::uint32_t max_iterations() const override {
    return inner_->max_iterations();
  }
  double ValueOf(const VertexState& state, VertexId v) const override {
    return inner_->ValueOf(state, v);
  }
  void MakeContribution(VertexState& state, VertexId v,
                        ContribSlot slot) const override {
    inner_->MakeContribution(state, v, slot);
  }
  bool Apply(VertexState& state, VertexId src, VertexId dst, Weight w,
             ContribSlot slot) const override {
    if (src == target_.src && dst == target_.dst) return false;
    return inner_->Apply(state, src, dst, w, slot);
  }

 private:
  std::unique_ptr<PushProgram> inner_;
  Edge target_;
};

Edge MaxEdge(const EdgeList& graph) {
  Edge best{0, 0};
  bool any = false;
  for (const Edge& e : graph.edges()) {
    if (!any || e.src > best.src || (e.src == best.src && e.dst > best.dst)) {
      best = e;
      any = true;
    }
  }
  return best;
}

bool BitwiseEqual(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

bool WithinTolerance(double a, double b, double rel, double abs) {
  if (BitwiseEqual(a, b)) return true;
  if (std::isnan(a) || std::isnan(b)) return false;
  if (std::isinf(a) || std::isinf(b)) return a == b;
  const double scale = std::max(std::abs(a), std::abs(b));
  return std::abs(a - b) <= abs + rel * scale;
}

std::vector<VertexId> SortedFrontier(const Frontier& frontier) {
  std::vector<VertexId> ids;
  frontier.ForEachActive(
      [&](std::size_t v) { ids.push_back(static_cast<VertexId>(v)); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

Divergence MakeStatusDivergence(const Status& status) {
  Divergence d;
  d.invariant = "status";
  d.detail = "engine run failed on valid input: " + status.ToString();
  return d;
}

}  // namespace

std::string DescribeDivergence(const Divergence& d) {
  std::ostringstream out;
  out << "invariant=" << d.invariant;
  if (d.invariant == "value") {
    char oracle_buf[48], engine_buf[48];
    std::snprintf(oracle_buf, sizeof oracle_buf, "%.17g", d.oracle_value);
    std::snprintf(engine_buf, sizeof engine_buf, "%.17g", d.engine_value);
    out << " vertex=" << d.vertex << " oracle=" << oracle_buf
        << " engine=" << engine_buf;
  } else if (d.invariant == "iterations") {
    out << " oracle_iterations=" << d.oracle_iterations
        << " engine_iterations=" << d.engine_iterations;
  } else if (d.invariant == "frontier") {
    out << " iteration=" << d.iteration << " vertex=" << d.vertex;
  }
  if (!d.detail.empty()) out << " detail=\"" << d.detail << "\"";
  return out.str();
}

Result<BuiltDataset> BuildCaseDataset(const EdgeList& graph,
                                      const std::string& codec,
                                      std::uint32_t p, const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return InternalError("cannot create " + dir + ": " + ec.message());

  BuiltDataset built;
  built.device = io::MakeSimulatedDevice();
  built.codec = codec;

  partition::GridBuildOptions options;
  options.num_intervals = p;
  options.codec = codec;
  options.name = "difftest";
  auto manifest = partition::BuildGrid(graph, *built.device, dir, options);
  GRAPHSD_RETURN_IF_ERROR(manifest.status());

  auto dataset = partition::GridDataset::Open(*built.device, dir);
  GRAPHSD_RETURN_IF_ERROR(dataset.status());
  built.dataset =
      std::make_unique<partition::GridDataset>(std::move(dataset).value());
  built.p = built.dataset->manifest().p;
  return built;
}

Result<std::optional<Divergence>> RunTrial(
    const EdgeList& graph, VertexId root,
    const partition::GridDataset& dataset, const TrialConfig& config) {
  auto spec = AlgoSpecFor(config.algo);
  GRAPHSD_RETURN_IF_ERROR(spec.status());
  if (config.model != "auto" && config.model != "on_demand" &&
      config.model != "full" && config.model != "semi") {
    return InvalidArgumentError("bad trial model: " + config.model);
  }
  if (config.threads == 0) {
    return InvalidArgumentError("trial threads must be >= 1");
  }
  if (config.compute_threads == 0) {
    return InvalidArgumentError("trial compute_threads must be >= 1");
  }

  // Oracle: the unwrapped program under textbook BSP.
  auto oracle_program = MakeProgram(config.algo, root);
  GRAPHSD_RETURN_IF_ERROR(oracle_program.status());
  const bool push = (*oracle_program)->kind() == core::ProgramKind::kPush;

  ReferenceOptions ref_options;
  ref_options.record_frontiers = push;
  auto oracle = RunReferenceBsp(**oracle_program, graph, ref_options);
  GRAPHSD_RETURN_IF_ERROR(oracle.status());

  // Engine-side program, optionally fault-wrapped.
  auto engine_inner = MakeProgram(config.algo, root);
  GRAPHSD_RETURN_IF_ERROR(engine_inner.status());
  std::unique_ptr<Program> engine_program = std::move(engine_inner).value();
  if (config.fault == EngineFault::kDropMaxEdge) {
    if (!push) {
      return InvalidArgumentError(
          "drop_max_edge fault requires a push algorithm");
    }
    engine_program = std::make_unique<DropEdgePushProgram>(
        std::unique_ptr<PushProgram>(
            static_cast<PushProgram*>(engine_program.release())),
        MaxEdge(graph));
  }

  // Semi-external rounds are always one plain BSP iteration, so a semi
  // trial follows the cross=false invariant semantics regardless of the
  // requested cross_iteration bit.
  const bool semi = config.model == "semi";
  const bool cross = config.cross_iteration && !semi;

  EngineOptions options;
  options.num_threads = config.threads;
  // Sharded compute is order-preserving, so this axis rides every invariant
  // unchanged: the bitwise/iteration gates below still key off config.threads
  // alone, and any shard count must pass them identically.
  options.compute_threads = config.compute_threads;
  options.enable_cross_iteration = cross;
  options.prefetch_depth = config.prefetch_depth;
  options.record_per_round = false;
  options.semi_external = semi;
  // Semantics-neutral cache shape change: compressed datasets keep raw
  // frames in the buffer and decode on hit. Always on so every trial also
  // differentially covers the decode-on-hit path.
  options.cache_compressed = true;
  // Bound a diverging engine instead of letting a convergence bug spin: a
  // correct engine needs at most 2*oracle+1 waves (cross-iteration
  // activation stealing; see the iteration invariant below) plus slack for
  // tolerance-class threshold wobble.
  options.max_iterations = 2 * oracle->iterations + 17;
  if (config.model != "auto") {
    const RoundModelChoice forced = config.model == "on_demand"
                                        ? RoundModelChoice::kOnDemand
                                    : semi ? RoundModelChoice::kSemi
                                           : RoundModelChoice::kFull;
    options.model_override = [forced](std::uint32_t) { return forced; };
  }

  // Frontier probe: only meaningful at plain-BSP boundaries.
  const AlgoSpec& algo = *spec;
  const bool compare_frontiers =
      push && !cross && (algo.cls == AlgoClass::kMonotone ||
                         config.threads == 1);
  std::map<std::uint32_t, std::vector<VertexId>> engine_frontiers;
  if (compare_frontiers) {
    options.frontier_probe = [&engine_frontiers](std::uint32_t next_iteration,
                                                 const Frontier& active) {
      engine_frontiers[next_iteration] = SortedFrontier(active);
    };
  }

  GraphSDEngine engine(dataset, options);
  auto report = engine.Run(*engine_program);
  if (!report.ok()) {
    return std::optional<Divergence>(MakeStatusDivergence(report.status()));
  }

  Divergence d;
  d.oracle_iterations = oracle->iterations;
  d.engine_iterations = report->iterations;

  // Iteration-count invariant.
  bool iterations_equal = false;
  bool iterations_bounded = false;
  switch (algo.cls) {
    case AlgoClass::kMonotone:
      iterations_equal = !cross;
      iterations_bounded = cross;
      break;
    case AlgoClass::kSumThreshold:
      iterations_equal = config.threads == 1 && !cross;
      break;
    case AlgoClass::kFixedIteration:
      iterations_equal = true;
      break;
  }
  if (iterations_equal && report->iterations != oracle->iterations) {
    d.invariant = "iterations";
    d.detail = "expected iteration count equal to oracle";
    return std::optional<Divergence>(d);
  }
  // Cross-iteration pre-execution is value-exact but not wave-count
  // preserving, in both directions. Delay: a cross apply can deliver a
  // vertex's wave-(t+1) value before its wave-t apply lands, stealing the
  // wave-t activation (equal value, Apply returns false) and pushing the
  // vertex's own propagation one wave later — at most one extra wave per
  // hop, so <= 2*oracle + 1 total. Acceleration: contributions seal at
  // column end, after the interval has already absorbed early cross
  // applies from lower intervals, so one round can chain a value through
  // several ascending intervals Gauss-Seidel-style — the engine may
  // converge in fewer counted waves than BSP.
  if (iterations_bounded &&
      report->iterations > 2 * oracle->iterations + 1) {
    d.invariant = "iterations";
    d.detail = "cross-iteration engine iterations above 2*oracle+1";
    return std::optional<Divergence>(d);
  }

  // Value invariant.
  const bool bitwise =
      algo.cls == AlgoClass::kMonotone ||
      (algo.cls == AlgoClass::kSumThreshold && config.threads == 1 &&
       !cross) ||
      (algo.cls == AlgoClass::kFixedIteration && config.threads == 1);
  const double rel_tol =
      algo.cls == AlgoClass::kSumThreshold ? kRelTolThreshold : kRelTol;
  const double abs_tol =
      algo.cls == AlgoClass::kSumThreshold ? kAbsTolThreshold : kAbsTol;
  const VertexState* state = engine.state();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const double oracle_value = oracle->values[v];
    const double engine_value = engine_program->ValueOf(*state, v);
    const bool same =
        bitwise ? BitwiseEqual(oracle_value, engine_value)
                : WithinTolerance(oracle_value, engine_value, rel_tol, abs_tol);
    if (!same) {
      d.invariant = "value";
      d.vertex = v;
      d.iteration = report->iterations;
      d.oracle_value = oracle_value;
      d.engine_value = engine_value;
      d.detail = bitwise ? "bitwise value mismatch" : "tolerance exceeded";
      return std::optional<Divergence>(d);
    }
  }

  // Frontier invariant at BSP boundaries.
  if (compare_frontiers) {
    for (std::uint32_t k = 0; k <= oracle->iterations; ++k) {
      const auto it = engine_frontiers.find(k);
      if (it == engine_frontiers.end()) continue;  // round not committed yet
      const auto& expect = oracle->frontiers[k];
      if (it->second != expect) {
        d.invariant = "frontier";
        d.iteration = k;
        // First differing vertex, for the report.
        for (std::size_t i = 0; i < std::max(expect.size(), it->second.size());
             ++i) {
          const bool in_oracle = i < expect.size();
          const bool in_engine = i < it->second.size();
          if (!in_oracle || !in_engine || expect[i] != it->second[i]) {
            d.vertex = in_oracle ? expect[i] : it->second[i];
            break;
          }
        }
        d.detail = "frontier set mismatch entering iteration " +
                   std::to_string(k);
        return std::optional<Divergence>(d);
      }
    }
  }

  return std::optional<Divergence>();
}

namespace {

// One trial attempt for the minimizer: does `graph` still diverge?
Result<bool> StillDiverges(const ReproArtifact& artifact, const EdgeList& graph,
                           VertexId root, const std::string& dir) {
  auto built = BuildCaseDataset(graph, artifact.codec, artifact.p, dir);
  GRAPHSD_RETURN_IF_ERROR(built.status());
  TrialConfig config;
  config.algo = artifact.algo;
  config.model = artifact.model;
  config.cross_iteration = artifact.cross_iteration;
  config.prefetch_depth = artifact.prefetch_depth;
  config.threads = artifact.threads;
  config.compute_threads = artifact.compute_threads;
  config.fault = artifact.fault;
  auto divergence = RunTrial(graph, root, *built->dataset, config);
  GRAPHSD_RETURN_IF_ERROR(divergence.status());
  return divergence->has_value();
}

EdgeList RebuildGraph(const EdgeList& source,
                      const std::vector<std::size_t>& keep, VertexId n) {
  EdgeList out(n);
  for (const std::size_t k : keep) {
    const Edge& e = source.edges()[k];
    if (source.weighted()) {
      out.AddEdge(e.src, e.dst, source.weights()[k]);
    } else {
      out.AddEdge(e.src, e.dst);
    }
  }
  return out;
}

}  // namespace

Status MinimizeArtifact(ReproArtifact& artifact, const std::string& scratch_dir,
                        std::uint32_t budget) {
  std::uint32_t trials = 0;
  std::uint32_t dir_counter = 0;
  const auto try_graph = [&](const EdgeList& candidate) -> Result<bool> {
    if (trials >= budget) return false;
    ++trials;
    return StillDiverges(artifact, candidate, artifact.root,
                         scratch_dir + "/min_" + std::to_string(dir_counter++));
  };

  // ddmin over edges: drop chunks while the divergence persists.
  std::vector<std::size_t> keep(artifact.graph.num_edges());
  for (std::size_t i = 0; i < keep.size(); ++i) keep[i] = i;
  std::size_t chunk = (keep.size() + 1) / 2;
  while (chunk >= 1 && !keep.empty() && trials < budget) {
    bool removed_any = false;
    for (std::size_t start = 0; start < keep.size() && trials < budget;) {
      std::vector<std::size_t> candidate_keep;
      candidate_keep.reserve(keep.size());
      const std::size_t end = std::min(start + chunk, keep.size());
      for (std::size_t i = 0; i < keep.size(); ++i) {
        if (i < start || i >= end) candidate_keep.push_back(keep[i]);
      }
      auto diverges = try_graph(RebuildGraph(artifact.graph, candidate_keep,
                                             artifact.graph.num_vertices()));
      GRAPHSD_RETURN_IF_ERROR(diverges.status());
      if (*diverges) {
        keep = std::move(candidate_keep);
        removed_any = true;
        // re-test from the same start against the shrunken list
      } else {
        start = end;
      }
    }
    if (chunk == 1 && !removed_any) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }

  // Vertex-range shrink: cut the id space down to what the kept edges and
  // the root actually reference.
  VertexId max_ref = artifact.root;
  for (const std::size_t k : keep) {
    const Edge& e = artifact.graph.edges()[k];
    max_ref = std::max({max_ref, e.src, e.dst});
  }
  const VertexId shrunk_n = max_ref + 1;
  if (shrunk_n < artifact.graph.num_vertices() && trials < budget) {
    EdgeList candidate = RebuildGraph(artifact.graph, keep, shrunk_n);
    auto diverges = try_graph(candidate);
    GRAPHSD_RETURN_IF_ERROR(diverges.status());
    if (*diverges) {
      artifact.graph = std::move(candidate);
      return Status::Ok();
    }
  }
  artifact.graph =
      RebuildGraph(artifact.graph, keep, artifact.graph.num_vertices());
  return Status::Ok();
}

Result<std::optional<Divergence>> ReplayArtifact(
    const ReproArtifact& artifact, const std::string& scratch_dir) {
  auto built = BuildCaseDataset(artifact.graph, artifact.codec, artifact.p,
                                scratch_dir + "/replay");
  GRAPHSD_RETURN_IF_ERROR(built.status());
  TrialConfig config;
  config.algo = artifact.algo;
  config.model = artifact.model;
  config.cross_iteration = artifact.cross_iteration;
  config.prefetch_depth = artifact.prefetch_depth;
  config.threads = artifact.threads;
  config.compute_threads = artifact.compute_threads;
  config.fault = artifact.fault;
  return RunTrial(artifact.graph, artifact.root, *built->dataset, config);
}

namespace {

using core::GatherProgram;

// Trips `token` after the N-th Apply call. Observes only: the partial round
// it interrupts is rolled back by the engine, so forwarding every call is
// safe (and required — the wrapper must not change the committed prefix).
class TripPushProgram final : public PushProgram {
 public:
  TripPushProgram(std::unique_ptr<PushProgram> inner, CancellationToken* token,
                  std::uint64_t trip_after)
      : inner_(std::move(inner)), token_(token), trip_after_(trip_after) {}

  std::string name() const override { return inner_->name(); }
  bool needs_weights() const override { return inner_->needs_weights(); }
  std::uint32_t num_value_arrays() const override {
    return inner_->num_value_arrays();
  }
  void Bind(const std::vector<std::uint32_t>& out_degrees) override {
    inner_->Bind(out_degrees);
  }
  void Init(VertexState& state, Frontier& initial) override {
    inner_->Init(state, initial);
  }
  std::uint32_t max_iterations() const override {
    return inner_->max_iterations();
  }
  double ValueOf(const VertexState& state, VertexId v) const override {
    return inner_->ValueOf(state, v);
  }
  void MakeContribution(VertexState& state, VertexId v,
                        ContribSlot slot) const override {
    inner_->MakeContribution(state, v, slot);
  }
  bool Apply(VertexState& state, VertexId src, VertexId dst, Weight w,
             ContribSlot slot) const override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) + 1 == trip_after_) {
      token_->Cancel("difftest kill");
    }
    return inner_->Apply(state, src, dst, w, slot);
  }

 private:
  std::unique_ptr<PushProgram> inner_;
  CancellationToken* token_;
  std::uint64_t trip_after_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

// Gather counterpart: trips after the N-th MakeContribution call. Gather
// runs have no frontier probe, so this is the deterministic kill mechanism
// for them (at one thread the call sequence is fixed).
class TripGatherProgram final : public GatherProgram {
 public:
  TripGatherProgram(std::unique_ptr<GatherProgram> inner,
                    CancellationToken* token, std::uint64_t trip_after)
      : inner_(std::move(inner)), token_(token), trip_after_(trip_after) {}

  std::string name() const override { return inner_->name(); }
  bool needs_weights() const override { return inner_->needs_weights(); }
  std::uint32_t num_value_arrays() const override {
    return inner_->num_value_arrays();
  }
  void Bind(const std::vector<std::uint32_t>& out_degrees) override {
    inner_->Bind(out_degrees);
  }
  void Init(VertexState& state, Frontier& initial) override {
    inner_->Init(state, initial);
  }
  std::uint32_t max_iterations() const override {
    return inner_->max_iterations();
  }
  double ValueOf(const VertexState& state, VertexId v) const override {
    return inner_->ValueOf(state, v);
  }
  void MakeContribution(VertexState& state, VertexId v,
                        core::ContribSlot slot) const override {
    if (calls_.fetch_add(1, std::memory_order_relaxed) + 1 == trip_after_) {
      token_->Cancel("difftest kill");
    }
    inner_->MakeContribution(state, v, slot);
  }
  void ResetAccum(VertexState& state, core::AccumSlot a) const override {
    inner_->ResetAccum(state, a);
  }
  void Accumulate(VertexState& state, VertexId src, VertexId dst, Weight w,
                  core::ContribSlot c, core::AccumSlot a) const override {
    inner_->Accumulate(state, src, dst, w, c, a);
  }
  void Finalize(VertexState& state, VertexId begin, VertexId end,
                core::AccumSlot a) const override {
    inner_->Finalize(state, begin, end, a);
  }

 private:
  std::unique_ptr<GatherProgram> inner_;
  CancellationToken* token_;
  std::uint64_t trip_after_;
  mutable std::atomic<std::uint64_t> calls_{0};
};

// Damages the newest checkpoint slot (bit flip or truncation). Applied only
// when BOTH slots decode valid so the older slot remains as the recovery
// path; returns whether damage was actually applied.
Result<bool> DamageNewestSlot(const std::string& checkpoint_dir, int mode) {
  core::CheckpointStore store(checkpoint_dir);
  int newest = -1;
  std::uint32_t newest_iteration = 0;
  for (int slot = 0; slot < 2; ++slot) {
    auto data = io::ReadFileToString(store.SlotPath(slot));
    if (!data.ok()) return false;
    auto checkpoint = core::DecodeCheckpoint(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(data->data()), data->size()));
    if (!checkpoint.ok()) return false;
    if (newest == -1 || checkpoint->iteration > newest_iteration) {
      newest = slot;
      newest_iteration = checkpoint->iteration;
    }
  }
  const std::string path = store.SlotPath(newest);
  auto data = io::ReadFileToString(path);
  GRAPHSD_RETURN_IF_ERROR(data.status());
  std::string damaged = std::move(data).value();
  if (mode == 2) {
    damaged.resize(damaged.size() / 2);  // torn write
  } else {
    damaged[damaged.size() / 2] ^= 0x20;  // silent media corruption
  }
  GRAPHSD_RETURN_IF_ERROR(io::WriteStringToFile(path, damaged));
  return true;
}

}  // namespace

Result<std::optional<Divergence>> RunKillResumeTrial(
    const EdgeList& graph, VertexId root,
    const partition::GridDataset& dataset, const std::string& scratch_dir,
    const KillResumeConfig& config) {
  auto spec = AlgoSpecFor(config.algo);
  GRAPHSD_RETURN_IF_ERROR(spec.status());
  if (config.model != "auto" && config.model != "on_demand" &&
      config.model != "full" && config.model != "semi") {
    return InvalidArgumentError("bad trial model: " + config.model);
  }
  if (config.kill_iteration == 0) {
    return InvalidArgumentError("kill_iteration must be >= 1");
  }

  const std::string checkpoint_dir = scratch_dir + "/ck";
  (void)io::RemoveTree(checkpoint_dir);  // stale slots from a prior trial

  // One thread, overlap off: the scheduler sees only modeled (deterministic)
  // costs, so the killed and resumed segments replay the uninterrupted run
  // exactly and every algorithm class is bitwise-comparable.
  const auto make_options = [&config]() {
    const bool semi = config.model == "semi";
    EngineOptions options;
    options.num_threads = 1;
    // Semi rounds are plain BSP; forcing cross off keeps the killed and
    // resumed segments on identical wave boundaries (gather runs, which
    // ignore the semi override, keep the requested bit).
    options.enable_cross_iteration = config.cross_iteration && !semi;
    options.prefetch_depth = config.prefetch_depth;
    options.record_per_round = false;
    options.overlap_io = false;
    options.max_iterations = 1000;
    options.semi_external = semi;
    options.cache_compressed = true;
    if (config.model != "auto") {
      const RoundModelChoice forced = config.model == "on_demand"
                                          ? RoundModelChoice::kOnDemand
                                      : semi ? RoundModelChoice::kSemi
                                             : RoundModelChoice::kFull;
      options.model_override = [forced](std::uint32_t) { return forced; };
    }
    return options;
  };

  // 1. Uninterrupted baseline.
  auto base_program = MakeProgram(config.algo, root);
  GRAPHSD_RETURN_IF_ERROR(base_program.status());
  GraphSDEngine base_engine(dataset, make_options());
  auto base_report = base_engine.Run(**base_program);
  if (!base_report.ok()) {
    return std::optional<Divergence>(MakeStatusDivergence(base_report.status()));
  }
  std::vector<double> expect(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    expect[v] = (*base_program)->ValueOf(*base_engine.state(), v);
  }

  // 2. Checkpointed run, cooperatively killed.
  CancellationToken token;
  auto killed_inner = MakeProgram(config.algo, root);
  GRAPHSD_RETURN_IF_ERROR(killed_inner.status());
  std::unique_ptr<Program> killed_program = std::move(killed_inner).value();
  EngineOptions killed_options = make_options();
  killed_options.checkpoint_dir = checkpoint_dir;
  killed_options.checkpoint_every = 1;
  killed_options.cancel = &token;
  if (spec->push) {
    if (config.midround_kill) {
      killed_program = std::make_unique<TripPushProgram>(
          std::unique_ptr<PushProgram>(
              static_cast<PushProgram*>(killed_program.release())),
          &token, std::uint64_t{config.kill_iteration} * 29 + 7);
    } else {
      killed_options.frontier_probe =
          [&token, kill = config.kill_iteration](std::uint32_t next_iteration,
                                                 const Frontier&) {
            if (next_iteration >= kill) token.Cancel("difftest kill");
          };
    }
  } else {
    // Aim mid-round near iteration kill/2: gather contributes every vertex
    // each iteration, so vertex-count scaling spreads kills across rounds.
    const std::uint64_t trip_after =
        std::uint64_t{config.kill_iteration} * graph.num_vertices() / 2 + 3;
    killed_program = std::make_unique<TripGatherProgram>(
        std::unique_ptr<GatherProgram>(
            static_cast<GatherProgram*>(killed_program.release())),
        &token, trip_after);
  }
  GraphSDEngine killed_engine(dataset, killed_options);
  auto killed_report = killed_engine.Run(*killed_program);
  if (!killed_report.ok()) {
    return std::optional<Divergence>(
        MakeStatusDivergence(killed_report.status()));
  }
  const bool was_killed = killed_report->cancelled;

  // 3. Optional slot damage (torn write / bit rot) before the resume.
  if (config.corrupt_newest != 0) {
    auto damaged = DamageNewestSlot(checkpoint_dir, config.corrupt_newest);
    GRAPHSD_RETURN_IF_ERROR(damaged.status());
  }

  // 4. Resume to completion and compare against the uninterrupted run.
  auto resume_program = MakeProgram(config.algo, root);
  GRAPHSD_RETURN_IF_ERROR(resume_program.status());
  EngineOptions resume_options = make_options();
  resume_options.checkpoint_dir = checkpoint_dir;
  resume_options.resume = true;
  GraphSDEngine resume_engine(dataset, resume_options);
  auto resume_report = resume_engine.Run(**resume_program);
  if (!resume_report.ok()) {
    Divergence d = MakeStatusDivergence(resume_report.status());
    d.detail = "resume failed: " + resume_report.status().ToString();
    return std::optional<Divergence>(d);
  }

  Divergence d;
  d.oracle_iterations = base_report->iterations;
  d.engine_iterations = resume_report->iterations;
  if (resume_report->cancelled) {
    d.invariant = "status";
    d.detail = "resumed run reported cancelled without a kill";
    return std::optional<Divergence>(d);
  }
  // A kill after at least one committed boundary must leave a checkpoint the
  // resume actually picks up (corruption only ever damages the newest of two
  // valid slots, so a fallback always survives).
  if (was_killed && killed_report->iterations > 0 && !resume_report->resumed) {
    d.invariant = "status";
    d.detail = "resume started fresh despite a checkpoint on disk";
    return std::optional<Divergence>(d);
  }

  // Iteration totals replay exactly, except under auto + cross-iteration
  // where the scheduler's model choice may legitimately regroup waves
  // around the resume point.
  if (!(config.model == "auto" && config.cross_iteration) &&
      resume_report->iterations != base_report->iterations) {
    d.invariant = "iterations";
    d.detail = "kill/resume iteration total differs from uninterrupted run";
    return std::optional<Divergence>(d);
  }

  const VertexState* state = resume_engine.state();
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const double resumed_value = (*resume_program)->ValueOf(*state, v);
    if (!BitwiseEqual(expect[v], resumed_value)) {
      d.invariant = "value";
      d.vertex = v;
      d.iteration = resume_report->iterations;
      d.oracle_value = expect[v];
      d.engine_value = resumed_value;
      d.detail = "kill/resume value differs from uninterrupted run";
      return std::optional<Divergence>(d);
    }
  }
  return std::optional<Divergence>();
}

Result<SweepSummary> RunKillResumeSweep(const KillResumeSweepOptions& options) {
  auto scratch = ScratchDir::Create();
  GRAPHSD_RETURN_IF_ERROR(scratch.status());

  constexpr std::uint32_t kDepths[] = {0, 1, 4};
  constexpr std::uint32_t kIntervals[] = {1, 2, 4, 8};
  constexpr std::uint32_t kKills[] = {1, 2, 3, 5};
  const char* kModels[] = {"on_demand", "full", "semi", "auto"};

  SweepSummary summary;
  std::uint64_t rotation = 0;  // spreads kill point/style, cross, corruption

  for (std::uint32_t s = 0; s < options.num_seeds; ++s) {
    const std::uint64_t seed = options.seed0 + s;
    const GraphCase graph_case = GenerateGraphCase(seed);
    ++summary.graphs;
    if (options.progress) {
      options.progress("kill-resume seed " + std::to_string(seed) + ": " +
                       graph_case.family + " (" +
                       std::to_string(graph_case.list.num_vertices()) + " v, " +
                       std::to_string(graph_case.list.num_edges()) + " e)");
    }

    SplitMix64 pick(seed ^ 0x9e3779b97f4a7c15ULL);
    const std::string seed_dir =
        scratch->path() + "/kr_seed_" + std::to_string(seed);
    std::vector<BuiltDataset> datasets;
    for (const char* codec : {"none", "varint-delta"}) {
      const std::uint32_t p = kIntervals[pick.Next() % 4];
      auto built = BuildCaseDataset(graph_case.list, codec, p,
                                    seed_dir + "/" + codec);
      GRAPHSD_RETURN_IF_ERROR(built.status());
      datasets.push_back(std::move(built).value());
      ++summary.datasets_built;
    }

    for (const AlgoSpec& algo : RegisteredAlgos()) {
      for (const BuiltDataset& ds : datasets) {
        for (const char* model : kModels) {
          KillResumeConfig config;
          config.algo = algo.name;
          config.model = model;
          config.kill_iteration = kKills[rotation % 4];
          config.cross_iteration = ((rotation / 4) % 2) == 1;
          config.prefetch_depth = kDepths[(rotation / 8) % 3];
          config.midround_kill = algo.push && ((rotation / 2) % 2) == 1;
          // Corruption needs an older slot to fall back to, which a kill at
          // iteration >= 2 (checkpointing every iteration) guarantees.
          config.corrupt_newest =
              config.kill_iteration >= 2
                  ? static_cast<int>((rotation / 5) % 3)
                  : 0;
          ++rotation;

          auto divergence = RunKillResumeTrial(
              graph_case.list, graph_case.root, *ds.dataset,
              seed_dir + "/trial_" + std::to_string(rotation), config);
          GRAPHSD_RETURN_IF_ERROR(divergence.status());
          ++summary.combos_run;
          if (!divergence->has_value()) continue;
          summary.divergences.push_back(**divergence);
          if (options.stop_on_divergence) return summary;
        }
      }
    }
  }
  return summary;
}

Result<SweepSummary> RunSweep(const SweepOptions& options) {
  auto scratch = ScratchDir::Create();
  GRAPHSD_RETURN_IF_ERROR(scratch.status());

  if (!options.artifact_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.artifact_dir, ec);
    if (ec) {
      return InternalError("cannot create artifact dir " +
                           options.artifact_dir + ": " + ec.message());
    }
  }

  constexpr std::uint32_t kDepths[] = {0, 1, 4};
  constexpr std::uint32_t kThreads[] = {1, 4};
  constexpr std::uint32_t kComputeShards[] = {1, 2, 8};
  constexpr std::uint32_t kIntervals[] = {1, 2, 4, 8};
  const char* kModels[] = {"on_demand", "full", "semi", "auto"};

  SweepSummary summary;
  std::uint64_t rotation = 0;  // spreads depth/threads/shards/cross per combo

  for (std::uint32_t s = 0; s < options.num_seeds; ++s) {
    const std::uint64_t seed = options.seed0 + s;
    const GraphCase graph_case = GenerateGraphCase(seed);
    ++summary.graphs;
    if (options.progress) {
      options.progress("seed " + std::to_string(seed) + ": " +
                       graph_case.family + " (" +
                       std::to_string(graph_case.list.num_vertices()) + " v, " +
                       std::to_string(graph_case.list.num_edges()) + " e)");
    }

    // Two datasets per case: raw and varint-delta, each with its own P.
    SplitMix64 pick(seed ^ 0x9e3779b97f4a7c15ULL);
    const std::string seed_dir =
        scratch->path() + "/seed_" + std::to_string(seed);
    std::vector<BuiltDataset> datasets;
    for (const char* codec : {"none", "varint-delta"}) {
      const std::uint32_t p = kIntervals[pick.Next() % 4];
      auto built = BuildCaseDataset(graph_case.list, codec, p,
                                    seed_dir + "/" + codec);
      GRAPHSD_RETURN_IF_ERROR(built.status());
      datasets.push_back(std::move(built).value());
      ++summary.datasets_built;
    }

    for (const AlgoSpec& algo : RegisteredAlgos()) {
      for (const BuiltDataset& ds : datasets) {
        for (const char* model : kModels) {
          TrialConfig config;
          config.algo = algo.name;
          config.model = model;
          config.prefetch_depth = kDepths[rotation % 3];
          config.threads = kThreads[(rotation / 3) % 2];
          config.cross_iteration = ((rotation / 6) % 2) == 1;
          // Co-prime stride against the 12-combo depth/threads/cross cycle
          // so every shard count eventually meets every other setting.
          config.compute_threads = kComputeShards[(rotation / 5) % 3];
          if (options.fault != EngineFault::kNone && algo.push) {
            config.fault = options.fault;
          }
          ++rotation;

          auto divergence =
              RunTrial(graph_case.list, graph_case.root, *ds.dataset, config);
          GRAPHSD_RETURN_IF_ERROR(divergence.status());
          ++summary.combos_run;
          if (!divergence->has_value()) continue;

          summary.divergences.push_back(**divergence);
          ReproArtifact artifact;
          artifact.seed = seed;
          artifact.family = graph_case.family;
          artifact.invariant = (*divergence)->invariant;
          artifact.algo = config.algo;
          artifact.root = graph_case.root;
          artifact.codec = ds.codec;
          artifact.p = ds.p;
          artifact.model = config.model;
          artifact.cross_iteration = config.cross_iteration;
          artifact.prefetch_depth = config.prefetch_depth;
          artifact.threads = config.threads;
          artifact.compute_threads = config.compute_threads;
          artifact.fault = config.fault;
          artifact.graph = graph_case.list;
          GRAPHSD_RETURN_IF_ERROR(MinimizeArtifact(
              artifact, seed_dir + "/minimize", options.minimize_budget));
          if (!options.artifact_dir.empty()) {
            const std::string path = options.artifact_dir + "/repro_seed" +
                                     std::to_string(seed) + "_" + config.algo +
                                     "_" + (*divergence)->invariant + ".txt";
            GRAPHSD_RETURN_IF_ERROR(WriteArtifact(artifact, path));
            summary.artifact_paths.push_back(path);
          }
          if (options.stop_on_divergence) return summary;
        }
      }
    }
  }
  return summary;
}

}  // namespace graphsd::testing
