#include "testing/graph_cases.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/rng.hpp"

namespace graphsd::testing {
namespace {

struct RawCase {
  std::string family;
  VertexId n = 0;
  std::vector<std::pair<VertexId, VertexId>> edges;
};

// Zipf-ish degree skew: vertex ids are drawn as n * u^3, concentrating
// endpoints on low ids the way a power-law graph concentrates on hubs.
VertexId SkewedVertex(Xoshiro256& rng, VertexId n) {
  const double u = rng.NextDouble();
  return static_cast<VertexId>(static_cast<double>(n) * u * u * u);
}

RawCase GeneratePowerLaw(Xoshiro256& rng) {
  RawCase c;
  c.family = "power_law";
  c.n = static_cast<VertexId>(8 + rng.NextBounded(120));
  const std::uint64_t m = 1 + rng.NextBounded(static_cast<std::uint64_t>(c.n) * 6);
  for (std::uint64_t i = 0; i < m; ++i) {
    c.edges.emplace_back(SkewedVertex(rng, c.n), SkewedVertex(rng, c.n));
  }
  return c;
}

RawCase GenerateUniform(Xoshiro256& rng) {
  RawCase c;
  c.family = "uniform";
  c.n = static_cast<VertexId>(4 + rng.NextBounded(140));
  const std::uint64_t m = rng.NextBounded(static_cast<std::uint64_t>(c.n) * 4);
  for (std::uint64_t i = 0; i < m; ++i) {
    c.edges.emplace_back(static_cast<VertexId>(rng.NextBounded(c.n)),
                         static_cast<VertexId>(rng.NextBounded(c.n)));
  }
  return c;
}

RawCase GeneratePath(Xoshiro256& rng) {
  RawCase c;
  c.family = "path";
  c.n = static_cast<VertexId>(2 + rng.NextBounded(120));
  for (VertexId v = 0; v + 1 < c.n; ++v) c.edges.emplace_back(v, v + 1);
  return c;
}

RawCase GenerateStar(Xoshiro256& rng) {
  RawCase c;
  c.family = "star";
  c.n = static_cast<VertexId>(2 + rng.NextBounded(120));
  const bool inward = rng.NextBounded(2) == 0;
  for (VertexId v = 1; v < c.n; ++v) {
    if (inward) {
      c.edges.emplace_back(v, 0);
    } else {
      c.edges.emplace_back(0, v);
    }
  }
  if (inward) c.family = "star_in";
  return c;
}

RawCase GenerateCycle(Xoshiro256& rng) {
  RawCase c;
  c.family = "cycle";
  c.n = static_cast<VertexId>(2 + rng.NextBounded(100));
  for (VertexId v = 0; v < c.n; ++v) c.edges.emplace_back(v, (v + 1) % c.n);
  return c;
}

RawCase GenerateBipartiteBurst(Xoshiro256& rng) {
  // Dense many-to-many block: stresses duplicate (src, dst) contributions
  // into one destination within a single iteration.
  RawCase c;
  c.family = "bipartite_burst";
  const VertexId left = static_cast<VertexId>(2 + rng.NextBounded(12));
  const VertexId right = static_cast<VertexId>(2 + rng.NextBounded(12));
  c.n = left + right;
  for (VertexId a = 0; a < left; ++a) {
    for (VertexId b = 0; b < right; ++b) {
      if (rng.NextDouble() < 0.7) c.edges.emplace_back(a, left + b);
    }
  }
  return c;
}

RawCase GenerateSingleVertex(Xoshiro256& rng) {
  RawCase c;
  c.family = "single_vertex";
  c.n = 1;
  // Optionally a self-loop — the smallest possible non-empty dataset.
  if (rng.NextBounded(2) == 0) c.edges.emplace_back(0, 0);
  return c;
}

RawCase GenerateEdgeless(Xoshiro256& rng) {
  RawCase c;
  c.family = "edgeless";
  c.n = static_cast<VertexId>(1 + rng.NextBounded(40));
  return c;
}

void MutateSelfLoops(Xoshiro256& rng, RawCase& c) {
  const std::uint64_t k = 1 + rng.NextBounded(4);
  for (std::uint64_t i = 0; i < k; ++i) {
    const VertexId v = static_cast<VertexId>(rng.NextBounded(c.n));
    c.edges.emplace_back(v, v);
  }
  c.family += "+self_loops";
}

void MutateDuplicates(Xoshiro256& rng, RawCase& c) {
  if (c.edges.empty()) return;
  const std::uint64_t k = 1 + rng.NextBounded(6);
  for (std::uint64_t i = 0; i < k; ++i) {
    c.edges.push_back(c.edges[rng.NextBounded(c.edges.size())]);
  }
  c.family += "+dup_edges";
}

void MutateIsolatedTail(Xoshiro256& rng, RawCase& c) {
  // High-id vertices with no edges: the last grid rows/columns are empty,
  // and every frontier/value array has a silent tail.
  c.n += static_cast<VertexId>(1 + rng.NextBounded(20));
  c.family += "+isolated_tail";
}

void MutateDisconnect(Xoshiro256& rng, RawCase& c) {
  // Append a second component the root can never reach.
  const VertexId base = c.n;
  const VertexId extra = static_cast<VertexId>(2 + rng.NextBounded(10));
  c.n += extra;
  for (VertexId v = 0; v + 1 < extra; ++v) {
    c.edges.emplace_back(base + v, base + v + 1);
  }
  if (rng.NextBounded(2) == 0) c.edges.emplace_back(base + extra - 1, base);
  c.family += "+disconnected";
}

}  // namespace

GraphCase GenerateGraphCase(std::uint64_t seed) {
  SplitMix64 seeder(seed);
  Xoshiro256 rng(seeder.Next());

  RawCase raw;
  switch (rng.NextBounded(8)) {
    case 0: raw = GeneratePowerLaw(rng); break;
    case 1: raw = GenerateUniform(rng); break;
    case 2: raw = GeneratePath(rng); break;
    case 3: raw = GenerateStar(rng); break;
    case 4: raw = GenerateCycle(rng); break;
    case 5: raw = GenerateBipartiteBurst(rng); break;
    case 6: raw = GenerateSingleVertex(rng); break;
    default: raw = GenerateEdgeless(rng); break;
  }

  if (raw.n > 1 && rng.NextDouble() < 0.25) MutateSelfLoops(rng, raw);
  if (rng.NextDouble() < 0.25) MutateDuplicates(rng, raw);
  if (rng.NextDouble() < 0.25) MutateIsolatedTail(rng, raw);
  if (raw.n > 1 && rng.NextDouble() < 0.2) MutateDisconnect(rng, raw);

  // ~30% of cases are unweighted; weighted cases draw floats in [0, 8) so
  // SSSP/widest-path see zero-weight and near-equal-weight ties.
  const bool weighted = rng.NextDouble() >= 0.3;

  GraphCase out{std::move(raw.family), EdgeList(raw.n), 0};
  for (const auto& [src, dst] : raw.edges) {
    if (weighted) {
      out.list.AddEdge(src, dst, rng.NextFloat(0.0f, 8.0f));
    } else {
      out.list.AddEdge(src, dst);
    }
  }
  out.root = static_cast<VertexId>(rng.NextBounded(raw.n));
  return out;
}

}  // namespace graphsd::testing
