#include "testing/program_factory.hpp"

#include <array>

#include "algos/bfs.hpp"
#include "algos/connected_components.hpp"
#include "algos/pagerank.hpp"
#include "algos/pagerank_delta.hpp"
#include "algos/personalized_pagerank.hpp"
#include "algos/sssp.hpp"
#include "algos/widest_path.hpp"

namespace graphsd::testing {
namespace {

constexpr std::array<AlgoSpec, 7> kAlgos = {{
    {"bfs", /*needs_root=*/true, /*needs_weights=*/false, /*push=*/true,
     AlgoClass::kMonotone},
    {"cc", false, false, true, AlgoClass::kMonotone},
    {"sssp", true, true, true, AlgoClass::kMonotone},
    {"widest_path", true, true, true, AlgoClass::kMonotone},
    {"pagerank_delta", false, false, true, AlgoClass::kSumThreshold},
    {"ppr", true, false, true, AlgoClass::kSumThreshold},
    {"pagerank", false, false, false, AlgoClass::kFixedIteration},
}};

// Keep the randomized sweep fast: PageRank's default budget would dominate
// every trial, and ten iterations exercise the same accumulator paths.
constexpr std::uint32_t kPageRankIterations = 10;

}  // namespace

std::span<const AlgoSpec> RegisteredAlgos() { return kAlgos; }

Result<AlgoSpec> AlgoSpecFor(const std::string& name) {
  for (const AlgoSpec& spec : kAlgos) {
    if (name == spec.name) return spec;
  }
  return NotFoundError("unknown difftest algorithm: " + name);
}

Result<std::unique_ptr<core::Program>> MakeProgram(const std::string& name,
                                                   VertexId root) {
  if (name == "bfs") return std::unique_ptr<core::Program>(new algos::Bfs(root));
  if (name == "cc") {
    return std::unique_ptr<core::Program>(new algos::ConnectedComponents());
  }
  if (name == "sssp") {
    return std::unique_ptr<core::Program>(new algos::Sssp(root));
  }
  if (name == "widest_path") {
    return std::unique_ptr<core::Program>(new algos::WidestPath(root));
  }
  if (name == "pagerank_delta") {
    return std::unique_ptr<core::Program>(new algos::PageRankDelta());
  }
  if (name == "ppr") {
    return std::unique_ptr<core::Program>(new algos::PersonalizedPageRank(root));
  }
  if (name == "pagerank") {
    return std::unique_ptr<core::Program>(
        new algos::PageRank(kPageRankIterations));
  }
  return NotFoundError("unknown difftest algorithm: " + name);
}

}  // namespace graphsd::testing
