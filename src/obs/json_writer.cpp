#include "obs/json_writer.hpp"

#include <cmath>
#include <cstdio>

#include "util/status.hpp"

namespace graphsd::obs {

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (!stack_.empty() && stack_.back() == Scope::kObject) {
    // Inside an object a value must follow a Key() (which cleared the
    // comma state itself).
    GRAPHSD_CHECK(have_key_);
    have_key_ = false;
    return;
  }
  if (need_comma_) Raw(",");
  need_comma_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  Raw("{");
  stack_.push_back(Scope::kObject);
  need_comma_ = false;
}

void JsonWriter::EndObject() {
  GRAPHSD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject &&
                !have_key_);
  stack_.pop_back();
  Raw("}");
  need_comma_ = true;
}

void JsonWriter::BeginArray() {
  BeforeValue();
  Raw("[");
  stack_.push_back(Scope::kArray);
  need_comma_ = false;
}

void JsonWriter::EndArray() {
  GRAPHSD_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  stack_.pop_back();
  Raw("]");
  need_comma_ = true;
}

void JsonWriter::Key(std::string_view name) {
  GRAPHSD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject &&
                !have_key_);
  if (need_comma_) Raw(",");
  Raw("\"");
  Raw(JsonEscape(name));
  Raw("\":");
  need_comma_ = true;
  have_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  Raw("\"");
  Raw(JsonEscape(value));
  Raw("\"");
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  Raw(value ? "true" : "false");
}

void JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  Raw(buf);
}

void JsonWriter::Uint(std::uint64_t value) {
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  Raw(buf);
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    Null();  // JSON has no NaN/Inf
    return;
  }
  BeforeValue();
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  Raw(buf);
}

void JsonWriter::Null() {
  BeforeValue();
  Raw("null");
}

void JsonWriter::RawValue(std::string_view json) {
  GRAPHSD_CHECK(!json.empty());
  BeforeValue();
  Raw(json);
}

void JsonWriter::Field(std::string_view name, std::string_view value) {
  Key(name);
  String(value);
}
void JsonWriter::Field(std::string_view name, const char* value) {
  Key(name);
  String(value);
}
void JsonWriter::Field(std::string_view name, bool value) {
  Key(name);
  Bool(value);
}
void JsonWriter::Field(std::string_view name, std::int64_t value) {
  Key(name);
  Int(value);
}
void JsonWriter::Field(std::string_view name, std::uint64_t value) {
  Key(name);
  Uint(value);
}
void JsonWriter::Field(std::string_view name, std::uint32_t value) {
  Key(name);
  Uint(value);
}
void JsonWriter::Field(std::string_view name, double value) {
  Key(name);
  Double(value);
}

std::string JsonWriter::Finish() {
  GRAPHSD_CHECK(stack_.empty());
  return std::move(out_);
}

}  // namespace graphsd::obs
