// MetricsRegistry: named counters, gauges and histograms the engine and the
// I/O stack publish into (paper §5's per-component breakdowns).
//
// Design rules:
//   - Handles are stable: Counter/Gauge/Histogram references returned by the
//     registry stay valid for the registry's lifetime (node-based map), so
//     components grab a handle once and bump it lock-free afterwards.
//   - Instruments are thread safe (atomics; the histogram takes a narrow
//     lock) — the prefetch loader thread and the workers share them.
//   - Observability is strictly passive: nothing in here feeds back into
//     scheduling, I/O or results. Engines run identically with or without a
//     registry attached (asserted by the prefetch-equivalence suite).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "util/stats.hpp"

namespace graphsd::obs {

class JsonWriter;

/// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written level (bytes in use, hit rate, modeled seconds, ...).
class Gauge {
 public:
  void Set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution (sizes, latencies).
class Histogram {
 public:
  void Record(std::uint64_t value) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    hist_.Add(value);
  }
  /// Copies the current buckets.
  Log2Histogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return hist_;
  }

 private:
  mutable std::mutex mutex_;
  Log2Histogram hist_;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument registered under `name`, creating it on first
  /// use. A name addresses exactly one instrument kind; reusing it for a
  /// different kind is a bug (checked).
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  Histogram& GetHistogram(const std::string& name);

  /// Writes `{"counters":{...},"gauges":{...},"histograms":{...}}` sorted
  /// by name (deterministic output for diffing bench runs).
  void WriteJson(JsonWriter& json) const;

  /// Number of registered instruments (all kinds).
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  // std::map: node-based (stable references) and name-sorted for export.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace graphsd::obs
