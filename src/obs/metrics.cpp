#include "obs/metrics.hpp"

#include "obs/json_writer.hpp"
#include "util/status.hpp"

namespace graphsd::obs {

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  GRAPHSD_CHECK_MSG(gauges_.find(name) == gauges_.end() &&
                        histograms_.find(name) == histograms_.end(),
                    name);
  return counters_[name];
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  GRAPHSD_CHECK_MSG(counters_.find(name) == counters_.end() &&
                        histograms_.find(name) == histograms_.end(),
                    name);
  return gauges_[name];
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  GRAPHSD_CHECK_MSG(counters_.find(name) == counters_.end() &&
                        gauges_.find(name) == gauges_.end(),
                    name);
  return histograms_[name];
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

void MetricsRegistry::WriteJson(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mutex_);
  json.BeginObject();
  json.Key("counters");
  json.BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Field(name, counter.value());
  }
  json.EndObject();
  json.Key("gauges");
  json.BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Field(name, gauge.value());
  }
  json.EndObject();
  json.Key("histograms");
  json.BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    const Log2Histogram snapshot = histogram.Snapshot();
    json.Key(name);
    json.BeginObject();
    json.Field("count", snapshot.TotalCount());
    json.Key("buckets");
    json.BeginArray();
    const auto& buckets = snapshot.buckets();
    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (buckets[b] == 0) continue;
      json.BeginObject();
      json.Field("low", Log2Histogram::BucketLow(b));
      json.Field("count", buckets[b]);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
}

}  // namespace graphsd::obs
