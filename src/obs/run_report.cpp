#include "obs/run_report.hpp"

#include "io/file.hpp"
#include "obs/json_writer.hpp"

namespace graphsd::obs {
namespace {

const char* ModelName(core::RoundModel model) {
  switch (model) {
    case core::RoundModel::kSciu:
      return "S";
    case core::RoundModel::kFciu:
      return "F";
    case core::RoundModel::kPlainFull:
      return "P";
    case core::RoundModel::kSemi:
      return "M";
    case core::RoundModel::kSkipped:
      return "-";
  }
  return "?";
}

void WriteIo(JsonWriter& json, const io::IoStatsSnapshot& io) {
  json.BeginObject();
  json.Field("seq_read_bytes", io.seq_read_bytes);
  json.Field("seq_write_bytes", io.seq_write_bytes);
  json.Field("rand_read_bytes", io.rand_read_bytes);
  json.Field("rand_write_bytes", io.rand_write_bytes);
  json.Field("seq_read_ops", io.seq_read_ops);
  json.Field("seq_write_ops", io.seq_write_ops);
  json.Field("rand_read_ops", io.rand_read_ops);
  json.Field("rand_write_ops", io.rand_write_ops);
  json.Field("total_read_bytes", io.TotalReadBytes());
  json.Field("total_write_bytes", io.TotalWriteBytes());
  json.Field("retries", io.retries);
  json.Field("checksum_failures", io.checksum_failures);
  json.EndObject();
}

}  // namespace

std::string ToRunReportJson(const core::ExecutionReport& report,
                            const io::IoCostModel& cost_model,
                            const MetricsRegistry* metrics) {
  JsonWriter json;
  json.BeginObject();
  json.Field("schema_version", std::uint64_t{1});
  json.Field("engine", report.engine);
  json.Field("algorithm", report.algorithm);
  json.Field("dataset", report.dataset);
  json.Field("iterations", report.iterations);
  json.Field("rounds", report.rounds);
  json.Field("degraded_rounds", report.degraded_rounds);

  json.Key("seconds");
  json.BeginObject();
  json.Field("compute", report.compute_seconds);
  json.Field("update", report.update_seconds);
  json.Field("io", report.io_seconds);
  json.Field("scheduler", report.scheduler_seconds);
  json.Field("serial", report.SerialSeconds());
  json.Field("total", report.TotalSeconds());
  json.Field("overlapped", report.overlapped_seconds);
  json.EndObject();
  json.Field("overlap_io", report.overlap_io);
  json.Field("compute_shards", report.compute_shards);
  json.Field("apply_serialization_seconds",
             report.apply_serialization_seconds);

  json.Key("cost_model");
  json.BeginObject();
  json.Field("seq_read_bw", cost_model.seq_read_bw);
  json.Field("seq_write_bw", cost_model.seq_write_bw);
  json.Field("seek_seconds", cost_model.seek_seconds);
  json.Field("random_request_bytes", cost_model.random_request_bytes);
  json.Field("random_read_bw", cost_model.RandomReadBandwidth());
  json.Field("decode_bw", cost_model.decode_bw);
  json.EndObject();

  json.Key("io");
  WriteIo(json, report.io);

  json.Key("buffer");
  json.BeginObject();
  json.Field("hits", report.buffer_hits);
  json.Field("misses", report.buffer_misses);
  const std::uint64_t lookups = report.buffer_hits + report.buffer_misses;
  json.Field("hit_rate",
             lookups == 0 ? 0.0
                          : static_cast<double>(report.buffer_hits) /
                                static_cast<double>(lookups));
  json.Field("bytes_saved", report.buffer_bytes_saved);
  json.Field("disk_bytes_saved", report.buffer_disk_bytes_saved);
  json.Field("frame_hits", report.buffer_frame_hits);
  json.Field("frame_puts", report.buffer_frame_puts);
  json.EndObject();

  json.Key("semi_external");
  json.BeginObject();
  json.Field("rounds", report.semi_rounds);
  json.Field("blocks_skipped", report.blocks_skipped);
  json.Field("blocks_skipped_bytes", report.blocks_skipped_bytes);
  json.EndObject();

  json.Key("compression");
  json.BeginObject();
  json.Field("codec", report.codec);
  json.Field("frames_decoded", report.frames_decoded);
  json.Field("compressed_bytes_read", report.compressed_bytes_read);
  json.Field("decoded_bytes", report.decoded_bytes);
  json.Field("decode_seconds", report.decode_seconds);
  json.EndObject();

  json.Key("lifecycle");
  json.BeginObject();
  json.Field("cancelled", report.cancelled);
  json.Field("cancel_reason", report.cancel_reason);
  json.Field("resumed", report.resumed);
  json.Field("resume_iteration", report.resume_iteration);
  json.Field("checkpoints_written", report.checkpoints_written);
  json.Field("checkpoint_bytes", report.checkpoint_bytes);
  json.Field("checkpoint_seconds", report.checkpoint_seconds);
  json.EndObject();

  json.Key("per_round");
  json.BeginArray();
  for (const core::RoundStat& stat : report.per_round) {
    json.BeginObject();
    json.Field("first_iteration", stat.first_iteration);
    json.Field("iterations_covered", stat.iterations_covered);
    json.Field("model", ModelName(stat.model));
    json.Field("active_vertices", stat.active_vertices);
    json.Field("active_edges", stat.active_edges);
    json.Field("cost_on_demand", stat.cost_on_demand);
    json.Field("cost_full", stat.cost_full);
    json.Field("cost_semi", stat.cost_semi);
    json.Field("blocks_skipped", stat.blocks_skipped);
    json.Field("blocks_skipped_bytes", stat.blocks_skipped_bytes);
    json.Field("seq_bytes", stat.seq_bytes);
    json.Field("rand_bytes", stat.rand_bytes);
    json.Field("random_requests", stat.random_requests);
    json.Field("io_seconds", stat.io_seconds);
    json.Field("compute_seconds", stat.compute_seconds);
    json.Field("overlapped_seconds", stat.overlapped_seconds);
    json.Field("scheduler_seconds", stat.scheduler_seconds);
    json.Field("read_bytes", stat.read_bytes);
    json.Field("write_bytes", stat.write_bytes);
    json.EndObject();
  }
  json.EndArray();

  if (metrics != nullptr) {
    json.Key("metrics");
    metrics->WriteJson(json);
  }
  json.EndObject();
  return json.Finish();
}

Status WriteRunReport(const core::ExecutionReport& report,
                      const io::IoCostModel& cost_model,
                      const std::string& path,
                      const MetricsRegistry* metrics) {
  // Atomic replace (write-temp → fsync → rename): a crash mid-export must
  // not leave a truncated JSON document where a previous good report was.
  return io::WriteStringToFile(path, ToRunReportJson(report, cost_model,
                                                     metrics));
}

}  // namespace graphsd::obs
