// Trace file exporter. Lives in graphsd_obs_report (not graphsd_obs)
// because the atomic-replace helper is in the io layer, which sits above
// obs in the link order.
#include "obs/trace.hpp"

#include "io/file.hpp"

namespace graphsd::obs {

Status WriteChromeTrace(const TraceBuffer& buffer, const std::string& path) {
  // Atomic replace (write-temp → fsync → rename): a crash mid-export must
  // not leave a truncated JSON document where a previous good trace was.
  return io::WriteStringToFile(path, ToChromeTraceJson(buffer));
}

}  // namespace graphsd::obs
