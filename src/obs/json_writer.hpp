// Minimal streaming JSON writer for the observability exporters.
//
// Produces deterministic, valid JSON (RFC 8259): strings are escaped,
// doubles render with enough digits to round-trip, and NaN/Inf — which JSON
// cannot represent — degrade to null. The writer is a thin state machine
// (comma insertion is automatic); callers are responsible for balancing
// Begin/End calls, which GRAPHSD_CHECK enforces at Finish().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace graphsd::obs {

class JsonWriter {
 public:
  JsonWriter() = default;

  /// Opens an object / array as the next value.
  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Emits `"name":` inside an object; the next call writes its value.
  void Key(std::string_view name);

  /// Scalar values.
  void String(std::string_view value);
  void Bool(bool value);
  void Int(std::int64_t value);
  void Uint(std::uint64_t value);
  void Double(double value);
  void Null();

  /// Splices pre-rendered JSON in as the next value. `json` must itself be
  /// a complete, valid JSON value (the service embeds run-report documents
  /// produced by another JsonWriter); the writer only handles the
  /// surrounding comma/key state.
  void RawValue(std::string_view json);

  /// Convenience: Key + scalar.
  void Field(std::string_view name, std::string_view value);
  void Field(std::string_view name, const char* value);
  void Field(std::string_view name, bool value);
  void Field(std::string_view name, std::int64_t value);
  void Field(std::string_view name, std::uint64_t value);
  void Field(std::string_view name, std::uint32_t value);
  void Field(std::string_view name, double value);

  /// Returns the finished document; all containers must be closed.
  std::string Finish();

  /// The buffer so far (for tests).
  const std::string& buffer() const noexcept { return out_; }

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void BeforeValue();
  void Raw(std::string_view text) { out_.append(text); }

  std::string out_;
  std::vector<Scope> stack_;
  bool need_comma_ = false;
  bool have_key_ = false;
};

/// Escapes `value` per JSON string rules (quotes not included).
std::string JsonEscape(std::string_view value);

}  // namespace graphsd::obs
