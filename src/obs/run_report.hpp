// Machine-readable run report: one stable JSON document per engine run, so
// bench harnesses can diff trajectories across commits (BENCH_*.json) and
// the paper's §5 breakdowns can be regenerated without re-parsing logs.
//
// Schema (versioned; additive changes bump schema_version):
//   schema_version, engine, algorithm, dataset
//   iterations, rounds, degraded_rounds
//   seconds{compute, update, io, scheduler, serial, total, overlapped},
//     overlap_io
//   cost_model{seq_read_bw, seq_write_bw, seek_seconds,
//              random_request_bytes, random_read_bw}   — the C_r/C_s inputs
//   io{*_bytes, *_ops by direction and pattern, retries, checksum_failures}
//   buffer{hits, misses, hit_rate, bytes_saved}
//   per_round[]: first_iteration, iterations_covered, model (S|F|P|-),
//     active_vertices, active_edges, cost_on_demand (C_r), cost_full (C_s),
//     seq_bytes (S_seq), rand_bytes (S_ran), random_requests, io_seconds,
//     compute_seconds, overlapped_seconds, scheduler_seconds, read_bytes,
//     write_bytes
//   metrics (when a registry is given): counters/gauges/histograms by name
#pragma once

#include <string>

#include "core/report.hpp"
#include "io/cost_model.hpp"
#include "obs/metrics.hpp"
#include "util/status.hpp"

namespace graphsd::obs {

/// Renders the report document. `metrics` may be null.
std::string ToRunReportJson(const core::ExecutionReport& report,
                            const io::IoCostModel& cost_model,
                            const MetricsRegistry* metrics = nullptr);

/// Writes ToRunReportJson(...) to `path` (plain stdio; reports are tooling
/// output, not accounted dataset I/O).
Status WriteRunReport(const core::ExecutionReport& report,
                      const io::IoCostModel& cost_model, const std::string& path,
                      const MetricsRegistry* metrics = nullptr);

}  // namespace graphsd::obs
