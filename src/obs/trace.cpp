#include "obs/trace.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "obs/json_writer.hpp"

namespace graphsd::obs {

std::uint32_t TraceBuffer::TidLocked(std::thread::id id) {
  const auto it = std::find(threads_.begin(), threads_.end(), id);
  if (it != threads_.end()) {
    return static_cast<std::uint32_t>(it - threads_.begin());
  }
  threads_.push_back(id);
  return static_cast<std::uint32_t>(threads_.size() - 1);
}

void TraceBuffer::Record(const char* name, std::uint32_t iteration,
                         double start_us, double duration_us) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  TraceEvent event;
  event.name = name;
  event.iteration = iteration;
  event.tid = TidLocked(std::this_thread::get_id());
  event.start_us = start_us;
  event.duration_us = duration_us;
  events_.push_back(event);
}

std::vector<TraceEvent> TraceBuffer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t TraceBuffer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

std::string ToChromeTraceJson(const TraceBuffer& buffer) {
  JsonWriter json;
  json.BeginObject();
  json.Field("displayTimeUnit", "ms");
  json.Key("traceEvents");
  json.BeginArray();
  for (const TraceEvent& event : buffer.Events()) {
    json.BeginObject();
    json.Field("name", event.name);
    json.Field("cat", "graphsd");
    json.Field("ph", "X");
    json.Field("ts", event.start_us);
    json.Field("dur", event.duration_us);
    json.Field("pid", std::uint64_t{1});
    json.Field("tid", event.tid);
    json.Key("args");
    json.BeginObject();
    json.Field("iteration", event.iteration);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.Field("droppedEvents", buffer.dropped());
  json.EndObject();
  return json.Finish();
}

}  // namespace graphsd::obs
