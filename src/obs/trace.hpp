// Phase tracing: scoped spans recording where each iteration's wall time
// goes (schedule-decision, index-load, edge-read, compute,
// cross-iter-update, write-back), exportable as chrome://tracing JSON.
//
// Overhead contract: with no buffer attached (the default) a TraceSpan is a
// null check at construction and destruction — no clock reads, no
// allocation. With a buffer attached the cost is two steady_clock reads and
// one short-lock append per span; spans are recorded at phase granularity
// (per sub-block pass, never per edge), so tracing a run adds thousands of
// events, not millions.
//
// Thread safety: spans are recorded from the consumer thread, pool workers
// and the prefetch loader thread concurrently; the buffer serializes
// appends under a mutex. Tracing is strictly passive — it performs no
// device I/O and feeds nothing back into execution, so traced runs are
// byte- and decision-identical to untraced runs (asserted by the
// prefetch-equivalence suite).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.hpp"
#include "util/status.hpp"

namespace graphsd::obs {

/// One completed span. `name` must point at a string literal (spans are hot
/// enough that owning strings would show up); `iteration` is the BSP
/// iteration the phase belongs to.
struct TraceEvent {
  const char* name = "";
  std::uint32_t iteration = 0;
  std::uint32_t tid = 0;       // dense per-buffer thread index
  double start_us = 0;         // since the buffer's epoch
  double duration_us = 0;
};

class TraceBuffer {
 public:
  /// `max_events` bounds memory; appends past it are counted but dropped
  /// (the exporter reports the drop count so truncation is never silent).
  explicit TraceBuffer(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends one completed span. Thread safe.
  void Record(const char* name, std::uint32_t iteration, double start_us,
              double duration_us);

  /// Microseconds since the buffer was constructed (span timestamps).
  double NowMicros() const noexcept { return epoch_.Seconds() * 1e6; }

  /// Copies the events recorded so far, in append order.
  std::vector<TraceEvent> Events() const;

  std::size_t event_count() const;
  std::uint64_t dropped() const;

 private:
  std::uint32_t TidLocked(std::thread::id id);

  const std::size_t max_events_;
  WallTimer epoch_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::thread::id> threads_;  // index = dense tid
  std::uint64_t dropped_ = 0;
};

/// RAII span: times its scope into `buffer` (no-op when null).
class TraceSpan {
 public:
  TraceSpan(TraceBuffer* buffer, const char* name,
            std::uint32_t iteration) noexcept
      : buffer_(buffer), name_(name), iteration_(iteration) {
    if (buffer_ != nullptr) start_us_ = buffer_->NowMicros();
  }

  ~TraceSpan() {
    if (buffer_ != nullptr) {
      buffer_->Record(name_, iteration_, start_us_,
                      buffer_->NowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
  std::uint32_t iteration_;
  double start_us_ = 0;
};

/// Serializes the buffer in Chrome trace-event format ("Trace Event Format",
/// the JSON chrome://tracing and Perfetto load): one complete ("ph":"X")
/// event per span plus a metadata record with the drop count.
std::string ToChromeTraceJson(const TraceBuffer& buffer);

/// Atomically replaces `path` with ToChromeTraceJson(buffer) (tooling
/// output, not dataset payload, so no Device accounting). Defined in
/// trace_export.cpp / graphsd_obs_report — the io-layer atomic-write
/// helper is not linkable from graphsd_obs itself.
Status WriteChromeTrace(const TraceBuffer& buffer, const std::string& path);

}  // namespace graphsd::obs
