// Lumos re-implementation (Vora, ATC'19) — comparison baseline.
//
// Lumos performs dependency-driven out-of-order execution: every graph load
// proactively computes next-iteration values for the partitions whose BSP
// dependencies are already satisfied (our FCIU column-order mechanism models
// its propagation along increasing partitions). However, Lumos is NOT
// state-aware: it streams every edge every round regardless of how small
// the active set is, and it keeps no priority buffer for the secondary
// partitions it reads twice.
//
// Implementation note: GraphSD's driver with the on-demand model and the
// buffer disabled; cross-iteration stays on. Its sort-free preprocessing
// pipeline lives in partition/baseline_preprocessors.hpp.
#pragma once

#include "core/engine.hpp"

namespace graphsd::baselines {

class LumosEngine {
 public:
  struct Options {
    std::size_t num_threads = 0;
    std::uint32_t max_iterations = UINT32_MAX;
    bool record_per_round = true;
    std::string scratch_dir;
  };

  explicit LumosEngine(const partition::GridDataset& dataset);
  LumosEngine(const partition::GridDataset& dataset, Options options);

  Result<core::ExecutionReport> Run(core::Program& program);

  const core::VertexState* state() const noexcept { return engine_.state(); }

 private:
  core::GraphSDEngine engine_;
};

}  // namespace graphsd::baselines
