#include "baselines/hus_graph_engine.hpp"

namespace graphsd::baselines {
namespace {

core::EngineOptions ToEngineOptions(const HusGraphEngine::Options& options) {
  core::EngineOptions out;
  out.num_threads = options.num_threads;
  out.max_iterations = options.max_iterations;
  out.record_per_round = options.record_per_round;
  out.scratch_dir = options.scratch_dir;
  out.engine_name = "HUS-Graph";
  // Hybrid update strategy: state-aware model selection, nothing more.
  out.enable_selective = true;
  out.enable_cross_iteration = false;
  out.enable_buffering = false;
  // The modeled system issues its I/O serially: no prefetch pipeline and
  // no overlap-aware charging.
  out.prefetch_depth = 0;
  out.overlap_io = false;
  return out;
}

}  // namespace

HusGraphEngine::HusGraphEngine(const partition::GridDataset& dataset)
    : HusGraphEngine(dataset, Options{}) {}

HusGraphEngine::HusGraphEngine(const partition::GridDataset& dataset,
                               Options options)
    : engine_(dataset, ToEngineOptions(options)) {}

Result<core::ExecutionReport> HusGraphEngine::Run(core::Program& program) {
  return engine_.Run(program);
}

}  // namespace graphsd::baselines
