// HUS-Graph re-implementation (Xu et al., TPDS'20) — comparison baseline.
//
// HUS-Graph's hybrid update strategy captures the number of active vertices
// and adaptively selects between an on-demand (row-oriented, active-edges
// only) and a full (sequential streaming) I/O model — the same state
// awareness GraphSD has — but it performs NO cross-iteration value
// computation and NO secondary sub-block buffering: every vertex value is
// produced by exactly one iteration's processing, and every iteration
// reloads the data it touches.
//
// Implementation note: this is GraphSD's driver with cross-iteration and
// buffering disabled, which is precisely the subset of mechanisms HUS-Graph
// has; its separate double-copy preprocessing pipeline lives in
// partition/baseline_preprocessors.hpp.
#pragma once

#include "core/engine.hpp"

namespace graphsd::baselines {

class HusGraphEngine {
 public:
  struct Options {
    std::size_t num_threads = 0;
    std::uint32_t max_iterations = UINT32_MAX;
    bool record_per_round = true;
    std::string scratch_dir;
  };

  explicit HusGraphEngine(const partition::GridDataset& dataset);
  HusGraphEngine(const partition::GridDataset& dataset, Options options);

  Result<core::ExecutionReport> Run(core::Program& program);

  const core::VertexState* state() const noexcept { return engine_.state(); }

 private:
  core::GraphSDEngine engine_;
};

}  // namespace graphsd::baselines
