#include "baselines/lumos_engine.hpp"

namespace graphsd::baselines {
namespace {

core::EngineOptions ToEngineOptions(const LumosEngine::Options& options) {
  core::EngineOptions out;
  out.num_threads = options.num_threads;
  out.max_iterations = options.max_iterations;
  out.record_per_round = options.record_per_round;
  out.scratch_dir = options.scratch_dir;
  out.engine_name = "Lumos";
  // Out-of-order future-value computation, but no state awareness and no
  // secondary-partition buffering.
  out.enable_selective = false;
  out.enable_cross_iteration = true;
  out.enable_buffering = false;
  // Lumos materializes its proactively-computed values to disk per round.
  out.model_lumos_propagation = true;
  // The modeled system issues its I/O serially: no prefetch pipeline and
  // no overlap-aware charging.
  out.prefetch_depth = 0;
  out.overlap_io = false;
  return out;
}

}  // namespace

LumosEngine::LumosEngine(const partition::GridDataset& dataset)
    : LumosEngine(dataset, Options{}) {}

LumosEngine::LumosEngine(const partition::GridDataset& dataset,
                         Options options)
    : engine_(dataset, ToEngineOptions(options)) {}

Result<core::ExecutionReport> LumosEngine::Run(core::Program& program) {
  return engine_.Run(program);
}

}  // namespace graphsd::baselines
