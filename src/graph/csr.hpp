// In-memory CSR (compressed sparse row) graph, used by the reference
// algorithms that serve as correctness oracles for the out-of-core engines.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace graphsd {

/// Immutable CSR built from an EdgeList. Stores out-edges; `BuildReverse`
/// gives the transpose (in-edges) when an algorithm gathers.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds the out-edge CSR of `list` (counting sort by source; stable, so
  /// parallel weights follow their edges).
  static CsrGraph Build(const EdgeList& list);

  /// Builds the in-edge (transposed) CSR of `list`.
  static CsrGraph BuildReverse(const EdgeList& list);

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::uint64_t num_edges() const noexcept { return targets_.size(); }
  bool weighted() const noexcept { return !weights_.empty(); }

  /// Neighbors of `v` (out-neighbors, or in-neighbors for a reverse CSR).
  std::span<const VertexId> Neighbors(VertexId v) const noexcept {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }

  /// Weights parallel to Neighbors(v); empty span when unweighted.
  std::span<const Weight> NeighborWeights(VertexId v) const noexcept {
    if (!weighted()) return {};
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  /// Degree of `v` in this orientation.
  std::uint32_t Degree(VertexId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

 private:
  static CsrGraph BuildOriented(const EdgeList& list, bool reverse);

  VertexId num_vertices_ = 0;
  std::vector<std::uint64_t> offsets_;  // size num_vertices_+1
  std::vector<VertexId> targets_;
  std::vector<Weight> weights_;
};

}  // namespace graphsd
