// Deterministic synthetic graph generators.
//
// These stand in for the paper's datasets (Table 3): RMAT reproduces the
// power-law skew of Twitter2010/SK2005/Kron30; the web-locality generator
// reproduces the strong ID locality of crawled web graphs (UK2007/UKUnion),
// which is what gives the scheduler a large S_seq; the structured families
// (path/ring/grid/star/complete) are test fixtures with known answers.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace graphsd {

struct RmatOptions {
  /// 2^scale vertices.
  std::uint32_t scale = 14;
  /// edges = edge_factor * num_vertices.
  std::uint32_t edge_factor = 16;
  /// Kronecker initiator probabilities (Graph500 defaults).
  double a = 0.57, b = 0.19, c = 0.19;
  std::uint64_t seed = 1;
  /// Attach uniform weights in [1, max_weight] when > 0.
  double max_weight = 0.0;
  /// Drop self loops and duplicate edges.
  bool dedup = true;
};

/// Graph500-style RMAT / Kronecker generator.
EdgeList GenerateRmat(const RmatOptions& options);

struct ErdosRenyiOptions {
  VertexId num_vertices = 1 << 14;
  std::uint64_t num_edges = 1 << 18;
  std::uint64_t seed = 1;
  double max_weight = 0.0;
  bool dedup = true;
};

/// Uniform random directed graph.
EdgeList GenerateErdosRenyi(const ErdosRenyiOptions& options);

struct WebGraphOptions {
  VertexId num_vertices = 1 << 14;
  /// Average out-degree.
  std::uint32_t avg_degree = 16;
  /// Fraction of edges that stay within `locality_window` of the source ID
  /// (host-local links in a crawl ordering).
  double locality = 0.8;
  VertexId locality_window = 64;
  /// Range of the non-local links: 0 = uniform over all vertices
  /// (small-world); > 0 = bounded to ±long_range_window (high-diameter,
  /// like real crawls where cross-host links stay within a TLD region).
  VertexId long_range_window = 0;
  /// Probability that a host-local link targets the cluster's first vertex
  /// (the "homepage"). Real crawls are strongly homepage-centric; the
  /// resulting in-degree skew concentrates rank/residual mass in hubs,
  /// which is what makes activity die off quickly outside them.
  double homepage_bias = 0.5;
  /// Fraction of vertices organized as "whiskers": long directed chains
  /// hanging off the core (real crawls are full of them — calendars,
  /// pagination). Whiskers settle one hop per BSP iteration, producing the
  /// long sparse-frontier tails that reward state-aware scheduling.
  double whisker_fraction = 0.0;
  /// Length of each whisker chain.
  VertexId whisker_length = 32;
  std::uint64_t seed = 1;
  double max_weight = 0.0;
};

/// Web-crawl-like generator: power-law out-degrees with strong ID locality.
EdgeList GenerateWebGraph(const WebGraphOptions& options);

/// Directed path 0 -> 1 -> ... -> n-1. Diameter n-1: the worst case for
/// iteration counts, the best case for cross-iteration propagation.
EdgeList GeneratePath(VertexId num_vertices, double weight = 0.0);

/// Directed cycle.
EdgeList GenerateRing(VertexId num_vertices, double weight = 0.0);

/// Star: hub 0 -> every other vertex.
EdgeList GenerateStar(VertexId num_vertices, double weight = 0.0);

/// Complete directed graph (no self loops). Quadratic; tests only.
EdgeList GenerateComplete(VertexId num_vertices, double weight = 0.0);

/// 2-D grid with edges to the right and down neighbor (road-network-like).
EdgeList GenerateGrid2D(VertexId rows, VertexId cols, std::uint64_t seed = 1,
                        double max_weight = 0.0);

/// Appends `count` new vertices organized as directed chains of
/// `chain_length`, each hanging off a random existing vertex. Models the
/// sparse periphery of real large graphs (pagination whiskers, long reply
/// chains) whose one-hop-per-iteration convergence produces the long
/// sparse-frontier tails out-of-core schedulers exploit. Weights (uniform
/// in [1, max_weight]) are attached iff the input graph is weighted.
/// `head_range_fraction` restricts attachment points to the first fraction
/// of vertex IDs — on RMAT-family graphs those are the hubs, which keeps
/// the whiskers fed with rank/residual mass.
void AppendWhiskers(EdgeList& list, VertexId count, VertexId chain_length,
                    std::uint64_t seed = 1, double max_weight = 0.0,
                    double head_range_fraction = 1.0);

}  // namespace graphsd
