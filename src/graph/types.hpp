// Fundamental graph types shared by every GraphSD layer.
#pragma once

#include <cstdint>
#include <limits>

namespace graphsd {

/// Vertex identifier. 32 bits covers every dataset in the paper except
/// Kron30; the on-disk format is explicitly 32-bit (M = 8 bytes per edge,
/// matching the paper's cost-model constant).
using VertexId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Edge weight type (W = 4 bytes, as in the paper's cost model).
using Weight = float;

/// A directed edge (source, destination). POD, 8 bytes, the unit of disk
/// storage in sub-block files.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;

  /// Lexicographic (src, dst) order — the sub-block sort order.
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  }
};
static_assert(sizeof(Edge) == 8, "Edge must be 8 bytes on disk");

/// Size constants used in the paper's cost formulas (Table 2).
inline constexpr std::uint64_t kEdgeBytes = sizeof(Edge);     // M
inline constexpr std::uint64_t kWeightBytes = sizeof(Weight); // W

}  // namespace graphsd
