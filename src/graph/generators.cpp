#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace graphsd {
namespace {

/// Adds an edge, optionally weighted with a uniform weight in [1, max].
void EmitEdge(EdgeList& list, Xoshiro256& rng, VertexId src, VertexId dst,
              double max_weight) {
  if (max_weight > 0) {
    list.AddEdge(src, dst, rng.NextFloat(1.0f, static_cast<float>(max_weight)));
  } else {
    list.AddEdge(src, dst);
  }
}

void MaybeDedup(EdgeList& list, bool dedup) {
  if (!dedup) return;
  list.SortBySource();
  list.DedupSorted();
}

}  // namespace

EdgeList GenerateRmat(const RmatOptions& options) {
  GRAPHSD_CHECK(options.scale > 0 && options.scale < 31);
  const double d = 1.0 - options.a - options.b - options.c;
  GRAPHSD_CHECK_MSG(d > 0.0, "RMAT probabilities must sum below 1");
  const VertexId n = VertexId{1} << options.scale;
  const std::uint64_t m =
      static_cast<std::uint64_t>(options.edge_factor) * n;

  Xoshiro256 rng(options.seed);
  EdgeList list(n);
  list.edges().reserve(m);
  if (options.max_weight > 0) list.weights().reserve(m);

  for (std::uint64_t i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    for (std::uint32_t bit = 0; bit < options.scale; ++bit) {
      const double r = rng.NextDouble();
      // Quadrant selection with a little noise per level (standard RMAT).
      if (r < options.a) {
        // top-left: no bits set
      } else if (r < options.a + options.b) {
        dst |= VertexId{1} << bit;
      } else if (r < options.a + options.b + options.c) {
        src |= VertexId{1} << bit;
      } else {
        src |= VertexId{1} << bit;
        dst |= VertexId{1} << bit;
      }
    }
    if (options.dedup && src == dst) continue;  // drop self loops
    EmitEdge(list, rng, src, dst, options.max_weight);
  }
  MaybeDedup(list, options.dedup);
  return list;
}

EdgeList GenerateErdosRenyi(const ErdosRenyiOptions& options) {
  GRAPHSD_CHECK(options.num_vertices > 1);
  Xoshiro256 rng(options.seed);
  EdgeList list(options.num_vertices);
  list.edges().reserve(options.num_edges);
  if (options.max_weight > 0) list.weights().reserve(options.num_edges);
  for (std::uint64_t i = 0; i < options.num_edges; ++i) {
    const auto src = static_cast<VertexId>(rng.NextBounded(options.num_vertices));
    auto dst = static_cast<VertexId>(rng.NextBounded(options.num_vertices));
    if (options.dedup && dst == src) {
      dst = (dst + 1) % options.num_vertices;
    }
    EmitEdge(list, rng, src, dst, options.max_weight);
  }
  MaybeDedup(list, options.dedup);
  return list;
}

EdgeList GenerateWebGraph(const WebGraphOptions& options) {
  GRAPHSD_CHECK(options.num_vertices > 1);
  GRAPHSD_CHECK(options.locality >= 0.0 && options.locality <= 1.0);
  Xoshiro256 rng(options.seed);
  const VertexId n = options.num_vertices;
  EdgeList list(n);

  // Whisker vertices occupy the top IDs; the core keeps [0, core_n).
  GRAPHSD_CHECK(options.whisker_fraction >= 0.0 &&
                options.whisker_fraction < 1.0);
  const auto whisker_vertices = static_cast<VertexId>(
      static_cast<double>(n) * options.whisker_fraction);
  const VertexId core_n = n - whisker_vertices;
  GRAPHSD_CHECK(core_n >= 2);

  const VertexId hub_cluster_size = std::min<VertexId>(
      std::max<VertexId>(options.locality_window, 2), core_n);
  const VertexId site_size =
      std::min<VertexId>(hub_cluster_size * 32, core_n);

  for (VertexId v = 0; v < core_n; ++v) {
    // Zipf-ish out-degree: most pages link a little, hubs link a lot.
    const double u = rng.NextDouble();
    const auto degree = static_cast<std::uint32_t>(
        std::min<double>(4.0 * options.avg_degree / std::sqrt(u + 1e-4),
                         8.0 * options.avg_degree));
    auto scaled =
        std::max<std::uint32_t>(1, degree * options.avg_degree / 32);
    // Site hubs are portals: huge in-degree but only a handful of
    // out-links, so the mass they concentrate is relayed undiluted.
    if (v % site_size == 0) scaled = std::min<std::uint32_t>(scaled, 3);
    for (std::uint32_t k = 0; k < scaled; ++k) {
      VertexId dst;
      if (rng.NextDouble() < options.locality) {
        // Host-local link: crawls emit one host's pages contiguously, so
        // host-internal links land inside the source's ID cluster. Cluster
        // structure (rather than a sliding window) matters: it lets local
        // label/distance propagation settle quickly, as on real crawls.
        const VertexId cluster_size =
            std::min<VertexId>(std::max<VertexId>(options.locality_window, 2),
                               core_n);
        const VertexId cluster_base = (v / cluster_size) * cluster_size;
        const VertexId cluster_end =
            std::min<VertexId>(cluster_base + cluster_size, core_n);
        const double roll = rng.NextDouble();
        if (v != cluster_base && roll < options.homepage_bias * 0.75) {
          dst = cluster_base;  // host homepage: in-degree concentrates
        } else if (roll < options.homepage_bias) {
          // Site-level hub (a second hierarchy level, 32 hosts per site):
          // a few very-long-lived mass concentrators, which is what gives
          // real crawls their smooth activity decay.
          const VertexId site = cluster_size * 32;
          dst = (v / site) * site;
          if (dst == v) dst = cluster_base;
        } else {
          dst = cluster_base +
                static_cast<VertexId>(
                    rng.NextBounded(cluster_end - cluster_base));
        }
        if (dst == v) dst = cluster_base + (dst + 1 - cluster_base) %
                                               (cluster_end - cluster_base);
        if (dst == v) dst = (v + 1) % core_n;  // degenerate 1-vertex cluster
      } else if (options.long_range_window > 0) {
        // Bounded long-range link: forward jump of up to the long window.
        const std::uint64_t window =
            std::min<std::uint64_t>(options.long_range_window, core_n - 1);
        const std::uint64_t delta = 1 + rng.NextBounded(window);
        dst = static_cast<VertexId>((v + delta) % core_n);
      } else {
        dst = static_cast<VertexId>(rng.NextBounded(core_n));
        if (dst == v) dst = (dst + 1) % core_n;
      }
      EmitEdge(list, rng, v, dst, options.max_weight);
    }
  }

  // Whisker chains: each hangs off a site-level hub (hubs are where the
  // rank/label/distance mass that feeds a whisker lives longest) and
  // settles one hop per BSP iteration.
  if (whisker_vertices > 0) {
    const VertexId length = std::max<VertexId>(options.whisker_length, 1);
    const VertexId cluster_size = std::min<VertexId>(
        std::max<VertexId>(options.locality_window, 2), core_n);
    const VertexId site_size = std::min<VertexId>(cluster_size * 32, core_n);
    const VertexId num_sites = (core_n + site_size - 1) / site_size;
    VertexId v = core_n;
    while (v < n) {
      const auto head =
          static_cast<VertexId>(rng.NextBounded(num_sites) * site_size);
      EmitEdge(list, rng, head, v, options.max_weight);
      const VertexId chain_end = std::min<VertexId>(v + length, n);
      for (; v + 1 < chain_end; ++v) {
        EmitEdge(list, rng, v, v + 1, options.max_weight);
      }
      v = chain_end;
    }
  }
  MaybeDedup(list, true);
  return list;
}

EdgeList GeneratePath(VertexId num_vertices, double weight) {
  GRAPHSD_CHECK(num_vertices >= 2);
  EdgeList list(num_vertices);
  for (VertexId v = 0; v + 1 < num_vertices; ++v) {
    if (weight > 0) {
      list.AddEdge(v, v + 1, static_cast<Weight>(weight));
    } else {
      list.AddEdge(v, v + 1);
    }
  }
  return list;
}

EdgeList GenerateRing(VertexId num_vertices, double weight) {
  EdgeList list = GeneratePath(num_vertices, weight);
  if (weight > 0) {
    list.AddEdge(num_vertices - 1, 0, static_cast<Weight>(weight));
  } else {
    list.AddEdge(num_vertices - 1, 0);
  }
  return list;
}

EdgeList GenerateStar(VertexId num_vertices, double weight) {
  GRAPHSD_CHECK(num_vertices >= 2);
  EdgeList list(num_vertices);
  for (VertexId v = 1; v < num_vertices; ++v) {
    if (weight > 0) {
      list.AddEdge(0, v, static_cast<Weight>(weight));
    } else {
      list.AddEdge(0, v);
    }
  }
  return list;
}

EdgeList GenerateComplete(VertexId num_vertices, double weight) {
  GRAPHSD_CHECK(num_vertices >= 2 && num_vertices <= 4096);
  EdgeList list(num_vertices);
  for (VertexId u = 0; u < num_vertices; ++u) {
    for (VertexId v = 0; v < num_vertices; ++v) {
      if (u == v) continue;
      if (weight > 0) {
        list.AddEdge(u, v, static_cast<Weight>(weight));
      } else {
        list.AddEdge(u, v);
      }
    }
  }
  return list;
}

void AppendWhiskers(EdgeList& list, VertexId count, VertexId chain_length,
                    std::uint64_t seed, double max_weight,
                    double head_range_fraction) {
  GRAPHSD_CHECK(list.num_vertices() >= 1);
  GRAPHSD_CHECK_MSG(!list.weighted() || max_weight > 0,
                    "weighted graph needs weighted whiskers");
  GRAPHSD_CHECK(head_range_fraction > 0.0 && head_range_fraction <= 1.0);
  Xoshiro256 rng(seed);
  const VertexId core_n = list.num_vertices();
  const VertexId n = core_n + count;
  const VertexId length = std::max<VertexId>(chain_length, 1);
  const double w = list.weighted() ? max_weight : 0.0;
  const VertexId head_range = std::max<VertexId>(
      1, static_cast<VertexId>(core_n * head_range_fraction));
  VertexId v = core_n;
  while (v < n) {
    const auto head = static_cast<VertexId>(rng.NextBounded(head_range));
    EmitEdge(list, rng, head, v, w);
    const VertexId chain_end = std::min<VertexId>(v + length, n);
    for (; v + 1 < chain_end; ++v) {
      EmitEdge(list, rng, v, v + 1, w);
    }
    v = chain_end;
  }
  list.EnsureVertices(n);
}

EdgeList GenerateGrid2D(VertexId rows, VertexId cols, std::uint64_t seed,
                        double max_weight) {
  GRAPHSD_CHECK(rows >= 1 && cols >= 1);
  Xoshiro256 rng(seed);
  EdgeList list(rows * cols);
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      if (c + 1 < cols) EmitEdge(list, rng, v, v + 1, max_weight);
      if (r + 1 < rows) EmitEdge(list, rng, v, v + cols, max_weight);
    }
  }
  return list;
}

}  // namespace graphsd
