// Sequential in-memory reference implementations of every algorithm GraphSD
// runs. These are the correctness oracles: every engine × update-model
// combination must reproduce these results exactly (within floating-point
// tolerance for the rank algorithms).
//
// Semantics notes (shared contract with src/algos/):
//   * PageRank: synchronous BSP, damping d, rank_0 = 1/|V|,
//     rank_{t+1}[v] = (1-d)/|V| + d * sum_{u->v} rank_t[u]/outdeg(u).
//     Dangling-vertex mass is dropped (the convention of GridGraph-family
//     systems, which the paper builds on).
//   * PageRank-Delta: push/residual formulation; vertex is active while its
//     residual exceeds `epsilon`; rank converges to PageRank's fixpoint.
//   * CC: min-label propagation; for weakly connected components the input
//     must be symmetrized first (see Symmetrize()). Converges to the
//     minimum vertex id of each component.
//   * SSSP: nonnegative weights; oracle is Dijkstra.
//   * BFS: hop counts from the root; kUnreachedLevel when unreachable.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace graphsd {

/// Adds the reverse of every edge (weights copied). Used to prepare inputs
/// for weakly-connected-component runs.
EdgeList Symmetrize(const EdgeList& list);

/// `iterations` rounds of synchronous PageRank.
std::vector<double> ReferencePageRank(const EdgeList& list,
                                      std::uint32_t iterations,
                                      double damping = 0.85);

/// PageRank-Delta: BSP rounds of residual pushing until no residual exceeds
/// `epsilon` or `max_iterations` is hit. Returns final ranks.
std::vector<double> ReferencePageRankDelta(const EdgeList& list,
                                           double epsilon,
                                           std::uint32_t max_iterations,
                                           double damping = 0.85);

/// Min-label propagation to convergence. Input should be symmetric for WCC.
std::vector<VertexId> ReferenceConnectedComponents(const EdgeList& list);

/// Dijkstra distances from `root`. Unreached = +infinity.
std::vector<double> ReferenceSssp(const EdgeList& list, VertexId root);

/// Widest-path (maximum bottleneck) widths from `root`; root = +infinity,
/// unreached = 0. Computed with a max-heap Dijkstra variant.
std::vector<double> ReferenceWidestPath(const EdgeList& list, VertexId root);

/// Personalized PageRank from `source`: sequential residual pushing to the
/// `epsilon` threshold. Masses sum to <= 1 (dangling and sub-threshold
/// residual leakage).
std::vector<double> ReferencePersonalizedPageRank(const EdgeList& list,
                                                  VertexId source,
                                                  double epsilon,
                                                  double damping = 0.85);

/// Level reached in BFS level 0 = root. Unreached vertices get
/// kUnreachedLevel.
inline constexpr std::uint32_t kUnreachedLevel = UINT32_MAX;
std::vector<std::uint32_t> ReferenceBfs(const EdgeList& list, VertexId root);

}  // namespace graphsd
