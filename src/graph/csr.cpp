#include "graph/csr.hpp"

namespace graphsd {

CsrGraph CsrGraph::Build(const EdgeList& list) {
  return BuildOriented(list, /*reverse=*/false);
}

CsrGraph CsrGraph::BuildReverse(const EdgeList& list) {
  return BuildOriented(list, /*reverse=*/true);
}

CsrGraph CsrGraph::BuildOriented(const EdgeList& list, bool reverse) {
  CsrGraph g;
  g.num_vertices_ = list.num_vertices();
  g.offsets_.assign(g.num_vertices_ + 1, 0);

  const auto& edges = list.edges();
  for (const Edge& e : edges) {
    ++g.offsets_[(reverse ? e.dst : e.src) + 1];
  }
  for (VertexId v = 0; v < g.num_vertices_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }

  g.targets_.resize(edges.size());
  if (list.weighted()) g.weights_.resize(edges.size());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (std::uint64_t i = 0; i < edges.size(); ++i) {
    const Edge& e = edges[i];
    const VertexId key = reverse ? e.dst : e.src;
    const std::uint64_t slot = cursor[key]++;
    g.targets_[slot] = reverse ? e.src : e.dst;
    if (list.weighted()) g.weights_[slot] = list.weights()[i];
  }
  return g;
}

}  // namespace graphsd
