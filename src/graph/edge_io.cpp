#include "graph/edge_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace graphsd {
namespace {

constexpr char kMagic[4] = {'G', 'S', 'D', 'E'};
constexpr std::uint32_t kVersion = 1;

struct BinaryHeader {
  char magic[4];
  std::uint32_t version;
  std::uint32_t num_vertices;
  std::uint32_t weighted;  // 0 or 1
  std::uint64_t num_edges;
};
static_assert(sizeof(BinaryHeader) == 24);

template <typename T>
std::span<const std::uint8_t> AsBytes(const std::vector<T>& v) {
  return {reinterpret_cast<const std::uint8_t*>(v.data()),
          v.size() * sizeof(T)};
}

template <typename T>
std::span<std::uint8_t> AsWritableBytes(std::vector<T>& v) {
  return {reinterpret_cast<std::uint8_t*>(v.data()), v.size() * sizeof(T)};
}

}  // namespace

Result<EdgeList> ReadTextEdgeList(const std::string& path, bool weighted) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return ErrnoError("fopen " + path, errno);

  EdgeList list;
  char line[512];
  std::uint64_t line_number = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_number;
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n') continue;
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    double weight = 1.0;
    const int fields =
        std::sscanf(line, "%" SCNu64 " %" SCNu64 " %lf", &src, &dst, &weight);
    if (fields < 2) {
      std::fclose(f);
      return CorruptDataError(path + ":" + std::to_string(line_number) +
                              ": expected 'src dst [weight]'");
    }
    if (src > kInvalidVertex - 1 || dst > kInvalidVertex - 1) {
      std::fclose(f);
      return OutOfRangeError(path + ":" + std::to_string(line_number) +
                             ": vertex id exceeds 32-bit range");
    }
    if (weighted) {
      list.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst),
                   static_cast<Weight>(weight));
    } else {
      list.AddEdge(static_cast<VertexId>(src), static_cast<VertexId>(dst));
    }
  }
  std::fclose(f);
  return list;
}

Status WriteTextEdgeList(const EdgeList& list, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return ErrnoError("fopen " + path, errno);
  std::fprintf(f, "# graphsd edge list: %u vertices, %" PRIu64 " edges\n",
               list.num_vertices(), list.num_edges());
  for (std::uint64_t i = 0; i < list.num_edges(); ++i) {
    const Edge& e = list.edges()[i];
    if (list.weighted()) {
      std::fprintf(f, "%u %u %g\n", e.src, e.dst,
                   static_cast<double>(list.weights()[i]));
    } else {
      std::fprintf(f, "%u %u\n", e.src, e.dst);
    }
  }
  if (std::fclose(f) != 0) return ErrnoError("fclose " + path, errno);
  return Status::Ok();
}

Result<BinaryEdgeHeader> ReadBinaryEdgeHeader(io::Device& device,
                                              const std::string& path) {
  GRAPHSD_ASSIGN_OR_RETURN(io::DeviceFile file,
                           device.Open(path, io::OpenMode::kRead));
  BinaryHeader header{};
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(
      0, {reinterpret_cast<std::uint8_t*>(&header), sizeof(header)}));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return CorruptDataError(path + ": bad magic (not a GSDE file)");
  }
  if (header.version != kVersion) {
    return CorruptDataError(path + ": unsupported version " +
                            std::to_string(header.version));
  }
  BinaryEdgeHeader out;
  out.num_vertices = header.num_vertices;
  out.num_edges = header.num_edges;
  out.weighted = header.weighted != 0;
  out.edges_offset = sizeof(header);
  out.weights_offset = sizeof(header) + header.num_edges * sizeof(Edge);
  return out;
}

Result<EdgeList> ReadBinaryEdgeList(io::Device& device,
                                    const std::string& path) {
  GRAPHSD_ASSIGN_OR_RETURN(io::DeviceFile file,
                           device.Open(path, io::OpenMode::kRead));
  BinaryHeader header{};
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(
      0, {reinterpret_cast<std::uint8_t*>(&header), sizeof(header)}));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    return CorruptDataError(path + ": bad magic (not a GSDE file)");
  }
  if (header.version != kVersion) {
    return CorruptDataError(path + ": unsupported version " +
                            std::to_string(header.version));
  }

  EdgeList list(header.num_vertices);
  list.edges().resize(header.num_edges);
  std::uint64_t offset = sizeof(header);
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(offset, AsWritableBytes(list.edges())));
  offset += header.num_edges * sizeof(Edge);
  if (header.weighted != 0) {
    list.weights().resize(header.num_edges);
    GRAPHSD_RETURN_IF_ERROR(
        file.ReadAt(offset, AsWritableBytes(list.weights())));
  }
  GRAPHSD_RETURN_IF_ERROR(list.Validate().WithContext(path));
  return list;
}

Status WriteBinaryEdgeList(const EdgeList& list, io::Device& device,
                           const std::string& path) {
  GRAPHSD_RETURN_IF_ERROR(list.Validate().WithContext(path));
  GRAPHSD_ASSIGN_OR_RETURN(io::DeviceFile file,
                           device.Open(path, io::OpenMode::kWrite));
  BinaryHeader header{};
  std::memcpy(header.magic, kMagic, sizeof(kMagic));
  header.version = kVersion;
  header.num_vertices = list.num_vertices();
  header.weighted = list.weighted() ? 1 : 0;
  header.num_edges = list.num_edges();
  GRAPHSD_RETURN_IF_ERROR(file.WriteAt(
      0, {reinterpret_cast<const std::uint8_t*>(&header), sizeof(header)}));
  std::uint64_t offset = sizeof(header);
  GRAPHSD_RETURN_IF_ERROR(file.WriteAt(offset, AsBytes(list.edges())));
  offset += list.num_edges() * sizeof(Edge);
  if (list.weighted()) {
    GRAPHSD_RETURN_IF_ERROR(file.WriteAt(offset, AsBytes(list.weights())));
  }
  return Status::Ok();
}

}  // namespace graphsd
