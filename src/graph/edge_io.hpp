// Edge-list file formats.
//
// Text format: one `src dst [weight]` line per edge; '#' or '%' comment
// lines are skipped (compatible with SNAP and Matrix Market headers).
//
// Binary format ("GSDE"): a fixed little-endian header followed by the raw
// Edge array, then the optional weight array. This is the input the
// preprocessing pipelines consume; writing it counts as "loading the raw
// graph data" in the preprocessing benchmarks.
#pragma once

#include <string>

#include "graph/edge_list.hpp"
#include "io/device.hpp"
#include "util/status.hpp"

namespace graphsd {

/// Parses a text edge list. `weighted` forces weight parsing; when false,
/// any third column is ignored.
Result<EdgeList> ReadTextEdgeList(const std::string& path,
                                  bool weighted = false);

/// Writes a text edge list (mainly for interop and tests).
Status WriteTextEdgeList(const EdgeList& list, const std::string& path);

/// Metadata of a GSDE binary edge file, for streaming readers that must
/// not materialize the edge list (see partition/external_builder.hpp).
struct BinaryEdgeHeader {
  VertexId num_vertices = 0;
  std::uint64_t num_edges = 0;
  bool weighted = false;
  std::uint64_t edges_offset = 0;    // byte offset of the Edge array
  std::uint64_t weights_offset = 0;  // byte offset of the weight array
};

/// Reads and validates only the header of a GSDE file.
Result<BinaryEdgeHeader> ReadBinaryEdgeHeader(io::Device& device,
                                              const std::string& path);

/// Reads a GSDE binary edge file through `device` (accounted I/O).
Result<EdgeList> ReadBinaryEdgeList(io::Device& device,
                                    const std::string& path);

/// Writes a GSDE binary edge file through `device` (accounted I/O).
Status WriteBinaryEdgeList(const EdgeList& list, io::Device& device,
                           const std::string& path);

}  // namespace graphsd
