// In-memory edge list: the interchange format between generators, file
// readers and the preprocessing pipelines.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "util/status.hpp"

namespace graphsd {

/// A directed multigraph as a flat edge array, optionally weighted.
///
/// `num_vertices` is authoritative: vertices with no edges still exist
/// (vertex IDs are in [0, num_vertices)).
class EdgeList {
 public:
  EdgeList() = default;

  /// Creates an empty graph over `num_vertices` vertices.
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Adds an unweighted edge. The graph must not be weighted.
  void AddEdge(VertexId src, VertexId dst);

  /// Adds a weighted edge. Once any weighted edge is added, all must be.
  void AddEdge(VertexId src, VertexId dst, Weight weight);

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::uint64_t num_edges() const noexcept { return edges_.size(); }
  bool weighted() const noexcept { return !weights_.empty(); }

  const std::vector<Edge>& edges() const noexcept { return edges_; }
  std::vector<Edge>& edges() noexcept { return edges_; }
  const std::vector<Weight>& weights() const noexcept { return weights_; }
  std::vector<Weight>& weights() noexcept { return weights_; }

  /// Grows the vertex count to at least `count`.
  void EnsureVertices(VertexId count) {
    if (count > num_vertices_) num_vertices_ = count;
  }

  /// Out-degree of every vertex.
  std::vector<std::uint32_t> OutDegrees() const;

  /// In-degree of every vertex.
  std::vector<std::uint32_t> InDegrees() const;

  /// Validates internal invariants (IDs in range, weight count matches).
  Status Validate() const;

  /// Sorts edges (and parallel weights) by (src, dst).
  void SortBySource();

  /// Removes duplicate (src,dst) pairs, keeping the first occurrence.
  /// Requires SortBySource() first for full dedup.
  void DedupSorted();

  /// Total on-disk bytes of the raw edge data: |E|*M (+|E|*W if weighted).
  std::uint64_t RawBytes() const noexcept {
    return num_edges() * (kEdgeBytes + (weighted() ? kWeightBytes : 0));
  }

 private:
  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<Weight> weights_;  // parallel to edges_ when weighted
};

}  // namespace graphsd
