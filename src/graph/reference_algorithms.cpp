#include "graph/reference_algorithms.hpp"

#include <limits>
#include <queue>

#include "util/status.hpp"

namespace graphsd {

EdgeList Symmetrize(const EdgeList& list) {
  EdgeList out(list.num_vertices());
  for (std::uint64_t i = 0; i < list.num_edges(); ++i) {
    const Edge& e = list.edges()[i];
    if (list.weighted()) {
      const Weight w = list.weights()[i];
      out.AddEdge(e.src, e.dst, w);
      out.AddEdge(e.dst, e.src, w);
    } else {
      out.AddEdge(e.src, e.dst);
      out.AddEdge(e.dst, e.src);
    }
  }
  out.SortBySource();
  out.DedupSorted();
  return out;
}

std::vector<double> ReferencePageRank(const EdgeList& list,
                                      std::uint32_t iterations,
                                      double damping) {
  const VertexId n = list.num_vertices();
  GRAPHSD_CHECK(n > 0);
  const CsrGraph graph = CsrGraph::Build(list);
  std::vector<double> rank(n, 1.0 / n);
  std::vector<double> next(n);
  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (VertexId u = 0; u < n; ++u) {
      const auto degree = graph.Degree(u);
      if (degree == 0) continue;
      const double share = damping * rank[u] / degree;
      for (const VertexId v : graph.Neighbors(u)) next[v] += share;
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<double> ReferencePageRankDelta(const EdgeList& list,
                                           double epsilon,
                                           std::uint32_t max_iterations,
                                           double damping) {
  const VertexId n = list.num_vertices();
  GRAPHSD_CHECK(n > 0);
  const CsrGraph graph = CsrGraph::Build(list);
  std::vector<double> rank(n, 0.0);
  std::vector<double> residual(n, (1.0 - damping) / n);
  std::vector<double> incoming(n, 0.0);

  for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
    bool any_active = false;
    std::fill(incoming.begin(), incoming.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      if (residual[u] <= epsilon) continue;
      any_active = true;
      rank[u] += residual[u];
      const auto degree = graph.Degree(u);
      if (degree > 0) {
        const double share = damping * residual[u] / degree;
        for (const VertexId v : graph.Neighbors(u)) incoming[v] += share;
      }
      residual[u] = 0.0;
    }
    if (!any_active) break;
    for (VertexId v = 0; v < n; ++v) residual[v] += incoming[v];
  }
  return rank;
}

std::vector<VertexId> ReferenceConnectedComponents(const EdgeList& list) {
  const VertexId n = list.num_vertices();
  const CsrGraph graph = CsrGraph::Build(list);
  std::vector<VertexId> label(n);
  for (VertexId v = 0; v < n; ++v) label[v] = v;

  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < n; ++u) {
      for (const VertexId v : graph.Neighbors(u)) {
        if (label[u] < label[v]) {
          label[v] = label[u];
          changed = true;
        }
      }
    }
  }
  return label;
}

std::vector<double> ReferenceSssp(const EdgeList& list, VertexId root) {
  const VertexId n = list.num_vertices();
  GRAPHSD_CHECK(root < n);
  GRAPHSD_CHECK_MSG(list.weighted(), "SSSP requires a weighted graph");
  const CsrGraph graph = CsrGraph::Build(list);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n, kInf);
  dist[root] = 0.0;

  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, root);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;
    const auto neighbors = graph.Neighbors(u);
    const auto weights = graph.NeighborWeights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      // Engines relax with `dist[src] + (double)w`; summing the same floats
      // in path order here makes oracle and engine agree bit-for-bit.
      const double nd = d + static_cast<double>(weights[i]);
      if (nd < dist[neighbors[i]]) {
        dist[neighbors[i]] = nd;
        heap.emplace(nd, neighbors[i]);
      }
    }
  }
  return dist;
}

std::vector<double> ReferenceWidestPath(const EdgeList& list, VertexId root) {
  const VertexId n = list.num_vertices();
  GRAPHSD_CHECK(root < n);
  GRAPHSD_CHECK_MSG(list.weighted(), "widest path requires a weighted graph");
  const CsrGraph graph = CsrGraph::Build(list);
  std::vector<double> width(n, 0.0);
  width[root] = std::numeric_limits<double>::infinity();

  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item> heap;  // max-heap on width
  heap.emplace(width[root], root);
  while (!heap.empty()) {
    const auto [w, u] = heap.top();
    heap.pop();
    if (w < width[u]) continue;
    const auto neighbors = graph.Neighbors(u);
    const auto weights = graph.NeighborWeights(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const double bottleneck =
          std::min(w, static_cast<double>(weights[i]));
      if (bottleneck > width[neighbors[i]]) {
        width[neighbors[i]] = bottleneck;
        heap.emplace(bottleneck, neighbors[i]);
      }
    }
  }
  return width;
}

std::vector<double> ReferencePersonalizedPageRank(const EdgeList& list,
                                                  VertexId source,
                                                  double epsilon,
                                                  double damping) {
  const VertexId n = list.num_vertices();
  GRAPHSD_CHECK(source < n);
  const CsrGraph graph = CsrGraph::Build(list);
  std::vector<double> rank(n, 0.0);
  std::vector<double> residual(n, 0.0);
  residual[source] = 1.0;

  // Round-based pushing mirrors the BSP engine's semantics.
  std::vector<double> incoming(n, 0.0);
  for (int round = 0; round < 100000; ++round) {
    bool any_active = false;
    std::fill(incoming.begin(), incoming.end(), 0.0);
    for (VertexId u = 0; u < n; ++u) {
      if (residual[u] <= epsilon && !(round == 0 && u == source)) continue;
      any_active = true;
      rank[u] += (1.0 - damping) * residual[u];
      const auto degree = graph.Degree(u);
      if (degree > 0) {
        const double share = damping * residual[u] / degree;
        for (const VertexId v : graph.Neighbors(u)) incoming[v] += share;
      }
      residual[u] = 0.0;
    }
    if (!any_active) break;
    for (VertexId v = 0; v < n; ++v) residual[v] += incoming[v];
  }
  // Fold remaining sub-threshold residual the way the engine's ValueOf does.
  for (VertexId v = 0; v < n; ++v) rank[v] += (1.0 - damping) * residual[v];
  return rank;
}

std::vector<std::uint32_t> ReferenceBfs(const EdgeList& list, VertexId root) {
  const VertexId n = list.num_vertices();
  GRAPHSD_CHECK(root < n);
  const CsrGraph graph = CsrGraph::Build(list);
  std::vector<std::uint32_t> level(n, kUnreachedLevel);
  level[root] = 0;
  std::queue<VertexId> queue;
  queue.push(root);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop();
    for (const VertexId v : graph.Neighbors(u)) {
      if (level[v] == kUnreachedLevel) {
        level[v] = level[u] + 1;
        queue.push(v);
      }
    }
  }
  return level;
}

}  // namespace graphsd
