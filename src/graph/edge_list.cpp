#include "graph/edge_list.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace graphsd {

void EdgeList::AddEdge(VertexId src, VertexId dst) {
  GRAPHSD_CHECK_MSG(weights_.empty(),
                    "cannot mix weighted and unweighted edges");
  edges_.push_back(Edge{src, dst});
  EnsureVertices(std::max(src, dst) + 1);
}

void EdgeList::AddEdge(VertexId src, VertexId dst, Weight weight) {
  GRAPHSD_CHECK_MSG(weights_.size() == edges_.size(),
                    "cannot mix weighted and unweighted edges");
  edges_.push_back(Edge{src, dst});
  weights_.push_back(weight);
  EnsureVertices(std::max(src, dst) + 1);
}

std::vector<std::uint32_t> EdgeList::OutDegrees() const {
  std::vector<std::uint32_t> degrees(num_vertices_, 0);
  for (const Edge& e : edges_) ++degrees[e.src];
  return degrees;
}

std::vector<std::uint32_t> EdgeList::InDegrees() const {
  std::vector<std::uint32_t> degrees(num_vertices_, 0);
  for (const Edge& e : edges_) ++degrees[e.dst];
  return degrees;
}

Status EdgeList::Validate() const {
  if (weighted() && weights_.size() != edges_.size()) {
    return CorruptDataError("weight count does not match edge count");
  }
  for (const Edge& e : edges_) {
    if (e.src >= num_vertices_ || e.dst >= num_vertices_) {
      return CorruptDataError("edge (" + std::to_string(e.src) + "," +
                              std::to_string(e.dst) + ") out of range " +
                              std::to_string(num_vertices_));
    }
  }
  // Every engine algorithm assumes finite, nonnegative weights (Bellman-
  // Ford relaxation diverges on negative cycles; non-finite weights poison
  // min/max combines), so malformed weights are rejected at build/load
  // rather than silently accepted.
  for (std::size_t k = 0; k < weights_.size(); ++k) {
    const Weight w = weights_[k];
    if (!std::isfinite(w) || w < 0.0f) {
      return InvalidArgumentError(
          "edge (" + std::to_string(edges_[k].src) + "," +
          std::to_string(edges_[k].dst) + ") has " +
          (std::isfinite(w) ? "negative" : "non-finite") + " weight " +
          std::to_string(w) + "; weights must be finite and >= 0");
    }
  }
  return Status::Ok();
}

void EdgeList::SortBySource() {
  if (!weighted()) {
    std::sort(edges_.begin(), edges_.end());
    return;
  }
  // Sort an index permutation, then apply it to both parallel arrays.
  std::vector<std::uint64_t> order(edges_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](std::uint64_t a, std::uint64_t b) {
    return edges_[a] < edges_[b];
  });
  std::vector<Edge> sorted_edges(edges_.size());
  std::vector<Weight> sorted_weights(weights_.size());
  for (std::uint64_t i = 0; i < order.size(); ++i) {
    sorted_edges[i] = edges_[order[i]];
    sorted_weights[i] = weights_[order[i]];
  }
  edges_ = std::move(sorted_edges);
  weights_ = std::move(sorted_weights);
}

void EdgeList::DedupSorted() {
  if (edges_.empty()) return;
  std::uint64_t out = 1;
  for (std::uint64_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i] == edges_[out - 1]) continue;
    edges_[out] = edges_[i];
    if (weighted()) weights_[out] = weights_[i];
    ++out;
  }
  edges_.resize(out);
  if (weighted()) weights_.resize(out);
}

}  // namespace graphsd
