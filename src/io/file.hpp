// RAII POSIX file wrapper with positional reads/writes and optional direct
// I/O, the lowest layer of GraphSD's storage stack.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "util/status.hpp"

namespace graphsd::io {

/// How a file is opened.
enum class OpenMode {
  kRead,       // existing file, read-only
  kWrite,      // create/truncate, write-only
  kReadWrite,  // create if missing, read-write
};

/// Movable, non-copyable owner of a POSIX file descriptor.
///
/// All reads and writes are positional (`pread`/`pwrite`) so concurrent
/// readers never race on a shared offset. Short reads/writes are retried
/// until the full span is transferred or a real error occurs.
class File {
 public:
  File() noexcept = default;
  ~File();

  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Opens `path`. With `direct` the file is opened O_DIRECT; callers must
  /// then use aligned buffers/offsets/sizes (see util/aligned_buffer.hpp).
  static Result<File> Open(const std::string& path, OpenMode mode,
                           bool direct = false);

  /// True when a descriptor is held.
  bool is_open() const noexcept { return fd_ >= 0; }

  /// Path the file was opened with (for diagnostics).
  const std::string& path() const noexcept { return path_; }

  /// Whether the file was opened with O_DIRECT.
  bool is_direct() const noexcept { return direct_; }

  /// Reads exactly `out.size()` bytes at `offset`.
  Status ReadAt(std::uint64_t offset, std::span<std::uint8_t> out) const;

  /// Reads up to `out.size()` bytes at `offset`, stopping early only at
  /// end-of-file, and returns the byte count delivered. The direct-I/O
  /// bounce path needs this: an aligned read covering a file's final
  /// partial block legitimately comes back short.
  Result<std::size_t> ReadAtMost(std::uint64_t offset,
                                 std::span<std::uint8_t> out) const;

  /// Reads the contiguous file range starting at `offset` scattered into
  /// `bufs` in order — one `preadv` per IOV_MAX-sized batch, resuming
  /// through EINTR and short transfers without re-reading delivered bytes.
  /// Exactly the sum of the buffer sizes is transferred; hitting EOF first
  /// is an error, as in ReadAt.
  Status ReadVAt(std::uint64_t offset,
                 std::span<const std::span<std::uint8_t>> bufs) const;

  /// Writes exactly `data.size()` bytes at `offset`.
  Status WriteAt(std::uint64_t offset, std::span<const std::uint8_t> data) const;

  /// Appends at the current end (tracked internally by Size()).
  Status Append(std::span<const std::uint8_t> data);

  /// File size in bytes.
  Result<std::uint64_t> Size() const;

  /// Truncates/extends to `size` bytes.
  Status Truncate(std::uint64_t size) const;

  /// Flushes file data (fdatasync).
  Status Sync() const;

  /// Closes the descriptor early; safe to call twice.
  void Close() noexcept;

 private:
  int fd_ = -1;
  std::string path_;
  bool direct_ = false;
};

/// True iff `path` exists (any file type).
bool PathExists(const std::string& path);

/// Creates `path` and missing parents (like `mkdir -p`).
Status MakeDirectories(const std::string& path);

/// Removes a file; missing files are not an error.
Status RemoveFile(const std::string& path);

/// Recursively removes a directory tree; missing trees are not an error.
Status RemoveTree(const std::string& path);

/// Reads an entire (small) file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Flushes directory metadata so a completed rename survives a crash.
/// Filesystems that cannot fsync directories are treated as a no-op.
Status SyncDirectory(const std::string& path);

/// Atomically replaces `path` with `contents`: write `path + ".tmp"`,
/// fdatasync, rename over `path`, fsync the parent directory. The shared
/// helper behind every durable writer (manifests, checkpoints, run
/// reports, traces) — a crash leaves either the old file or the new one,
/// never a torn mix.
/// `sync_dir = false` skips the parent-directory fsync: the rename is
/// still atomic but may not survive a crash (the old file reappears).
/// Only correct when the caller tolerates losing the *newest* version —
/// e.g. the two-slot checkpoint store, whose reader falls back to the
/// other slot anyway. Every other durable writer wants the default.
Status WriteFileAtomic(const std::string& path,
                       std::span<const std::uint8_t> contents,
                       bool sync_dir = true);

/// String-view convenience wrapper over `WriteFileAtomic`.
Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace graphsd::io
