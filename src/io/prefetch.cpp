#include "io/prefetch.hpp"

namespace graphsd::io {

PrefetchPipeline::PrefetchPipeline(std::size_t depth) : depth_(depth) {
  if (depth_ == 0) return;
  // One loader thread, always: see the header for why parallel loaders
  // would break read-sequence parity with the synchronous path.
  loader_ = std::make_unique<ThreadPool>(1);
  queue_ = std::make_unique<ReadQueue>(*loader_, depth_);
}

PrefetchPipeline::~PrefetchPipeline() {
  // Queue first (drains in-flight tasks), then the loader pool joins.
  queue_.reset();
  loader_.reset();
}

void PrefetchPipeline::Drain() {
  if (queue_ != nullptr) queue_->Drain();
}

}  // namespace graphsd::io
