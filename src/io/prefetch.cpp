#include "io/prefetch.hpp"

#include "obs/metrics.hpp"

namespace graphsd::io {

PrefetchPipeline::PrefetchPipeline(std::size_t depth) : depth_(depth) {
  if (depth_ == 0) return;
  // One loader thread, always: see the header for why parallel loaders
  // would break read-sequence parity with the synchronous path.
  loader_ = std::make_unique<ThreadPool>(1);
  queue_ = std::make_unique<ReadQueue>(*loader_, depth_);
}

PrefetchPipeline::~PrefetchPipeline() {
  // Queue first (drains in-flight tasks), then the loader pool joins.
  queue_.reset();
  loader_.reset();
}

void PrefetchPipeline::Drain() {
  if (queue_ != nullptr) queue_->Drain();
}

void PrefetchPipeline::PublishMetrics(obs::MetricsRegistry& metrics) const {
  metrics.GetGauge("prefetch.depth").Set(static_cast<double>(depth_));
  metrics.GetGauge("prefetch.submitted")
      .Set(queue_ != nullptr ? static_cast<double>(queue_->submitted()) : 0.0);
  metrics.GetGauge("prefetch.skipped")
      .Set(queue_ != nullptr ? static_cast<double>(queue_->skipped()) : 0.0);
}

}  // namespace graphsd::io
