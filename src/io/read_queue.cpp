#include "io/read_queue.hpp"

#include <algorithm>
#include <utility>

namespace graphsd::io {

ReadQueue::ReadQueue(ThreadPool& pool, std::size_t depth)
    : pool_(&pool), depth_(std::max<std::size_t>(1, depth)) {}

ReadQueue::~ReadQueue() { Drain(); }

ReadQueue::Ticket ReadQueue::Submit(std::function<Status()> task) {
  Ticket ticket;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    window_open_.wait(lock, [this] { return in_flight_ < depth_; });
    ticket = next_ticket_++;
    slots_.emplace_back();
    ++in_flight_;
  }
  pool_->Submit([this, ticket, task = std::move(task)] {
    RunTask(ticket, task);
  });
  return ticket;
}

void ReadQueue::RunTask(Ticket ticket, const std::function<Status()>& task) {
  // Poison check happens at execution time, not submission time: with a
  // single-worker pool, tasks run in submission order, so everything queued
  // behind a failed task is skipped before touching the device.
  bool skip = false;
  Status status;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!poison_.ok()) {
      skip = true;
      status = poison_;
      ++skipped_;
    } else if (cancel_ != nullptr && cancel_->cancelled()) {
      // Cancellation drains the window without device I/O. Unlike poison
      // it is not batch-scoped — once tripped, every later task is skipped.
      skip = true;
      status = CancelledError(cancel_->reason());
      ++skipped_;
    }
  }
  if (!skip) status = task();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!skip && !status.ok() && poison_.ok()) poison_ = status;
    Slot& slot = SlotFor(ticket);
    slot.done = true;
    slot.status = std::move(status);
    --in_flight_;
    // Notify under the lock: once Drain() observes in_flight_ == 0 the
    // queue may be destroyed, so this task must not touch the condition
    // variables after releasing the mutex.
    window_open_.notify_all();
    task_done_.notify_all();
  }
}

ReadQueue::Slot& ReadQueue::SlotFor(Ticket ticket) {
  GRAPHSD_CHECK(ticket >= base_ &&
                ticket - base_ < static_cast<Ticket>(slots_.size()));
  return slots_[static_cast<std::size_t>(ticket - base_)];
}

void ReadQueue::PopRedeemedLocked() {
  while (!slots_.empty() && slots_.front().redeemed) {
    slots_.pop_front();
    ++base_;
  }
  // Poison is scoped to the outstanding batch: once every submitted task
  // has been resolved and redeemed, the next submission starts clean. A
  // failed round must not poison the rounds executed after it (e.g. the
  // full-streaming redo of a failed on-demand round).
  if (slots_.empty()) poison_ = Status::Ok();
}

Status ReadQueue::Wait(Ticket ticket) {
  std::unique_lock<std::mutex> lock(mutex_);
  task_done_.wait(lock, [&] { return SlotFor(ticket).done; });
  Slot& slot = SlotFor(ticket);
  GRAPHSD_CHECK(!slot.redeemed);
  slot.redeemed = true;
  Status status = std::move(slot.status);
  PopRedeemedLocked();
  return status;
}

void ReadQueue::Drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  task_done_.wait(lock, [this] { return in_flight_ == 0; });
  for (Slot& slot : slots_) slot.redeemed = true;
  PopRedeemedLocked();
}

std::uint64_t ReadQueue::submitted() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return next_ticket_;
}

std::uint64_t ReadQueue::skipped() const {
  std::unique_lock<std::mutex> lock(mutex_);
  return skipped_;
}

}  // namespace graphsd::io
