// Storage device abstraction: real file I/O + per-request accounting +
// modeled (virtual) time.
//
// All engine I/O goes through a `Device`. Each request is classified as
// sequential (it starts exactly where the previous request on the same file
// ended) or random (anything else — a seek), recorded in `IoStats`, and
// charged to the device's `VirtualClock` using the `IoCostModel`.
//
// With `charge_virtual_time=false` and the Free cost model the Device is a
// plain POSIX passthrough; with the HDD model it deterministically
// reproduces the paper's disk economics regardless of the machine we run
// on. See DESIGN.md §5.1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "io/cost_model.hpp"
#include "io/fault_injector.hpp"
#include "io/file.hpp"
#include "io/io_stats.hpp"
#include "util/aligned_buffer.hpp"
#include "util/clock.hpp"

namespace graphsd::obs {
class MetricsRegistry;
}  // namespace graphsd::obs

namespace graphsd::io {

struct DeviceOptions {
  /// Open read-only files with O_DIRECT when supported (paper §5.1 disables
  /// the page cache; on filesystems without O_DIRECT the virtual clock
  /// still makes every byte cost its modeled time). Writable opens stay
  /// buffered — every durable writer already fsyncs, and O_DIRECT write
  /// alignment would infect the dataset builders for no measurement gain.
  bool use_direct_io = false;
  /// Batched selective reads: edge runs whose file gap is at most this many
  /// bytes are fetched with one vectored request (the gap bytes land in
  /// scratch and are discarded, but are accounted — they really crossed the
  /// bus). 0 disables merging, which every simulated profile keeps so
  /// modeled traffic stays bit-stable; the real SSD backend sets it to the
  /// cost model's random-request granularity.
  std::uint64_t read_batch_gap_bytes = 0;
  /// Accumulate modeled time on the virtual clock.
  bool charge_virtual_time = true;
  /// The disk profile used to charge requests.
  IoCostModel cost_model = IoCostModel::Hdd();
  /// Total attempts per request (first try + retries) before a transient
  /// kIoError is surfaced. Non-transient codes are never retried.
  int max_io_attempts = 4;
  /// Backoff before the first retry; doubles on each subsequent retry.
  /// Charged to the virtual clock when charge_virtual_time, otherwise slept
  /// (capped) in real time.
  double retry_backoff_seconds = 1e-3;
  /// Optional fault schedule consulted before every request (non-owning;
  /// must outlive the Device). See fault_injector.hpp.
  FaultInjector* fault_injector = nullptr;
};

class Device;

/// A file opened through a Device. Movable; closes on destruction.
class DeviceFile {
 public:
  DeviceFile() = default;

  /// Reads `out.size()` bytes at `offset`, with accounting. On a direct-I/O
  /// file an unaligned offset/size/pointer detours through an aligned
  /// bounce buffer transparently.
  Status ReadAt(std::uint64_t offset, std::span<std::uint8_t> out);

  /// Reads the contiguous range starting at `offset` scattered into `bufs`
  /// in order, accounted as ONE request of the summed size (sequential iff
  /// it starts where the previous read on this file ended). Buffered files
  /// submit a single preadv batch; direct-I/O files read the aligned
  /// covering range into the bounce buffer and scatter from there.
  Status ReadVAt(std::uint64_t offset,
                 std::span<const std::span<std::uint8_t>> bufs);

  /// Writes `data.size()` bytes at `offset`, with accounting.
  Status WriteAt(std::uint64_t offset, std::span<const std::uint8_t> data);

  /// File size in bytes.
  Result<std::uint64_t> Size() const { return file_.Size(); }

  const std::string& path() const noexcept { return file_.path(); }
  bool is_open() const noexcept { return file_.is_open(); }

 private:
  friend class Device;

  /// One attempt of a (possibly scattered) read of `total` logical bytes at
  /// `offset` through the aligned bounce buffer: reads the block-aligned
  /// covering range, tolerating the EOF-short tail, then scatters the
  /// requested window into `bufs`.
  Status BouncedRead(std::uint64_t offset,
                     std::span<const std::span<std::uint8_t>> bufs,
                     std::uint64_t total);

  Device* device_ = nullptr;
  File file_;
  // Scratch for direct-I/O alignment; grows to the largest covering range
  // this file has needed and is reused across requests.
  AlignedBuffer bounce_;
  // End offset of the last request, for sequential/random classification.
  std::uint64_t last_read_end_ = UINT64_MAX;
  std::uint64_t last_write_end_ = UINT64_MAX;
};

/// Factory + accounting hub for DeviceFiles.
class Device {
 public:
  explicit Device(DeviceOptions options = {}) : options_(options) {}

  /// Opens `path` for accounted I/O.
  Result<DeviceFile> Open(const std::string& path, OpenMode mode);

  /// Traffic counters (bytes/ops by direction and pattern).
  IoStats& stats() noexcept { return stats_; }
  const IoStats& stats() const noexcept { return stats_; }

  /// Accumulated modeled I/O seconds.
  VirtualClock& clock() noexcept { return clock_; }
  const VirtualClock& clock() const noexcept { return clock_; }

  const DeviceOptions& options() const noexcept { return options_; }

  /// Attaches (or detaches, with nullptr) a fault schedule after
  /// construction, e.g. once a test dataset has been built fault-free.
  void set_fault_injector(FaultInjector* injector) noexcept {
    options_.fault_injector = injector;
  }

  /// Resets counters and the virtual clock (between benchmark phases).
  void ResetAccounting() noexcept {
    stats_.Reset();
    clock_.Reset();
  }

  /// Publishes the current traffic counters and modeled clock as `device.*`
  /// gauges (snapshot semantics: safe to call repeatedly, last write wins).
  void PublishMetrics(obs::MetricsRegistry& metrics) const;

 private:
  friend class DeviceFile;
  void AccountRead(AccessPattern pattern, std::uint64_t bytes) noexcept;
  void AccountWrite(AccessPattern pattern, std::uint64_t bytes) noexcept;

  /// Runs `attempt` under the device's bounded retry-with-backoff policy,
  /// consulting the fault injector before each try. Only kIoError is
  /// considered transient.
  Status RunWithRetry(FaultOp op, const std::string& path,
                      const std::function<Status()>& attempt);
  void Backoff(double seconds);

  DeviceOptions options_;
  IoStats stats_;
  VirtualClock clock_;
};

/// A device that performs plain POSIX I/O with traffic accounting but no
/// modeled time (real-time measurements only).
std::unique_ptr<Device> MakePosixDevice(bool direct_io = false);

/// A device that charges modeled time per the given profile (default: the
/// paper-like HDD profile). This is what benches use.
std::unique_ptr<Device> MakeSimulatedDevice(
    IoCostModel model = IoCostModel::Hdd(), bool direct_io = false);

/// The real SSD backend: O_DIRECT reads (bounced through aligned buffers
/// when needed), batched vectored selective reads, wall-clock timing only.
/// The SSD cost model is still attached so the scheduler prices its
/// C_r/C_s/C_m decisions with SSD economics, but no virtual time accrues.
std::unique_ptr<Device> MakeRealSsdDevice();

/// The one place a user-facing device-kind string becomes a Device:
/// "scaled-hdd" (default bench profile, alias "sim:scaled-hdd"), "sim:hdd",
/// "sim:ssd", "real:ssd" or "posix". Bare "hdd"/"ssd" are rejected as
/// ambiguous — a benchmark must never run simulated I/O believing it is
/// real — and unknown kinds return kInvalidArgument instead of silently
/// defaulting. The CLI, the query service and the benches all parse through
/// here so the accepted spellings cannot drift apart.
Result<std::unique_ptr<Device>> MakeDeviceForKind(const std::string& kind);

}  // namespace graphsd::io
