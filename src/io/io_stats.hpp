// I/O accounting: every byte an engine moves is recorded here, split by
// direction (read/write) and access pattern (sequential/random).
//
// The paper's Figure 7 ("I/O traffic comparison") is produced directly from
// these counters; the cost model (cost_model.hpp) converts them to modeled
// time for the execution-time figures.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace graphsd::io {

/// Classification a device assigns to each request.
enum class AccessPattern { kSequential, kRandom };

/// Snapshot of I/O counters (plain struct, copyable).
struct IoStatsSnapshot {
  std::uint64_t seq_read_bytes = 0;
  std::uint64_t seq_write_bytes = 0;
  std::uint64_t rand_read_bytes = 0;
  std::uint64_t rand_write_bytes = 0;
  std::uint64_t seq_read_ops = 0;
  std::uint64_t seq_write_ops = 0;
  std::uint64_t rand_read_ops = 0;
  std::uint64_t rand_write_ops = 0;
  // Resilience counters (see DESIGN.md "Failure model & recovery").
  std::uint64_t retries = 0;            // transient errors absorbed by retry
  std::uint64_t checksum_failures = 0;  // CRC mismatches surfaced on load
  std::uint64_t eintr_absorbed = 0;     // signal interruptions retried free
  // Read-path mechanics (see DESIGN.md §15): scatter requests submitted as
  // one vectored batch, and direct-I/O reads that detoured through an
  // aligned bounce buffer because the caller's offset/size/pointer was not
  // block-aligned.
  std::uint64_t vectored_reads = 0;
  std::uint64_t bounce_reads = 0;

  std::uint64_t TotalReadBytes() const noexcept {
    return seq_read_bytes + rand_read_bytes;
  }
  std::uint64_t TotalWriteBytes() const noexcept {
    return seq_write_bytes + rand_write_bytes;
  }
  std::uint64_t TotalBytes() const noexcept {
    return TotalReadBytes() + TotalWriteBytes();
  }
  std::uint64_t TotalOps() const noexcept {
    return seq_read_ops + seq_write_ops + rand_read_ops + rand_write_ops;
  }

  /// Component-wise difference (this - other); callers must pass an earlier
  /// snapshot of the same counter set.
  IoStatsSnapshot operator-(const IoStatsSnapshot& other) const noexcept;
  IoStatsSnapshot& operator+=(const IoStatsSnapshot& other) noexcept;

  /// One-line summary for logs.
  std::string ToString() const;
};

/// Thread-safe I/O counter set.
class IoStats {
 public:
  /// Records one read of `bytes` with the given pattern.
  void RecordRead(AccessPattern pattern, std::uint64_t bytes) noexcept;

  /// Records one write of `bytes` with the given pattern.
  void RecordWrite(AccessPattern pattern, std::uint64_t bytes) noexcept;

  /// Records one retry of a transiently-failed request.
  void RecordRetry() noexcept {
    retries_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one detected checksum mismatch.
  void RecordChecksumFailure() noexcept {
    checksum_failures_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one EINTR absorbed without consuming a retry-budget slot.
  void RecordEintrAbsorbed() noexcept {
    eintr_absorbed_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one scatter request submitted as a vectored batch.
  void RecordVectoredRead() noexcept {
    vectored_reads_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one direct-I/O read served through the aligned bounce buffer.
  void RecordBounceRead() noexcept {
    bounce_reads_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Copies the current counters.
  IoStatsSnapshot Snapshot() const noexcept;

  /// Zeroes all counters.
  void Reset() noexcept;

 private:
  std::atomic<std::uint64_t> seq_read_bytes_{0};
  std::atomic<std::uint64_t> seq_write_bytes_{0};
  std::atomic<std::uint64_t> rand_read_bytes_{0};
  std::atomic<std::uint64_t> rand_write_bytes_{0};
  std::atomic<std::uint64_t> seq_read_ops_{0};
  std::atomic<std::uint64_t> seq_write_ops_{0};
  std::atomic<std::uint64_t> rand_read_ops_{0};
  std::atomic<std::uint64_t> rand_write_ops_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> checksum_failures_{0};
  std::atomic<std::uint64_t> eintr_absorbed_{0};
  std::atomic<std::uint64_t> vectored_reads_{0};
  std::atomic<std::uint64_t> bounce_reads_{0};
};

}  // namespace graphsd::io
