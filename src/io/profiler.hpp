// fio-like device profiler (paper §4.1: "the disk access bandwidths ... can
// be measured by some measurement tools such as fio").
//
// Writes a scratch file into a target directory and measures sequential and
// random read/write bandwidth with wall-clock timing, producing an
// `IoCostModel` calibrated to the actual device. Benches default to the
// canned HDD profile for determinism; the profiler exists so a user can run
// GraphSD against their real disk economics.
#pragma once

#include <cstdint>
#include <string>

#include "io/cost_model.hpp"
#include "util/status.hpp"

namespace graphsd::io {

struct ProfilerOptions {
  /// Size of the scratch file used for measurement.
  std::uint64_t file_bytes = 64ULL * 1024 * 1024;
  /// Request size for sequential phases.
  std::uint64_t seq_request_bytes = 4 * 1024 * 1024;
  /// Request size for random phases.
  std::uint64_t rand_request_bytes = 64 * 1024;
  /// Number of random requests to issue.
  std::uint64_t rand_requests = 256;
  /// Seed for the random-offset sequence.
  std::uint64_t seed = 42;
};

struct ProfileResult {
  double seq_read_bw = 0;   // bytes/sec
  double seq_write_bw = 0;  // bytes/sec
  double rand_read_bw = 0;  // bytes/sec at rand_request_bytes
  double rand_write_bw = 0; // bytes/sec at rand_request_bytes

  /// Converts the measurements into a cost model (deriving seek latency from
  /// the gap between random and sequential bandwidth).
  IoCostModel ToCostModel(std::uint64_t rand_request_bytes) const;
};

/// Measures the device backing `directory`. Creates and removes a scratch
/// file `<directory>/graphsd_profile.tmp`.
Result<ProfileResult> ProfileDevice(const std::string& directory,
                                    const ProfilerOptions& options = {});

}  // namespace graphsd::io
