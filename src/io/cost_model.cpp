#include "io/cost_model.hpp"

#include "util/str_format.hpp"

namespace graphsd::io {

std::string IoCostModel::ToString() const {
  // StrPrintf sizes the output first, so arbitrarily large bandwidth or
  // request-size values can never truncate the rendering.
  return StrPrintf("B_sr=%.0f MiB/s B_sw=%.0f MiB/s seek=%.2f ms "
                   "B_rr(%llu KiB)=%.1f MiB/s",
                   seq_read_bw / (1024.0 * 1024.0),
                   seq_write_bw / (1024.0 * 1024.0), seek_seconds * 1e3,
                   static_cast<unsigned long long>(random_request_bytes / 1024),
                   RandomReadBandwidth() / (1024.0 * 1024.0));
}

}  // namespace graphsd::io
