#include "io/cost_model.hpp"

#include <cstdio>

namespace graphsd::io {

std::string IoCostModel::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "B_sr=%.0f MiB/s B_sw=%.0f MiB/s seek=%.2f ms "
                "B_rr(%llu KiB)=%.1f MiB/s",
                seq_read_bw / (1024.0 * 1024.0),
                seq_write_bw / (1024.0 * 1024.0), seek_seconds * 1e3,
                static_cast<unsigned long long>(random_request_bytes / 1024),
                RandomReadBandwidth() / (1024.0 * 1024.0));
  return buf;
}

}  // namespace graphsd::io
