// Disk cost model (paper §4.1, Table 2).
//
// The model carries the four bandwidth constants the paper names
// (B_sr, B_sw, B_rr, B_rw) plus an explicit seek latency. Random requests
// are charged `seek + bytes/transfer_rate`, which is the mechanism behind
// the paper's constant B_rr: for a fixed request size s,
// B_rr(s) = s / (seek + s/B_sr). Keeping the seek explicit makes the model
// exact for any request size instead of only at the size B_rr was measured
// at. `RandomReadBandwidth()` exposes the paper-style constant.
#pragma once

#include <cstdint>
#include <string>

namespace graphsd::io {

struct IoCostModel {
  /// Sequential read bandwidth, bytes/second.
  double seq_read_bw = 160.0 * 1024 * 1024;
  /// Sequential write bandwidth, bytes/second.
  double seq_write_bw = 140.0 * 1024 * 1024;
  /// Average positioning (seek + rotational) latency per random request.
  double seek_seconds = 8.0e-3;
  /// Request size at which the paper-style B_rr / B_rw constants are quoted.
  std::uint64_t random_request_bytes = 64 * 1024;
  /// Edge-frame decode throughput (raw bytes produced per second). Decode
  /// runs on the compute side of the overlap, so the scheduler folds
  /// DecodeSeconds into the compute floor — not the disk time. ~1 GB/s
  /// matches the software varint decoder. Ignored (zero cost) for raw
  /// datasets; 0 is the "free" sentinel like the bandwidths above.
  double decode_bw = 1024.0 * 1024 * 1024;

  /// An HDD-like profile matching the paper's testbed (two 500 GB HDDs).
  static IoCostModel Hdd() { return IoCostModel{}; }

  /// The HDD profile rescaled for proxy-sized datasets.
  ///
  /// Two calibrations keep proxy runs shaped like the paper's testbed:
  ///   1. Crossover: the scheduler's on-demand/full trade is governed by the
  ///      seeks-per-full-scan ratio (paper: ~18 GB / 160 MB/s ≈ 14000 seeks
  ///      per scan). Proxies are ~10^3x smaller, so the seek shrinks by
  ///      `size_factor` to hold that ratio.
  ///   2. I/O dominance: the paper's runs are 56-91% disk time. Dividing
  ///      the modeled bandwidth by `io_weight` keeps modeled I/O dominant
  ///      over the (real, hardware-dependent) compute wall even on tiny
  ///      graphs. Virtual time is free, so this costs no wall-clock.
  /// Both scalings multiply C_r and C_s coherently; relative results are
  /// what the benchmarks report.
  static IoCostModel ScaledHdd(double size_factor = 1000.0,
                               double io_weight = 8.0) {
    IoCostModel m;
    m.seq_read_bw /= io_weight;
    m.seq_write_bw /= io_weight;
    m.seek_seconds = m.seek_seconds * io_weight / size_factor;
    m.random_request_bytes = 4 * 1024;
    return m;
  }

  /// An SSD-like profile (for sensitivity experiments).
  static IoCostModel Ssd() {
    IoCostModel m;
    m.seq_read_bw = 520.0 * 1024 * 1024;
    m.seq_write_bw = 480.0 * 1024 * 1024;
    m.seek_seconds = 60.0e-6;
    m.random_request_bytes = 16 * 1024;
    return m;
  }

  /// A free model: everything costs zero (pure traffic accounting).
  static IoCostModel Free() {
    IoCostModel m;
    m.seq_read_bw = 0;  // sentinel: 0 bandwidth means "free" (see *Seconds)
    m.seq_write_bw = 0;
    m.seek_seconds = 0;
    m.decode_bw = 0;
    return m;
  }

  /// Modeled seconds for one sequential read of `bytes`.
  double SeqReadSeconds(std::uint64_t bytes) const noexcept {
    return seq_read_bw <= 0 ? 0.0 : static_cast<double>(bytes) / seq_read_bw;
  }

  /// Modeled seconds for one sequential write of `bytes`.
  double SeqWriteSeconds(std::uint64_t bytes) const noexcept {
    return seq_write_bw <= 0 ? 0.0 : static_cast<double>(bytes) / seq_write_bw;
  }

  /// Modeled seconds for `requests` random reads totalling `bytes`.
  double RandReadSeconds(std::uint64_t bytes,
                         std::uint64_t requests = 1) const noexcept {
    return static_cast<double>(requests) * seek_seconds + SeqReadSeconds(bytes);
  }

  /// Modeled seconds for `requests` random writes totalling `bytes`.
  double RandWriteSeconds(std::uint64_t bytes,
                          std::uint64_t requests = 1) const noexcept {
    return static_cast<double>(requests) * seek_seconds +
           SeqWriteSeconds(bytes);
  }

  /// Paper-style B_rr constant at `random_request_bytes`.
  double RandomReadBandwidth() const noexcept {
    const double t = RandReadSeconds(random_request_bytes, 1);
    return t <= 0 ? 0.0 : static_cast<double>(random_request_bytes) / t;
  }

  /// Paper-style B_rw constant at `random_request_bytes`.
  double RandomWriteBandwidth() const noexcept {
    const double t = RandWriteSeconds(random_request_bytes, 1);
    return t <= 0 ? 0.0 : static_cast<double>(random_request_bytes) / t;
  }

  /// Modeled seconds to decode frames producing `raw_bytes` of edges.
  double DecodeSeconds(std::uint64_t raw_bytes) const noexcept {
    return decode_bw <= 0 ? 0.0 : static_cast<double>(raw_bytes) / decode_bw;
  }

  /// Pipelined charge for a stage whose `io_seconds` of modeled disk time
  /// run on the prefetch loader while `compute_seconds` of measured compute
  /// run on the workers: the stage costs its critical path, not the sum.
  static double OverlapSeconds(double io_seconds,
                               double compute_seconds) noexcept {
    return io_seconds > compute_seconds ? io_seconds : compute_seconds;
  }

  /// One-line description for bench headers.
  std::string ToString() const;
};

}  // namespace graphsd::io
