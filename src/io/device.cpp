#include "io/device.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"

namespace graphsd::io {

namespace {

// How an injected fault surfaces to the retry loop. Transient kinds map to
// kIoError (retryable); ENOSPC maps to kResourceExhausted (fatal). kEintr
// never reaches this function on the normal path — it is absorbed inside
// RunWithRetry — except when an EINTR storm exceeds the spin cap.
Status FaultToStatus(FaultKind kind, const std::string& path) {
  switch (kind) {
    case FaultKind::kEio:
      return IoError("injected EIO on " + path);
    case FaultKind::kEintr:
      return IoError("injected EINTR storm on " + path);
    case FaultKind::kShortRead:
      return IoError("injected short transfer on " + path);
    case FaultKind::kEnospc:
      return ResourceExhaustedError("injected ENOSPC on " + path);
  }
  return InternalError("unknown injected fault kind");
}

// EINTR retries are free (no backoff, no retry-budget slot) but bounded:
// past this many consecutive interruptions of one request the storm is
// treated as a real transient failure so a misconfigured unlimited rule
// cannot spin forever.
constexpr int kMaxEintrSpins = 256;

// True when a read of `size` bytes at `offset` into `data` satisfies the
// O_DIRECT alignment contract and can go straight to the kernel.
bool DirectAligned(std::uint64_t offset, const void* data, std::size_t size) {
  return offset % kDirectIoAlignment == 0 &&
         size % kDirectIoAlignment == 0 &&
         reinterpret_cast<std::uintptr_t>(data) % kDirectIoAlignment == 0;
}

}  // namespace

Status DeviceFile::BouncedRead(std::uint64_t offset,
                               std::span<const std::span<std::uint8_t>> bufs,
                               std::uint64_t total) {
  const std::uint64_t begin = AlignDown(offset, kDirectIoAlignment);
  const std::uint64_t end = AlignUp(offset + total, kDirectIoAlignment);
  bounce_.Reserve(end - begin);
  GRAPHSD_ASSIGN_OR_RETURN(const std::size_t got,
                           file_.ReadAtMost(begin, bounce_.span()));
  // The aligned covering range may run past EOF (final partial block); only
  // the caller's logical window must be fully present.
  if (begin + got < offset + total) {
    return IoError("short read at offset " + std::to_string(offset) + " in " +
                   file_.path());
  }
  const std::uint8_t* src = bounce_.data() + (offset - begin);
  for (const std::span<std::uint8_t>& b : bufs) {
    std::memcpy(b.data(), src, b.size());
    src += b.size();
  }
  return Status::Ok();
}

Status DeviceFile::ReadAt(std::uint64_t offset, std::span<std::uint8_t> out) {
  GRAPHSD_CHECK(device_ != nullptr);
  const AccessPattern pattern = (offset == last_read_end_)
                                    ? AccessPattern::kSequential
                                    : AccessPattern::kRandom;
  const bool bounce =
      file_.is_direct() && !DirectAligned(offset, out.data(), out.size());
  const std::span<std::uint8_t> one[] = {out};
  GRAPHSD_RETURN_IF_ERROR(device_->RunWithRetry(
      FaultOp::kRead, file_.path(), [&] {
        return bounce ? BouncedRead(offset, one, out.size())
                      : file_.ReadAt(offset, out);
      }));
  last_read_end_ = offset + out.size();
  device_->AccountRead(pattern, out.size());
  if (bounce) device_->stats().RecordBounceRead();
  return Status::Ok();
}

Status DeviceFile::ReadVAt(std::uint64_t offset,
                           std::span<const std::span<std::uint8_t>> bufs) {
  GRAPHSD_CHECK(device_ != nullptr);
  std::uint64_t total = 0;
  for (const std::span<std::uint8_t>& b : bufs) total += b.size();
  if (total == 0) return Status::Ok();
  const AccessPattern pattern = (offset == last_read_end_)
                                    ? AccessPattern::kSequential
                                    : AccessPattern::kRandom;
  const bool bounce = file_.is_direct();
  GRAPHSD_RETURN_IF_ERROR(device_->RunWithRetry(
      FaultOp::kRead, file_.path(), [&] {
        return bounce ? BouncedRead(offset, bufs, total)
                      : file_.ReadVAt(offset, bufs);
      }));
  last_read_end_ = offset + total;
  device_->AccountRead(pattern, total);
  device_->stats().RecordVectoredRead();
  if (bounce) device_->stats().RecordBounceRead();
  return Status::Ok();
}

Status DeviceFile::WriteAt(std::uint64_t offset,
                           std::span<const std::uint8_t> data) {
  GRAPHSD_CHECK(device_ != nullptr);
  const AccessPattern pattern = (offset == last_write_end_)
                                    ? AccessPattern::kSequential
                                    : AccessPattern::kRandom;
  GRAPHSD_RETURN_IF_ERROR(device_->RunWithRetry(
      FaultOp::kWrite, file_.path(),
      [&] { return file_.WriteAt(offset, data); }));
  last_write_end_ = offset + data.size();
  device_->AccountWrite(pattern, data.size());
  return Status::Ok();
}

Status Device::RunWithRetry(FaultOp op, const std::string& path,
                            const std::function<Status()>& attempt) {
  const int max_attempts = std::max(1, options_.max_io_attempts);
  double backoff = options_.retry_backoff_seconds;
  Status status;
  for (int attempt_no = 1; attempt_no <= max_attempts; ++attempt_no) {
    if (attempt_no > 1) {
      stats_.RecordRetry();
      Backoff(backoff);
      backoff *= 2.0;
    }
    status = Status::Ok();
    if (options_.fault_injector != nullptr) {
      // A signal interrupting a request (EINTR) is routine once SIGINT/
      // SIGTERM handlers are installed, not a device failure: retry the
      // injector immediately without charging backoff or consuming one of
      // the max_io_attempts slots. (Real EINTR from syscalls is already
      // absorbed inside io::File's pread/pwrite/open/fdatasync loops.)
      int eintr_spins = 0;
      while (auto fault = options_.fault_injector->Evaluate(op, path)) {
        if (*fault == FaultKind::kEintr && eintr_spins < kMaxEintrSpins) {
          ++eintr_spins;
          stats_.RecordEintrAbsorbed();
          continue;
        }
        status = FaultToStatus(*fault, path);
        break;
      }
    }
    if (status.ok()) status = attempt();
    if (status.code() != StatusCode::kIoError) return status;
  }
  return status.WithContext("after " + std::to_string(max_attempts) +
                            " attempts");
}

void Device::Backoff(double seconds) {
  if (options_.charge_virtual_time) {
    clock_.Add(seconds);
    return;
  }
  // Real sleep, capped so an exponential schedule can never stall a run.
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::min(seconds, 0.05)));
}

Result<DeviceFile> Device::Open(const std::string& path, OpenMode mode) {
  // O_DIRECT is a read-side measurement tool here (defeat the page cache);
  // writers keep buffered I/O + fsync so they need no alignment handling.
  const bool direct = options_.use_direct_io && mode == OpenMode::kRead;
  GRAPHSD_ASSIGN_OR_RETURN(File file, File::Open(path, mode, direct));
  DeviceFile df;
  df.device_ = this;
  df.file_ = std::move(file);
  return df;
}

void Device::AccountRead(AccessPattern pattern, std::uint64_t bytes) noexcept {
  stats_.RecordRead(pattern, bytes);
  if (!options_.charge_virtual_time) return;
  const auto& m = options_.cost_model;
  clock_.Add(pattern == AccessPattern::kSequential ? m.SeqReadSeconds(bytes)
                                                   : m.RandReadSeconds(bytes));
}

void Device::AccountWrite(AccessPattern pattern, std::uint64_t bytes) noexcept {
  stats_.RecordWrite(pattern, bytes);
  if (!options_.charge_virtual_time) return;
  const auto& m = options_.cost_model;
  clock_.Add(pattern == AccessPattern::kSequential
                 ? m.SeqWriteSeconds(bytes)
                 : m.RandWriteSeconds(bytes));
}

void Device::PublishMetrics(obs::MetricsRegistry& metrics) const {
  const IoStatsSnapshot s = stats_.Snapshot();
  const auto set = [&metrics](const char* name, std::uint64_t v) {
    metrics.GetGauge(name).Set(static_cast<double>(v));
  };
  set("device.seq_read_bytes", s.seq_read_bytes);
  set("device.seq_write_bytes", s.seq_write_bytes);
  set("device.rand_read_bytes", s.rand_read_bytes);
  set("device.rand_write_bytes", s.rand_write_bytes);
  set("device.seq_read_ops", s.seq_read_ops);
  set("device.seq_write_ops", s.seq_write_ops);
  set("device.rand_read_ops", s.rand_read_ops);
  set("device.rand_write_ops", s.rand_write_ops);
  set("device.retries", s.retries);
  set("device.checksum_failures", s.checksum_failures);
  set("device.eintr_absorbed", s.eintr_absorbed);
  set("device.vectored_reads", s.vectored_reads);
  set("device.bounce_reads", s.bounce_reads);
  metrics.GetGauge("device.clock_seconds").Set(clock_.Seconds());
}

std::unique_ptr<Device> MakePosixDevice(bool direct_io) {
  DeviceOptions opts;
  opts.use_direct_io = direct_io;
  opts.charge_virtual_time = false;
  opts.cost_model = IoCostModel::Free();
  return std::make_unique<Device>(opts);
}

std::unique_ptr<Device> MakeSimulatedDevice(IoCostModel model, bool direct_io) {
  DeviceOptions opts;
  opts.use_direct_io = direct_io;
  opts.charge_virtual_time = true;
  opts.cost_model = model;
  return std::make_unique<Device>(opts);
}

std::unique_ptr<Device> MakeRealSsdDevice() {
  DeviceOptions opts;
  opts.use_direct_io = true;
  opts.charge_virtual_time = false;
  opts.cost_model = IoCostModel::Ssd();
  // Merge selective-read runs up to one random-request granule apart: at
  // SSD seek costs, re-reading a ≤16 KiB gap is cheaper than a second
  // request, and one preadv replaces a syscall per run.
  opts.read_batch_gap_bytes = IoCostModel::Ssd().random_request_bytes;
  return std::make_unique<Device>(opts);
}

Result<std::unique_ptr<Device>> MakeDeviceForKind(const std::string& kind) {
  if (kind == "posix") return MakePosixDevice();
  if (kind == "sim:hdd") return MakeSimulatedDevice(IoCostModel::Hdd());
  if (kind == "sim:ssd") return MakeSimulatedDevice(IoCostModel::Ssd());
  if (kind == "scaled-hdd" || kind == "sim:scaled-hdd") {
    return MakeSimulatedDevice(IoCostModel::ScaledHdd());
  }
  if (kind == "real:ssd") return MakeRealSsdDevice();
  if (kind == "hdd" || kind == "ssd") {
    // These used to mean the simulated profiles; now that a real backend
    // exists the bare spelling is ambiguous, and a benchmark silently
    // running modeled I/O as if it were hardware (or vice versa) is exactly
    // the mistake this registry exists to prevent.
    return InvalidArgumentError(
        "ambiguous device kind '" + kind + "': spell the backend explicitly" +
        " (sim:" + kind + " for the modeled profile" +
        (kind == "ssd" ? ", real:ssd for direct-I/O hardware reads" : "") +
        ")");
  }
  return InvalidArgumentError(
      "unknown device kind '" + kind +
      "' (expected scaled-hdd | sim:hdd | sim:ssd | real:ssd | posix)");
}

}  // namespace graphsd::io
