#include "io/device.hpp"

namespace graphsd::io {

Status DeviceFile::ReadAt(std::uint64_t offset, std::span<std::uint8_t> out) {
  GRAPHSD_CHECK(device_ != nullptr);
  const AccessPattern pattern = (offset == last_read_end_)
                                    ? AccessPattern::kSequential
                                    : AccessPattern::kRandom;
  GRAPHSD_RETURN_IF_ERROR(file_.ReadAt(offset, out));
  last_read_end_ = offset + out.size();
  device_->AccountRead(pattern, out.size());
  return Status::Ok();
}

Status DeviceFile::WriteAt(std::uint64_t offset,
                           std::span<const std::uint8_t> data) {
  GRAPHSD_CHECK(device_ != nullptr);
  const AccessPattern pattern = (offset == last_write_end_)
                                    ? AccessPattern::kSequential
                                    : AccessPattern::kRandom;
  GRAPHSD_RETURN_IF_ERROR(file_.WriteAt(offset, data));
  last_write_end_ = offset + data.size();
  device_->AccountWrite(pattern, data.size());
  return Status::Ok();
}

Result<DeviceFile> Device::Open(const std::string& path, OpenMode mode) {
  GRAPHSD_ASSIGN_OR_RETURN(File file,
                           File::Open(path, mode, options_.use_direct_io));
  DeviceFile df;
  df.device_ = this;
  df.file_ = std::move(file);
  return df;
}

void Device::AccountRead(AccessPattern pattern, std::uint64_t bytes) noexcept {
  stats_.RecordRead(pattern, bytes);
  if (!options_.charge_virtual_time) return;
  const auto& m = options_.cost_model;
  clock_.Add(pattern == AccessPattern::kSequential ? m.SeqReadSeconds(bytes)
                                                   : m.RandReadSeconds(bytes));
}

void Device::AccountWrite(AccessPattern pattern, std::uint64_t bytes) noexcept {
  stats_.RecordWrite(pattern, bytes);
  if (!options_.charge_virtual_time) return;
  const auto& m = options_.cost_model;
  clock_.Add(pattern == AccessPattern::kSequential
                 ? m.SeqWriteSeconds(bytes)
                 : m.RandWriteSeconds(bytes));
}

std::unique_ptr<Device> MakePosixDevice(bool direct_io) {
  DeviceOptions opts;
  opts.use_direct_io = direct_io;
  opts.charge_virtual_time = false;
  opts.cost_model = IoCostModel::Free();
  return std::make_unique<Device>(opts);
}

std::unique_ptr<Device> MakeSimulatedDevice(IoCostModel model, bool direct_io) {
  DeviceOptions opts;
  opts.use_direct_io = direct_io;
  opts.charge_virtual_time = true;
  opts.cost_model = model;
  return std::make_unique<Device>(opts);
}

}  // namespace graphsd::io
