#include "io/fault_injector.hpp"

namespace graphsd::io {

std::optional<FaultKind> FaultInjector::Evaluate(FaultOp op,
                                                 const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ops_seen_;
  for (auto& state : rules_) {
    const FaultRule& rule = state.rule;
    if (rule.op != FaultOp::kAny && rule.op != op) continue;
    if (!rule.path_substring.empty() &&
        path.find(rule.path_substring) == std::string::npos) {
      continue;
    }
    ++state.matched;
    if (state.fired >= rule.max_fires) continue;
    const bool nth_hit = rule.nth != 0 && state.matched == rule.nth;
    // Only probabilistic rules consume RNG draws, so purely ordinal rules
    // never perturb the sequence a probabilistic rule sees.
    const bool coin_hit =
        rule.probability > 0.0 && rng_.NextDouble() < rule.probability;
    if (nth_hit || coin_hit) {
      ++state.fired;
      ++faults_injected_;
      return rule.kind;
    }
  }
  return std::nullopt;
}

}  // namespace graphsd::io
