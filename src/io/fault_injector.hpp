// Deterministic storage-fault injection for resilience testing.
//
// A `FaultInjector` is attached to a `Device` (DeviceOptions::fault_injector)
// and consulted once per DeviceFile read/write request *before* the real I/O
// is issued. Rules fire either on the nth matching request or with a fixed
// probability drawn from a seeded RNG, so a given (seed, workload) pair
// always injects the same fault sequence — failures found in CI reproduce
// bit-for-bit locally.
//
// Injected faults model the failure taxonomy of DESIGN.md §7:
//   * kEio / kEintr / kShortRead — transient; the device's bounded
//     retry-with-backoff policy should absorb them.
//   * kEnospc — fatal resource exhaustion; never retried.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace graphsd::io {

/// What the injected failure looks like to the device layer.
enum class FaultKind {
  kEio,        // read/write fails as if the medium returned EIO
  kEintr,      // the request is interrupted (EINTR storm survivor)
  kShortRead,  // the request transfers fewer bytes than asked
  kEnospc,     // write fails with no space left on device
};

/// Which request direction a rule applies to.
enum class FaultOp { kRead, kWrite, kAny };

/// One programmable fault source. A rule fires on a request when the op and
/// path filters match AND either `nth` equals the rule's matching-request
/// ordinal (1-based) or a seeded coin with `probability` comes up heads.
struct FaultRule {
  FaultKind kind = FaultKind::kEio;
  FaultOp op = FaultOp::kAny;
  /// Substring filter on the file path; empty matches every file.
  std::string path_substring;
  /// Fire on exactly the nth matching request (1-based). 0 disables the
  /// ordinal trigger.
  std::uint64_t nth = 0;
  /// Independent per-request fire probability in [0, 1].
  double probability = 0.0;
  /// Stop firing after this many injections (bounds EINTR storms).
  std::uint64_t max_fires = UINT64_MAX;
};

/// Thread-safe, seeded fault schedule. Lives outside the Device (tests own
/// it) so one schedule can be shared, inspected, and reset between runs.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 1) : rng_(seed), seed_(seed) {}

  void AddRule(FaultRule rule) {
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.push_back(RuleState{rule, 0, 0});
  }

  /// Clears counters and reseeds the RNG; rules are kept. Makes two runs of
  /// the same workload see the same fault sequence.
  void Reset(std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mutex_);
    rng_ = Xoshiro256(seed);
    seed_ = seed;
    ops_seen_ = 0;
    faults_injected_ = 0;
    for (auto& state : rules_) {
      state.matched = 0;
      state.fired = 0;
    }
  }

  /// Resets with the seed of the last Reset/construction.
  void Reset() { Reset(seed_); }

  /// Consulted by DeviceFile once per request (including retries). Returns
  /// the fault to simulate, or nullopt to let the real I/O proceed. The
  /// first matching rule wins.
  std::optional<FaultKind> Evaluate(FaultOp op, const std::string& path);

  /// Total requests evaluated.
  std::uint64_t ops_seen() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return ops_seen_;
  }

  /// Total faults injected across all rules.
  std::uint64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return faults_injected_;
  }

 private:
  struct RuleState {
    FaultRule rule;
    std::uint64_t matched = 0;  // requests this rule's filters matched
    std::uint64_t fired = 0;    // faults this rule injected
  };

  mutable std::mutex mutex_;
  Xoshiro256 rng_;
  std::uint64_t seed_;
  std::uint64_t ops_seen_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::vector<RuleState> rules_;
};

}  // namespace graphsd::io
