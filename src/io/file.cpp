#include "io/file.hpp"

#include <fcntl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <system_error>
#include <utility>
#include <vector>

namespace graphsd::io {
namespace {

// Once a SignalCancellationScope is live, SIGINT/SIGTERM are delivered
// without SA_RESTART and any syscall may fail with EINTR. That is a
// routine wake-up, never an I/O failure: retry in place so it cannot
// consume a Device retry-budget slot upstream.
int OpenRetryingEintr(const char* path, int flags) {
  int fd;
  do {
    fd = ::open(path, flags, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

}  // namespace

File::~File() { Close(); }

File::File(File&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      direct_(other.direct_) {}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    direct_ = other.direct_;
  }
  return *this;
}

Result<File> File::Open(const std::string& path, OpenMode mode, bool direct) {
  int flags = 0;
  switch (mode) {
    case OpenMode::kRead: flags = O_RDONLY; break;
    case OpenMode::kWrite: flags = O_WRONLY | O_CREAT | O_TRUNC; break;
    case OpenMode::kReadWrite: flags = O_RDWR | O_CREAT; break;
  }
#ifdef O_DIRECT
  if (direct) flags |= O_DIRECT;
#endif
  int fd = OpenRetryingEintr(path.c_str(), flags);
#ifdef O_DIRECT
  if (fd < 0 && direct && errno == EINVAL) {
    // Filesystem does not support O_DIRECT (e.g. tmpfs); fall back to
    // buffered I/O — the virtual-time device still charges every byte.
    flags &= ~O_DIRECT;
    direct = false;
    fd = OpenRetryingEintr(path.c_str(), flags);
  }
#endif
  if (fd < 0) return ErrnoError("open " + path, errno);
  File file;
  file.fd_ = fd;
  file.path_ = path;
  file.direct_ = direct;
  return file;
}

Status File::ReadAt(std::uint64_t offset, std::span<std::uint8_t> out) const {
  GRAPHSD_CHECK(is_open());
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread " + path_, errno);
    }
    if (n == 0) {
      return IoError("short read at offset " + std::to_string(offset) +
                     " in " + path_);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Result<std::size_t> File::ReadAtMost(std::uint64_t offset,
                                     std::span<std::uint8_t> out) const {
  GRAPHSD_CHECK(is_open());
  std::size_t done = 0;
  while (done < out.size()) {
    const ssize_t n = ::pread(fd_, out.data() + done, out.size() - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pread " + path_, errno);
    }
    if (n == 0) break;  // EOF: a legal short result for this entry point
    done += static_cast<std::size_t>(n);
  }
  return done;
}

Status File::ReadVAt(std::uint64_t offset,
                     std::span<const std::span<std::uint8_t>> bufs) const {
  GRAPHSD_CHECK(is_open());
#ifdef IOV_MAX
  constexpr std::size_t kIovMax = IOV_MAX;
#else
  constexpr std::size_t kIovMax = 1024;
#endif
  // Flatten once; the resume loop then walks `iov` forward as bytes land so
  // a short preadv never re-reads what was already delivered.
  std::vector<struct iovec> iov;
  iov.reserve(bufs.size());
  for (const std::span<std::uint8_t>& b : bufs) {
    if (!b.empty()) iov.push_back({b.data(), b.size()});
  }
  std::size_t next = 0;
  std::uint64_t pos = offset;
  while (next < iov.size()) {
    const int batch =
        static_cast<int>(std::min(iov.size() - next, kIovMax));
    const ssize_t n =
        ::preadv(fd_, iov.data() + next, batch, static_cast<off_t>(pos));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("preadv " + path_, errno);
    }
    if (n == 0) {
      return IoError("short vectored read at offset " + std::to_string(pos) +
                     " in " + path_);
    }
    pos += static_cast<std::uint64_t>(n);
    std::size_t remaining = static_cast<std::size_t>(n);
    while (remaining > 0) {
      if (remaining >= iov[next].iov_len) {
        remaining -= iov[next].iov_len;
        ++next;
      } else {
        iov[next].iov_base =
            static_cast<std::uint8_t*>(iov[next].iov_base) + remaining;
        iov[next].iov_len -= remaining;
        remaining = 0;
      }
    }
  }
  return Status::Ok();
}

Status File::WriteAt(std::uint64_t offset,
                     std::span<const std::uint8_t> data) const {
  GRAPHSD_CHECK(is_open());
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::pwrite(fd_, data.data() + done, data.size() - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("pwrite " + path_, errno);
    }
    done += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status File::Append(std::span<const std::uint8_t> data) {
  GRAPHSD_ASSIGN_OR_RETURN(const std::uint64_t size, Size());
  return WriteAt(size, data);
}

Result<std::uint64_t> File::Size() const {
  GRAPHSD_CHECK(is_open());
  struct stat st{};
  if (::fstat(fd_, &st) != 0) return ErrnoError("fstat " + path_, errno);
  return static_cast<std::uint64_t>(st.st_size);
}

Status File::Truncate(std::uint64_t size) const {
  GRAPHSD_CHECK(is_open());
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoError("ftruncate " + path_, errno);
  }
  return Status::Ok();
}

Status File::Sync() const {
  GRAPHSD_CHECK(is_open());
  int rc;
  do {
    rc = ::fdatasync(fd_);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return ErrnoError("fdatasync " + path_, errno);
  return Status::Ok();
}

void File::Close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool PathExists(const std::string& path) {
  std::error_code ec;
  return std::filesystem::exists(path, ec);
}

Status MakeDirectories(const std::string& path) {
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) return IoError("mkdir -p " + path + ": " + ec.message());
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  if (ec) return IoError("rm " + path + ": " + ec.message());
  return Status::Ok();
}

Status RemoveTree(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove_all(path, ec);
  if (ec) return IoError("rm -r " + path + ": " + ec.message());
  return Status::Ok();
}

Result<std::string> ReadFileToString(const std::string& path) {
  GRAPHSD_ASSIGN_OR_RETURN(File file, File::Open(path, OpenMode::kRead));
  GRAPHSD_ASSIGN_OR_RETURN(const std::uint64_t size, file.Size());
  std::string out(size, '\0');
  GRAPHSD_RETURN_IF_ERROR(file.ReadAt(
      0, std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(out.data()),
                                 out.size())));
  return out;
}

Status SyncDirectory(const std::string& path) {
  // Directory fds reject O_WRONLY; open read-only and fsync. Some
  // filesystems refuse fsync on directories — treat EINVAL as "nothing to
  // do" rather than failing the caller's otherwise-complete write.
  int fd = OpenRetryingEintr(path.empty() ? "." : path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("open dir " + path, errno);
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0 && saved_errno != EINVAL && saved_errno != ENOTSUP) {
    return ErrnoError("fsync dir " + path, saved_errno);
  }
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path,
                       std::span<const std::uint8_t> contents,
                       bool sync_dir) {
  const std::string tmp = path + ".tmp";
  Status status = [&]() -> Status {
    {
      GRAPHSD_ASSIGN_OR_RETURN(File file, File::Open(tmp, OpenMode::kWrite));
      GRAPHSD_RETURN_IF_ERROR(file.WriteAt(0, contents));
      // fsync BEFORE rename: without it a crash can promote an empty or
      // partial temp file to the final name — the classic torn-replace.
      GRAPHSD_RETURN_IF_ERROR(file.Sync());
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
      return IoError("rename " + tmp + " -> " + path + ": " + ec.message());
    }
    // And fsync the parent directory so the rename itself survives a
    // crash; otherwise the new name may vanish on restart.
    if (!sync_dir) return Status::Ok();
    const std::string parent =
        std::filesystem::path(path).parent_path().string();
    return SyncDirectory(parent);
  }();
  // Never leave the temp file behind: a stale `.tmp` would shadow the next
  // atomic replace and leak scratch space.
  if (!status.ok()) (void)RemoveFile(tmp);
  return status;
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  return WriteFileAtomic(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(contents.data()),
                contents.size()));
}

}  // namespace graphsd::io
