// Bounded in-flight queue of asynchronous read tasks.
//
// A ReadQueue admits at most `depth` Status-returning tasks onto a
// caller-supplied ThreadPool at once; Submit blocks when the window is
// full. Tickets are redeemed in any order, but the intended use (the
// prefetch pipeline, io/prefetch.hpp) submits and waits strictly FIFO,
// which is what keeps prefetched execution bit-identical to the
// synchronous path.
//
// Error semantics mirror synchronous code: once any task has returned a
// non-OK Status, tasks submitted after it are never executed — their
// tickets resolve to the poisoning status, exactly as a synchronous loop
// would never have issued reads past its first failure. The poison is
// scoped to the outstanding batch: once every submitted ticket has been
// resolved, the next Submit starts clean (a failed round must not poison
// the rounds after it). With a
// single-worker pool (the loader configuration) tasks execute strictly in
// submission order, so the set of reads actually performed — including
// retries, which run on the loader thread inside Device::RunWithRetry —
// matches the synchronous path even under injected faults.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>

#include "util/cancellation.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::io {

class ReadQueue {
 public:
  using Ticket = std::uint64_t;

  /// `depth` is clamped to at least 1. The pool must outlive the queue.
  ReadQueue(ThreadPool& pool, std::size_t depth);

  /// Drains all in-flight tasks.
  ~ReadQueue();

  ReadQueue(const ReadQueue&) = delete;
  ReadQueue& operator=(const ReadQueue&) = delete;

  /// Blocks until fewer than `depth` tasks are in flight, then schedules
  /// `task` on the pool and returns its ticket.
  Ticket Submit(std::function<Status()> task);

  /// Blocks until `ticket`'s task has finished (or been skipped after a
  /// poisoning failure) and returns its Status. Each ticket may be waited
  /// on once.
  Status Wait(Ticket ticket);

  /// Blocks until every submitted task has finished or been skipped.
  /// Unredeemed statuses are dropped.
  void Drain();

  std::size_t depth() const noexcept { return depth_; }

  /// Attaches a cooperative-cancellation token (null detaches). A tripped
  /// token makes every not-yet-executed task resolve to kCancelled without
  /// touching the device — prompt in-flight drain on Ctrl-C. Like the
  /// poison, the cancelled status is surfaced through Wait; tasks already
  /// executing finish normally. Set before the first Submit.
  void set_cancellation(const CancellationToken* cancel) noexcept {
    cancel_ = cancel;
  }

  /// Tasks submitted over the queue's lifetime.
  std::uint64_t submitted() const;

  /// Tasks skipped because an earlier task failed.
  std::uint64_t skipped() const;

 private:
  struct Slot {
    bool done = false;
    bool redeemed = false;
    Status status;
  };

  /// Runs one task on a pool worker; `ticket` indexes its slot.
  void RunTask(Ticket ticket, const std::function<Status()>& task);
  Slot& SlotFor(Ticket ticket);
  void PopRedeemedLocked();

  ThreadPool* pool_;
  std::size_t depth_;
  const CancellationToken* cancel_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable window_open_;  // in_flight_ < depth_
  std::condition_variable task_done_;
  std::deque<Slot> slots_;  // slots_[ticket - base_]
  Ticket base_ = 0;
  Ticket next_ticket_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t skipped_ = 0;
  // First failure; set once, then every later task is skipped with it.
  Status poison_ = Status::Ok();
};

}  // namespace graphsd::io
