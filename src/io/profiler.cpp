#include "io/profiler.hpp"

#include <algorithm>

#include "io/file.hpp"
#include "util/aligned_buffer.hpp"
#include "util/clock.hpp"
#include "util/rng.hpp"

namespace graphsd::io {

IoCostModel ProfileResult::ToCostModel(std::uint64_t rand_request_bytes) const {
  IoCostModel m;
  m.seq_read_bw = seq_read_bw;
  m.seq_write_bw = seq_write_bw;
  m.random_request_bytes = rand_request_bytes;
  // B_rr(s) = s / (seek + s/B_sr)  =>  seek = s/B_rr - s/B_sr.
  if (rand_read_bw > 0 && seq_read_bw > 0) {
    const double s = static_cast<double>(rand_request_bytes);
    m.seek_seconds = std::max(0.0, s / rand_read_bw - s / seq_read_bw);
  }
  return m;
}

Result<ProfileResult> ProfileDevice(const std::string& directory,
                                    const ProfilerOptions& options) {
  GRAPHSD_RETURN_IF_ERROR(MakeDirectories(directory));
  const std::string path = directory + "/graphsd_profile.tmp";
  ProfileResult result;

  graphsd::AlignedBuffer buffer(options.seq_request_bytes);
  graphsd::Xoshiro256 rng(options.seed);
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    buffer.data()[i] = static_cast<std::uint8_t>(rng.Next());
  }

  {
    GRAPHSD_ASSIGN_OR_RETURN(File file, File::Open(path, OpenMode::kWrite));
    graphsd::WallTimer timer;
    std::uint64_t written = 0;
    while (written < options.file_bytes) {
      const std::uint64_t n =
          std::min<std::uint64_t>(buffer.size(), options.file_bytes - written);
      GRAPHSD_RETURN_IF_ERROR(
          file.WriteAt(written, std::span(buffer.data(), n)));
      written += n;
    }
    GRAPHSD_RETURN_IF_ERROR(file.Sync());
    // Floor the elapsed time like the random passes below: a small profile
    // file on a fast filesystem can finish between clock ticks, and an
    // infinite bandwidth here would flow into the cost model and from there
    // into every --report-json document.
    result.seq_write_bw =
        static_cast<double>(written) / std::max(timer.Seconds(), 1e-9);
  }

  {
    GRAPHSD_ASSIGN_OR_RETURN(File file, File::Open(path, OpenMode::kRead));
    graphsd::WallTimer timer;
    std::uint64_t read = 0;
    while (read < options.file_bytes) {
      const std::uint64_t n =
          std::min<std::uint64_t>(buffer.size(), options.file_bytes - read);
      GRAPHSD_RETURN_IF_ERROR(file.ReadAt(read, std::span(buffer.data(), n)));
      read += n;
    }
    result.seq_read_bw =
        static_cast<double>(read) / std::max(timer.Seconds(), 1e-9);
  }

  {
    GRAPHSD_ASSIGN_OR_RETURN(File file,
                             File::Open(path, OpenMode::kReadWrite));
    const std::uint64_t slots =
        options.file_bytes / options.rand_request_bytes;
    if (slots == 0) {
      return InvalidArgumentError("profile file smaller than request size");
    }
    graphsd::WallTimer timer;
    for (std::uint64_t i = 0; i < options.rand_requests; ++i) {
      const std::uint64_t offset =
          rng.NextBounded(slots) * options.rand_request_bytes;
      GRAPHSD_RETURN_IF_ERROR(file.ReadAt(
          offset, std::span(buffer.data(), options.rand_request_bytes)));
    }
    const double read_secs = timer.Seconds();
    result.rand_read_bw =
        static_cast<double>(options.rand_requests * options.rand_request_bytes) /
        std::max(read_secs, 1e-9);

    timer.Restart();
    for (std::uint64_t i = 0; i < options.rand_requests; ++i) {
      const std::uint64_t offset =
          rng.NextBounded(slots) * options.rand_request_bytes;
      GRAPHSD_RETURN_IF_ERROR(file.WriteAt(
          offset, std::span<const std::uint8_t>(buffer.data(),
                                                options.rand_request_bytes)));
    }
    const double write_secs = timer.Seconds();
    result.rand_write_bw =
        static_cast<double>(options.rand_requests * options.rand_request_bytes) /
        std::max(write_secs, 1e-9);
  }

  GRAPHSD_RETURN_IF_ERROR(RemoveFile(path));
  return result;
}

}  // namespace graphsd::io
