#include "io/io_stats.hpp"

#include "util/stats.hpp"

namespace graphsd::io {

IoStatsSnapshot IoStatsSnapshot::operator-(
    const IoStatsSnapshot& other) const noexcept {
  IoStatsSnapshot d;
  d.seq_read_bytes = seq_read_bytes - other.seq_read_bytes;
  d.seq_write_bytes = seq_write_bytes - other.seq_write_bytes;
  d.rand_read_bytes = rand_read_bytes - other.rand_read_bytes;
  d.rand_write_bytes = rand_write_bytes - other.rand_write_bytes;
  d.seq_read_ops = seq_read_ops - other.seq_read_ops;
  d.seq_write_ops = seq_write_ops - other.seq_write_ops;
  d.rand_read_ops = rand_read_ops - other.rand_read_ops;
  d.rand_write_ops = rand_write_ops - other.rand_write_ops;
  d.retries = retries - other.retries;
  d.checksum_failures = checksum_failures - other.checksum_failures;
  d.eintr_absorbed = eintr_absorbed - other.eintr_absorbed;
  d.vectored_reads = vectored_reads - other.vectored_reads;
  d.bounce_reads = bounce_reads - other.bounce_reads;
  return d;
}

IoStatsSnapshot& IoStatsSnapshot::operator+=(
    const IoStatsSnapshot& other) noexcept {
  seq_read_bytes += other.seq_read_bytes;
  seq_write_bytes += other.seq_write_bytes;
  rand_read_bytes += other.rand_read_bytes;
  rand_write_bytes += other.rand_write_bytes;
  seq_read_ops += other.seq_read_ops;
  seq_write_ops += other.seq_write_ops;
  rand_read_ops += other.rand_read_ops;
  rand_write_ops += other.rand_write_ops;
  retries += other.retries;
  checksum_failures += other.checksum_failures;
  eintr_absorbed += other.eintr_absorbed;
  vectored_reads += other.vectored_reads;
  bounce_reads += other.bounce_reads;
  return *this;
}

std::string IoStatsSnapshot::ToString() const {
  std::string out;
  out += "read " + graphsd::FormatBytes(TotalReadBytes());
  out += " (seq " + graphsd::FormatBytes(seq_read_bytes);
  out += ", rand " + graphsd::FormatBytes(rand_read_bytes);
  out += "), write " + graphsd::FormatBytes(TotalWriteBytes());
  out += ", ops " + std::to_string(TotalOps());
  if (retries > 0) out += ", retries " + std::to_string(retries);
  if (checksum_failures > 0) {
    out += ", checksum failures " + std::to_string(checksum_failures);
  }
  if (eintr_absorbed > 0) {
    out += ", eintr absorbed " + std::to_string(eintr_absorbed);
  }
  return out;
}

void IoStats::RecordRead(AccessPattern pattern, std::uint64_t bytes) noexcept {
  if (pattern == AccessPattern::kSequential) {
    seq_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    seq_read_ops_.fetch_add(1, std::memory_order_relaxed);
  } else {
    rand_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    rand_read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
}

void IoStats::RecordWrite(AccessPattern pattern, std::uint64_t bytes) noexcept {
  if (pattern == AccessPattern::kSequential) {
    seq_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    seq_write_ops_.fetch_add(1, std::memory_order_relaxed);
  } else {
    rand_write_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    rand_write_ops_.fetch_add(1, std::memory_order_relaxed);
  }
}

IoStatsSnapshot IoStats::Snapshot() const noexcept {
  IoStatsSnapshot s;
  s.seq_read_bytes = seq_read_bytes_.load(std::memory_order_relaxed);
  s.seq_write_bytes = seq_write_bytes_.load(std::memory_order_relaxed);
  s.rand_read_bytes = rand_read_bytes_.load(std::memory_order_relaxed);
  s.rand_write_bytes = rand_write_bytes_.load(std::memory_order_relaxed);
  s.seq_read_ops = seq_read_ops_.load(std::memory_order_relaxed);
  s.seq_write_ops = seq_write_ops_.load(std::memory_order_relaxed);
  s.rand_read_ops = rand_read_ops_.load(std::memory_order_relaxed);
  s.rand_write_ops = rand_write_ops_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.checksum_failures = checksum_failures_.load(std::memory_order_relaxed);
  s.eintr_absorbed = eintr_absorbed_.load(std::memory_order_relaxed);
  s.vectored_reads = vectored_reads_.load(std::memory_order_relaxed);
  s.bounce_reads = bounce_reads_.load(std::memory_order_relaxed);
  return s;
}

void IoStats::Reset() noexcept {
  seq_read_bytes_.store(0, std::memory_order_relaxed);
  seq_write_bytes_.store(0, std::memory_order_relaxed);
  rand_read_bytes_.store(0, std::memory_order_relaxed);
  rand_write_bytes_.store(0, std::memory_order_relaxed);
  seq_read_ops_.store(0, std::memory_order_relaxed);
  seq_write_ops_.store(0, std::memory_order_relaxed);
  rand_read_ops_.store(0, std::memory_order_relaxed);
  rand_write_ops_.store(0, std::memory_order_relaxed);
  retries_.store(0, std::memory_order_relaxed);
  checksum_failures_.store(0, std::memory_order_relaxed);
  eintr_absorbed_.store(0, std::memory_order_relaxed);
  vectored_reads_.store(0, std::memory_order_relaxed);
  bounce_reads_.store(0, std::memory_order_relaxed);
}

}  // namespace graphsd::io
