// Asynchronous prefetch pipeline: overlap device reads with compute.
//
// A PrefetchPipeline owns a dedicated single-worker loader pool plus a
// bounded ReadQueue (io/read_queue.hpp). Fetch closures run ahead of the
// consumer on the loader thread while the consumer applies edges, so disk
// time hides behind compute time. The loader is deliberately a single
// thread: the modeled device is serial (one head position, one virtual
// clock), and a single worker executes tasks in submission order, which is
// what makes the performed read sequence — and therefore byte counts,
// sequential/random classification, and fault-injection behavior — exactly
// match the synchronous path.
//
// PrefetchStream<Payload> is the planning front-end the executors use: a
// fixed, ordered plan of fetch units consumed strictly FIFO with a
// look-ahead window of `depth` units. Each unit may carry a skip probe
// (evaluated on the consumer thread at issue time) so already-resident
// sub-blocks are never re-read. With a null or disabled pipeline the
// stream degrades to running each fetch inline at Take(), i.e. the
// synchronous path is the same code minus the look-ahead.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "io/read_queue.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

namespace graphsd::obs {
class MetricsRegistry;
}  // namespace graphsd::obs

namespace graphsd::io {

class PrefetchPipeline {
 public:
  /// `depth` is the look-ahead window in fetch units; 0 disables the
  /// pipeline entirely (no loader thread is started).
  explicit PrefetchPipeline(std::size_t depth);
  ~PrefetchPipeline();

  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  bool enabled() const noexcept { return queue_ != nullptr; }
  std::size_t depth() const noexcept { return depth_; }

  /// The shared read queue. Valid only when enabled().
  ReadQueue& queue() noexcept { return *queue_; }

  /// Forwards a cancellation token to the read queue (no-op when the
  /// pipeline is disabled): a tripped token drains queued fetches as
  /// kCancelled instead of performing their device I/O.
  void set_cancellation(const CancellationToken* cancel) noexcept {
    if (queue_ != nullptr) queue_->set_cancellation(cancel);
  }

  /// Blocks until no loader task is in flight. Streams already drain their
  /// own tickets; engines call this at round boundaries so per-round I/O
  /// accounting snapshots see a quiesced device.
  void Drain();

  /// Publishes depth and lifetime queue counters as `prefetch.*` gauges
  /// (snapshot semantics: safe to call repeatedly, last write wins).
  void PublishMetrics(obs::MetricsRegistry& metrics) const;

 private:
  std::size_t depth_;
  std::unique_ptr<ThreadPool> loader_;
  std::unique_ptr<ReadQueue> queue_;
};

/// FIFO stream of planned fetches with bounded look-ahead. Single consumer
/// thread; the loader thread only ever touches the payload a fetch closure
/// was handed (publication happens-before Wait() via the queue's mutex).
template <typename Payload>
class PrefetchStream {
 public:
  struct Unit {
    /// Evaluated on the consumer thread when the unit is issued (which in
    /// synchronous mode is also when it is consumed). True = don't fetch.
    std::function<bool()> skip;
    /// Performs the accounted reads and fills the payload. Runs on the
    /// loader thread when prefetching, inline at Take() otherwise.
    std::function<Status(Payload&)> fetch;
  };

  struct Item {
    bool fetched = false;  // false: the skip probe fired
    Status status = Status::Ok();
    Payload payload{};
  };

  /// `pipeline` may be null or disabled (synchronous mode). The plan is
  /// consumed in order by Take(); issuing starts immediately.
  PrefetchStream(PrefetchPipeline* pipeline, std::vector<Unit> plan)
      : pipeline_(pipeline != nullptr && pipeline->enabled() ? pipeline
                                                             : nullptr),
        plan_(std::move(plan)) {
    if (pipeline_ != nullptr) FillWindow();
  }

  /// Waits out any tickets the consumer never took (error unwinds).
  ~PrefetchStream() {
    for (Pending& pending : window_) {
      if (pending.issued) {
        Status unused = pipeline_->queue().Wait(pending.ticket);
        (void)unused;
      }
    }
  }

  PrefetchStream(const PrefetchStream&) = delete;
  PrefetchStream& operator=(const PrefetchStream&) = delete;

  /// Consumes the next planned unit, in plan order.
  Item Take() {
    GRAPHSD_CHECK(consumed_ < plan_.size());
    Item item;
    if (pipeline_ == nullptr) {
      Unit& unit = plan_[consumed_++];
      if (unit.skip && unit.skip()) return item;
      item.fetched = true;
      item.status = unit.fetch(item.payload);
      return item;
    }
    Pending pending = std::move(window_.front());
    window_.pop_front();
    ++consumed_;
    FillWindow();
    if (!pending.issued) return item;
    item.fetched = true;
    item.status = pipeline_->queue().Wait(pending.ticket);
    item.payload = std::move(*pending.payload);
    return item;
  }

  std::size_t consumed() const noexcept { return consumed_; }
  std::size_t planned() const noexcept { return plan_.size(); }

 private:
  struct Pending {
    bool issued = false;
    ReadQueue::Ticket ticket = 0;
    // Heap slot the loader writes into; stable across deque shuffles.
    std::unique_ptr<Payload> payload;
  };

  void FillWindow() {
    while (issued_ < plan_.size() && window_.size() < pipeline_->depth()) {
      Unit& unit = plan_[issued_++];
      Pending pending;
      if (!(unit.skip && unit.skip())) {
        pending.issued = true;
        pending.payload = std::make_unique<Payload>();
        Payload* out = pending.payload.get();
        pending.ticket = pipeline_->queue().Submit(
            [fetch = std::move(unit.fetch), out]() -> Status {
              return fetch(*out);
            });
      }
      window_.push_back(std::move(pending));
    }
  }

  PrefetchPipeline* pipeline_;  // null = synchronous mode
  std::vector<Unit> plan_;
  std::size_t issued_ = 0;
  std::size_t consumed_ = 0;
  std::deque<Pending> window_;
};

}  // namespace graphsd::io
