// Edge-payload codecs for compressed sub-block storage.
//
// A `Codec` turns the raw fixed-width edge array of one sub-block into a
// smaller byte string and back. Codecs are stateless and thread-safe; the
// registry below maps the manifest's `codec=` name and the frame header's
// numeric id to singleton instances. The frame layer (frame.hpp) wraps the
// encoded payload in a self-describing header so readers never need to
// guess which codec produced a file.
//
// Contract:
//   * Encode(raw, out) writes at most MaxCompressedSize(raw.size()) bytes
//     into `out` and returns the number written. It never fails on valid
//     edge payloads (raw.size() % kEdgeBytes == 0).
//   * Decode(encoded, raw_out) must fill raw_out exactly and reject any
//     malformed input with kCorruptData — it is the last line of defence
//     behind the frame CRC.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "util/status.hpp"

namespace graphsd::compress {

/// Stable on-disk codec ids (recorded in every frame header). Append only.
enum class CodecId : std::uint32_t {
  kNone = 0,
  kVarintDelta = 1,
};

class Codec {
 public:
  virtual ~Codec() = default;

  /// Manifest name, e.g. "none" or "varint-delta".
  virtual std::string_view name() const noexcept = 0;

  /// Stable numeric id stored in frame headers.
  virtual CodecId id() const noexcept = 0;

  /// Upper bound on Encode's output size for a `raw_size`-byte payload.
  virtual std::size_t MaxCompressedSize(std::size_t raw_size) const noexcept = 0;

  /// Encodes `raw` into `out` (sized >= MaxCompressedSize(raw.size())).
  /// Returns the number of bytes written.
  virtual Result<std::size_t> Encode(std::span<const std::uint8_t> raw,
                                     std::span<std::uint8_t> out) const = 0;

  /// Decodes `encoded` into `raw_out`, which must be exactly the original
  /// raw size. Any mismatch or malformed input yields kCorruptData.
  virtual Status Decode(std::span<const std::uint8_t> encoded,
                        std::span<std::uint8_t> raw_out) const = 0;
};

/// Identity codec: raw bytes pass through unchanged.
const Codec& NoneCodec();

/// Zigzag-varint delta codec over the (src,dst) edge stream. Exploits the
/// (src,dst)-sorted order inside grid sub-blocks (small non-negative deltas
/// encode in 1-2 bytes) but round-trips arbitrary edge payloads.
const Codec& VarintDeltaCodec();

/// Looks up a codec by manifest name; nullptr when unknown.
const Codec* FindCodec(std::string_view name) noexcept;

/// Looks up a codec by frame-header id; nullptr when unknown.
const Codec* FindCodecById(std::uint32_t id) noexcept;

}  // namespace graphsd::compress
