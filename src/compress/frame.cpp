#include "compress/frame.hpp"

#include <cstring>

#include "util/crc32c.hpp"

namespace graphsd::compress {
namespace {

void PutU32(std::uint32_t v, std::uint8_t* out) noexcept {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

void PutU64(std::uint64_t v, std::uint8_t* out) noexcept {
  PutU32(static_cast<std::uint32_t>(v), out);
  PutU32(static_cast<std::uint32_t>(v >> 32), out + 4);
}

std::uint32_t GetU32(const std::uint8_t* in) noexcept {
  return static_cast<std::uint32_t>(in[0]) |
         static_cast<std::uint32_t>(in[1]) << 8 |
         static_cast<std::uint32_t>(in[2]) << 16 |
         static_cast<std::uint32_t>(in[3]) << 24;
}

std::uint64_t GetU64(const std::uint8_t* in) noexcept {
  return static_cast<std::uint64_t>(GetU32(in)) |
         static_cast<std::uint64_t>(GetU32(in + 4)) << 32;
}

}  // namespace

Result<std::vector<std::uint8_t>> EncodeFrame(
    const Codec& codec, std::span<const std::uint8_t> raw) {
  std::vector<std::uint8_t> frame(kFrameHeaderBytes +
                                  codec.MaxCompressedSize(raw.size()));
  GRAPHSD_ASSIGN_OR_RETURN(
      std::size_t compressed,
      codec.Encode(raw, std::span(frame).subspan(kFrameHeaderBytes)));
  const Codec* actual = &codec;
  if (compressed >= raw.size() && codec.id() != CodecId::kNone) {
    // Incompressible block: store raw inside the frame and record the
    // fallback in the header, so decode never needs the manifest.
    actual = &NoneCodec();
    frame.resize(kFrameHeaderBytes + raw.size());
    GRAPHSD_ASSIGN_OR_RETURN(
        compressed,
        actual->Encode(raw, std::span(frame).subspan(kFrameHeaderBytes)));
  }
  frame.resize(kFrameHeaderBytes + compressed);
  std::memcpy(frame.data(), kFrameMagic, sizeof(kFrameMagic));
  PutU32(static_cast<std::uint32_t>(actual->id()), frame.data() + 4);
  PutU64(raw.size(), frame.data() + 8);
  PutU64(compressed, frame.data() + 16);
  PutU32(Crc32c(std::span(frame).subspan(kFrameHeaderBytes)),
         frame.data() + 24);
  PutU32(0, frame.data() + 28);
  return frame;
}

Result<FrameHeader> ParseFrameHeader(std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeaderBytes) {
    return CorruptDataError("frame truncated: no header");
  }
  if (std::memcmp(frame.data(), kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return CorruptDataError("bad frame magic");
  }
  FrameHeader h;
  h.codec_id = GetU32(frame.data() + 4);
  h.raw_bytes = GetU64(frame.data() + 8);
  h.compressed_bytes = GetU64(frame.data() + 16);
  h.payload_crc = GetU32(frame.data() + 24);
  if (FindCodecById(h.codec_id) == nullptr) {
    return CorruptDataError("unknown frame codec id " +
                            std::to_string(h.codec_id));
  }
  if (frame.size() != kFrameHeaderBytes + h.compressed_bytes) {
    return CorruptDataError("frame size mismatch: header declares " +
                            std::to_string(h.compressed_bytes) +
                            " payload bytes, file has " +
                            std::to_string(frame.size() - kFrameHeaderBytes));
  }
  return h;
}

Status DecodeFrameInto(std::span<const std::uint8_t> frame,
                       std::span<std::uint8_t> raw_out) {
  GRAPHSD_ASSIGN_OR_RETURN(const FrameHeader h, ParseFrameHeader(frame));
  if (raw_out.size() != h.raw_bytes) {
    return CorruptDataError("frame raw size mismatch: header declares " +
                            std::to_string(h.raw_bytes) + " bytes, expected " +
                            std::to_string(raw_out.size()));
  }
  const auto payload = frame.subspan(kFrameHeaderBytes);
  if (Crc32c(payload) != h.payload_crc) {
    return CorruptDataError("frame payload CRC mismatch");
  }
  return FindCodecById(h.codec_id)->Decode(payload, raw_out);
}

Result<std::vector<std::uint8_t>> DecodeFrame(
    std::span<const std::uint8_t> frame) {
  GRAPHSD_ASSIGN_OR_RETURN(const FrameHeader h, ParseFrameHeader(frame));
  std::vector<std::uint8_t> raw(h.raw_bytes);
  GRAPHSD_RETURN_IF_ERROR(DecodeFrameInto(frame, raw));
  return raw;
}

}  // namespace graphsd::compress
