#include "compress/codec.hpp"

#include <cstring>

namespace graphsd::compress {
namespace {

// Sub-block edge payloads are arrays of {u32 src, u32 dst} records in
// native byte order (the builders write the structs verbatim); the codecs
// only need the 8-byte stride, not the graph-layer Edge type.
constexpr std::size_t kPairBytes = 8;

// Worst case for one zigzag-encoded u32 delta: |delta| < 2^32, so the
// zigzag value is < 2^33 and its LEB128 varint takes at most 5 bytes.
constexpr std::size_t kMaxVarintBytes = 5;

std::uint64_t ZigzagEncode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t ZigzagDecode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

std::size_t PutVarint(std::uint64_t v, std::uint8_t* out) noexcept {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = static_cast<std::uint8_t>(v) | 0x80;
    v >>= 7;
  }
  out[n++] = static_cast<std::uint8_t>(v);
  return n;
}

class NoneCodecImpl final : public Codec {
 public:
  std::string_view name() const noexcept override { return "none"; }
  CodecId id() const noexcept override { return CodecId::kNone; }

  std::size_t MaxCompressedSize(std::size_t raw_size) const noexcept override {
    return raw_size;
  }

  Result<std::size_t> Encode(std::span<const std::uint8_t> raw,
                             std::span<std::uint8_t> out) const override {
    if (out.size() < raw.size()) {
      return InvalidArgumentError("none codec: output buffer too small");
    }
    if (!raw.empty()) std::memcpy(out.data(), raw.data(), raw.size());
    return raw.size();
  }

  Status Decode(std::span<const std::uint8_t> encoded,
                std::span<std::uint8_t> raw_out) const override {
    if (encoded.size() != raw_out.size()) {
      return CorruptDataError("none codec: payload size mismatch");
    }
    if (!encoded.empty()) {
      std::memcpy(raw_out.data(), encoded.data(), encoded.size());
    }
    return Status::Ok();
  }
};

class VarintDeltaCodecImpl final : public Codec {
 public:
  std::string_view name() const noexcept override { return "varint-delta"; }
  CodecId id() const noexcept override { return CodecId::kVarintDelta; }

  std::size_t MaxCompressedSize(std::size_t raw_size) const noexcept override {
    return raw_size / kPairBytes * (2 * kMaxVarintBytes);
  }

  Result<std::size_t> Encode(std::span<const std::uint8_t> raw,
                             std::span<std::uint8_t> out) const override {
    if (raw.size() % kPairBytes != 0) {
      return InvalidArgumentError(
          "varint-delta codec: payload is not a whole number of edges");
    }
    if (out.size() < MaxCompressedSize(raw.size())) {
      return InvalidArgumentError("varint-delta codec: output buffer too small");
    }
    std::size_t written = 0;
    std::uint32_t prev_src = 0;
    std::uint32_t prev_dst = 0;
    for (std::size_t off = 0; off < raw.size(); off += kPairBytes) {
      std::uint32_t src = 0;
      std::uint32_t dst = 0;
      std::memcpy(&src, raw.data() + off, sizeof(src));
      std::memcpy(&dst, raw.data() + off + sizeof(src), sizeof(dst));
      written += PutVarint(
          ZigzagEncode(static_cast<std::int64_t>(src) - prev_src),
          out.data() + written);
      written += PutVarint(
          ZigzagEncode(static_cast<std::int64_t>(dst) - prev_dst),
          out.data() + written);
      prev_src = src;
      prev_dst = dst;
    }
    return written;
  }

  Status Decode(std::span<const std::uint8_t> encoded,
                std::span<std::uint8_t> raw_out) const override {
    if (raw_out.size() % kPairBytes != 0) {
      return CorruptDataError(
          "varint-delta codec: raw size is not a whole number of edges");
    }
    std::size_t pos = 0;
    std::uint32_t prev_src = 0;
    std::uint32_t prev_dst = 0;
    for (std::size_t off = 0; off < raw_out.size(); off += kPairBytes) {
      GRAPHSD_ASSIGN_OR_RETURN(const std::uint32_t src,
                               NextValue(encoded, &pos, prev_src));
      GRAPHSD_ASSIGN_OR_RETURN(const std::uint32_t dst,
                               NextValue(encoded, &pos, prev_dst));
      std::memcpy(raw_out.data() + off, &src, sizeof(src));
      std::memcpy(raw_out.data() + off + sizeof(src), &dst, sizeof(dst));
      prev_src = src;
      prev_dst = dst;
    }
    if (pos != encoded.size()) {
      return CorruptDataError("varint-delta codec: trailing bytes after edges");
    }
    return Status::Ok();
  }

 private:
  // Reads one zigzag varint delta and applies it to `prev`, rejecting
  // truncated varints, oversized encodings and deltas that step outside
  // the 32-bit vertex-id range.
  static Result<std::uint32_t> NextValue(std::span<const std::uint8_t> encoded,
                                         std::size_t* pos,
                                         std::uint32_t prev) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < kMaxVarintBytes; ++i) {
      if (*pos >= encoded.size()) {
        return CorruptDataError("varint-delta codec: truncated varint");
      }
      const std::uint8_t byte = encoded[(*pos)++];
      v |= static_cast<std::uint64_t>(byte & 0x7f) << (7 * i);
      if ((byte & 0x80) == 0) {
        const std::int64_t next =
            static_cast<std::int64_t>(prev) + ZigzagDecode(v);
        if (next < 0 || next > static_cast<std::int64_t>(UINT32_MAX)) {
          return CorruptDataError("varint-delta codec: delta out of range");
        }
        return static_cast<std::uint32_t>(next);
      }
    }
    return CorruptDataError("varint-delta codec: varint too long");
  }
};

}  // namespace

const Codec& NoneCodec() {
  static const NoneCodecImpl kInstance;
  return kInstance;
}

const Codec& VarintDeltaCodec() {
  static const VarintDeltaCodecImpl kInstance;
  return kInstance;
}

const Codec* FindCodec(std::string_view name) noexcept {
  if (name == "none") return &NoneCodec();
  if (name == "varint-delta") return &VarintDeltaCodec();
  return nullptr;
}

const Codec* FindCodecById(std::uint32_t id) noexcept {
  switch (static_cast<CodecId>(id)) {
    case CodecId::kNone:
      return &NoneCodec();
    case CodecId::kVarintDelta:
      return &VarintDeltaCodec();
  }
  return nullptr;
}

}  // namespace graphsd::compress
