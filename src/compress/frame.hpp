// Self-describing frame format for compressed sub-block payloads.
//
// Every compressed `.edges` file is one frame:
//
//   offset  size  field
//        0     4  magic "GSDF"
//        4     4  codec id (CodecId, little-endian u32)
//        8     8  raw (decoded) payload bytes, little-endian u64
//       16     8  compressed payload bytes, little-endian u64
//       24     4  CRC32C over the compressed payload, little-endian u32
//       28     4  reserved (zero)
//       32     -  compressed payload
//
// The header makes frames independently verifiable (magic + CRC + declared
// sizes) and self-describing: the codec that actually produced the payload
// is recorded per file, so EncodeFrame can fall back to the `none` codec
// for incompressible blocks without the manifest having to know. The
// manifest's `codec=` field is the dataset-level negotiation ("frames may
// use up to this codec"); the frame header is ground truth per file.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "compress/codec.hpp"
#include "util/status.hpp"

namespace graphsd::compress {

/// Frame header size in bytes.
inline constexpr std::size_t kFrameHeaderBytes = 32;

/// Frame magic, "GSDF".
inline constexpr std::uint8_t kFrameMagic[4] = {'G', 'S', 'D', 'F'};

struct FrameHeader {
  std::uint32_t codec_id = 0;
  std::uint64_t raw_bytes = 0;
  std::uint64_t compressed_bytes = 0;
  std::uint32_t payload_crc = 0;
};

/// Encodes `raw` with `codec` into a complete frame (header + payload).
/// Falls back to the `none` codec inside the frame when the encoded payload
/// would not be smaller than the raw bytes, so a frame is never larger than
/// raw + header.
Result<std::vector<std::uint8_t>> EncodeFrame(const Codec& codec,
                                              std::span<const std::uint8_t> raw);

/// Parses and validates a frame header (magic, known codec, sizes
/// consistent with `frame.size()`). Does not touch the payload.
Result<FrameHeader> ParseFrameHeader(std::span<const std::uint8_t> frame);

/// Verifies a complete frame (header + payload CRC) and decodes it into
/// `raw_out`, which must be exactly `header.raw_bytes` long.
Status DecodeFrameInto(std::span<const std::uint8_t> frame,
                       std::span<std::uint8_t> raw_out);

/// Verifies and decodes a complete frame, allocating the output.
Result<std::vector<std::uint8_t>> DecodeFrame(
    std::span<const std::uint8_t> frame);

}  // namespace graphsd::compress
